#!/usr/bin/env python
"""Quickstart: maximum cardinality matching on a bipartite graph.

Builds a small Graph500-style RMAT bipartite graph, computes a maximum
matching through the public API, validates it with the built-in König
certificate, and prints the execution statistics Algorithm 2 collected.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.graphs import rmat
from repro.matching.validate import koenig_vertex_cover


def main() -> None:
    # -- 1. build an input: a scale-12 Graph500 RMAT matrix (4096x4096,
    #       ~130k nonzeros, skewed degrees) ---------------------------------
    g = rmat.g500(scale=12, seed=42)
    print(f"graph: {g.nrows:,} x {g.ncols:,}, {g.nnz:,} edges")

    # -- 2. compute a maximum matching --------------------------------------
    # The paper's pipeline: a maximal-matching initializer, then MS-BFS
    # augmentation phases (Algorithm 2).  Greedy init (instead of the
    # paper's default mindegree) leaves visible work for the MCM phase on
    # this input; swap in init="mindegree" to see the stronger initializer.
    mate_r, mate_c, stats = repro.maximum_matching(g, init="greedy", seed=1)

    print(f"maximal matching (initializer) : {stats.initial_cardinality:,}")
    print(f"maximum matching (final)       : {stats.final_cardinality:,}")
    print(f"BFS phases                     : {stats.phases}")
    print(f"level-synchronous iterations   : {stats.iterations}")
    print(f"edges traversed                : {stats.edges_traversed:,}")
    print(f"augmenting paths applied       : {stats.total_paths:,}")

    # -- 3. validate: structural checks + a König optimality certificate ----
    a = repro.CSC.from_coo(g)
    assert repro.is_valid_matching(a, mate_r, mate_c)
    assert repro.verify_maximum(a, mate_r, mate_c), "certificate must verify"
    cover_rows, cover_cols = koenig_vertex_cover(a, mate_r, mate_c)
    print(
        f"König certificate              : cover size "
        f"{int(cover_rows.sum() + cover_cols.sum()):,} == matching size "
        f"{stats.final_cardinality:,} (optimal, proven)"
    )

    # -- 4. inspect a matched pair ------------------------------------------
    some_row = int(np.flatnonzero(mate_r != -1)[0])
    print(f"example pair                   : row {some_row} <-> column {mate_r[some_row]}")


if __name__ == "__main__":
    main()
