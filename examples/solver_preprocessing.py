#!/usr/bin/env python
"""Sparse-solver preprocessing: permute a matrix to a zero-free diagonal.

This is the application motivating the paper (Section I): direct sparse
solvers permute the system so every diagonal entry is structurally nonzero
before factorization; the permutation IS a maximum/perfect matching of the
matrix's bipartite pattern.  The paper's point is that when the matrix is
already distributed, the matching must be computed distributed too.

This example:
1. builds a structurally nonsingular sparse system with a hostile diagonal
   (most diagonal entries are zero),
2. computes a perfect matching of its pattern,
3. derives the row permutation and verifies the permuted matrix has a
   zero-free diagonal,
4. contrasts the distributed-vs-gather cost using the Fig. 9 model.

Run:  python examples/solver_preprocessing.py
"""

import numpy as np

import repro
from repro.sparse.permute import matching_to_permutation
from repro.simulate import gather_scatter_time


def build_system(n: int, seed: int = 0) -> repro.COO:
    """A structurally nonsingular matrix whose natural diagonal is mostly
    zero: a random permutation matrix (guaranteeing nonsingularity) plus
    random off-diagonal fill."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n).astype(np.int64)
    fill_rows = rng.integers(0, n, 6 * n)
    fill_cols = rng.integers(0, n, 6 * n)
    rows = np.concatenate([np.arange(n, dtype=np.int64), fill_rows])
    cols = np.concatenate([perm, fill_cols])
    return repro.COO(n, n, rows, cols)


def main() -> None:
    n = 4000
    a = build_system(n)
    diag_nonzeros = int(np.sum(a.rows == a.cols))
    print(f"system: {n:,} x {n:,}, {a.nnz:,} nonzeros; "
          f"diagonal nonzeros before permutation: {diag_nonzeros:,} / {n:,}")

    # -- perfect matching of the pattern -------------------------------------
    mate_r, mate_c, stats = repro.maximum_matching(a, init="karp-sipser", seed=3)
    assert stats.final_cardinality == n, "system is structurally nonsingular"
    print(f"perfect matching found in {stats.phases} phases "
          f"({stats.total_paths} augmenting paths after the initializer)")

    # -- permute rows so matched entries land on the diagonal ---------------
    rowperm = matching_to_permutation(mate_c, nrows=n)
    permuted = a.permuted(row_perm=rowperm, col_perm=None)
    diag_after = int(np.sum(permuted.rows == permuted.cols))
    print(f"diagonal nonzeros after permutation : {diag_after:,} / {n:,}")
    assert diag_after == n, "permuted matrix must have a zero-free diagonal"

    # -- why compute the matching distributed? ------------------------------
    # If this system lived distributed across 2048 cores (as nlpkkt200-scale
    # systems do), gathering it to one node just to run a shared-memory
    # matcher would cost (Fig. 9 model):
    big_nnz, big_n = 448_225_632, 16_240_000  # nlpkkt200's true size
    cost = gather_scatter_time(big_nnz, big_n, cores=2048)
    print(
        f"\nFig. 9 model, nlpkkt200-scale system on 2048 cores:\n"
        f"  gather to one node : {cost.gather:7.1f} s\n"
        f"  root preprocessing : {cost.preprocess:7.1f} s\n"
        f"  scatter mates back : {cost.scatter:7.1f} s\n"
        f"  total              : {cost.total:7.1f} s  "
        f"(vs ~10 s to just run MCM-DIST distributed)"
    )


if __name__ == "__main__":
    main()
