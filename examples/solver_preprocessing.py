#!/usr/bin/env python
"""Sparse-solver preprocessing: permute a matrix to a zero-free diagonal.

This is the application motivating the paper (Section I): direct sparse
solvers permute the system so every diagonal entry is structurally nonzero
before factorization; the permutation IS a maximum/perfect matching of the
matrix's bipartite pattern.  The paper's point is that when the matrix is
already distributed, the matching must be computed distributed too.

This example:
1. builds a structurally nonsingular sparse system with a hostile diagonal
   (most diagonal entries are zero),
2. computes a perfect matching of its pattern,
3. derives the row permutation and verifies the permuted matrix has a
   zero-free diagonal,
4. goes beyond structure: MC64-style WEIGHTED pivoting — permute the
   heaviest entries onto the diagonal with the auction engine
   (``maximum_weight_matching`` serially, ``run_mwm_dist`` distributed),
5. contrasts the distributed-vs-gather cost using the Fig. 9 model.

Run:  python examples/solver_preprocessing.py
"""

import numpy as np

import repro
from repro.matching import run_mwm_dist
from repro.sparse.permute import matching_to_permutation
from repro.simulate import gather_scatter_time


def build_system(n: int, seed: int = 0) -> repro.COO:
    """A structurally nonsingular matrix whose natural diagonal is mostly
    zero: a random permutation matrix (guaranteeing nonsingularity) plus
    random off-diagonal fill."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n).astype(np.int64)
    fill_rows = rng.integers(0, n, 6 * n)
    fill_cols = rng.integers(0, n, 6 * n)
    rows = np.concatenate([np.arange(n, dtype=np.int64), fill_rows])
    cols = np.concatenate([perm, fill_cols])
    return repro.COO(n, n, rows, cols)


def main() -> None:
    n = 4000
    a = build_system(n)
    diag_nonzeros = int(np.sum(a.rows == a.cols))
    print(f"system: {n:,} x {n:,}, {a.nnz:,} nonzeros; "
          f"diagonal nonzeros before permutation: {diag_nonzeros:,} / {n:,}")

    # -- perfect matching of the pattern -------------------------------------
    mate_r, mate_c, stats = repro.maximum_matching(a, init="karp-sipser", seed=3)
    assert stats.final_cardinality == n, "system is structurally nonsingular"
    print(f"perfect matching found in {stats.phases} phases "
          f"({stats.total_paths} augmenting paths after the initializer)")

    # -- permute rows so matched entries land on the diagonal ---------------
    rowperm = matching_to_permutation(mate_c, nrows=n)
    permuted = a.permuted(row_perm=rowperm, col_perm=None)
    diag_after = int(np.sum(permuted.rows == permuted.cols))
    print(f"diagonal nonzeros after permutation : {diag_after:,} / {n:,}")
    assert diag_after == n, "permuted matrix must have a zero-free diagonal"

    # -- weighted pivoting: put the HEAVIEST entries on the diagonal ---------
    # A zero-free diagonal is necessary but weak: solvers like MC64 pick the
    # permutation maximizing the product (equivalently, sum of logs) of the
    # diagonal magnitudes to avoid tiny pivots.  That is exactly a maximum
    # WEIGHT matching over |a_ij|.
    rng = np.random.default_rng(1)
    vals = rng.lognormal(0.0, 2.0, a.nnz)  # entry magnitudes, heavy-tailed
    weights = np.log1p(vals)               # positive, product -> sum
    mw_r, mw_c, w_serial = repro.maximum_weight_matching(
        a, weights, epsilon=0.05, cardinality_bias=1.0
    )
    # the distributed engine (here a 2x2 grid) lands on the same pivots
    mw_r_d, mw_c_d, wstats = run_mwm_dist(
        a, weights, 2, 2, epsilon=0.05, cardinality_bias=1.0
    )
    assert np.array_equal(mw_r, mw_r_d) and np.array_equal(mw_c, mw_c_d)
    matched = int((mw_c != -1).sum())
    struct_w = float(weights[mate_c[a.cols] == a.rows].sum())
    assert wstats.matching_weight > struct_w, "weight-aware pivots must win"
    print(f"\nweighted pivoting (MC64-style, log-magnitude objective):\n"
          f"  structural matching diagonal weight: "
          f"{struct_w:10.1f} (whatever the pattern gave us)\n"
          f"  auction matching diagonal weight   : "
          f"{wstats.matching_weight:10.1f} on {matched:,} heavy pivots "
          f"({wstats.phases} eps-phases, {wstats.auction_rounds} rounds, "
          f"{wstats.bids_placed:,} bids)")
    wperm = matching_to_permutation(mw_c, nrows=n)
    wpermuted = a.permuted(row_perm=wperm, col_perm=None)
    assert int(np.sum(wpermuted.rows == wpermuted.cols)) >= matched

    # -- why compute the matching distributed? ------------------------------
    # If this system lived distributed across 2048 cores (as nlpkkt200-scale
    # systems do), gathering it to one node just to run a shared-memory
    # matcher would cost (Fig. 9 model):
    big_nnz, big_n = 448_225_632, 16_240_000  # nlpkkt200's true size
    cost = gather_scatter_time(big_nnz, big_n, cores=2048)
    print(
        f"\nFig. 9 model, nlpkkt200-scale system on 2048 cores:\n"
        f"  gather to one node : {cost.gather:7.1f} s\n"
        f"  root preprocessing : {cost.preprocess:7.1f} s\n"
        f"  scatter mates back : {cost.scatter:7.1f} s\n"
        f"  total              : {cost.total:7.1f} s  "
        f"(vs ~10 s to just run MCM-DIST distributed)"
    )


if __name__ == "__main__":
    main()
