#!/usr/bin/env python
"""Run MCM-DIST as a real SPMD job on the simulated MPI runtime.

Every rank owns only its DCSC block of the 2D-partitioned matrix and its
slices of the vectors; all coordination flows through collectives, routed
all-to-alls, and — for path-parallel augmentation — one-sided RMA windows.
This is the same code path a production mpi4py deployment would execute.

The example launches the job on a 3x3 process grid, verifies the
distributed result against the serial engine, compares the latency-aware
collective engine against the naive baselines (``comm_config``), and
records a per-rank span trace whose critical-path breakdown is printed at
the end (``trace-report`` over the same data lives in the CLI).

Run:  python examples/distributed_spmd.py
"""

import repro
from repro.graphs import rmat
from repro.matching import ms_bfs_mcm
from repro.matching.mcm_dist import mcm_dist_spmd, merge_by_alg
from repro.runtime import NAIVE_CONFIG, spmd
from repro.simulate.critpath import report_trace


def rank_main(comm, coo, pr, pc):
    # module-level (not a closure) so a process backend could pickle it —
    # exactly what `repro lint` rule SPMD703 enforces
    data = coo if comm.rank == 0 else None
    return mcm_dist_spmd(comm, data, pr, pc, init="greedy", augment="auto")


def main() -> None:
    coo = rmat.ssca(scale=10, seed=5)
    print(f"graph: {coo.nrows:,} x {coo.ncols:,}, {coo.nnz:,} edges")

    pr = pc = 3

    # traced run on the default (latency-aware) collective engine; the
    # deterministic tick clock makes the trace byte-identical across runs
    result = spmd(pr * pc, rank_main, coo, pr, pc, timeout=300.0, trace="ticks")
    mate_r, mate_c, stats = result[0]

    print(f"grid                 : {pr} x {pc} simulated ranks")
    print(f"initial (greedy)     : {stats.initial_cardinality:,}")
    print(f"maximum matching     : {stats.final_cardinality:,}")
    print(f"phases / iterations  : {stats.phases} / {stats.iterations}")
    print(f"augmentation         : {stats.augment_level_calls} level-parallel, "
          f"{stats.augment_path_calls} path-parallel (RMA) calls")

    # -- per-rank communication profile --------------------------------------
    print("\nper-rank traffic (messages sent / 8-byte words):")
    for r, s in enumerate(result.stats):
        print(f"  rank {r} (grid {divmod(r, pc)}): {s.messages_sent:>6} msgs  "
              f"{s.words_sent:>10,} words")
    print(f"  total: {result.total_messages:,} messages, {result.total_words:,} words")

    # -- collective engine vs naive baselines (comm_config) ------------------
    naive = spmd(pr * pc, rank_main, coo, pr, pc,
                 timeout=300.0, comm_config=NAIVE_CONFIG)
    eng_steps = sum(d["steps"] for d in merge_by_alg(result.values).values())
    nai_steps = sum(d["steps"] for d in merge_by_alg(naive.values).values())
    print(f"\ncollective engine    : {eng_steps:,} modeled latency steps "
          f"vs {nai_steps:,} naive ({nai_steps / max(eng_steps, 1):.1f}x)")

    # -- span trace: who bounded each phase? ---------------------------------
    print("\ncritical-path breakdown of the traced run:")
    print(report_trace(result.trace, top=3))

    # -- cross-check against the serial matrix-algebra engine ----------------
    a = repro.CSC.from_coo(coo)
    serial_r, serial_c, _ = ms_bfs_mcm(a)
    assert int((mate_r != -1).sum()) == int((serial_r != -1).sum()), \
        "distributed and serial engines must agree on cardinality"
    assert repro.verify_maximum(a, mate_r, mate_c)
    print("\ndistributed result verified maximum (König certificate) and equal "
          "in cardinality to the serial engine")


if __name__ == "__main__":
    main()
