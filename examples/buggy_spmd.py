#!/usr/bin/env python
"""Seeded SPMD bugs — the end-to-end fixture for ``repro lint``.

Each function below contains exactly one classic SPMD mistake, and every
rule in the catalogue has at least one fixture here.  The linter must
report them all with file:line, and each bug also *reproduces at runtime*
(deadlock under the fabric's timeout backstop, ``CommError``, divergent
mates under ``--verify``, pickle failures) — the point of the linter is to
catch them before the run:

    python -m repro lint examples/buggy_spmd.py

Rule coverage map (kept in sync with ``tests/analysis/test_lint.py``):

=========  =====================================  ==============================
rule       fixture                                runtime symptom
=========  =====================================  ==============================
SPMD101    ``divergent_reduction``                rank 0 deadlocks in allreduce
SPMD101    ``divergent_via_helper``               same, reached through a helper
SPMD102    ``rank_bounded_barriers``              barrier-count mismatch hangs
SPMD201    ``reserved_tag_exchange``              CommError at send
SPMD301    ``fenceless_put``                      RMA verifier flags the access
SPMD401    ``unseeded_shuffle``                   ranks disagree silently
SPMD501    ``lonely_recv``                        DeadlockError names rank 1
SPMD502    ``ring_recv_before_send``              DeadlockError: cyclic wait
SPMD601    ``set_ordered_mates``                  mate vector depends on set order
SPMD602    ``clock_seeded_mates``                 divergent mates under --verify
SPMD603    ``set_ordered_sum``                    sums differ across ranks
SPMD701    ``global_mate_cache``                  writes vanish under processes
SPMD702    ``lambda_payload``                     pickle failure under processes
SPMD703    ``closure_launcher``                   job cannot start under processes
=========  =====================================  ==============================
"""

import time

import numpy as np


def divergent_reduction(comm):
    """BUG: only rank 0 enters the allreduce; every other rank skips it.

    Rank 0 blocks forever waiting for contributions that never come (the
    runtime converts that into DeadlockError; ``--verify`` mode reports the
    divergence precisely).
    """
    if comm.rank == 0:
        total = comm.allreduce(1)
    else:
        total = None
    return total


def reserved_tag_exchange(comm):
    """BUG: tag 2**30 collides with the runtime's collective tag space."""
    right = (comm.rank + 1) % comm.size
    comm.send(right, b"payload", tag=1 << 30)
    return comm.recv()


def unseeded_shuffle(comm, items):
    """BUG: the global NumPy RNG is unseeded, so every rank shuffles its
    replicated copy differently and the ranks silently disagree."""
    local = np.asarray(items).copy()
    np.random.shuffle(local)
    return comm.allgather(local)


# --------------------------------------------------------------------------
# interprocedural collective divergence (SPMD101 via call graph)


def _root_summary(comm, value):
    """Helper that hides a collective two frames away from the branch."""
    return _fold(comm, value)


def _fold(comm, value):
    return comm.allreduce(value)


def divergent_via_helper(comm):
    """BUG: the allreduce is reached only through ``_root_summary`` on the
    rank-0 branch — the classic helper-function blind spot.  The collective
    is two calls deep; non-root ranks never enter it."""
    if comm.rank == 0:
        return _root_summary(comm, 1)
    return None


def rank_bounded_barriers(comm):
    """BUG (SPMD102): each rank runs a different number of barriers, so the
    i-th barrier of rank 2 pairs with nothing on rank 0."""
    for _ in range(comm.rank):
        comm.barrier()
    return None


def fenceless_put(comm, win):
    """BUG (SPMD301): one-sided put before the window's first fence — the
    epoch has not opened, so the access races with everyone."""
    win.put(0, np.zeros(4))
    win.fence()
    return win.get(0)


# --------------------------------------------------------------------------
# point-to-point deadlocks (SPMD5xx) — these actually hang the fabric


def lonely_recv(comm):
    """BUG (SPMD501): rank 1 waits for a message on tag 9 that no rank ever
    sends (rank 0 sends tag 8).  Under the runtime the job dies with
    DeadlockError naming rank 1's recv."""
    if comm.rank == 0:
        comm.send(1, b"ping", tag=8)
    elif comm.rank == 1:
        return comm.recv(0, tag=9)
    return None


def ring_recv_before_send(comm):
    """BUG (SPMD502): every rank receives from its left neighbour *before*
    sending to its right — a cyclic wait with no message in flight.  The
    classic fix is to order by parity (even ranks send first)."""
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    got = comm.recv(left, tag=7)
    comm.send(right, comm.rank, tag=7)
    return got


# --------------------------------------------------------------------------
# determinism hazards (SPMD6xx) — divergent mates under --verify


def set_ordered_mates(comm, edges):
    """BUG (SPMD601): iterating a set, with last-writer-wins stores — the
    resulting mate assignment depends on hash iteration order."""
    frontier = set(edges)
    mate = {}
    for u, v in frontier:
        mate[u] = v
    return comm.allgather(mate)


def clock_seeded_mates(comm, n):
    """BUG (SPMD602): mate assignment derived from a wall-clock read — each
    rank reads a different nanosecond, so the replicated 'computation'
    diverges across ranks (caught at runtime by ``--verify``)."""
    tiebreak = time.perf_counter_ns()
    mate = [(i + tiebreak) % n for i in range(n)]
    return comm.allgather(mate)


def set_ordered_sum(comm, weights):
    """BUG (SPMD603): float accumulation over a set — addition order differs
    across ranks, so the replicated totals disagree in the last ulps."""
    pool = set(weights)
    total = 0.0
    for w in pool:
        total += w
    return comm.allreduce(total)


# --------------------------------------------------------------------------
# backend-portability hazards (SPMD7xx) — the process-backend merge gate


_MATE_CACHE = {}


def global_mate_cache(comm, key, value):
    """BUG (SPMD701): stores into a module-level dict.  Under threads every
    rank sees the write (a data race that happens to work); under a process
    backend each rank mutates its own copy and the write vanishes."""
    _MATE_CACHE[key] = value
    return comm.barrier()


def lambda_payload(comm):
    """BUG (SPMD702): ships a lambda through bcast.  Thread ranks pass it by
    reference; a process backend must pickle it and fails at the boundary."""
    scorer = comm.bcast(lambda u, v: u ^ v, root=0)
    return scorer


def closure_launcher(spmd, coo):
    """BUG (SPMD703): hands a closure to the spmd() launcher.  Closures do
    not pickle, so the job cannot even start under a process backend."""

    def rank_main(comm):
        return coo if comm.rank == 0 else None

    return spmd(4, rank_main)
