#!/usr/bin/env python
"""Three seeded SPMD bugs — the end-to-end fixture for ``repro lint``.

Each function below contains exactly one classic SPMD mistake.  The linter
must report all three with file:line:

1. ``divergent_reduction``  — a collective entered only by rank 0 (SPMD101);
2. ``reserved_tag_exchange`` — a user tag inside the reserved collective tag
   space (SPMD201);
3. ``unseeded_shuffle``      — rank-local use of the unseeded global NumPy
   RNG (SPMD401).

Running any of these under the simulated runtime fails too (deadlock /
``CommError`` / nondeterministic results) — the point of the linter is to
catch them *before* the run:

    python -m repro lint examples/buggy_spmd.py
"""

import numpy as np


def divergent_reduction(comm):
    """BUG: only rank 0 enters the allreduce; every other rank skips it.

    Rank 0 blocks forever waiting for contributions that never come (the
    runtime converts that into DeadlockError; ``--verify`` mode reports the
    divergence precisely).
    """
    if comm.rank == 0:
        total = comm.allreduce(1)
    else:
        total = None
    return total


def reserved_tag_exchange(comm):
    """BUG: tag 2**30 collides with the runtime's collective tag space."""
    right = (comm.rank + 1) % comm.size
    comm.send(right, b"payload", tag=1 << 30)
    return comm.recv()


def unseeded_shuffle(comm, items):
    """BUG: the global NumPy RNG is unseeded, so every rank shuffles its
    replicated copy differently and the ranks silently disagree."""
    local = np.asarray(items).copy()
    np.random.shuffle(local)
    return comm.allgather(local)
