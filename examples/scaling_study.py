#!/usr/bin/env python
"""A custom strong-scaling study with the execution-driven simulator.

Shows the record-once / price-everywhere workflow behind the paper's
figures: run the real algorithm on your graph ONCE, then ask the α-β
machine model what the run would cost on any core count, thread mix, or
collective implementation — including configurations far beyond what a
laptop could execute (the paper's 12,288 cores take milliseconds to price).

Run:  python examples/scaling_study.py
"""

from repro.graphs import rmat, suite
from repro.perfmodel import Category
from repro.simulate import price, record, scaled_machine
from repro.simulate.report import breakdown_table, speedup_table


def main() -> None:
    # -- choose an input: the road_usa stand-in from the Table II suite -----
    coo, reduction = suite.load_scaled("road_usa", target_nnz=60_000)
    entry = suite.SUITE["road_usa"]
    print(f"input: road_usa stand-in {coo.nrows:,}x{coo.ncols:,} ({coo.nnz:,} nnz), "
          f"1/{reduction} of the paper's {entry.paper_nnz:,} nonzeros")

    # -- record one execution trace (the real algorithm runs here) ----------
    trace = record(coo, init="mindegree")
    print(f"recorded: {trace.stats.phases} phases, {trace.stats.iterations} iterations, "
          f"{len(trace.events)} priced events, MCM = {trace.cardinality:,}\n")

    # -- price the trace across core counts on the reduced-Edison model -----
    machine = scaled_machine(entry.paper_nnz / coo.nnz)
    sweepcfg = [(24, 6), (48, 12), (108, 12), (432, 12), (972, 12), (2028, 12), (12288, 12)]
    results = [price(trace, cores, threads, machine) for cores, threads in sweepcfg]

    print(speedup_table(results, "road_usa (model seconds)"))
    print()
    print(breakdown_table(results))

    # -- what-if: the paper's worst-case collectives instead of Cray's ------
    worst = [price(trace, c, t, machine, alltoall="pairwise", allgather="ring")
             for c, t in sweepcfg]
    print("\nwhat-if: pairwise/ring collectives (the paper's Section IV-B "
          "worst-case bounds) instead of log-latency algorithms:")
    for r_opt, r_worst in zip(results, worst):
        print(f"  {r_opt.cores:>6} cores: {r_opt.seconds:.3e}s -> {r_worst.seconds:.3e}s "
              f"({r_worst.seconds / r_opt.seconds:4.1f}x slower; INVERT share "
              f"{r_worst.breakdown.fraction(Category.INVERT):.0%})")


if __name__ == "__main__":
    main()
