"""Per-edge link degradation for the α-β model.

The base model charges every message the same (α, β) regardless of which
pair of ranks exchanges it.  Real interconnects degrade *asymmetrically*: a
flaky cable or a congested switch port inflates latency and bandwidth on
specific (source, destination) edges while the rest of the fabric is
healthy.  :class:`LinkModel` captures that: a base (α, β) pair plus a set
of degraded directed edges, each with its own latency/bandwidth inflation
factors.  ``-1`` in an edge endpoint is a wildcard ("any rank"), so one
entry can damage a whole rank's uplink (``src=2, dst=*``).

Two consumers share it:

* the runtime fault injector prices every *actually sent* message at
  ``factor·(aF·α + bF·β·words)`` into a deterministic per-rank model-time
  counter (the SLO latency numbers of the scenario suite);
* the execution-driven cost simulator inflates the (α, β) pair of each
  collective by the worst degraded edge among the participating ranks —
  the bulk-synchronous "slowest participant" rule the paper's Section IV-B
  model assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import EDISON

#: Edge endpoint wildcard: matches any rank.
ANY_RANK = -1


@dataclass(frozen=True)
class LinkModel:
    """Base (α, β) plus per-(src, dst)-edge inflation factors.

    ``degraded`` is a tuple of ``(src, dst, alpha_factor, beta_factor)``
    entries; endpoints may be :data:`ANY_RANK`.  Factors must be >= 1 —
    this models damage, not improvement.  Frozen and built from plain ints
    and floats so it pickles cheaply into forked process-backend ranks.
    """

    alpha: float = EDISON.alpha
    beta: float = EDISON.beta
    degraded: tuple[tuple[int, int, float, float], ...] = ()

    def __post_init__(self) -> None:
        for src, dst, fa, fb in self.degraded:
            if fa < 1.0 or fb < 1.0:
                raise ValueError(
                    f"link ({src},{dst}) inflation factors must be >= 1, "
                    f"got alpha={fa}, beta={fb}"
                )

    def factors(self, src: int, dst: int) -> tuple[float, float]:
        """(α-factor, β-factor) for one directed message src → dst.

        When several degraded entries match, the worst factor of each kind
        applies (overlapping damage does not cancel).
        """
        fa = fb = 1.0
        for s, d, ea, eb in self.degraded:
            if s in (ANY_RANK, src) and d in (ANY_RANK, dst):
                fa = max(fa, ea)
                fb = max(fb, eb)
        return fa, fb

    def message_seconds(self, src: int, dst: int, words: float) -> float:
        """Model seconds for one src → dst message of ``words`` words."""
        fa, fb = self.factors(src, dst)
        return fa * self.alpha + fb * self.beta * words

    def worst_factors(self, group=None) -> tuple[float, float]:
        """Worst (α-factor, β-factor) over edges inside ``group``.

        ``group`` is an iterable of participating ranks (``None`` = every
        rank).  A bulk-synchronous collective runs at the pace of its
        slowest participant, so its (α, β) inflate by the worst degraded
        edge with both endpoints in the communicator.  Wildcard endpoints
        match any group.
        """
        members = None if group is None else set(group)

        def _in(endpoint: int) -> bool:
            return endpoint == ANY_RANK or members is None or endpoint in members

        fa = fb = 1.0
        for s, d, ea, eb in self.degraded:
            if _in(s) and _in(d):
                fa = max(fa, ea)
                fb = max(fb, eb)
        return fa, fb

    @property
    def damaged(self) -> bool:
        return bool(self.degraded)


__all__ = ["ANY_RANK", "LinkModel"]
