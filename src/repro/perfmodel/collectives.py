"""α-β cost formulas for the collectives used by the matching algorithms.

Each function returns model seconds for ONE process's participation in the
collective (the bulk-synchronous step time, i.e. the slowest participant),
given the number of processes ``p``, the relevant word counts, and the
(α, β) pair the caller obtained from
:meth:`repro.perfmodel.machine.MachineSpec.comm_params`.

The formulas correspond 1:1 to the algorithms implemented by
:class:`repro.runtime.comm.Communicator` and to the costs assumed in
Section IV-B of the paper:

* SpMV "expand" = :func:`allgather_ring` over a grid column (√P processes);
* SpMV "fold" = :func:`alltoallv_pairwise` over a grid row (√P processes);
* INVERT = :func:`alltoallv_pairwise` over all P processes — its αP latency
  is the scaling bottleneck the paper highlights;
* PRUNE = :func:`allgather_ring` of the discovered augmenting-path roots;
* level-parallel augmentation = 3 all-to-alls per INVERT, 2 INVERTs/step:
  the paper's h(6αp + 4βk/p) cost is assembled in matching.augment;
* path-parallel augmentation = :func:`rma_op` per Get/Put/Fetch-and-op.
"""

from __future__ import annotations

import math


def _log2ceil(p: int) -> int:
    return max(1, math.ceil(math.log2(max(2, p)))) if p > 1 else 0


def degraded_params(
    alpha: float, beta: float, links=None, group=None
) -> tuple[float, float]:
    """(α, β) a collective over ``group`` sees under link degradation.

    ``links`` is a :class:`repro.perfmodel.links.LinkModel` (or ``None`` for
    a healthy fabric); ``group`` the participating ranks.  A bulk-synchronous
    collective finishes with its slowest participant, so the worst degraded
    edge inside the group inflates the whole collective's (α, β) — the
    pessimistic-but-honest reading of asymmetric topology damage.
    """
    if links is None:
        return alpha, beta
    fa, fb = links.worst_factors(group)
    return alpha * fa, beta * fb


def p2p(alpha: float, beta: float, words: float) -> float:
    """One point-to-point message of ``words`` 8-byte words."""
    return alpha + beta * words


def frame_flush(alpha: float, beta: float, frames: float, words: float) -> float:
    """One coalescer flush: ``frames`` framed buffers injected back to back.

    The aggregation engine charges α once per *frame* (the whole point of
    coalescing) and β per payload word — the per-message α of the batched
    logical messages is what the frame saves.
    """
    return alpha * frames + beta * words


def hub_star(p: int, alpha: float, beta: float, up_words: float, down_words: float) -> float:
    """Aggregated hub/star collective plan (``CollectiveConfig.aggregate``).

    Every non-hub rank sends ONE coalesced frame to the hub and receives
    ONE frame back; the bulk-synchronous step time is the hub's, which
    serializes 2(p-1) frames.  ``up_words``/``down_words`` are the total
    payload volumes through the hub in each direction.
    """
    if p <= 1:
        return 0.0
    return 2 * (p - 1) * alpha + beta * (up_words + down_words)


def barrier_star(p: int, alpha: float) -> float:
    """Aggregated barrier: one empty star wave, 2(p-1) frames at the hub."""
    return hub_star(p, alpha, 0.0, 0.0, 0.0)


def rma_op(alpha: float, beta: float, words: float = 1.0) -> float:
    """One one-sided Get/Put/Accumulate/Fetch-and-op of ``words`` words.

    The paper charges 3(α+β) for the three RMA calls of one path-parallel
    augmentation step; each call here is α + βw with w = 1.
    """
    return alpha + beta * words


def barrier_dissemination(p: int, alpha: float) -> float:
    """Dissemination barrier: ⌈log₂p⌉ latency-only rounds."""
    return alpha * _log2ceil(p)


def bcast_binomial(p: int, alpha: float, beta: float, words: float) -> float:
    """Binomial-tree broadcast of a ``words``-word payload."""
    return _log2ceil(p) * (alpha + beta * words)


def reduce_binomial(p: int, alpha: float, beta: float, words: float) -> float:
    """Binomial-tree reduction of ``words``-word payloads."""
    return _log2ceil(p) * (alpha + beta * words)


def bcast_linear(p: int, alpha: float, beta: float, words: float) -> float:
    """Naive root-sends-to-all broadcast: p-1 sequential sends at the root."""
    if p <= 1:
        return 0.0
    return (p - 1) * (alpha + beta * words)


def reduce_linear(p: int, alpha: float, beta: float, words: float) -> float:
    """Naive everyone-sends-to-root reduction: p-1 receives at the root."""
    if p <= 1:
        return 0.0
    return (p - 1) * (alpha + beta * words)


def allreduce_recursive_doubling(p: int, alpha: float, beta: float, words: float) -> float:
    """Recursive-doubling allreduce: log₂⌊p⌋ exchange rounds, plus one
    fold-in/fold-out round pair when p is not a power of two."""
    if p <= 1:
        return 0.0
    pof2 = 1 << (p.bit_length() - 1)
    rounds = pof2.bit_length() - 1
    if p != pof2:
        rounds += 2
    return rounds * (alpha + beta * words)


def allreduce_reduce_bcast(p: int, alpha: float, beta: float, words: float) -> float:
    """Reduce + broadcast (binomial trees back to back)."""
    return reduce_binomial(p, alpha, beta, words) + bcast_binomial(p, alpha, beta, words)


def allreduce(p: int, alpha: float, beta: float, words: float, algorithm: str = "reduce_bcast", links=None, group=None, aggregate: bool = False) -> float:
    """Dispatch on the modeled allreduce implementation."""
    alpha, beta = degraded_params(alpha, beta, links, group)
    if aggregate:
        # hub plan: p-1 one-frame ups of ``words`` each, p-1 result frames down
        return hub_star(p, alpha, beta, (p - 1) * words, (p - 1) * words)
    if algorithm == "doubling":
        return allreduce_recursive_doubling(p, alpha, beta, words)
    if algorithm == "reduce_bcast":
        return allreduce_reduce_bcast(p, alpha, beta, words)
    if algorithm == "linear":
        return reduce_linear(p, alpha, beta, words) + bcast_linear(p, alpha, beta, words)
    raise ValueError(f"unknown allreduce algorithm {algorithm!r}")


def gather_direct(p: int, alpha: float, beta: float, total_words: float) -> float:
    """Direct gather at the root: p-1 receives, ``total_words`` words in."""
    if p <= 1:
        return 0.0
    return alpha * (p - 1) + beta * total_words


def scatter_direct(p: int, alpha: float, beta: float, total_words: float) -> float:
    """Direct scatter from the root: p-1 sends, ``total_words`` words out."""
    if p <= 1:
        return 0.0
    return alpha * (p - 1) + beta * total_words


def allgather_ring(p: int, alpha: float, beta: float, total_words: float) -> float:
    """Ring allgather: p-1 steps; every process forwards (p-1)/p of the
    total payload.  This is the "ring algorithm" cost αp + βμ the paper
    cites for PRUNE's root gather."""
    if p <= 1:
        return 0.0
    return alpha * (p - 1) + beta * total_words * (p - 1) / p


def alltoallv_pairwise(p: int, alpha: float, beta: float, max_send_words: float) -> float:
    """Pairwise-exchange personalized all-to-all.

    ``max_send_words`` is the largest per-process total send volume; the
    pairwise schedule takes p-1 rounds of α plus the bandwidth term of the
    busiest process.  This is the worst-case cost the paper's Section IV-B
    analysis assumes (the αp INVERT latency).
    """
    if p <= 1:
        return 0.0
    return alpha * (p - 1) + beta * max_send_words


def alltoallv_bruck(p: int, alpha: float, beta: float, max_send_words: float) -> float:
    """Bruck-algorithm personalized all-to-all for small messages.

    ⌈log₂p⌉ rounds; each round forwards roughly half the aggregate payload,
    so the bandwidth term picks up a log₂p/2 factor while latency drops from
    p-1 to log₂p.  Production MPIs (including Cray's) switch to this regime
    for the small per-destination messages sparse INVERTs generate — it is
    what lets the paper's measured runs keep scaling past the point where
    the αp worst-case bound would have frozen them.
    """
    if p <= 1:
        return 0.0
    rounds = _log2ceil(p)
    # Per-destination metadata (the counts exchange) is folded into the
    # latency term: it is size-independent and behaves like α, not like
    # payload bandwidth.
    return alpha * rounds + beta * max_send_words * rounds / 2


def allgather_recursive_doubling(p: int, alpha: float, beta: float, total_words: float) -> float:
    """Recursive-doubling allgather: log₂p rounds, same βW total volume as
    the ring but logarithmic latency (the small-message regime)."""
    if p <= 1:
        return 0.0
    return alpha * _log2ceil(p) + beta * total_words * (p - 1) / p


def alltoallv(p: int, alpha: float, beta: float, max_send_words: float, algorithm: str = "bruck", links=None, group=None, aggregate: bool = False) -> float:
    """Dispatch on the modeled all-to-all implementation.

    ``aggregate`` prices the hub/star plan the runtime uses under
    ``CollectiveConfig.aggregate`` for the pairwise schedule; the Bruck
    schedule forwards foreign payloads and stays physically unaggregated,
    so the hub price only applies to ``algorithm="pairwise"``.
    """
    alpha, beta = degraded_params(alpha, beta, links, group)
    if aggregate and algorithm == "pairwise":
        # each rank ships its whole send row up in one frame; the hub
        # redistributes one personalized frame per rank
        vol = (p - 1) * max_send_words
        return hub_star(p, alpha, beta, vol, vol)
    if algorithm == "bruck":
        return alltoallv_bruck(p, alpha, beta, max_send_words)
    if algorithm == "pairwise":
        return alltoallv_pairwise(p, alpha, beta, max_send_words)
    raise ValueError(f"unknown alltoall algorithm {algorithm!r}")


def allgather(p: int, alpha: float, beta: float, total_words: float, algorithm: str = "doubling", links=None, group=None, aggregate: bool = False) -> float:
    """Dispatch on the modeled allgather implementation."""
    alpha, beta = degraded_params(alpha, beta, links, group)
    if aggregate:
        # ups carry each rank's slice (total/p each), downs the full vector
        return hub_star(
            p, alpha, beta,
            total_words * (p - 1) / p, (p - 1) * total_words,
        )
    if algorithm == "doubling":
        return allgather_recursive_doubling(p, alpha, beta, total_words)
    if algorithm == "ring":
        return allgather_ring(p, alpha, beta, total_words)
    raise ValueError(f"unknown allgather algorithm {algorithm!r}")


def spmv_expand(pr: int, alpha: float, beta: float, frontier_words: float) -> float:
    """The "expand" phase of 2D SpMV: allgather of the frontier slice along a
    processor column (√P participants, CombBLAS style)."""
    return allgather_ring(pr, alpha, beta, frontier_words)


def spmv_fold(pc: int, alpha: float, beta: float, max_send_words: float) -> float:
    """The "fold" phase of 2D SpMV: personalized all-to-all of partial
    products along a processor row."""
    return alltoallv_pairwise(pc, alpha, beta, max_send_words)


def auction_round(
    pr: int,
    pc: int,
    alpha: float,
    beta: float,
    bidder_words: float,
    partial_words: float,
    bid_words: float,
    price_words: float,
    *,
    links=None,
    aggregate: bool = False,
) -> float:
    """One synchronized bidding round of MWM-DIST on a pr × pc grid.

    The round's wire shape (see :mod:`repro.matching.mwm_dist`):

    1. bidder expand — allgather of the unmatched-bidder slices along a
       grid COLUMN (``pr`` participants, ``bidder_words`` total);
    2. partial fold — personalized all-to-all of per-block (best, second)
       partials along the column (``partial_words`` max per-rank send);
    3. bid resolution — grid-wide all-to-all delivering bids to the item
       owners (``pr*pc`` participants, ``bid_words`` max send; the mate
       notifications ride the same shape and are folded into it);
    4. price replication — allgather of accepted (item, price) pairs along
       a grid ROW (``pc`` participants, ``price_words`` total);
    5. quiescence — one 2-word allreduce over the whole grid.

    ``aggregate`` prices the hub-star coalesced variants, matching the
    runtime's superstep aggregation engine.
    """
    p = pr * pc
    return (
        allgather(pr, alpha, beta, bidder_words, algorithm="ring",
                  links=links, aggregate=aggregate)
        + alltoallv(p=pr, alpha=alpha, beta=beta, max_send_words=partial_words,
                    algorithm="pairwise", links=links, aggregate=aggregate)
        + alltoallv(p=p, alpha=alpha, beta=beta, max_send_words=bid_words,
                    algorithm="pairwise", links=links, aggregate=aggregate)
        + allgather(pc, alpha, beta, price_words, algorithm="ring",
                    links=links, aggregate=aggregate)
        + allreduce(p, alpha, beta, 2.0, links=links, aggregate=aggregate)
    )
