"""The α-β performance model used to price communication and computation.

Section IV-B of the paper analyses MCM-DIST in the standard latency/bandwidth
model: an algorithm that performs ``F`` arithmetic operations, sends ``S``
messages and moves ``W`` words takes ``T = F + αS + βW`` time, with α the
per-message latency and β the inverse bandwidth, both expressed relative to
one arithmetic operation.  This package turns that analysis into code:

* :class:`~repro.perfmodel.machine.MachineSpec` — the machine constants
  (per-edge-op time γ, α, β, node/socket topology) with an Edison-like
  default;
* :mod:`~repro.perfmodel.collectives` — the per-collective cost formulas
  matching the algorithms implemented in :mod:`repro.runtime.comm`;
* :class:`~repro.perfmodel.clock.BspClock` — a bulk-synchronous simulated
  clock that the execution-driven simulator advances superstep by superstep;
* :class:`~repro.perfmodel.timers.Breakdown` — per-kernel time attribution
  (SpMV / INVERT / PRUNE / SELECT+SET / AUGMENT / INIT), the quantity Fig. 5
  of the paper plots.

The model prices the *measured* work of a real execution (frontier sizes,
nonzeros touched, message volumes all come from running the actual
algorithm), so figures reproduce the paper's shapes even though absolute
times are model seconds rather than Cray wall-clock.
"""

from .machine import MachineSpec, EDISON, GridShape
from .clock import BspClock
from .links import ANY_RANK, LinkModel
from .timers import Breakdown, Category
from . import collectives

__all__ = [
    "ANY_RANK",
    "Breakdown",
    "BspClock",
    "Category",
    "EDISON",
    "GridShape",
    "LinkModel",
    "MachineSpec",
    "collectives",
]
