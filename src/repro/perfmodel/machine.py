"""Machine constants for the α-β model.

The default :data:`EDISON` spec models NERSC's Edison (Cray XC30, the
paper's platform): two 12-core Ivy Bridge sockets per node, Aries dragonfly
interconnect.  The constants are *effective* values for irregular sparse
graph kernels — memory-bound gather/scatter work, not peak flops — chosen so
that single-node BFS-like throughput and the paper's Fig. 9 gather times land
in the right decade.  Reproductions care about relative shape; any consistent
constant set preserves it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class GridShape:
    """A √P×√P process grid realized from a core allocation.

    ``nprocs = pr * pc`` MPI processes, each ``threads`` OpenMP threads wide.
    Only square grids are supported, as in the paper ("rectangular grids are
    not supported in CombBLAS").
    """

    pr: int
    pc: int
    threads: int

    @property
    def nprocs(self) -> int:
        return self.pr * self.pc

    @property
    def cores(self) -> int:
        return self.nprocs * self.threads

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.pr}x{self.pc} grid x {self.threads} threads ({self.cores} cores)"


@dataclass(frozen=True)
class MachineSpec:
    """Cost constants of the modeled machine.

    Attributes
    ----------
    gamma:
        Seconds per edge operation of an irregular sparse kernel running on
        one core (memory-bound effective rate, not peak flop rate).
    alpha:
        Inter-process message latency in seconds (MPI pingpong half
        round-trip at small message size).
    beta:
        Seconds per 8-byte word of inter-process bandwidth.
    alpha_intra / beta_intra:
        Same constants for processes sharing a node (shared-memory
        transport); used when a communicator fits inside one node.
    cores_per_node / cores_per_socket:
        Topology, used to decide which α/β apply and to place one process
        per socket in hybrid runs, as the paper does.
    """

    name: str
    gamma: float
    alpha: float
    beta: float
    alpha_intra: float
    beta_intra: float
    cores_per_node: int
    cores_per_socket: int

    # -- topology-aware parameter selection ---------------------------------

    def comm_params(self, nprocs: int, threads: int) -> tuple[float, float]:
        """(α, β) seen by a communicator of ``nprocs`` processes.

        If the whole communicator fits on one node the cheaper intra-node
        constants apply; otherwise the interconnect constants do.
        """
        if nprocs * threads <= self.cores_per_node:
            return self.alpha_intra, self.beta_intra
        return self.alpha, self.beta

    def compute_time(self, ops: float, threads: int = 1) -> float:
        """Time for ``ops`` edge-operations on one process of ``threads``
        threads.  Intra-process OpenMP parallelism is modeled as ideal for
        the memory-bound kernels (they scale with memory channels up to a
        socket, which is exactly how the paper deploys one process/socket)."""
        return ops * self.gamma / max(1, threads)

    # -- grid construction ----------------------------------------------------

    def square_grid(self, cores: int, threads: int = 1) -> GridShape:
        """Largest square process grid fitting in a ``cores`` allocation with
        ``threads`` threads per process.

        Mirrors the paper's setup: "When p cores are allocated ... we create
        a √(p/t) × √(p/t) process grid where t is the number of threads per
        process."  Non-square residues are left idle, as on the real machine.
        """
        if cores < threads:
            raise ValueError(f"cores ({cores}) < threads per process ({threads})")
        nprocs = cores // threads
        side = int(math.isqrt(nprocs))
        if side < 1:
            raise ValueError("allocation too small for a 1x1 grid")
        return GridShape(pr=side, pc=side, threads=threads)


#: Edison-like Cray XC30 constants (see module docstring for calibration).
EDISON = MachineSpec(
    name="edison-xc30",
    gamma=5e-9,          # 200 M edge-ops/s/core, memory-bound irregular kernel
    alpha=3e-6,          # Aries MPI latency
    beta=2.5e-10,        # ~4 GB/s effective per process pair (8 B / 2.5e-10 s)
    alpha_intra=6e-7,    # shared-memory transport
    beta_intra=5e-11,    # ~160 GB/s socket memory bandwidth
    cores_per_node=24,
    cores_per_socket=12,
)
