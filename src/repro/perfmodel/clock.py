"""Bulk-synchronous simulated clock.

The distributed algorithm is level-synchronous: every iteration is a
sequence of supersteps (local compute on all ranks, then a collective).
Under the BSP abstraction the step time is the *maximum* per-rank compute
time plus the collective's cost, and all rank clocks advance together — so a
single scalar clock suffices.  The execution-driven simulator calls
:meth:`BspClock.step` once per superstep with the measured per-rank maximum
work and the priced communication.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .machine import MachineSpec, GridShape
from .timers import Breakdown, Category


class MonotonicTicks:
    """Deterministic monotonic clock: every read advances one tick.

    The span tracer (:mod:`repro.runtime.trace`) stamps events with a
    callable clock.  Wall time (``time.perf_counter``) is the profiling
    default, but it makes traces differ run to run; this clock makes a
    rank's timestamps a pure function of its own sequence of trace calls,
    so simulated runs trace deterministically — two runs of the same
    program produce byte-identical trace files.  Each rank owns a private
    instance (ticks count that rank's events, there is no global order).
    """

    __slots__ = ("_ticks",)

    def __init__(self) -> None:
        # itertools.count increments atomically on CPython, so a foreign
        # thread (the executor's flush of a crashed rank) can read safely.
        self._ticks = itertools.count()

    def __call__(self) -> float:
        return float(next(self._ticks))


@dataclass
class BspClock:
    """Simulated time for one (machine, grid) configuration."""

    machine: MachineSpec
    grid: GridShape
    time: float = 0.0
    breakdown: Breakdown = field(default_factory=Breakdown)

    @property
    def alpha_beta(self) -> tuple[float, float]:
        """(α, β) for collectives spanning the whole grid."""
        return self.machine.comm_params(self.grid.nprocs, self.grid.threads)

    def alpha_beta_for(self, nprocs: int) -> tuple[float, float]:
        """(α, β) for a sub-communicator of ``nprocs`` processes (e.g. one
        grid row of √P processes)."""
        return self.machine.comm_params(nprocs, self.grid.threads)

    def step(self, category: Category, max_ops: float, comm_seconds: float) -> float:
        """Advance the clock by one superstep.

        Parameters
        ----------
        category:
            Which kernel the step belongs to (for the Fig. 5 breakdown).
        max_ops:
            Edge-operations performed by the busiest process in this step;
            converted to seconds with the machine's γ and divided by the
            process's thread count (ideal intra-socket OpenMP scaling).
        comm_seconds:
            Already-priced communication time of the step.

        Returns the step's duration in model seconds.
        """
        compute = self.machine.compute_time(max_ops, self.grid.threads)
        self.time += compute + comm_seconds
        self.breakdown.charge(category, compute, comm_seconds)
        return compute + comm_seconds

    def charge_compute(self, category: Category, max_ops: float) -> float:
        """Compute-only superstep."""
        return self.step(category, max_ops, 0.0)

    def charge_comm(self, category: Category, comm_seconds: float) -> float:
        """Communication-only superstep."""
        return self.step(category, 0.0, comm_seconds)
