"""Per-kernel time attribution (the quantity Fig. 5 of the paper plots).

Every superstep charged to the simulated clock carries a :class:`Category`;
the :class:`Breakdown` accumulates compute and communication seconds per
category so benches can print the paper's runtime-breakdown bars.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Category(str, enum.Enum):
    """Kernels the paper's breakdown distinguishes, plus INIT for the
    maximal-matching initialization."""

    SPMV = "SpMV"
    INVERT = "Invert"
    SELECT_SET = "Select+Set"
    PRUNE = "Prune"
    AUGMENT = "Augment"
    INIT = "MaximalInit"
    OTHER = "Other"


@dataclass
class Entry:
    compute: float = 0.0
    comm: float = 0.0
    steps: int = 0

    @property
    def total(self) -> float:
        return self.compute + self.comm


@dataclass
class Breakdown:
    """Accumulated model time per kernel category."""

    entries: dict[Category, Entry] = field(default_factory=dict)

    def charge(self, category: Category, compute: float, comm: float) -> None:
        e = self.entries.setdefault(category, Entry())
        e.compute += compute
        e.comm += comm
        e.steps += 1

    @property
    def total(self) -> float:
        return sum(e.total for e in self.entries.values())

    @property
    def total_compute(self) -> float:
        return sum(e.compute for e in self.entries.values())

    @property
    def total_comm(self) -> float:
        return sum(e.comm for e in self.entries.values())

    def fraction(self, category: Category) -> float:
        """Share of total time spent in ``category`` (0 when never charged)."""
        total = self.total
        if total == 0:
            return 0.0
        e = self.entries.get(category)
        return 0.0 if e is None else e.total / total

    def seconds(self, category: Category) -> float:
        e = self.entries.get(category)
        return 0.0 if e is None else e.total

    def merged(self, other: "Breakdown") -> "Breakdown":
        out = Breakdown()
        for src in (self, other):
            for cat, e in src.entries.items():
                acc = out.entries.setdefault(cat, Entry())
                acc.compute += e.compute
                acc.comm += e.comm
                acc.steps += e.steps
        return out

    def rows(self) -> list[tuple[str, float, float, float, int]]:
        """(category, compute s, comm s, total s, steps) sorted by total."""
        return sorted(
            (
                (cat.value, e.compute, e.comm, e.total, e.steps)
                for cat, e in self.entries.items()
            ),
            key=lambda r: -r[3],
        )

    def format_table(self) -> str:
        lines = [f"{'kernel':<12} {'compute(s)':>12} {'comm(s)':>12} {'total(s)':>12} {'share':>7} {'steps':>7}"]
        total = self.total or 1.0
        for name, comp, comm, tot, steps in self.rows():
            lines.append(
                f"{name:<12} {comp:>12.4g} {comm:>12.4g} {tot:>12.4g} "
                f"{tot / total:>6.1%} {steps:>7}"
            )
        lines.append(f"{'TOTAL':<12} {self.total_compute:>12.4g} {self.total_comm:>12.4g} {self.total:>12.4g}")
        return "\n".join(lines)
