"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``match``
    Compute a maximum matching of a MatrixMarket file or a generated graph
    and print statistics (optionally writing the mate vectors out).

``suite``
    List the Table II stand-in suite with paper-vs-stand-in statistics.

``scaling``
    Record one execution on an input and print the strong-scaling table of
    model times across core counts (the Fig. 4/6 workflow).

``spmd``
    Run the true SPMD MCM-DIST on a simulated process grid and report
    per-rank communication statistics.  ``--verify`` arms the dynamic
    correctness verifiers (collective-divergence and RMA-race detection).

``trace-report``
    Critical-path analysis of a trace recorded with ``spmd --trace``:
    dominant span per phase, per-rank wait fractions, skew, restarts.

``lint``
    Statically analyze Python sources for SPMD correctness hazards:
    collectives under rank-divergent control flow, reserved user tags,
    RMA accesses outside fence epochs, unseeded per-rank randomness.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _load_input(args) -> "object":
    from .graphs import rmat, suite as suite_mod
    from .sparse import mmio

    sources = [bool(args.mtx), bool(args.rmat), bool(args.suite)]
    if sum(sources) != 1:
        raise SystemExit("choose exactly one input: --mtx FILE | --rmat CLASS:SCALE | --suite NAME")
    if args.mtx:
        return mmio.read_mm(args.mtx)
    if args.rmat:
        kind, _, scale = args.rmat.partition(":")
        gen = {"g500": rmat.g500, "er": rmat.er, "ssca": rmat.ssca}.get(kind.lower())
        if gen is None or not scale.isdigit():
            raise SystemExit(f"--rmat expects g500:N, er:N or ssca:N, got {args.rmat!r}")
        return gen(scale=int(scale), seed=args.seed)
    coo, _red = suite_mod.load_scaled(args.suite, target_nnz=args.target_nnz, seed=args.seed)
    return coo


def _add_input_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mtx", help="MatrixMarket file")
    p.add_argument("--rmat", help="RMAT generator, e.g. g500:12")
    p.add_argument("--suite", help="Table II stand-in name, e.g. road_usa")
    p.add_argument("--target-nnz", type=int, default=60_000, help="suite stand-in size")
    p.add_argument("--seed", type=int, default=0)


def cmd_match(args) -> int:
    from . import CSC, maximum_matching, verify_maximum
    from .sparse import mmio

    coo = _load_input(args)
    mate_r, mate_c, stats = maximum_matching(
        coo, init=args.init if args.init != "none" else None,
        prune=not args.no_prune, seed=args.seed, direction=args.direction,
    )
    print(f"graph      : {coo.nrows:,} x {coo.ncols:,}, {coo.nnz:,} nonzeros")
    print(f"initializer: {args.init} -> {stats.initial_cardinality:,}")
    print(f"maximum    : {stats.final_cardinality:,}")
    print(f"phases     : {stats.phases}   iterations: {stats.iterations}")
    print(f"edges      : {stats.edges_traversed:,} traversed, "
          f"{stats.total_paths:,} augmenting paths")
    if args.certify:
        ok = verify_maximum(CSC.from_coo(coo), mate_r, mate_c)
        print(f"certificate: {'VERIFIED maximum (König)' if ok else 'FAILED'}")
        if not ok:
            return 1
    if args.out:
        np.savez(args.out, mate_r=mate_r, mate_c=mate_c)
        print(f"mate vectors written to {args.out}")
    return 0


def cmd_suite(args) -> int:
    from .graphs import suite as suite_mod

    print(f"{'name':<20} {'class':<28} {'paper rows':>12} {'paper nnz':>12}")
    for name in sorted(suite_mod.SUITE):
        e = suite_mod.SUITE[name]
        print(f"{name:<20} {e.kind:<28} {e.paper_rows:>12,} {e.paper_nnz:>12,}")
    return 0


def cmd_scaling(args) -> int:
    from .simulate import price, record, scaled_machine
    from .simulate.report import breakdown_table, speedup_table

    coo = _load_input(args)
    trace = record(coo, init=args.init if args.init != "none" else None,
                   prune=not args.no_prune, direction=args.direction)
    machine = scaled_machine(args.alpha_scale)
    cores = [int(c) for c in args.cores.split(",")]
    results = [price(trace, c, args.threads, machine) for c in cores]
    print(speedup_table(results, f"{coo.nrows:,}x{coo.ncols:,} nnz={coo.nnz:,}"))
    if args.breakdown:
        print()
        print(breakdown_table(results))
    return 0


def cmd_spmd(args) -> int:
    from .matching.mcm_dist import run_mcm_dist

    if args.scenario is not None:
        from .runtime.scenarios import SCENARIOS, run_scenario

        if args.scenario not in SCENARIOS:
            print(f"unknown scenario {args.scenario!r}; choose from "
                  f"{', '.join(sorted(SCENARIOS))}")
            return 2
        report = run_scenario(
            args.scenario,
            backend=args.backend,
            requests=args.scenario_requests,
        )
        import json

        if args.stats_json:
            with open(args.stats_json, "w") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"SLO report written to {args.stats_json}")
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0

    coo = _load_input(args)
    init = args.init if args.init in ("greedy", "mindegree") else "none"
    trace = args.trace_clock if args.trace else False
    weighted = args.objective == "weight"
    comm_config = None
    if args.aggregate == "off":
        from .runtime.comm import CollectiveConfig

        comm_config = CollectiveConfig(aggregate=False)
    recovery_kwargs = {}
    plan = None
    if args.chaos is not None:
        from .runtime import FaultPlan, FileCheckpointStore

        plan = FaultPlan.parse(args.chaos_plan, seed=args.chaos)
        store = FileCheckpointStore(args.checkpoint_dir) if args.checkpoint_dir else None
        recovery_kwargs = dict(
            faults=plan, checkpoint_every=args.checkpoint_every,
            checkpoint_store=store, max_restarts=args.max_restarts,
        )
    run_kwargs = dict(
        timeout=args.timeout, verify=args.verify, comm_config=comm_config,
        trace=trace, backend=args.backend,
    )
    if weighted:
        from .graphs.generators import edge_weights

        weights = edge_weights(coo, dist=args.weights, seed=args.seed,
                               bound=args.weight_bound)
        alg_kwargs = dict(epsilon=args.epsilon, cardinality_bias=args.cardinality_bias)
        if plan is not None:
            from .runtime.executor import run_mwm_dist_resilient

            mate_r, mate_c, stats = run_mwm_dist_resilient(
                coo, weights, args.pr, args.pc,
                **alg_kwargs, **recovery_kwargs, **run_kwargs,
            )
        else:
            from .matching.mwm_dist import run_mwm_dist

            mate_r, mate_c, stats = run_mwm_dist(
                coo, weights, args.pr, args.pc, **alg_kwargs, **run_kwargs,
            )
    elif plan is not None:
        from .runtime import run_mcm_dist_resilient

        mate_r, mate_c, stats = run_mcm_dist_resilient(
            coo, args.pr, args.pc,
            init=init, direction=args.direction,
            **recovery_kwargs, **run_kwargs,
        )
    else:
        mate_r, mate_c, stats = run_mcm_dist(
            coo, args.pr, args.pc,
            init=init, direction=args.direction, **run_kwargs,
        )
    if plan is not None:
        print(f"chaos seed {args.chaos}, plan [{plan.describe()}]: "
              f"{stats.restarts} restart(s), {stats.phases_replayed} phase(s) "
              f"replayed, {stats.checkpoint_words:,} checkpoint words")
    card = int((mate_r != -1).sum())
    if weighted:
        print(f"grid {args.pr}x{args.pc}: matched {card:,} pairs, weight "
              f"{stats.matching_weight:.6g} (scale {stats.weight_scale:.6g}, "
              f"epsilon {stats.epsilon}), {stats.phases} epsilon-phase(s), "
              f"{stats.auction_rounds} auction round(s)")
        print(f"auction    : {stats.bids_placed:,} bids, "
              f"{stats.price_updates:,} price updates "
              f"({stats.price_words:,} replication words), words "
              f"expand/fold/total = {stats.expand_words:,}/{stats.fold_words:,}/"
              f"{stats.total_words:,}")
    else:
        print(f"grid {args.pr}x{args.pc}: matched {card:,} "
              f"(init {stats.initial_cardinality:,}), {stats.phases} phases, "
              f"{stats.iterations} iterations, augment level/path = "
              f"{stats.augment_level_calls}/{stats.augment_path_calls}")
        print(f"direction {args.direction}: top-down/bottom-up steps = "
              f"{stats.topdown_steps}/{stats.bottomup_steps}, "
              f"{stats.edges_examined:,} edges examined, words "
              f"expand/fold/total = {stats.expand_words:,}/{stats.fold_words:,}/"
              f"{stats.total_words:,}")
    if args.verify:
        vs = stats.verify_summary or {}
        print(f"verification: PASSED — {vs.get('collectives_checked', 0):,} "
              f"collective entries cross-checked, "
              f"{vs.get('rma_ops_checked', 0):,} one-sided accesses "
              f"race-checked, no divergence or races")
    if args.trace:
        stats.trace.dump(args.trace)
        print(f"trace written to {args.trace} "
              f"({stats.trace.nspans:,} spans, {stats.trace.nranks} rank(s); "
              f"load it in Perfetto / chrome://tracing, or run "
              f"'repro trace-report {args.trace}')")
    if args.stats_json:
        import dataclasses
        import json

        def _jsonable(x):
            if isinstance(x, np.integer):
                return int(x)
            if isinstance(x, np.floating):
                return float(x)
            if isinstance(x, np.ndarray):
                return x.tolist()
            raise TypeError(f"not JSON-serializable: {type(x).__name__}")

        payload = dataclasses.asdict(stats)
        payload["cardinality"] = card
        payload["grid"] = {"pr": args.pr, "pc": args.pc}
        payload["objective"] = args.objective
        with open(args.stats_json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, default=_jsonable)
            fh.write("\n")
        print(f"stats written to {args.stats_json}")
    return 0


def cmd_trace_report(args) -> int:
    from .runtime.trace import DistTrace
    from .simulate.critpath import analyze, format_report

    rep = analyze(DistTrace.load(args.file), top=args.top)
    if args.format == "json":
        import json

        print(json.dumps(rep, indent=2, sort_keys=True))
    else:
        print(format_report(rep))
    return 0


def cmd_lint(args) -> int:
    from .analysis import run_lint

    return run_lint(args.paths, exclude=args.exclude, fmt=args.format,
                    baseline=args.baseline,
                    write_baseline_to=args.write_baseline,
                    output=args.output)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed-memory maximum cardinality matching (IPDPS'16 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("match", help="compute a maximum matching")
    _add_input_args(p)
    p.add_argument("--init", default="mindegree",
                   choices=["greedy", "karp-sipser", "mindegree", "none"])
    p.add_argument("--direction", default="topdown", choices=["topdown", "bottomup", "auto"])
    p.add_argument("--no-prune", action="store_true")
    p.add_argument("--certify", action="store_true", help="verify the König certificate")
    p.add_argument("--out", help="write mate vectors to an .npz file")
    p.set_defaults(fn=cmd_match)

    p = sub.add_parser("suite", help="list the Table II stand-in suite")
    p.set_defaults(fn=cmd_suite)

    p = sub.add_parser("scaling", help="strong-scaling study (model times)")
    _add_input_args(p)
    p.add_argument("--init", default="mindegree",
                   choices=["greedy", "karp-sipser", "mindegree", "none"])
    p.add_argument("--direction", default="topdown", choices=["topdown", "bottomup", "auto"])
    p.add_argument("--no-prune", action="store_true")
    p.add_argument("--cores", default="24,48,108,432,972,2028")
    p.add_argument("--threads", type=int, default=12)
    p.add_argument("--alpha-scale", type=float, default=1000.0,
                   help="latency reduction matching the input's scale-down")
    p.add_argument("--breakdown", action="store_true")
    p.set_defaults(fn=cmd_scaling)

    p = sub.add_parser(
        "spmd",
        help="run MCM-DIST (or MWM-DIST with --objective weight) on a "
             "simulated process grid",
    )
    _add_input_args(p)
    p.add_argument("--pr", type=int, default=2)
    p.add_argument("--pc", type=int, default=2)
    p.add_argument("--init", default="greedy", choices=["greedy", "mindegree", "none"])
    p.add_argument("--direction", default="topdown", choices=["topdown", "bottomup", "auto"])
    p.add_argument("--objective", default="cardinality",
                   choices=["cardinality", "weight"],
                   help="'cardinality' runs MCM-DIST (default); 'weight' runs "
                        "the epsilon-scaled distributed auction (MWM-DIST) "
                        "over generated edge weights")
    p.add_argument("--epsilon", type=float, default=0.05,
                   help="auction optimality slack: the matching weight is "
                        ">= (1-epsilon) * optimum (objective=weight only)")
    p.add_argument("--weights", default="uniform",
                   choices=["uniform", "skewed", "intbounded"],
                   help="edge-weight distribution, hashed deterministically "
                        "from (edge, --seed) (objective=weight only)")
    p.add_argument("--weight-bound", type=int, default=16, metavar="B",
                   help="integer bound for --weights intbounded")
    p.add_argument("--cardinality-bias", type=float, default=0.0, metavar="BIAS",
                   help="shift real edges by BIAS*scale against staying "
                        "unmatched; >= 1 chases cardinality at equal weight")
    p.add_argument("--backend", default=None, choices=["thread", "process"],
                   help="transport: 'thread' simulates ranks as threads in "
                        "one interpreter (default), 'process' forks one OS "
                        "process per rank with shared-memory rings "
                        "(default: $REPRO_SPMD_BACKEND or thread)")
    p.add_argument("--aggregate", default="on", choices=["on", "off"],
                   help="superstep message coalescing: 'on' (default) batches "
                        "every payload toward a peer into one framed buffer "
                        "per flush point, 'off' ships each logical message "
                        "individually (mate vectors and the logical ledger "
                        "are bit-identical either way)")
    p.add_argument("--verify", action="store_true",
                   help="arm the dynamic verifiers: cross-check every collective "
                        "entry across ranks and race-check every RMA access")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="deadlock window for blocking runtime calls "
                        "(default: $REPRO_SPMD_TIMEOUT or 120)")
    p.add_argument("--chaos", type=int, default=None, metavar="SEED",
                   help="arm seeded fault injection and checkpointed recovery; "
                        "the seed makes the injected fault sequence reproducible")
    p.add_argument("--chaos-plan", default="crash:rank=any,at=phase:every",
                   metavar="PLAN",
                   help="fault plan: ';'-separated crash:rank=R|group=G,"
                        "at=KIND:N / transient:p=P / delay:p=P / "
                        "straggler:factor=F / link:src=A,dst=B,alpha=F / "
                        "disrupt:p=P clauses (see DESIGN.md)")
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="replay a named adversity scenario (baseline, "
                        "straggler, degraded-links, correlated-crash, "
                        "disrupted) and print its SLO report instead of a "
                        "single run; ignores the input-graph flags")
    p.add_argument("--scenario-requests", type=int, default=None, metavar="N",
                   help="override the scenario's request-stream length")
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="snapshot the matching every N completed phases")
    p.add_argument("--max-restarts", type=int, default=8, metavar="M",
                   help="give up after M fabric rebuilds")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="persist checkpoints as .npz files (default: in-memory)")
    p.add_argument("--stats-json", default=None, metavar="PATH",
                   help="dump the run's DistStats (phases, word counters, "
                        "per-algorithm collective counters, recovery counters) "
                        "as JSON")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="record per-rank spans and write a Chrome trace-event "
                        "JSON (open in Perfetto, or feed to 'repro trace-report')")
    p.add_argument("--trace-clock", default="wall", choices=["wall", "ticks"],
                   help="trace timestamp source: wall time, or deterministic "
                        "per-rank event ticks (byte-identical across runs)")
    p.set_defaults(fn=cmd_spmd)

    p = sub.add_parser("trace-report",
                       help="critical-path analysis of a recorded trace")
    p.add_argument("file", help="Chrome trace-event JSON from 'spmd --trace'")
    p.add_argument("--top", type=int, default=5,
                   help="spans to list per ranking (default 5)")
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.set_defaults(fn=cmd_trace_report)

    p = sub.add_parser("lint", help="static SPMD correctness analysis")
    p.add_argument("paths", nargs="+", help=".py files or directory trees")
    p.add_argument("--exclude", action="append", default=[], metavar="PATH",
                   help="file or directory to skip (repeatable)")
    p.add_argument("--format", default="text", choices=["text", "json", "sarif"])
    p.add_argument("--baseline", metavar="FILE",
                   help="JSON baseline of tolerated findings "
                        "(matched by path/code/function, not line)")
    p.add_argument("--write-baseline", metavar="FILE", dest="write_baseline",
                   help="record the current findings as a new baseline and exit 0")
    p.add_argument("--output", metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.set_defaults(fn=cmd_lint)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
