"""Graph generators and the Table II input suite.

* :mod:`~repro.graphs.rmat` — the Recursive MATrix generator with the
  paper's exact seed parameters (§V-B): G500 (a=.57, b=c=.19, d=.05),
  SSCA (a=.6, b=c=d=.4/3) and ER (a=b=c=d=.25); a scale-n matrix is 2ⁿ×2ⁿ
  with edgefactor 32 (G500/ER) or 16 (SSCA) nonzeros per row on average.
* :mod:`~repro.graphs.generators` — structural generators (meshes,
  triangulations, banded, KKT blocks, overlapping cliques, boundary maps)
  used to build stand-ins for the real-matrix suite.
* :mod:`~repro.graphs.suite` — the 13-matrix Table II registry: each entry
  pairs the paper's matrix (name, dimensions, nonzeros) with a structurally
  matched synthetic generator at a configurable reduction factor.
"""

from . import generators, rmat, suite
from .rmat import er, g500, rmat_graph, ssca
from .suite import SUITE, SuiteEntry, load

__all__ = [
    "SUITE",
    "SuiteEntry",
    "er",
    "g500",
    "generators",
    "load",
    "rmat",
    "rmat_graph",
    "ssca",
    "suite",
]
