"""The Table II input suite: structurally matched stand-ins.

The paper evaluates on 13 large matrices from the University of Florida
(SuiteSparse) collection.  Without network access those files are
unavailable, so each entry here pairs the paper's matrix with a synthetic
generator of the same *structural class* (see DESIGN.md §2 for the
substitution argument).  ``load(name, reduction)`` produces the stand-in at
1/reduction of the paper's scale — benches default to reductions that keep
pure-Python runtimes in seconds while preserving each matrix's qualitative
behaviour (diameter, skew, deficiency).

Every entry records the paper's dimensions/nonzeros so EXPERIMENTS.md can
print paper-vs-reproduction rows for Table II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..sparse.coo import COO
from . import generators as G
from . import rmat


@dataclass(frozen=True)
class SuiteEntry:
    """One Table II matrix: paper identity + stand-in generator.

    ``paper_rows``/``paper_cols``/``paper_nnz`` are the original matrix's
    statistics (from the SuiteSparse collection); ``make(reduction, seed)``
    builds the synthetic stand-in with roughly ``paper_nnz / reduction``
    nonzeros.
    """

    name: str
    kind: str
    paper_rows: int
    paper_cols: int
    paper_nnz: int
    description: str
    _builder: Callable[[int, int], COO]

    def make(self, reduction: int = 4096, seed: int = 0) -> COO:
        """Instantiate the stand-in at the given reduction factor."""
        if reduction < 1:
            raise ValueError("reduction must be >= 1")
        return self._builder(reduction, seed)

    def target_n(self, reduction: int) -> int:
        """Stand-in vertex count: paper rows scaled down by reduction."""
        return max(64, int(self.paper_rows // reduction))


def _grid_side(n: int) -> int:
    return max(8, int(math.isqrt(n)))


def _entry_builders() -> list[SuiteEntry]:
    def road(paper_rows):
        def build(reduction, seed, _pr=paper_rows):
            n = max(64, _pr // reduction)
            # bound BFS depth: a reduced square mesh would shrink frontier
            # width (= parallelism) by the full reduction factor
            h = min(_grid_side(n), 96)
            w = max(8, n // h)
            return G.mesh_rect(w, h, diagonals=False, drop=0.12, seed=seed)
        return build

    def powerlaw(paper_rows, edgefactor):
        def build(reduction, seed, _pr=paper_rows, _ef=edgefactor):
            scale = max(6, int(math.log2(max(64, _pr // reduction))))
            return rmat.rmat_graph(scale, _ef, rmat.G500_PARAMS, seed)
        return build

    entries = [
        SuiteEntry(
            "amazon-2008", "power-law (co-purchase)", 735_323, 735_323, 5_158_388,
            "Skewed-degree product network; the paper's hardest-to-scale "
            "small matrix (Fig. 4 left, Fig. 5).",
            powerlaw(735_323, 7),
        ),
        SuiteEntry(
            "cit-Patents", "power-law (citations)", 3_774_768, 3_774_768, 16_518_948,
            "Patent citation network; skewed, shallow BFS.",
            powerlaw(3_774_768, 4),
        ),
        SuiteEntry(
            "GL7d19", "rectangular boundary map", 1_911_130, 1_955_309, 37_322_725,
            "Simplicial boundary map: very rectangular, uniform small "
            "column degree, large structural deficiency.",
            lambda reduction, seed: G.boundary_map(
                max(64, 1_911_130 // reduction),
                max(64, 1_955_309 // reduction),
                per_col=19, seed=seed,
            ),
        ),
        SuiteEntry(
            "wikipedia-20070206", "power-law (hyperlinks)", 3_566_907, 3_566_907, 45_030_389,
            "Web-like link graph; the one input where Karp-Sipser's "
            "better approximation ratio pays off (Fig. 3).",
            powerlaw(3_566_907, 12),
        ),
        SuiteEntry(
            "cage15", "banded (DNA walk)", 5_154_859, 5_154_859, 99_199_551,
            "Electrophoresis transition matrix: near-banded, ~19 nnz/row, "
            "well-conditioned for matching.",
            lambda reduction, seed: G.banded(
                max(64, 5_154_859 // reduction), bandwidth=40, per_row=18, seed=seed,
            ),
        ),
        SuiteEntry(
            "delaunay_n24", "planar triangulation", 16_777_216, 16_777_216, 100_663_202,
            "Delaunay triangulation: degree ~6, moderate diameter; the "
            "paper's best scaler (18x at 2048 cores).",
            lambda reduction, seed: G.triangulation_like(
                max(64, 16_777_216 // reduction), seed=seed,
            ),
        ),
        SuiteEntry(
            "europe_osm", "road network", 50_912_018, 50_912_018, 108_109_320,
            "OpenStreetMap Europe: degree ≤ 4 (mostly 2), enormous diameter "
            "-> many BFS iterations per phase.",
            road(50_912_018),
        ),
        SuiteEntry(
            "hugetrace-00020", "long-diameter mesh", 16_002_413, 16_002_413, 47_997_626,
            "Frame sequence of 2D adaptive triangulations; near-planar.",
            lambda reduction, seed: G.mesh_rect(
                max(8, (n := max(64, 16_002_413 // reduction)) // min(_grid_side(n), 128)),
                min(_grid_side(max(64, 16_002_413 // reduction)), 128),
                diagonals=True, drop=0.25, seed=seed,
            ),
        ),
        SuiteEntry(
            "hugebubbles-00020", "long-diameter mesh", 21_198_119, 21_198_119, 63_580_358,
            "2D bubble mesh; like hugetrace at larger scale.",
            lambda reduction, seed: G.mesh_rect(
                max(8, (n := max(64, 21_198_119 // reduction)) // min(_grid_side(n), 128)),
                min(_grid_side(max(64, 21_198_119 // reduction)), 128),
                diagonals=True, drop=0.2, seed=seed + 1,
            ),
        ),
        SuiteEntry(
            "road_usa", "road network", 23_947_347, 23_947_347, 57_708_624,
            "USA road network; the paper's breakdown exemplar (Fig. 5: "
            "SpMV 80%→60% of runtime from 48 to 2048 cores).",
            road(23_947_347),
        ),
        SuiteEntry(
            "nlpkkt200", "KKT optimization block", 16_240_000, 16_240_000, 448_225_632,
            "3D PDE-constrained optimization KKT system; the paper's "
            "largest real input (used in the Fig. 9 gather argument).",
            lambda reduction, seed: G.kkt_block(
                max(64, int(16_240_000 // reduction * 2 / 3)), seed=seed,
            ),
        ),
        SuiteEntry(
            "kron_g500-logn21", "Graph500 Kronecker", 2_097_152, 2_097_152, 182_081_864,
            "Kronecker (RMAT) Graph 500 matrix at scale 21.",
            powerlaw(2_097_152, 32),
        ),
        SuiteEntry(
            "coPapersDBLP", "overlapping cliques", 540_486, 540_486, 30_491_458,
            "Co-authorship: dense overlapping cliques, high average degree.",
            lambda reduction, seed: G.clique_overlap(
                max(64, 540_486 // max(1, reduction // 8)),
                clique_size=24, seed=seed,
            ),
        ),
    ]
    return entries


#: The 13 Table II matrices, keyed by the paper's names.
SUITE: dict[str, SuiteEntry] = {e.name: e for e in _entry_builders()}

#: The four "representative" matrices the paper uses in Figs. 3, 5 and 7.
REPRESENTATIVE = ["amazon-2008", "wikipedia-20070206", "road_usa", "delaunay_n24"]

#: Small/large split used by Fig. 4's two panels.
SMALL = ["amazon-2008", "cit-Patents", "GL7d19", "wikipedia-20070206", "coPapersDBLP", "cage15"]
LARGE = [n for n in SUITE if n not in SMALL]


def load(name: str, reduction: int = 4096, seed: int = 0) -> COO:
    """Build the stand-in for a Table II matrix by paper name."""
    try:
        entry = SUITE[name]
    except KeyError:
        raise KeyError(f"unknown suite matrix {name!r}; choose from {sorted(SUITE)}") from None
    return entry.make(reduction, seed)


def load_scaled(name: str, target_nnz: int = 50_000, seed: int = 0) -> tuple[COO, int]:
    """Build a stand-in sized to roughly ``target_nnz`` nonzeros.

    Returns ``(matrix, reduction_used)``; benches use the reduction to
    scale the machine model's latency consistently (see
    ``simulate.costsim.scaled_machine``).
    """
    entry = SUITE[name]
    reduction = max(1, entry.paper_nnz // max(1, target_nnz))
    return entry.make(reduction, seed), reduction
