"""RMAT: the Recursive MATrix generator (Chakrabarti, Zhan & Faloutsos).

Section V-B of the paper: "we used RMAT ... to generate three different
classes of synthetic matrices: (a) G500 matrices representing graphs with
skewed degree distributions from the Graph 500 benchmark, (b) SSCA matrices
from the HPCS SSCA#2 benchmark, and (c) ER matrices representing Erdős-Rényi
random graphs" with seed parameters

=======  =====  ==========  =====
class      a      b = c       d
=======  =====  ==========  =====
G500      .57      .19       .05
SSCA      .60     .4/3       .4/3
ER        .25      .25       .25
=======  =====  ==========  =====

A scale-n matrix is 2ⁿ × 2ⁿ; average nonzeros per row are 32 for G500/ER
and 16 for SSCA (so scale-30 G500 has ~1 G rows and ~32 G nonzeros, the
paper's largest instance).

Implementation: fully vectorized — all ``m`` edges descend the recursion's
``scale`` levels simultaneously, each level adding one bit to the row and
column indices according to a quadrant draw.  Duplicate edges are removed
(matching Graph 500 practice), so realized nnz is slightly below
``edgefactor · 2ⁿ`` for skewed parameter sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.coo import COO


@dataclass(frozen=True)
class RmatParams:
    """Quadrant probabilities of one RMAT recursion level."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        total = self.a + self.b + self.c + self.d
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"RMAT parameters must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise ValueError("RMAT parameters must be non-negative")


#: Graph 500 parameters (skewed power-law-like degree distribution).
G500_PARAMS = RmatParams(a=0.57, b=0.19, c=0.19, d=0.05)
#: HPCS SSCA#2 parameters (mildly skewed).
SSCA_PARAMS = RmatParams(a=0.6, b=0.4 / 3, c=0.4 / 3, d=0.4 / 3)
#: Erdős-Rényi (uniform) parameters.
ER_PARAMS = RmatParams(a=0.25, b=0.25, c=0.25, d=0.25)


def rmat_graph(
    scale: int,
    edgefactor: int,
    params: RmatParams,
    seed: int = 0,
    *,
    permute: bool = True,
) -> COO:
    """Generate a scale-``scale`` RMAT pattern matrix (2^scale × 2^scale).

    ``edgefactor`` is the average nonzeros per row *before* deduplication.
    ``permute=True`` applies the random vertex relabeling the paper uses for
    load balance (it also removes RMAT's locality artifacts).
    """
    if scale < 0 or scale > 30:
        raise ValueError(f"scale must be in [0, 30], got {scale}")
    n = 1 << scale
    m = int(edgefactor) * n
    rng = np.random.default_rng(seed)
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    # Quadrant thresholds: [a, a+b, a+b+c, 1] — one uniform draw per
    # (edge, level) decides (row bit, col bit).
    t1, t2, t3 = params.a, params.a + params.b, params.a + params.b + params.c
    for _level in range(scale):
        u = rng.random(m)
        row_bit = (u >= t2).astype(np.int64)              # quadrants c, d
        col_bit = ((u >= t1) & (u < t2) | (u >= t3)).astype(np.int64)  # b, d
        rows = (rows << 1) | row_bit
        cols = (cols << 1) | col_bit
    coo = COO(n, n, rows, cols)  # dedup happens here
    if permute:
        from ..sparse.permute import randomly_permuted

        coo, _, _ = randomly_permuted(coo, rng)
    return coo


def g500(scale: int, seed: int = 0, edgefactor: int = 32, **kw) -> COO:
    """Graph 500 RMAT matrix at the paper's default edgefactor 32."""
    return rmat_graph(scale, edgefactor, G500_PARAMS, seed, **kw)


def ssca(scale: int, seed: int = 0, edgefactor: int = 16, **kw) -> COO:
    """SSCA#2 RMAT matrix at the paper's default edgefactor 16."""
    return rmat_graph(scale, edgefactor, SSCA_PARAMS, seed, **kw)


def er(scale: int, seed: int = 0, edgefactor: int = 32, **kw) -> COO:
    """Erdős-Rényi RMAT matrix at the paper's default edgefactor 32."""
    return rmat_graph(scale, edgefactor, ER_PARAMS, seed, **kw)
