"""Structural graph generators for the Table II stand-in suite.

Each generator produces a square (or deliberately rectangular) pattern
matrix mimicking one structural class of the paper's real inputs.  The
features that matter for matching behaviour — degree distribution, diameter
(which sets the number of BFS iterations per phase), rectangularity, and
structural deficiency (how many vertices a maximal matching leaves
unmatched) — are matched per class; see ``suite.py`` for the mapping.
"""

from __future__ import annotations

import numpy as np

from ..sparse.coo import COO


def _sym(n: int, rows: np.ndarray, cols: np.ndarray) -> COO:
    """Symmetrize an edge list (road networks etc. are symmetric patterns)."""
    return COO(n, n, np.concatenate([rows, cols]), np.concatenate([cols, rows]))


def mesh_rect(w: int, h: int, diagonals: bool = False, drop: float = 0.0, seed: int = 0) -> COO:
    """w×h grid mesh (road-network-like) with independently chosen width
    and depth.

    Scaled-down road stand-ins use a bounded ``h`` (BFS depth ∝ h) and put
    the remaining vertices into ``w`` (frontier width ∝ w): a reduced
    square mesh would otherwise shrink the frontier *width* — the source of
    parallelism — by the full reduction factor, misrepresenting how the
    24M-vertex originals behave on hundreds of ranks.
    """
    n = w * h
    idx = np.arange(n, dtype=np.int64)
    x, y = idx % w, idx // w
    rows_list = []
    cols_list = []
    right = idx[x < w - 1]
    rows_list.append(right); cols_list.append(right + 1)
    down = idx[y < h - 1]
    rows_list.append(down); cols_list.append(down + w)
    if diagonals:
        diag = idx[(x < w - 1) & (y < h - 1)]
        rows_list.append(diag); cols_list.append(diag + w + 1)
        anti = idx[(x > 0) & (y < h - 1)]
        rows_list.append(anti); cols_list.append(anti + w - 1)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    if drop > 0:
        rng = np.random.default_rng(seed)
        keep = rng.random(rows.size) >= drop
        rows, cols = rows[keep], cols[keep]
    return _sym(n, rows, cols)


def mesh2d(k: int, diagonals: bool = False, drop: float = 0.0, seed: int = 0) -> COO:
    """k×k grid mesh (road-network-like: degree ≤ 4 (or 8), huge diameter).

    ``drop`` randomly removes a fraction of edges, which creates
    degree-deficient pockets like real road networks' dead ends.
    """
    n = k * k
    idx = np.arange(n, dtype=np.int64)
    x, y = idx % k, idx // k
    rows_list = []
    cols_list = []
    right = idx[x < k - 1]
    rows_list.append(right); cols_list.append(right + 1)
    down = idx[y < k - 1]
    rows_list.append(down); cols_list.append(down + k)
    if diagonals:
        diag = idx[(x < k - 1) & (y < k - 1)]
        rows_list.append(diag); cols_list.append(diag + k + 1)
        anti = idx[(x > 0) & (y < k - 1)]
        rows_list.append(anti); cols_list.append(anti + k - 1)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    if drop > 0:
        rng = np.random.default_rng(seed)
        keep = rng.random(rows.size) >= drop
        rows, cols = rows[keep], cols[keep]
    # self loops on the diagonal, as adjacency matrices of UF graphs often have
    return _sym(n, rows, cols)


def triangulation_like(n: int, seed: int = 0) -> COO:
    """Delaunay-like graph: ~6 neighbors per vertex, planar-ish locality.

    Random points on a unit square, each connected to its ~3 nearest
    neighbors within a bucket grid (symmetrized → average degree ≈ 6, the
    Delaunay average), preserving the short-local-edge structure that gives
    delaunay_n24 its moderate diameter.
    """
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    k = max(1, int(np.sqrt(n)))
    bucket = (np.minimum((pts[:, 0] * k).astype(np.int64), k - 1) * k
              + np.minimum((pts[:, 1] * k).astype(np.int64), k - 1))
    order = np.argsort(bucket, kind="stable")
    # connect each point to the next few points in bucket order (locality)
    src = order[:-1]
    rows = [src, order[:-2], order[:-3] if n > 3 else np.empty(0, np.int64)]
    cols = [order[1:], order[2:], order[3:] if n > 3 else np.empty(0, np.int64)]
    return _sym(n, np.concatenate(rows), np.concatenate(cols))


def banded(n: int, bandwidth: int, per_row: int, seed: int = 0, diag_frac: float = 0.7) -> COO:
    """Banded random pattern (cage-like: DNA-walk matrices concentrate
    nonzeros near the diagonal with a few per row).

    Only ``diag_frac`` of the diagonal is explicitly present, leaving a
    sliver of structural slack for the maximal-matching stage to miss (as
    the large cage matrices do at full scale).
    """
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n, dtype=np.int64), per_row)
    offs = rng.integers(-bandwidth, bandwidth + 1, rows.size)
    cols = np.clip(rows + offs, 0, n - 1)
    diag = np.flatnonzero(rng.random(n) < diag_frac).astype(np.int64)
    return COO(n, n, np.concatenate([rows, diag]), np.concatenate([cols, diag]))


def kkt_block(base: int, seed: int = 0) -> COO:
    """KKT-structured pattern like nlpkkt:  [[H  Aᵀ],[A  0]] with H a banded
    SPD-like block (3D mesh stencil) and A a wide constraint block.

    The zero (2,2) block makes the matrix structurally harder: its rows can
    only match through A, producing the deficiency pattern of optimization
    KKT systems.
    """
    rng = np.random.default_rng(seed)
    nh = base              # H block: nh x nh
    na = base // 2         # A block: na x nh
    n = nh + na
    # H: tridiagonal + mesh-like offsets
    i = np.arange(nh, dtype=np.int64)
    h_rows = [i, i[:-1], i[:-1]]
    h_cols = [i, i[:-1] + 1, i[:-1]]
    off = max(1, int(np.sqrt(nh)))
    h_rows.append(i[:-off]); h_cols.append(i[:-off] + off)
    hr = np.concatenate(h_rows); hc = np.concatenate(h_cols)
    # A: each constraint row touches ~3 random H columns
    a_rows = np.repeat(np.arange(na, dtype=np.int64), 3) + nh
    a_cols = rng.integers(0, nh, a_rows.size)
    # assemble symmetrically: H and Hᵀ, A and Aᵀ
    rows = np.concatenate([hr, hc, a_rows, a_cols])
    cols = np.concatenate([hc, hr, a_cols, a_rows])
    return COO(n, n, rows, cols)


def clique_overlap(n: int, clique_size: int, seed: int = 0) -> COO:
    """Union of overlapping cliques (coPapersDBLP-like co-authorship):
    consecutive windows of ``clique_size`` vertices form cliques, with the
    windows overlapping by half."""
    step = max(1, clique_size // 2)
    starts = np.arange(0, max(1, n - clique_size + 1), step, dtype=np.int64)
    local_i, local_j = np.triu_indices(clique_size, k=1)
    rows = (starts[:, None] + local_i[None, :]).ravel()
    cols = (starts[:, None] + local_j[None, :]).ravel()
    keep = (rows < n) & (cols < n)
    return _sym(n, rows[keep], cols[keep])


def boundary_map(n1: int, n2: int, per_col: int, seed: int = 0, cluster_frac: float = 0.25) -> COO:
    """Very rectangular fixed-column-degree pattern (GL7d19-like simplicial
    boundary map: every column has ``per_col`` nonzeros at quasi-random
    rows).

    A ``cluster_frac`` share of the columns draws its rows from a small
    window (n1/16 rows): boundary maps repeat low-dimensional faces, which
    is what gives GL7d19 its large structural deficiency.
    """
    rng = np.random.default_rng(seed)
    cols = np.repeat(np.arange(n2, dtype=np.int64), per_col)
    rows = rng.integers(0, n1, cols.size)
    # cluster whole columns (a clustered column's entire support sits in the
    # window, so an excess of such columns is structurally unmatchable)
    clustered_cols = rng.random(n2) < cluster_frac
    window = max(2, n1 // 16)
    mask = clustered_cols[cols]
    rows[mask] = rng.integers(0, window, int(mask.sum()))
    return COO(n1, n2, rows, cols)


def bipartite_er(n1: int, n2: int, nnz: int, seed: int = 0) -> COO:
    """Plain Erdős-Rényi bipartite pattern with ~nnz nonzeros."""
    rng = np.random.default_rng(seed)
    return COO(n1, n2, rng.integers(0, n1, nnz), rng.integers(0, n2, nnz))


def long_path(n: int) -> COO:
    """A single path graph — worst case for level-synchronous algorithms
    (diameter n); used by tests and the augmentation ablation."""
    i = np.arange(n - 1, dtype=np.int64)
    return _sym(n, i, i + 1)


# ---------------------------------------------------------------------------
# edge weights (the maximum-WEIGHT matching workload)
# ---------------------------------------------------------------------------

#: Weight distributions ``edge_weights`` understands.  "uniform" draws
#: dyadic rationals in (0, 1]; "skewed" a power-law-ish ladder of 16
#: magnitude levels 2^0 .. 2^-15 (rare heavy edges, many exact ties per
#: level); "intbounded" integers in [1, bound] (dense ties — the auction's
#: worst case for bidding wars).
WEIGHT_DISTS = ("uniform", "skewed", "intbounded")


def _mix64(z: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64 in, uint64 out)."""
    z = (z + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def edge_weights(
    coo: COO, dist: str = "uniform", seed: int = 0, *, bound: int = 16
) -> np.ndarray:
    """Deterministic per-EDGE weights for a pattern matrix.

    The weight of edge (i, j) is a pure hash of ``(i, j, seed)``, so it is
    independent of the storage order of the COO arrays and of any later
    partitioning — every rank of a distributed run derives the same weight
    for the same edge without communication.  All weights are positive and
    exact dyadic floats (binary fractions), so cross-platform float
    comparisons in the auction are reproducible bit for bit.
    """
    if dist not in WEIGHT_DISTS:
        raise ValueError(f"unknown weight distribution {dist!r}; choose from {WEIGHT_DISTS}")
    with np.errstate(over="ignore"):
        h = _mix64(
            coo.rows.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
            + coo.cols.astype(np.uint64)
            + np.uint64(seed) * np.uint64(0xD1B54A32D192ED03)
        )
    # 20 high bits -> dyadic uniform u in [0, 1) with exactly 2^20 levels
    u = (h >> np.uint64(44)).astype(np.float64) / float(1 << 20)
    if dist == "uniform":
        return u + 1.0 / (1 << 20)  # shift into (0, 1]
    if dist == "skewed":
        return np.ldexp(1.0, -(np.floor(u * 16.0)).astype(np.int64))
    return np.floor(u * bound) + 1.0  # "intbounded": integers 1..bound as floats
