"""Critical-path analysis of a merged span trace.

The tracer (:mod:`repro.runtime.trace`) records *what happened when* on
every rank; this module answers the questions the paper's per-phase
breakdowns (Figs. 4–9) are built from: which rank bounded each phase, what
that rank actually spent the time on, how much of every rank's timeline was
blocking, and how skewed the grid was.  It is a pure consumer — it replays
a :class:`~repro.runtime.trace.DistTrace` (in memory or reloaded from a
Chrome trace-event file) and never touches the runtime.

``analyze`` returns a plain JSON-ready dict; ``format_report`` renders it
as the text table behind ``repro trace-report``.

Definitions
-----------

self time
    A span's duration minus its main-lane children's durations — the time
    attributable to the span itself.  Nesting is reconstructed from the
    tracer's begin/end sequence numbers, so tick-clock traces (where a
    parent and child can share a timestamp) resolve exactly.

phase segment
    A top-level algorithm span: ``init:*`` or one ``phase`` span per
    matching phase (cat ``phase``).  Spans outside any segment (epilogue
    collectives, fault markers) aggregate under ``(outside)``.

critical path
    Within a phase, on the rank whose segment ran longest: the chain of
    largest-child descents from the segment span to a leaf — i.e. the
    nesting stack that bounded the phase (``phase > bfs_iter > spmv >
    fold``).

skew
    ``(max - min) / max`` over the per-rank durations of one segment; 0
    means perfectly balanced ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..runtime.trace import MAIN_TRACK, DistTrace, Span


@dataclass
class _Node:
    """One span plus its main-lane children (nesting forest node)."""

    span: Span
    children: "list[_Node]" = field(default_factory=list)

    @property
    def self_time(self) -> float:
        return max(0.0, self.span.dur - sum(c.span.dur for c in self.children))


def _build_forest(spans: list[Span]) -> list[_Node]:
    """Reconstruct one rank's main-lane nesting from begin/end sequence
    numbers (span i encloses span j iff bseq_i < bseq_j and eseq_j <
    eseq_i — exact even when a tick clock hands out equal timestamps)."""
    main = sorted((sp for sp in spans if sp.track == MAIN_TRACK),
                  key=lambda sp: sp.bseq)
    roots: list[_Node] = []
    stack: list[_Node] = []
    for sp in main:
        node = _Node(sp)
        while stack and stack[-1].span.eseq < sp.bseq:
            stack.pop()
        if stack:
            stack[-1].children.append(node)
        else:
            roots.append(node)
        stack.append(node)
    return roots


def _walk(nodes: list[_Node]) -> Iterator[_Node]:
    for n in nodes:
        yield n
        yield from _walk(n.children)


def _segment_label(span: Span) -> "str | None":
    """Phase-segment label for a top-level algorithm span, else None."""
    if span.cat != "phase":
        return None
    if span.name == "phase":
        return f"phase {span.args.get('phase', '?')}"
    if span.name.startswith("init:"):
        return span.name
    return None


def _critical_chain(node: _Node) -> list[str]:
    """Largest-child descent from ``node`` to a leaf."""
    chain = [node.span.name]
    while node.children:
        node = max(node.children, key=lambda c: c.span.dur)
        chain.append(node.span.name)
    return chain


def analyze(trace: DistTrace, top: int = 5) -> dict:
    """Replay ``trace`` into a JSON-ready report dict (see module doc)."""
    forests = [_build_forest(trace.spans[r]) for r in range(trace.nranks)]
    idle = trace.meta.get("idle_wait", [0.0] * trace.nranks)

    # -- per-rank wait-vs-work ----------------------------------------------
    ranks = []
    for r in range(trace.nranks):
        spans_r = trace.spans[r]
        t0 = min((sp.ts for sp in spans_r), default=0.0)
        t1 = max((sp.t1 for sp in spans_r), default=0.0)
        makespan = max(0.0, t1 - t0)
        wait = sum(sp.wait for sp in spans_r) + float(
            idle[r] if r < len(idle) else 0.0
        )
        ranks.append({
            "rank": r,
            "makespan": makespan,
            "wait": wait,
            "wait_fraction": (wait / makespan) if makespan > 0 else 0.0,
        })

    # -- phase segments ------------------------------------------------------
    # label -> {rank -> segment node}; labels keep first-encounter order
    segments: dict[str, dict[int, _Node]] = {}
    for r, forest in enumerate(forests):
        for node in _walk(forest):
            label = _segment_label(node.span)
            if label is not None:
                segments.setdefault(label, {})[r] = node

    phases = []
    for label, by_rank in segments.items():
        durs = {r: n.span.dur for r, n in by_rank.items()}
        crit_rank = max(durs, key=lambda r: (durs[r], -r))
        dmax, dmin = max(durs.values()), min(durs.values())
        crit = by_rank[crit_rank]
        # self time per span name on the critical rank, inside the segment
        by_name: dict[str, dict[str, float]] = {}
        for node in _walk([crit]):
            acc = by_name.setdefault(
                node.span.name, {"self": 0.0, "count": 0, "wait": 0.0}
            )
            acc["self"] += node.self_time
            acc["count"] += 1
            acc["wait"] += node.span.wait
        ranked = sorted(
            ({"name": name, **acc} for name, acc in by_name.items()),
            key=lambda d: -d["self"],
        )
        phases.append({
            "label": label,
            "dur_max": dmax,
            "dur_min": dmin,
            "critical_rank": crit_rank,
            "ranks_present": len(by_rank),
            "skew": ((dmax - dmin) / dmax) if dmax > 0 else 0.0,
            "critical_path": _critical_chain(crit),
            "dominant": ranked[0] if ranked else None,
            "top": ranked[:top],
        })

    # -- job-wide top spans by self time ------------------------------------
    totals: dict[str, dict[str, float]] = {}
    for forest in forests:
        for node in _walk(forest):
            acc = totals.setdefault(
                node.span.name, {"self": 0.0, "count": 0, "wait": 0.0}
            )
            acc["self"] += node.self_time
            acc["count"] += 1
            acc["wait"] += node.span.wait
    top_spans = sorted(
        ({"name": name, **acc} for name, acc in totals.items()),
        key=lambda d: -d["self"],
    )[:top]

    # fault:delay spans are injected-sleep markers (retry backoff, straggler
    # stalls) — there can be thousands, so they aggregate into an adversity
    # rollup instead of flooding the per-event fault listing
    faults = sorted(
        ({"name": sp.name, "rank": sp.rank, "ts": sp.ts, "args": dict(sp.args)}
         for sp in trace.all_spans()
         if sp.cat == "fault" and sp.name != "fault:delay"),
        key=lambda d: (d["ts"], d["rank"]),
    )
    adversity: dict[str, dict] = {}
    for sp in trace.all_spans():
        if sp.cat != "fault" or sp.name != "fault:delay":
            continue
        category = str(sp.args.get("category", "?"))
        acc = adversity.setdefault(
            category, {"seconds": 0.0, "count": 0, "by_rank": {}}
        )
        seconds = float(sp.args.get("seconds", sp.dur))
        acc["seconds"] += seconds
        acc["count"] += 1
        rank = int(sp.args.get("rank", sp.rank))
        acc["by_rank"][rank] = acc["by_rank"].get(rank, 0.0) + seconds

    return {
        "nranks": trace.nranks,
        "clock": trace.meta.get("clock", "?"),
        "nspans": trace.nspans,
        "makespan": trace.max_ts() - trace.min_ts(),
        "restarts": len(trace.meta.get("attempts", [])),
        "ranks": ranks,
        "phases": phases,
        "top_spans": top_spans,
        "faults": faults,
        "adversity": adversity,
        "comm_words_by_op": trace.comm_words_by_op(),
    }


def _fmt_t(v: float) -> str:
    return f"{v:,.1f}"


def format_report(rep: dict) -> str:
    """Render an :func:`analyze` dict as the ``repro trace-report`` text."""
    out = [
        f"trace: {rep['nranks']} rank(s), {rep['nspans']:,} spans, "
        f"clock={rep['clock']}, makespan={_fmt_t(rep['makespan'])}"
        + (f", {rep['restarts']} restart(s)" if rep["restarts"] else "")
    ]

    out.append("")
    out.append(f"{'rank':>4} {'makespan':>12} {'wait':>12} {'wait%':>6}")
    for r in rep["ranks"]:
        out.append(
            f"{r['rank']:>4} {_fmt_t(r['makespan']):>12} "
            f"{_fmt_t(r['wait']):>12} {r['wait_fraction'] * 100:>5.1f}%"
        )

    out.append("")
    out.append(f"{'phase':<14} {'dur(max)':>10} {'rank':>4} {'skew':>6}  "
               f"critical path (dominant self time)")
    for ph in rep["phases"]:
        dom = ph["dominant"]
        dom_txt = (f"{dom['name']} self={_fmt_t(dom['self'])}"
                   if dom else "-")
        out.append(
            f"{ph['label']:<14} {_fmt_t(ph['dur_max']):>10} "
            f"{ph['critical_rank']:>4} {ph['skew'] * 100:>5.1f}%  "
            f"{' > '.join(ph['critical_path'])}  [{dom_txt}]"
        )

    out.append("")
    out.append("top spans by self time:")
    for t in rep["top_spans"]:
        out.append(
            f"  {t['name']:<18} self={_fmt_t(t['self']):>12} "
            f"calls={t['count']:>6} wait={_fmt_t(t['wait'])}"
        )

    if rep["faults"]:
        out.append("")
        out.append("faults / restarts:")
        for f in rep["faults"]:
            out.append(f"  t={_fmt_t(f['ts'])} rank {f['rank']}: {f['name']}")

    adversity = rep.get("adversity") or {}
    if adversity:
        out.append("")
        out.append("injected adversity time:")
        for category, acc in sorted(adversity.items()):
            worst = max(acc["by_rank"], key=lambda r: acc["by_rank"][r])
            out.append(
                f"  {category:<16} {acc['seconds']:>10.4f}s over "
                f"{acc['count']:>6} sleep(s); worst rank {worst} "
                f"({acc['by_rank'][worst]:.4f}s)"
            )

    words = rep["comm_words_by_op"]
    if words:
        out.append("")
        out.append("traced words by op: " + ", ".join(
            f"{op}={w:,}" for op, w in sorted(words.items())
        ))
    return "\n".join(out)


def report_trace(trace: DistTrace, top: int = 5) -> str:
    """One-call text report (convenience for ``run_mcm_dist(trace=...)``)."""
    return format_report(analyze(trace, top=top))


__all__ = ["analyze", "format_report", "report_trace"]
