"""Formatting helpers: the tables the benches print, shaped like the paper's
figures, plus CSV emission for downstream plotting."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from ..perfmodel import Category
from .costsim import SimResult


def speedup_table(results: Sequence[SimResult], label: str = "") -> str:
    """Fig. 4/6-style table: cores, model seconds, speedup vs the first row."""
    if not results:
        return "(no results)"
    base = results[0].seconds
    lines = [f"# strong scaling {label}".rstrip(),
             f"{'cores':>8} {'grid':>12} {'time(s)':>12} {'speedup':>9}"]
    for r in results:
        grid = f"{r.grid.pr}x{r.grid.pc}x{r.threads}t"
        lines.append(
            f"{r.cores:>8} {grid:>12} {r.seconds:>12.4g} {base / r.seconds:>9.2f}"
        )
    return "\n".join(lines)


BREAKDOWN_CATS = [Category.SPMV, Category.INVERT, Category.SELECT_SET,
                  Category.PRUNE, Category.AUGMENT, Category.INIT, Category.OTHER]


def breakdown_table(results: Sequence[SimResult], label: str = "") -> str:
    """Fig. 5-style table: per-kernel share of total time at each core count."""
    header = f"{'cores':>8} " + " ".join(f"{c.value:>11}" for c in BREAKDOWN_CATS) + f" {'total(s)':>10}"
    lines = [f"# runtime breakdown {label}".rstrip(), header]
    for r in results:
        shares = " ".join(f"{r.breakdown.fraction(c):>10.1%}" for c in BREAKDOWN_CATS)
        lines.append(f"{r.cores:>8} {shares} {r.seconds:>10.4g}")
    return "\n".join(lines)


def write_csv(path: "str | Path", rows: Iterable[dict], fieldnames: Sequence[str]) -> Path:
    """Write experiment rows as CSV next to the bench outputs."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(fieldnames))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def results_to_rows(name: str, results: Sequence[SimResult]) -> list[dict]:
    """Flatten SimResults for CSV emission."""
    if not results:
        return []
    base = results[0].seconds
    rows = []
    for r in results:
        row = {
            "matrix": name,
            "cores": r.cores,
            "threads": r.threads,
            "nprocs": r.nprocs,
            "seconds": r.seconds,
            "speedup": base / r.seconds,
            "cardinality": r.cardinality,
        }
        for c in BREAKDOWN_CATS:
            row[f"t_{c.value}"] = r.breakdown.seconds(c)
        rows.append(row)
    return rows


CSV_FIELDS = ["matrix", "cores", "threads", "nprocs", "seconds", "speedup", "cardinality"] + [
    f"t_{c.value}" for c in BREAKDOWN_CATS
]
