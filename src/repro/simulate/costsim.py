"""Record-and-price performance simulation of MCM-DIST (see package doc).

The correspondence between recorded events and the paper's cost analysis
(Section IV-B):

===============  ============================================================
event             priced as
===============  ============================================================
spmv              expand: ring allgather of the frontier slice over the √P
                  ranks of each grid column (max over columns); compute: the
                  busiest block's touched edges / t threads; fold: pairwise
                  all-to-all of distinct (block, row) partial winners over
                  the √P ranks of a grid row
spmv_bottomup     same expand/fold collectives (sparse (idx, root) pairs
                  travel either way) + an allgather of the unvisited row
                  ids along each grid row; compute: the busiest block's
                  frontier-hitting edges
select_set        3 local passes over the busiest rank's frontier slice
invert_paths      all-to-all over ALL P ranks (αP latency — the paper's
                  strong-scaling bottleneck), volume 2 words/entry
prune             ring allgather of the μ new roots over P ranks + local
                  ψ/P·log μ filter
next_frontier     the second INVERT per iteration: all-to-all over P ranks
iteration_end     frontier-emptiness allreduce
augment           per phase, k and per-path walk lengths were recorded; the
                  k < 2p² switch is applied AT PRICE TIME (it depends on P):
                  level-parallel costs h·(6α(P-1) + 4β·k_l/P), path-parallel
                  costs 3(α+β)·(busiest rank's walk steps)
init rounds       explore priced like SpMV, resolve/update as all-to-alls,
                  one allreduce per round (two for mindegree's global min)
===============  ============================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..matching.maximal_rounds import (
    MaximalHooks,
    greedy_rounds,
    karp_sipser_rounds,
    mindegree_rounds,
)
from ..matching.msbfs import MatchingStats, MsBfsHooks, ms_bfs_mcm
from ..perfmodel import EDISON, BspClock, Category, MachineSpec, collectives as C
from ..perfmodel.links import LinkModel
from ..perfmodel.machine import GridShape
from ..sparse.coo import COO
from ..sparse.csc import CSC
from ..sparse.semiring import SR_MIN_PARENT, Semiring
from ..sparse.spvec import NULL

# ---------------------------------------------------------------------------
# recording
# ---------------------------------------------------------------------------


@dataclass
class Trace:
    """One measured execution of initializer + MCM on a graph."""

    n1: int
    n2: int
    nnz: int
    init_algo: "str | None"
    events: list[tuple[str, dict[str, Any]]] = field(default_factory=list)
    stats: "MatchingStats | None" = None
    mate_r: "np.ndarray | None" = None
    mate_c: "np.ndarray | None" = None

    @property
    def cardinality(self) -> int:
        return int((self.mate_r != NULL).sum()) if self.mate_r is not None else 0

    def add(self, kind: str, **payload: Any) -> None:
        self.events.append((kind, payload))


class _RecordingMsBfs(MsBfsHooks):
    def __init__(self, trace: Trace) -> None:
        self.t = trace

    def on_spmv(self, fc, cand_rows, cand_cols, fr):
        self.t.add(
            "spmv",
            fc_idx=fc.idx.copy(),
            cand_rows=cand_rows.copy(),
            cand_cols=cand_cols.copy(),
            fr_rows=fr.idx.copy(),
        )

    def on_spmv_bottomup(self, fc, cand_rows, cand_cols, fr, unvisited):
        self.t.add(
            "spmv_bottomup",
            fc_idx=fc.idx.copy(),
            cand_rows=cand_rows.copy(),
            cand_cols=cand_cols.copy(),
            fr_rows=fr.idx.copy(),
            unvisited=unvisited.copy(),
        )

    def on_select_set(self, fr, ufr):
        self.t.add("select_set", fr_rows=fr.idx.copy(), ufr_rows=ufr.idx.copy())

    def on_invert_paths(self, ufr):
        self.t.add("invert_paths", rows=ufr.idx.copy(), roots=ufr.root.copy())

    def on_prune(self, fr, new_path_roots, kept):
        self.t.add("prune", fr_rows=fr.idx.copy(), mu=int(new_path_roots.size))

    def on_next_frontier(self, fr, fc_cols):
        self.t.add("next_frontier", fr_rows=fr.idx.copy(), cols=fc_cols.copy())

    def on_iteration_end(self, iteration):
        self.t.add("iteration_end")

    def on_phase_end(self, paths_found, iters):
        self.t.add("phase_end")


class _RecordingMaximal(MaximalHooks):
    def __init__(self, trace: Trace) -> None:
        self.t = trace

    def on_explore(self, algo, cand_rows, cand_cols):
        self.t.add("init_explore", cand_rows=cand_rows.copy(), cand_cols=cand_cols.copy())

    def on_resolve(self, algo, proposals):
        self.t.add("init_resolve", proposals=int(proposals))

    def on_update(self, algo, rows_touched, cols_touched):
        self.t.add("init_update", rows=rows_touched.copy(), cols=cols_touched.copy())

    def on_round_end(self, algo, matched, idx):
        self.t.add("init_round_end", algo=algo)


_INIT_ROUNDS = {
    "greedy": greedy_rounds,
    "karp-sipser": karp_sipser_rounds,
    "mindegree": mindegree_rounds,
}


def record(
    coo: COO,
    *,
    init: "str | None" = "mindegree",
    prune: bool = True,
    semiring: Semiring = SR_MIN_PARENT,
    seed: int = 0,
    permute: bool = True,
    direction: str = "topdown",
) -> Trace:
    """Execute initializer + Algorithm 2 once, recording the cost trace.

    ``permute=True`` applies the paper's random vertex relabeling
    (Section IV-A, "to balance load across processors") before recording;
    without it, structured inputs like meshes pile their nonzeros onto the
    grid's diagonal blocks and the busiest-rank accounting reflects that
    imbalance rather than the algorithm.

    Augmentation is executed path-parallel so the trace captures every
    path's walk length; the level/path decision is re-made per target P at
    price time (results are identical either way).
    """
    if permute:
        from ..sparse.permute import randomly_permuted

        coo, _rp, _cp = randomly_permuted(coo, np.random.default_rng(seed + 0x5EED))
    a = CSC.from_coo(coo)
    trace = Trace(coo.nrows, coo.ncols, coo.nnz, init)
    if init is not None:
        fn = _INIT_ROUNDS.get(init)
        if fn is None:
            raise ValueError(f"unknown init {init!r}; choose from {sorted(_INIT_ROUNDS)}")
        res = fn(a, hooks=_RecordingMaximal(trace))
        mate_r, mate_c = res.mate_r, res.mate_c
    else:
        mate_r = mate_c = None
    rng = np.random.default_rng(seed)
    mate_r, mate_c, stats = ms_bfs_mcm(
        a, mate_r, mate_c,
        semiring=semiring, rng=rng, prune=prune,
        hooks=_RecordingMsBfs(trace),
        augment_mode="path",
        direction=direction,
    )
    trace.stats = stats
    trace.mate_r, trace.mate_c = mate_r, mate_c
    return trace


# ---------------------------------------------------------------------------
# pricing
# ---------------------------------------------------------------------------


@dataclass
class SimResult:
    """Model time of one (graph, machine, cores, threads) configuration."""

    cores: int
    threads: int
    grid: GridShape
    seconds: float
    breakdown: "Any"  # perfmodel.Breakdown
    cardinality: int
    trace: Trace

    @property
    def nprocs(self) -> int:
        return self.grid.nprocs

    def seconds_of(self, category: Category) -> float:
        return self.breakdown.seconds(category)


class _Pricer:
    """Prices one trace on one grid configuration."""

    def __init__(
        self,
        trace: Trace,
        machine: MachineSpec,
        grid: GridShape,
        alltoall: str = "bruck",
        allgather: str = "doubling",
        allreduce: str = "doubling",
        links: "LinkModel | None" = None,
        aggregate: bool = False,
    ) -> None:
        self.t = trace
        self.m = machine
        self.g = grid
        self.alg_a2a = alltoall
        self.alg_ag = allgather
        self.alg_ar = allreduce
        # price the runtime's hub/star frame plans (α per frame, β per
        # word) instead of the round-based schedules
        self.aggregate = aggregate
        self.clock = BspClock(machine, grid)
        pr, pc = grid.pr, grid.pc
        self.P = pr * pc
        # matrix block sizes
        self.bs_r = max(1, -(-trace.n1 // pr))
        self.bs_c = max(1, -(-trace.n2 // pc))
        # vector sub-chunk sizes (row vector: pr blocks x pc subs; col: pc x pr)
        self.sub_r = max(1, -(-self.bs_r // pc))
        self.sub_c = max(1, -(-self.bs_c // pr))
        # communicator parameter sets
        self.ab_P = self.clock.alpha_beta_for(self.P)
        self.ab_pr = self.clock.alpha_beta_for(pr)
        self.ab_pc = self.clock.alpha_beta_for(pc)
        if links is not None and links.damaged:
            # degraded links inflate each communicator's (α, β) by its worst
            # member edge (slowest-participant rule).  Column communicators
            # have pr members (ranks j, j+pc, ...), row communicators pc
            # members (ranks i*pc .. i*pc+pc-1); the worst group of each
            # shape governs, since the BSP step waits for every subgrid.
            self.ab_P = C.degraded_params(*self.ab_P, links, range(self.P))
            col_groups = [range(j, self.P, pc) for j in range(pc)]
            row_groups = [range(i * pc, (i + 1) * pc) for i in range(pr)]
            self.ab_pr = max(
                (C.degraded_params(*self.ab_pr, links, g) for g in col_groups),
                key=lambda ab: ab[0] + ab[1],
            )
            self.ab_pc = max(
                (C.degraded_params(*self.ab_pc, links, g) for g in row_groups),
                key=lambda ab: ab[0] + ab[1],
            )

    # -- rank maps (vectorized) -------------------------------------------------

    def row_block(self, rows: np.ndarray) -> np.ndarray:
        return np.minimum(rows // self.bs_r, self.g.pr - 1)

    def col_block(self, cols: np.ndarray) -> np.ndarray:
        return np.minimum(cols // self.bs_c, self.g.pc - 1)

    def row_vec_rank(self, rows: np.ndarray) -> np.ndarray:
        block = self.row_block(rows)
        sub = np.minimum((rows - block * self.bs_r) // self.sub_r, self.g.pc - 1)
        return block * self.g.pc + sub

    def col_vec_rank(self, cols: np.ndarray) -> np.ndarray:
        block = self.col_block(cols)
        sub = np.minimum((cols - block * self.bs_c) // self.sub_c, self.g.pr - 1)
        return sub * self.g.pc + block

    def edge_rank(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.row_block(rows) * self.g.pc + self.col_block(cols)

    @staticmethod
    def _busiest(ranks: np.ndarray, nranks: int) -> int:
        if ranks.size == 0:
            return 0
        return int(np.bincount(ranks, minlength=nranks).max())

    # -- event pricing --------------------------------------------------------------

    def spmv_like(self, category: Category, fc_idx, cand_rows, cand_cols) -> None:
        # expand: busiest grid column's frontier slice, allgathered over pr ranks
        vol_expand = 2 * self._busiest(self.col_block(fc_idx), self.g.pc)
        comm = C.allgather(self.g.pr, *self.ab_pr, vol_expand, self.alg_ag, aggregate=self.aggregate)
        # local compute: busiest block's touched edges (+ its reduction)
        ops = self._busiest(self.edge_rank(cand_rows, cand_cols), self.P)
        # fold: distinct (block, row) partial winners per block, all-to-all
        # over the pc ranks of a grid row
        if cand_rows.size:
            key = self.edge_rank(cand_rows, cand_cols) * np.int64(self.t.n1 + 1) + cand_rows
            u = np.unique(key)
            vol_fold = 3 * self._busiest((u // np.int64(self.t.n1 + 1)).astype(np.int64), self.P)
            ops += self._busiest(self.row_vec_rank(u % np.int64(self.t.n1 + 1)), self.P)
        else:
            vol_fold = 0
        comm += C.alltoallv(self.g.pc, *self.ab_pc, vol_fold, self.alg_a2a, aggregate=self.aggregate)
        self.clock.step(category, ops, comm)

    def price(self) -> BspClock:
        t, g = self.t, self.g
        a_P, b_P = self.ab_P
        for kind, ev in t.events:
            if kind == "spmv":
                self.spmv_like(Category.SPMV, ev["fc_idx"], ev["cand_rows"], ev["cand_cols"])
            elif kind == "spmv_bottomup":
                # expand + fold: identical collectives to top-down — the
                # frontier travels as sparse (idx, root) pairs either way
                # (each block packs its dense ``root_of`` lookup locally).
                # The pull direction additionally allgathers the unvisited
                # row ids along each grid row before scanning.
                a_pc, b_pc = self.ab_pc
                vol_unv = self._busiest(self.row_block(ev["unvisited"]), self.g.pr)
                self.clock.charge_comm(
                    Category.SPMV,
                    C.allgather(self.g.pc, a_pc, b_pc, vol_unv, self.alg_ag, aggregate=self.aggregate),
                )
                self.spmv_like(
                    Category.SPMV, ev["fc_idx"], ev["cand_rows"], ev["cand_cols"]
                )
            elif kind == "select_set":
                ops = 3 * self._busiest(self.row_vec_rank(ev["fr_rows"]), self.P)
                self.clock.step(Category.SELECT_SET, ops, 0.0)
            elif kind == "invert_paths":
                vol = 2 * self._busiest(self.row_vec_rank(ev["rows"]), self.P)
                comm = C.alltoallv(self.P, a_P, b_P, vol, self.alg_a2a, aggregate=self.aggregate)
                ops = self._busiest(self.col_vec_rank(ev["roots"]), self.P)
                self.clock.step(Category.INVERT, ops, comm)
            elif kind == "prune":
                mu = ev["mu"]
                comm = C.allgather(self.P, a_P, b_P, mu, self.alg_ag, aggregate=self.aggregate)
                psi = self._busiest(self.row_vec_rank(ev["fr_rows"]), self.P)
                ops = psi * max(1.0, math.log2(mu + 2))
                self.clock.step(Category.PRUNE, ops, comm)
            elif kind == "next_frontier":
                vol = 2 * self._busiest(self.row_vec_rank(ev["fr_rows"]), self.P)
                comm = C.alltoallv(self.P, a_P, b_P, vol, self.alg_a2a, aggregate=self.aggregate)
                ops = self._busiest(self.col_vec_rank(ev["cols"]), self.P)
                self.clock.step(Category.INVERT, ops, comm)
            elif kind == "iteration_end":
                self.clock.charge_comm(
                    Category.OTHER, C.allreduce(self.P, a_P, b_P, 1, self.alg_ar, aggregate=self.aggregate)
                )
            elif kind == "phase_end":
                self.clock.charge_comm(
                    Category.OTHER, C.allreduce(self.P, a_P, b_P, 1, self.alg_ar, aggregate=self.aggregate)
                )
            elif kind == "init_explore":
                cols = ev["cand_cols"]
                u_cols = np.unique(cols) if cols.size else cols
                self.spmv_like(Category.INIT, u_cols, ev["cand_rows"], cols)
            elif kind == "init_resolve":
                vol = 2 * (-(-ev["proposals"] // self.P))
                comm = C.alltoallv(self.P, a_P, b_P, vol, self.alg_a2a, aggregate=self.aggregate)
                self.clock.step(Category.INIT, vol, comm)
            elif kind == "init_update":
                ops = self._busiest(self.row_vec_rank(ev["rows"]), self.P)
                ops += self._busiest(self.col_vec_rank(ev["cols"]), self.P)
                vol = 2 * (-(-(ev["rows"].size + ev["cols"].size) // self.P))
                comm = C.alltoallv(self.P, a_P, b_P, vol, self.alg_a2a, aggregate=self.aggregate)
                self.clock.step(Category.INIT, ops, comm)
            elif kind == "init_round_end":
                factor = 2 if ev.get("algo") == "mindegree" else 1
                self.clock.charge_comm(
                    Category.INIT,
                    factor * C.allreduce(self.P, a_P, b_P, 1, self.alg_ar, aggregate=self.aggregate),
                )
            else:  # pragma: no cover - trace corruption guard
                raise ValueError(f"unknown trace event {kind!r}")

        # -- augmentation: re-decide level vs path per call at THIS P
        if t.stats is not None:
            for steps in t.stats.augment.path_steps:
                k = int(steps.size)
                if k == 0:
                    continue
                if k < 2 * self.P * self.P:  # the paper's switch: path-parallel
                    per_rank = np.bincount(
                        np.arange(k) % self.P, weights=steps, minlength=self.P
                    ).max()
                    comm = 3 * per_rank * C.rma_op(a_P, b_P, 1.0)
                    comm += (C.barrier_star(self.P, a_P) if self.aggregate
                         else C.barrier_dissemination(self.P, a_P))  # closing fence
                    ops = per_rank
                else:  # level-parallel lockstep
                    h = int(steps.max())
                    comm = 0.0
                    ops = 0.0
                    for level in range(h):
                        active = int((steps > level).sum())
                        comm += 6 * C.alltoallv(self.P, a_P, b_P, 0.0, self.alg_a2a, aggregate=self.aggregate)
                        comm += b_P * 4 * (-(-active // self.P))
                        ops += -(-active // self.P)
                self.clock.step(Category.AUGMENT, ops, comm)
        return self.clock


def scaled_machine(reduction: float, machine: MachineSpec = EDISON) -> MachineSpec:
    """The bench-calibration machine: latency scaled with the problem.

    Stand-in graphs are ``reduction``× smaller than the paper's inputs, so
    per-rank *work* shrinks by that factor while per-collective *latency*
    would not — at paper-scale core counts every figure would degenerate
    into a latency plot of the miniature graph.  Dividing α by the same
    reduction factor restores the paper's compute/latency balance;
    bandwidth (β) terms need no adjustment because communication volumes
    shrink with the graph automatically.  All model times are therefore
    "reduced-Edison seconds": comparable across configurations of one
    experiment (which is what the figures plot), not across machines.
    """
    import dataclasses

    return dataclasses.replace(
        machine,
        alpha=machine.alpha / reduction,
        alpha_intra=machine.alpha_intra / reduction,
    )


def price(
    trace: Trace,
    cores: int,
    threads: int = 12,
    machine: MachineSpec = EDISON,
    *,
    alltoall: str = "bruck",
    allgather: str = "doubling",
    allreduce: str = "doubling",
    links: "LinkModel | None" = None,
    aggregate: bool = False,
) -> SimResult:
    """Price a recorded trace at one (cores, threads) configuration.

    ``alltoall``/``allgather``/``allreduce`` select the modeled collective
    algorithms: the defaults ("bruck"/"doubling"/"doubling") model the
    latency-aware engine of :mod:`repro.runtime.comm`;
    "pairwise"/"ring"/"reduce_bcast" reproduce the paper's worst-case
    Section IV-B bounds.  ``links`` (a
    :class:`~repro.perfmodel.links.LinkModel`) prices the run on a damaged
    fabric: each communicator's (α, β) inflates by its worst degraded
    member edge.  ``aggregate=True`` prices the superstep coalescer's
    hub/star frame plans (α per frame, β per word) instead of the
    round-based schedules — the model counterpart of
    ``CollectiveConfig.aggregate``.
    """
    grid = machine.square_grid(cores, threads)
    clock = _Pricer(
        trace, machine, grid, alltoall, allgather, allreduce, links, aggregate
    ).price()
    return SimResult(
        cores=cores,
        threads=threads,
        grid=grid,
        seconds=clock.time,
        breakdown=clock.breakdown,
        cardinality=trace.cardinality,
        trace=trace,
    )


def simulate_mcm(
    coo: COO,
    cores: int,
    threads: int = 12,
    *,
    machine: MachineSpec = EDISON,
    init: "str | None" = "mindegree",
    prune: bool = True,
    semiring: Semiring = SR_MIN_PARENT,
    seed: int = 0,
) -> SimResult:
    """Record + price in one call (single configuration)."""
    trace = record(coo, init=init, prune=prune, semiring=semiring, seed=seed)
    return price(trace, cores, threads, machine)


def sweep(
    coo: COO,
    cores_list: "list[int]",
    threads: int = 12,
    *,
    machine: MachineSpec = EDISON,
    init: "str | None" = "mindegree",
    prune: bool = True,
    semiring: Semiring = SR_MIN_PARENT,
    seed: int = 0,
) -> list[SimResult]:
    """Record once, price at every core count (the strong-scaling workflow)."""
    trace = record(coo, init=init, prune=prune, semiring=semiring, seed=seed)
    return [price(trace, c, threads, machine) for c in cores_list]
