"""Fig. 9's baseline: collecting a distributed graph on one node.

Section VI-E argues that running a shared-memory matcher on an
already-distributed graph requires (a) gathering all edges onto one rank,
(b) building local data structures there, and (c) scattering the two mate
vectors back — and that this alone can cost more than running MCM-DIST
distributed (≈20 s for the 900 M-nonzero nlpkkt200 at 2048 cores).

The model prices the paper's toy experiment: P MPI processes each hold m/P
edges of a hypothetical graph; rank 0 gathers them (direct gather: the root
serializes the incoming volume through its NIC), preprocesses (one pass over
the edges to build CSR, multithreaded within the node), and scatters 2n mate
words back.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perfmodel import EDISON, MachineSpec

#: Bytes per edge assumed by the paper's memory estimate ("20 bytes per edge").
BYTES_PER_EDGE = 20

#: Effective root ingestion rate in 8-byte words/second.  A gather funnels
#: every byte through ONE node's NIC and memory system while the root also
#: unpacks: the paper's ≈20 s for a 900 M-edge graph implies ≈1.2 GB/s
#: effective, far below the interconnect's point-to-point bandwidth.
ROOT_INGEST_WORDS_PER_S = 1.5e8


@dataclass(frozen=True)
class GatherScatterCost:
    """Component times (model seconds) of the gather-to-one-node workflow."""

    gather: float
    preprocess: float
    scatter: float

    @property
    def total(self) -> float:
        return self.gather + self.preprocess + self.scatter


def gather_scatter_time(
    nnz: int,
    n: int,
    cores: int = 2048,
    threads: int = 1,
    machine: MachineSpec = EDISON,
) -> GatherScatterCost:
    """Model time to gather an ``nnz``-edge graph (n row + n column
    vertices) onto rank 0 and scatter the mate vectors back.

    Matches the paper's Fig. 9 setup: ``cores`` MPI processes (flat MPI in
    the toy), each with an equal share of the edges.
    """
    nprocs = max(1, cores // threads)
    alpha, _beta = machine.comm_params(nprocs, threads)
    edge_words = nnz * BYTES_PER_EDGE / 8.0
    # every byte funnels through the root: latency of P-1 receives plus the
    # root's effective ingestion bandwidth (NIC + unpack), not the network's
    gather = alpha * (nprocs - 1) + edge_words / ROOT_INGEST_WORDS_PER_S
    # root-side preprocessing: two serial passes over the edges to build the
    # CSR the shared-memory matcher needs
    preprocess = machine.compute_time(2 * nnz, threads=1)
    scatter = alpha * (nprocs - 1) + 2.0 * n / ROOT_INGEST_WORDS_PER_S
    return GatherScatterCost(gather=gather, preprocess=preprocess, scatter=scatter)
