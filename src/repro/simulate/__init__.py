"""Execution-driven performance simulation.

The paper's evaluation (Figs. 3–9) measures MCM-DIST on up to 12,288 Cray
XC30 cores.  This package regenerates those studies without the machine:

1. :func:`~repro.simulate.costsim.record` runs the *real* matrix-algebra
   algorithm (initializer + Algorithm 2) once on the input graph, capturing
   a :class:`~repro.simulate.costsim.Trace` of every superstep's measured
   quantities — frontier entries, edges touched, candidate destinations,
   INVERT/PRUNE volumes, per-path augmentation walk lengths;
2. :func:`~repro.simulate.costsim.price` replays the trace against the α-β
   machine model for any (cores, threads) configuration: per superstep it
   histograms the touched data onto the would-be √P×√P process grid, takes
   the busiest rank's work, prices the collective with the exact formulas of
   :mod:`repro.perfmodel.collectives`, and advances a BSP clock.

Because the algorithm's execution (with a deterministic semiring) is
independent of the process count, ONE recording prices at EVERY core count
— that is what makes 24 → 12,288-core sweeps feasible in pure Python.
Model times are not wall-clock times; their *shape* over core counts is the
reproduction target.

:mod:`~repro.simulate.gather_model` prices Fig. 9's gather-to-single-node
baseline; :mod:`~repro.simulate.report` formats speedup tables and runtime
breakdowns like the paper's figures.
"""

from .costsim import SimResult, Trace, price, record, scaled_machine, simulate_mcm, sweep
from .critpath import analyze, format_report, report_trace
from .gather_model import gather_scatter_time
from . import report

__all__ = [
    "SimResult",
    "Trace",
    "analyze",
    "format_report",
    "gather_scatter_time",
    "price",
    "record",
    "report",
    "report_trace",
    "scaled_machine",
    "simulate_mcm",
    "sweep",
]
