"""SARIF 2.1.0 rendering of lint findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS standard
CI systems ingest for code-scanning annotations.  The emitter targets the
subset every consumer understands: one ``run`` with a ``tool.driver``
carrying the rule catalogue, and one ``result`` per finding with a
``physicalLocation`` pointing at the offending line/column.
"""

from __future__ import annotations

import json

from .report import RULES, Finding, sort_findings

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning"}


def _artifact_uri(path: str) -> str:
    return str(path).replace("\\", "/")


def sarif_log(findings: list[Finding], tool_version: str = "0") -> dict:
    """Build the SARIF log object (a plain dict, ready for json.dumps)."""
    rule_ids = sorted(RULES)
    rule_index = {code: i for i, code in enumerate(rule_ids)}
    rules = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": RULES[code][0]},
            "defaultConfiguration": {
                "level": _LEVELS.get(RULES[code][1], "warning"),
            },
        }
        for code in rule_ids
    ]
    results = []
    for f in sort_findings(findings):
        result = {
            "ruleId": f.code,
            "level": _LEVELS.get(f.severity, "warning"),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": _artifact_uri(f.path)},
                    "region": {
                        "startLine": max(f.line, 1),
                        # SARIF columns are 1-based; Finding.col is 0-based
                        "startColumn": f.col + 1,
                    },
                },
            }],
        }
        if f.code in rule_index:
            result["ruleIndex"] = rule_index[f.code]
        if f.function:
            result["locations"][0]["logicalLocations"] = [{
                "name": f.function,
                "kind": "function",
            }]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/paper-repro/mcm-dist",
                    "version": tool_version,
                    "rules": rules,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def format_sarif(findings: list[Finding], tool_version: str = "0") -> str:
    return json.dumps(sarif_log(findings, tool_version), indent=2)
