"""SPMD6xx: determinism lints.

The paper's correctness story depends on *deterministic semirings*: every
rank must derive bit-identical mate vectors from replicated computations,
or the distributed matching silently disagrees with itself.  These rules
flag the classic ways Python code breaks that contract:

SPMD601
    Iterating a ``set``/``frozenset`` where the iteration order escapes
    into communication or into keyed stores (``mate[u] = v`` — last-writer
    -wins scatter): set order is an implementation detail (hash seeding,
    insertion history), so "identical" replicated loops can visit elements
    in different orders on different ranks.  Iterate ``sorted(s)`` instead.
SPMD602
    Wall-clock reads (``time.time``, ``perf_counter``, ``datetime.now``
    ...) inside an SPMD function: each rank reads a different clock, so any
    value derived from it diverges.  Clocks are for observation (tracing),
    never for algorithm state.
SPMD603
    Order-sensitive floating-point accumulation over an unordered
    collection (``acc += x`` in a set-iteration loop, ``sum(set(...))``):
    float addition does not associate, so different visit orders produce
    different sums — exactly the hazard the runtime's deterministic fold
    trees exist to avoid.  Accumulate over ``sorted(...)`` or use
    ``math.fsum``.
"""

from __future__ import annotations

import ast

from .astutil import (
    TAGGED_METHODS,
    call_method_name,
    call_plain_name,
    dotted_name,
    is_collective_call,
    own_nodes,
)
from .engine import ModuleModel
from .report import Finding

#: Dotted call names that read a wall clock.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


def _set_like_names(fn: ast.AST) -> set[str]:
    """Names assigned from set-typed expressions anywhere in the function
    (flow-insensitive, one transitive pass)."""
    names: set[str] = set()
    for _ in range(2):  # one extra pass for a = set(); b = a | other
        for node in own_nodes(fn):
            if isinstance(node, ast.Assign) and _is_set_like(node.value, names):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        names.add(tgt.id)
    return names


def _is_set_like(expr: ast.expr, names: set[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in names
    if isinstance(expr, ast.Call):
        if call_plain_name(expr) in _SET_CONSTRUCTORS:
            return True
        meth = call_method_name(expr)
        if meth in _SET_METHODS and isinstance(expr.func, ast.Attribute) \
                and _is_set_like(expr.func.value, names):
            return True
        return False
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_like(expr.left, names) or _is_set_like(expr.right, names)
    return False


def _is_comm_call(node: ast.Call) -> bool:
    return is_collective_call(node) is not None \
        or call_method_name(node) in TAGGED_METHODS


def _loop_body_nodes(stmt: ast.For):
    for sub in stmt.body + stmt.orelse:
        yield from own_nodes(sub)


def rule_determinism(model: ModuleModel) -> list[Finding]:
    findings: list[Finding] = []
    for info in model.functions:
        if not info.is_spmd:
            continue
        fn = info.node
        set_names = _set_like_names(fn)

        for node in own_nodes(fn):
            # ---- SPMD602: wall-clock reads -------------------------------
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _WALL_CLOCK_CALLS:
                    findings.append(Finding(
                        model.path, node.lineno, node.col_offset, "SPMD602",
                        f"wall-clock read '{name}()' in an SPMD function: "
                        "every rank reads a different clock, so values "
                        "derived from it diverge across ranks; clocks are "
                        "for observation (tracing), not algorithm state",
                        function=info.name,
                    ))
                # ---- SPMD603: sum(set(...)) ------------------------------
                if call_plain_name(node) == "sum" and node.args \
                        and _is_set_like(node.args[0], set_names):
                    findings.append(Finding(
                        model.path, node.lineno, node.col_offset, "SPMD603",
                        "'sum()' over an unordered set: float addition is "
                        "order-sensitive and set order is an implementation "
                        "detail, so replicated sums can disagree across "
                        "ranks; use sum(sorted(...)) or math.fsum(sorted(...))",
                        function=info.name,
                    ))
                # ---- SPMD601: comprehension over a set fed to a comm call
                if _is_comm_call(node):
                    for arg in node.args:
                        if isinstance(arg, (ast.ListComp, ast.GeneratorExp)):
                            for gen in arg.generators:
                                if _is_set_like(gen.iter, set_names):
                                    findings.append(Finding(
                                        model.path, arg.lineno, arg.col_offset,
                                        "SPMD601",
                                        "collective payload built by iterating "
                                        "an unordered set: element order is an "
                                        "implementation detail and may differ "
                                        "across ranks; iterate sorted(...) "
                                        "instead",
                                        function=info.name,
                                    ))

            # ---- SPMD601/603: for-loops over sets ------------------------
            if isinstance(node, ast.For) and _is_set_like(node.iter, set_names):
                comm_anchor = None
                store_anchor = None
                accum_anchor = None
                for sub in _loop_body_nodes(node):
                    if isinstance(sub, ast.Call) and _is_comm_call(sub) \
                            and comm_anchor is None:
                        comm_anchor = sub
                    if isinstance(sub, ast.Assign) and store_anchor is None:
                        for tgt in sub.targets:
                            if isinstance(tgt, ast.Subscript):
                                store_anchor = tgt
                    if isinstance(sub, ast.AugAssign) and accum_anchor is None \
                            and isinstance(sub.op, (ast.Add, ast.Sub, ast.Mult)):
                        accum_anchor = sub
                if comm_anchor is not None:
                    findings.append(Finding(
                        model.path, comm_anchor.lineno, comm_anchor.col_offset,
                        "SPMD601",
                        "communication inside a loop over an unordered set "
                        f"(loop at line {node.lineno}): visit order is an "
                        "implementation detail, so ranks may send/enter in "
                        "different orders; iterate sorted(...) instead",
                        function=info.name,
                    ))
                if store_anchor is not None:
                    findings.append(Finding(
                        model.path, store_anchor.lineno, store_anchor.col_offset,
                        "SPMD601",
                        "keyed store inside a loop over an unordered set "
                        f"(loop at line {node.lineno}): with duplicate keys "
                        "the last writer wins, so the result depends on set "
                        "order and may differ across ranks; iterate "
                        "sorted(...) instead",
                        function=info.name,
                    ))
                if accum_anchor is not None:
                    findings.append(Finding(
                        model.path, accum_anchor.lineno, accum_anchor.col_offset,
                        "SPMD603",
                        "accumulation inside a loop over an unordered set "
                        f"(loop at line {node.lineno}): float arithmetic is "
                        "order-sensitive, so replicated folds can disagree "
                        "across ranks; iterate sorted(...) or use math.fsum",
                        function=info.name,
                    ))
    return findings
