"""SPMD7xx: backend-portability lints.

The threads-as-ranks fabric is forgiving in two ways a real
multiprocessing backend (ROADMAP item 4) is not: ranks share one address
space (module globals are visible to everyone) and payloads are handed
over by reference (anything is "picklable").  These rules are the merge
gate for the process backend — code that passes them runs unchanged when
ranks become processes:

SPMD701
    Module-level mutable state written from an SPMD function (``global``
    rebinding, in-place mutation of a module global, keyed stores into
    one).  Under threads this is a shared-memory data race that happens to
    "work"; under processes each rank mutates its own copy and the writes
    silently vanish.
SPMD702
    Unpicklable payloads handed to ``send``/``bcast``/``gather``/...:
    lambdas, nested functions, generator expressions, open file handles,
    or the communicator itself.  Threads pass these by reference; a
    process backend must pickle them and dies at the first boundary.
SPMD703
    Closures handed to the ``spmd(...)`` launcher: a nested function (or
    lambda) capturing enclosing locals cannot be pickled, so the job
    cannot even start under a process backend.  Entry points must be
    module-level functions taking their data through ``spmd``'s
    ``*args``/``**kwargs``.
"""

from __future__ import annotations

import ast

from .astutil import (
    assigned_names,
    call_method_name,
    call_plain_name,
    own_nodes,
    receiver_name,
)
from .engine import ModuleModel
from .report import Finding

#: In-place mutation methods on builtin containers.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "sort", "reverse",
    "appendleft", "popleft", "fill",
})

#: Comm methods that ship a payload across a rank boundary, and the
#: positional index of that payload (p2p calls lead with the peer).
_PAYLOAD_METHODS: dict[str, int] = {
    "send": 1, "sendrecv": 1,
    "bcast": 0, "gather": 0, "gatherv": 0, "scatter": 0, "scatterv": 0,
    "allgather": 0, "allgatherv": 0, "alltoall": 0, "alltoallv": 0,
    "reduce": 0, "allreduce": 0, "scan": 0, "exscan": 0,
}

_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


def _module_mutable_globals(tree: ast.Module) -> set[str]:
    """Module-level names bound to mutable containers."""
    out: set[str] = set()
    for stmt in tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        value = stmt.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                     ast.DictComp, ast.SetComp))
        if isinstance(value, ast.Call) \
                and call_plain_name(value) in _MUTABLE_CONSTRUCTORS:
            mutable = True
        if not mutable:
            continue
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for tgt in targets:
            if isinstance(tgt, ast.Name):
                out.add(tgt.id)
    return out


def _nested_def_names(fn: ast.AST) -> set[str]:
    """Names bound to nested function definitions in ``fn``'s own scope."""
    out: set[str] = set()
    for node in own_nodes(fn):
        if node is fn:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    out.add(tgt.id)
    return out


def _open_handle_names(fn: ast.AST) -> set[str]:
    """Names bound to ``open(...)`` results (assignment or with-as)."""
    out: set[str] = set()
    for node in own_nodes(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call) \
                and call_plain_name(node.value) == "open":
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    out.add(tgt.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call) \
                        and call_plain_name(item.context_expr) == "open" \
                        and isinstance(item.optional_vars, ast.Name):
                    out.add(item.optional_vars.id)
    return out


def _payload_hazard(arg: ast.expr, nested: set[str], handles: set[str],
                    comms: set[str]) -> str | None:
    """Describe why ``arg`` cannot cross a process boundary, if it can't."""
    if isinstance(arg, ast.Lambda):
        return "a lambda (functions defined inside another function do not pickle)"
    if isinstance(arg, ast.GeneratorExp):
        return "a generator expression (generators do not pickle)"
    if isinstance(arg, ast.Call) and call_plain_name(arg) == "open":
        return "an open file handle (OS handles do not pickle)"
    if isinstance(arg, ast.Name):
        if arg.id in nested:
            return (f"the nested function '{arg.id}' "
                    "(functions defined inside another function do not pickle)")
        if arg.id in handles:
            return f"the open file handle '{arg.id}' (OS handles do not pickle)"
        if arg.id in comms:
            return (f"the communicator '{arg.id}' "
                    "(communicators are rank-local runtime objects)")
    return None


def rule_portability(model: ModuleModel) -> list[Finding]:
    findings: list[Finding] = []
    mutable_globals = _module_mutable_globals(model.tree)

    for info in model.functions:
        fn = info.node
        nested = _nested_def_names(fn)
        handles = _open_handle_names(fn)
        local = assigned_names(fn)

        # ---- SPMD703: closures handed to the spmd() launcher -------------
        for node in own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            callee = call_plain_name(node) or call_method_name(node)
            if callee != "spmd":
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                what = None
                if isinstance(arg, ast.Lambda):
                    what = "a lambda"
                elif isinstance(arg, ast.Name) and arg.id in nested:
                    what = f"the nested function '{arg.id}'"
                if what is not None:
                    findings.append(Finding(
                        model.path, arg.lineno, arg.col_offset, "SPMD703",
                        f"{what} is passed to the spmd() launcher: closures "
                        "cannot be pickled, so the job cannot start under a "
                        "process backend; use a module-level function and "
                        "pass data through spmd()'s *args/**kwargs",
                        function=info.name,
                    ))

        if not info.is_spmd:
            continue

        # ---- SPMD701: writes to module-level mutable state ---------------
        declared_global: set[str] = set()
        for node in own_nodes(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        visible_globals = (mutable_globals - local) | declared_global

        for node in own_nodes(fn):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name) and tgt.id in declared_global:
                        findings.append(Finding(
                            model.path, tgt.lineno, tgt.col_offset, "SPMD701",
                            f"SPMD function rebinds module global '{tgt.id}': "
                            "under a process backend each rank writes its own "
                            "copy and the update silently vanishes; return "
                            "the value or communicate it explicitly",
                            function=info.name,
                        ))
                    elif isinstance(tgt, ast.Subscript) \
                            and isinstance(tgt.value, ast.Name) \
                            and tgt.value.id in visible_globals:
                        findings.append(Finding(
                            model.path, tgt.lineno, tgt.col_offset, "SPMD701",
                            "SPMD function stores into module-level container "
                            f"'{tgt.value.id}': shared memory under threads, "
                            "a rank-local copy under processes — the write "
                            "does not propagate; return the value or "
                            "communicate it explicitly",
                            function=info.name,
                        ))
            elif isinstance(node, ast.Call):
                meth = call_method_name(node)
                recv = receiver_name(node)
                if meth in _MUTATING_METHODS and recv is not None \
                        and recv in visible_globals:
                    findings.append(Finding(
                        model.path, node.lineno, node.col_offset, "SPMD701",
                        f"SPMD function mutates module-level container "
                        f"'{recv}.{meth}(...)': shared memory under threads, "
                        "a rank-local copy under processes — the mutation "
                        "does not propagate; return the value or communicate "
                        "it explicitly",
                        function=info.name,
                    ))

        # ---- SPMD702: unpicklable payloads -------------------------------
        comms = set(info.comm_names)
        for node in own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            meth = call_method_name(node)
            if meth not in _PAYLOAD_METHODS:
                continue
            pos = _PAYLOAD_METHODS[meth]
            payloads = node.args[pos:pos + 1]
            for kw in node.keywords:
                if kw.arg in ("value", "payload", "obj", "sendobj", "data"):
                    payloads.append(kw.value)
            for arg in payloads:
                why = _payload_hazard(arg, nested, handles, comms)
                if why is not None:
                    findings.append(Finding(
                        model.path, arg.lineno, arg.col_offset, "SPMD702",
                        f"'{meth}' payload is {why}: a process backend must "
                        "pickle every payload that crosses a rank boundary; "
                        "send plain data instead",
                        function=info.name,
                    ))
    return findings
