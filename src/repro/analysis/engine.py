"""The analyzer's semantic model of one module.

:class:`ModuleModel` parses a module once and derives everything the rules
share, so each rule is a query instead of a re-traversal:

* per-function facts — CFG (:mod:`.cfg`), the rank-taint set, the SPMD
  heuristic, own-statement lists;
* a module-level call graph over plain-name calls to module-local
  functions;
* per-function **collective effect summaries**: the ordered sequence of
  collectives a call to the function performs, with calls to module-local
  helpers expanded transitively.  This is what makes SPMD101/102
  interprocedural — a collective hidden two helpers deep under a
  rank-dependent branch is still part of the branch's effect sequence.

Effect sequences are small trees: ``op`` leaves (one collective entry),
``loop`` nodes (the body repeats an unknown number of times) and ``maybe``
nodes (a data-dependent conditional whose branches differ).  Two sequences
are compared structurally; a comparison involving ``maybe`` nodes is
*indefinite* and never produces a finding (no false positives from paths
the analyzer cannot prove).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import cached_property

from .astutil import (
    comm_param_names,
    expr_references_rank,
    is_collective_call,
    is_spmd_function,
    own_statements,
    call_plain_name,
    rank_tainted_names,
    walk_functions,
)
from .cfg import CFG, build_cfg


# --------------------------------------------------------------------------
# effect sequences


@dataclass(frozen=True)
class Effect:
    """One element of a collective-effect sequence.

    ``kind`` is ``"op"`` (a collective entry, ``op`` names it), ``"loop"``
    (``sub`` repeats >= 0 times) or ``"maybe"`` (a conditional whose
    branches' sequences differ; ``sub``/``alt`` hold them).  ``node`` is the
    finding anchor **in the analyzed function** — for effects reached
    through a helper call it is the call site, and ``via`` records the
    chain of callee names the effect was inlined through.
    """

    kind: str
    op: str = ""
    node: ast.AST | None = field(default=None, compare=False, hash=False)
    via: tuple[str, ...] = field(default=(), compare=False, hash=False)
    sub: tuple["Effect", ...] = ()
    alt: tuple["Effect", ...] = ()

    def key(self):
        if self.kind == "op":
            return ("op", self.op)
        if self.kind == "loop":
            return ("loop", tuple(e.key() for e in self.sub))
        return ("maybe",
                tuple(e.key() for e in self.sub),
                tuple(e.key() for e in self.alt))


def effect_keys(seq: tuple[Effect, ...]):
    return tuple(e.key() for e in seq)


def is_definite(seq: tuple[Effect, ...]) -> bool:
    """No ``maybe`` node anywhere: the sequence is exactly what runs."""
    for e in seq:
        if e.kind == "maybe":
            return False
        if e.kind == "loop" and not is_definite(e.sub):
            return False
    return True


def flat_ops(seq: tuple[Effect, ...]) -> list[str]:
    """Human-readable op names, loops rendered as ``op*``."""
    out: list[str] = []
    for e in seq:
        if e.kind == "op":
            out.append(e.op if not e.via else f"{e.op} (via {'->'.join(e.via)})")
        elif e.kind == "loop":
            out.extend(f"{o}*" for o in flat_ops(e.sub))
        else:
            out.append("<data-dependent>")
    return out


def first_anchor(seq: tuple[Effect, ...]) -> Effect | None:
    for e in seq:
        if e.kind == "op":
            return e
        inner = first_anchor(e.sub) or first_anchor(e.alt)
        if inner is not None:
            return inner
    return None


def has_ops(seq: tuple[Effect, ...]) -> bool:
    return first_anchor(seq) is not None


# --------------------------------------------------------------------------
# per-function facts


@dataclass
class FunctionInfo:
    """Cached per-function facts shared by all rules."""

    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    name: str
    qualname: str

    @cached_property
    def cfg(self) -> CFG:
        return build_cfg(self.node)

    @cached_property
    def tainted(self) -> set:
        return rank_tainted_names(self.node)

    @cached_property
    def is_spmd(self) -> bool:
        return is_spmd_function(self.node)

    @cached_property
    def comm_names(self) -> set:
        return comm_param_names(self.node)

    @cached_property
    def statements(self) -> list[ast.stmt]:
        return own_statements(self.node)


class ModuleModel:
    """Everything the rules need to know about one parsed module."""

    def __init__(self, tree: ast.Module, path: str, source: str = "") -> None:
        self.tree = tree
        self.path = path
        self.source = source
        self.functions: list[FunctionInfo] = []
        #: plain name -> FunctionInfo for *module-level* defs only — the
        #: namespace plain-name calls resolve in.
        self.toplevel: dict[str, FunctionInfo] = {}
        self._info_by_node: dict[int, FunctionInfo] = {}
        self._summaries: dict[int, tuple[Effect, ...] | None] = {}
        self._in_progress: set[int] = set()
        for fn in walk_functions(tree):
            info = FunctionInfo(fn, fn.name, fn.name)
            self.functions.append(info)
            self._info_by_node[id(fn)] = info
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.toplevel[stmt.name] = self._info_by_node[id(stmt)]

    def info(self, fn: ast.AST) -> FunctionInfo:
        return self._info_by_node[id(fn)]

    def resolve_call(self, call: ast.Call) -> FunctionInfo | None:
        """Resolve a plain-name call to a module-level function, if any."""
        name = call_plain_name(call)
        if name is None:
            return None
        return self.toplevel.get(name)

    # -- collective effect summaries ------------------------------------

    def summary(self, fn: ast.AST) -> tuple[Effect, ...]:
        """Collective-effect sequence of calling ``fn``.

        Recursive call cycles yield an indefinite summary (a single
        ``maybe`` node) so callers never report findings based on them.
        """
        key = id(fn)
        if key in self._summaries:
            cached = self._summaries[key]
            return cached if cached is not None else (Effect("maybe"),)
        if key in self._in_progress:
            return (Effect("maybe"),)
        self._in_progress.add(key)
        try:
            seq = self.effects_of(fn.body, self.info(fn))
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = seq
        return seq

    def effects_of(self, stmts: list[ast.stmt],
                   info: FunctionInfo) -> tuple[Effect, ...]:
        """Expanded collective-effect sequence of a statement list."""
        out: list[Effect] = []
        for stmt in stmts:
            out.extend(self._effects_of_stmt(stmt, info))
        return tuple(out)

    def _effects_of_stmt(self, stmt: ast.stmt,
                         info: FunctionInfo) -> tuple[Effect, ...]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return ()
        if isinstance(stmt, ast.If):
            head = self._effects_of_expr(stmt.test, info)
            a = self.effects_of(stmt.body, info)
            b = self.effects_of(stmt.orelse, info)
            if effect_keys(a) == effect_keys(b):
                return head + a
            if not a and not b:
                return head
            if expr_references_rank(stmt.test, info.tainted):
                # rank-divergent collectives are this function's own
                # SPMD101 finding; the summary stays honest for callers
                return head + (Effect("maybe", node=stmt, sub=a, alt=b),)
            return head + (Effect("maybe", node=stmt, sub=a, alt=b),)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            head = self._effects_of_expr(head_expr, info)
            body = self.effects_of(stmt.body, info) \
                + self.effects_of(stmt.orelse, info)
            if not body:
                return head
            return head + (Effect("loop", node=stmt, sub=body),)
        if isinstance(stmt, ast.Try):
            body = self.effects_of(stmt.body, info) \
                + self.effects_of(stmt.orelse, info)
            handlers = tuple(
                e for h in stmt.handlers for e in self.effects_of(h.body, info)
            )
            final = self.effects_of(stmt.finalbody, info)
            if handlers or (body and stmt.handlers):
                # an exception may skip part of the body and run a handler
                return (Effect("maybe", node=stmt, sub=body, alt=handlers),) + final
            return body + final
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = tuple(
                e for item in stmt.items
                for e in self._effects_of_expr(item.context_expr, info)
            )
            return head + self.effects_of(stmt.body, info)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            branches = [self.effects_of(c.body, info) for c in stmt.cases]
            keys = {effect_keys(b) for b in branches}
            if len(keys) == 1 and branches:
                return branches[0]
            if any(has_ops(b) for b in branches):
                return (Effect("maybe", node=stmt,
                               sub=branches[0] if branches else ()),)
            return ()
        # simple statement: collect call effects in source order
        return self._effects_of_expr(stmt, info)

    def _effects_of_expr(self, node: ast.AST,
                         info: FunctionInfo) -> tuple[Effect, ...]:
        """Collective effects of the calls inside one expression/statement."""
        calls: list[ast.Call] = []

        def visit(n: ast.AST) -> None:
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
                return
            if isinstance(n, ast.Call):
                calls.append(n)
            for child in ast.iter_child_nodes(n):
                visit(child)

        visit(node)
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        out: list[Effect] = []
        for call in calls:
            op = is_collective_call(call)
            if op is not None:
                out.append(Effect("op", op=op, node=call))
                continue
            callee = self.resolve_call(call)
            if callee is not None and callee.node is not info.node:
                for eff in self.summary(callee.node):
                    out.append(Effect(eff.kind, op=eff.op, node=call,
                                      via=(callee.name,) + eff.via,
                                      sub=eff.sub, alt=eff.alt))
        return tuple(out)


def build_model(tree: ast.Module, path: str, source: str = "") -> ModuleModel:
    return ModuleModel(tree, path, source)
