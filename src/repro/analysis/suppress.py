"""Finding suppression: inline ``noqa`` comments and baseline files.

Two mechanisms make the linter *self-hosting* (``repro lint src/`` must
exit 0 in CI even though the runtime intentionally does rank-dependent
things the rules exist to flag):

* ``# repro: noqa`` / ``# repro: noqa[SPMD101,SPMD401]`` comments suppress
  findings on their line — bare form suppresses everything, the bracketed
  form only the listed codes.  Comments are found with :mod:`tokenize`, so
  strings containing the magic text do not suppress anything.
* A committed **baseline file** (JSON) lists known findings to tolerate,
  each with a human justification.  Baseline entries match on (path
  suffix, code, function) rather than line numbers, so unrelated edits do
  not invalidate the baseline.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from pathlib import Path, PurePosixPath

from .report import Finding

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE)


def noqa_map(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed codes (``None`` = all codes).

    Tolerates tokenize errors (the parser already reported SPMD000) by
    returning whatever was collected up to the failure point.
    """
    out: dict[int, frozenset[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if not m:
                continue
            codes = m.group("codes")
            if codes is None:
                out[tok.start[0]] = None
            else:
                parsed = frozenset(
                    c.strip().upper() for c in codes.split(",") if c.strip())
                prev = out.get(tok.start[0], frozenset())
                out[tok.start[0]] = None if prev is None else prev | parsed
    except (tokenize.TokenizeError, IndentationError, SyntaxError, ValueError):
        pass
    return out


def apply_noqa(findings: list[Finding], source: str) -> list[Finding]:
    """Drop findings suppressed by a noqa comment on their line."""
    if "noqa" not in source:
        return findings
    suppressed = noqa_map(source)
    if not suppressed:
        return findings
    out = []
    for f in findings:
        codes = suppressed.get(f.line, frozenset())
        if codes is None or f.code in codes:
            continue
        out.append(f)
    return out


# --------------------------------------------------------------------------
# baseline files


class Baseline:
    """A set of tolerated findings, matched by (path suffix, code, function)."""

    def __init__(self, entries: list[dict]) -> None:
        self.entries = entries
        self._index: set[tuple[str, str, str]] = {
            (str(PurePosixPath(e["path"])), e["code"], e.get("function", ""))
            for e in entries
        }

    def matches(self, f: Finding) -> bool:
        fpath = PurePosixPath(str(f.path).replace("\\", "/"))
        for path, code, function in self._index:
            if code != f.code or function != f.function:
                continue
            base = PurePosixPath(path)
            if fpath == base or str(fpath).endswith("/" + str(base)):
                return True
        return False

    def filter(self, findings: list[Finding]) -> list[Finding]:
        return [f for f in findings if not self.matches(f)]


def load_baseline(path: str | Path) -> Baseline:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = data["findings"] if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path}: expected a list of findings")
    for e in entries:
        if not isinstance(e, dict) or "path" not in e or "code" not in e:
            raise ValueError(
                f"baseline {path}: each entry needs at least 'path' and 'code'")
    return Baseline(entries)


def write_baseline(path: str | Path, findings: list[Finding],
                   root: str | Path | None = None) -> None:
    """Serialize ``findings`` as a fresh baseline (justifications TODO'd)."""
    entries = []
    for f in findings:
        fpath = str(f.path).replace("\\", "/")
        if root is not None:
            try:
                fpath = str(Path(f.path).resolve().relative_to(
                    Path(root).resolve())).replace("\\", "/")
            except ValueError:
                pass
        entries.append({
            "path": fpath,
            "code": f.code,
            "function": f.function,
            "justification": "TODO: explain why this finding is tolerated",
        })
    payload = {"comment": "known findings tolerated by `repro lint --baseline`;"
                          " matched by (path, code, function), not line",
               "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
