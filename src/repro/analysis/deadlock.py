"""SPMD5xx: static deadlock detection for point-to-point protocols.

The rules symbolically execute each SPMD function once per rank for a few
small world sizes (p = 2, 3, 4).  The interpreter evaluates rank-dependent
branches and peer/tag expressions concretely (``comm.rank``, ``comm.size``,
integer arithmetic, bounded ``range`` loops, one level of module-local
helper calls), producing per-rank sequences of blocking operations.  A
matching simulator then replays the sequences under the runtime's
semantics — sends are buffered (non-blocking), receives block until a
matching ``(source, tag)`` envelope is posted, collectives are global
synchronization points — and classifies any stuck state:

SPMD501
    A rank blocks in a ``recv`` whose ``(peer, tag)`` no rank ever sends —
    the message simply does not exist in the protocol.
SPMD502
    Ranks block in a cycle: each waits for a message its peer only sends
    *after* its own blocked receive — the classic head-of-line deadlock
    (e.g. every rank of a ring receives before it sends).

Soundness stance: the interpreter **bails out** (reports nothing) whenever
it meets an expression or statement it cannot evaluate exactly — unknown
peers, unbounded ``while`` loops around p2p calls, unresolved helpers.
A reported deadlock is therefore a real execution of the protocol at the
reported world size, never a may-alias guess.  Fixtures for both rules
demonstrably hang the simulated fabric (see ``examples/buggy_spmd.py`` and
the differential tests).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .astutil import call_method_name, receiver_name
from .engine import ModuleModel
from .report import Finding

#: World sizes to simulate.  Small is enough: the protocols the rules
#: target (rings, pairwise exchanges, root gathers) misbehave identically
#: at every p, and p <= 4 keeps the interpreter trivially fast.
WORLD_SIZES = (2, 3, 4)

_ANY = -1  # wildcard source/tag (ANY_SOURCE / ANY_TAG)
_MAX_OPS = 64
_MAX_ITER = 16
_MAX_DEPTH = 3


class _Bail(Exception):
    """Raised when a function is not exactly analyzable; no findings."""


@dataclass(frozen=True)
class Op:
    kind: str  # "send" | "recv" | "coll"
    peer: int = _ANY  # dest for send, source for recv
    tag: int = _ANY
    op: str = ""  # collective name
    node: ast.AST | None = None  # anchor call
    #: the op's peer/tag is rank-derived, or it sits under a rank-dependent
    #: branch — the gate that separates genuine SPMD protocols (rings,
    #: neighbor exchanges, root-guarded receives) from helper halves meant
    #: to run on a single rank (a "server loop" is not a deadlock just
    #: because *if* every rank ran it, it would block)
    rank_dep: bool = False


# --------------------------------------------------------------------------
# expression evaluation


def _eval_int(expr: ast.expr, env: dict) -> int:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int) \
            and not isinstance(expr.value, bool):
        return expr.value
    if isinstance(expr, ast.Name):
        if expr.id in env:
            v = env[expr.id]
            if isinstance(v, int):
                return v
        raise _Bail
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.value.id in env.get("__comms__", ()):
            if expr.attr == "rank":
                return env["rank"]
            if expr.attr == "size":
                return env["size"]
        raise _Bail
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        return -_eval_int(expr.operand, env)
    if isinstance(expr, ast.BinOp):
        lhs, rhs = _eval_int(expr.left, env), _eval_int(expr.right, env)
        op = expr.op
        if isinstance(op, ast.Add):
            return lhs + rhs
        if isinstance(op, ast.Sub):
            return lhs - rhs
        if isinstance(op, ast.Mult):
            return lhs * rhs
        if isinstance(op, ast.Mod) and rhs != 0:
            return lhs % rhs
        if isinstance(op, ast.FloorDiv) and rhs != 0:
            return lhs // rhs
        if isinstance(op, ast.LShift) and 0 <= rhs < 64:
            return lhs << rhs
        if isinstance(op, ast.BitOr):
            return lhs | rhs
        if isinstance(op, ast.BitAnd):
            return lhs & rhs
    raise _Bail


def _eval_bool(expr: ast.expr, env: dict) -> bool:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, bool):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        return not _eval_bool(expr.operand, env)
    if isinstance(expr, ast.BoolOp):
        vals = [_eval_bool(v, env) for v in expr.values]
        return all(vals) if isinstance(expr.op, ast.And) else any(vals)
    if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
        lhs = _eval_int(expr.left, env)
        rhs = _eval_int(expr.comparators[0], env)
        op = expr.ops[0]
        if isinstance(op, ast.Eq):
            return lhs == rhs
        if isinstance(op, ast.NotEq):
            return lhs != rhs
        if isinstance(op, ast.Lt):
            return lhs < rhs
        if isinstance(op, ast.LtE):
            return lhs <= rhs
        if isinstance(op, ast.Gt):
            return lhs > rhs
        if isinstance(op, ast.GtE):
            return lhs >= rhs
        raise _Bail
    return bool(_eval_int(expr, env))


# --------------------------------------------------------------------------
# the per-rank interpreter


class _Return(Exception):
    pass


def _contains_comm_calls(stmts: list[ast.stmt], model: ModuleModel) -> bool:
    from .astutil import TAGGED_METHODS, is_collective_call

    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                meth = call_method_name(node)
                if meth in TAGGED_METHODS or is_collective_call(node):
                    return True
                if model.resolve_call(node) is not None:
                    return True
    return False


class _Interp:
    def __init__(self, model: ModuleModel, rank: int, size: int,
                 tainted: "set[str] | None" = None) -> None:
        self.model = model
        self.rank = rank
        self.size = size
        self.ops: list[Op] = []
        self.tainted = tainted or set()
        self._rank_branch_depth = 0

    def run(self, fn, comm_names: set, args_env: dict, depth: int = 0) -> None:
        env = dict(args_env)
        env["rank"] = self.rank
        env["size"] = self.size
        env["__comms__"] = frozenset(comm_names)
        try:
            self._stmts(fn.body, env, depth)
        except _Return:
            pass

    def _expr_rank_dep(self, expr: "ast.expr | None") -> bool:
        if expr is None:
            return False
        from .astutil import expr_references_rank

        return expr_references_rank(expr, self.tainted)

    def _emit(self, op: Op) -> None:
        self.ops.append(op)
        if len(self.ops) > _MAX_OPS:
            raise _Bail

    def _stmts(self, stmts: list[ast.stmt], env: dict, depth: int) -> None:
        for stmt in stmts:
            self._stmt(stmt, env, depth)

    def _stmt(self, stmt: ast.stmt, env: dict, depth: int) -> None:
        model = self.model
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Pass, ast.Global, ast.Nonlocal)):
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, env, depth)
            raise _Return
        if isinstance(stmt, ast.Raise):
            raise _Bail  # divergent abort paths are not deadlock material
        if isinstance(stmt, (ast.Break, ast.Continue)):
            raise _Bail  # loop shapes with early exit: give up, stay sound
        if isinstance(stmt, ast.If):
            try:
                taken = _eval_bool(stmt.test, env)
            except _Bail:
                # data-dependent branch: only safe if neither side talks
                if _contains_comm_calls(stmt.body, model) \
                        or _contains_comm_calls(stmt.orelse, model):
                    raise
                return
            rank_dep = self._expr_rank_dep(stmt.test)
            if rank_dep:
                self._rank_branch_depth += 1
            try:
                self._stmts(stmt.body if taken else stmt.orelse, env, depth)
            finally:
                if rank_dep:
                    self._rank_branch_depth -= 1
            return
        if isinstance(stmt, ast.For):
            self._for(stmt, env, depth)
            return
        if isinstance(stmt, ast.While):
            if _contains_comm_calls(stmt.body, model):
                raise _Bail
            self._invalidate(stmt, env)
            return
        if isinstance(stmt, ast.Try):
            if any(_contains_comm_calls(h.body, model) for h in stmt.handlers):
                raise _Bail
            self._stmts(stmt.body, env, depth)
            self._stmts(stmt.orelse, env, depth)
            self._stmts(stmt.finalbody, env, depth)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr, env, depth)
            self._stmts(stmt.body, env, depth)
            return
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, env, depth)
            value: "int | None"
            try:
                value = _eval_int(stmt.value, env)
            except _Bail:
                value = None
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    if value is not None:
                        env[tgt.id] = value
                    else:
                        env.pop(tgt.id, None)
                else:
                    for sub in ast.walk(tgt):
                        if isinstance(sub, ast.Name):
                            env.pop(sub.id, None)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, env, depth)
            if isinstance(stmt.target, ast.Name):
                try:
                    cur = env[stmt.target.id]
                    binop = ast.BinOp(left=ast.Constant(cur), op=stmt.op,
                                      right=stmt.value)
                    env[stmt.target.id] = _eval_int(binop, env)
                except (KeyError, _Bail):
                    env.pop(stmt.target.id, None)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, env, depth)
            return
        if isinstance(stmt, (ast.Expr, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, env, depth)
            return
        # anything exotic around communication: refuse to guess
        if _contains_comm_calls([stmt], self.model):
            raise _Bail

    def _for(self, stmt: ast.For, env: dict, depth: int) -> None:
        talks = _contains_comm_calls(stmt.body, self.model)
        it = stmt.iter
        is_range = (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                    and it.func.id == "range" and not it.keywords
                    and 1 <= len(it.args) <= 3)
        if not is_range:
            if talks:
                raise _Bail
            self._invalidate(stmt, env)
            return
        try:
            values = list(range(*[_eval_int(a, env) for a in it.args]))
        except _Bail:
            if talks:
                raise
            self._invalidate(stmt, env)
            return
        if len(values) > _MAX_ITER:
            if talks:
                raise _Bail
            self._invalidate(stmt, env)
            return
        rank_dep = self._expr_rank_dep(it)
        if rank_dep:
            self._rank_branch_depth += 1
        try:
            target = stmt.target if isinstance(stmt.target, ast.Name) else None
            for v in values:
                if target is not None:
                    env[target.id] = v
                self._stmts(stmt.body, env, depth)
            self._stmts(stmt.orelse, env, depth)
        finally:
            if rank_dep:
                self._rank_branch_depth -= 1

    def _invalidate(self, stmt: ast.stmt, env: dict) -> None:
        """Drop env bindings a skipped statement might have changed."""
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for tgt in targets:
                    for sub in ast.walk(tgt):
                        if isinstance(sub, ast.Name):
                            env.pop(sub.id, None)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        env.pop(sub.id, None)

    # -- calls ----------------------------------------------------------

    def _expr(self, expr: ast.expr, env: dict, depth: int) -> None:
        if isinstance(expr, (ast.Lambda,)):
            return
        if isinstance(expr, ast.Call):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr) and child is not expr.func:
                    self._expr(child, env, depth)
            if isinstance(expr.func, ast.Attribute):
                self._expr(expr.func.value, env, depth)
            self._call(expr, env, depth)
            return
        if isinstance(expr, (ast.BoolOp, ast.IfExp)):
            # short-circuit evaluation order is data-dependent; refuse if
            # any arm communicates
            for child in ast.walk(expr):
                if isinstance(child, ast.Call) and (
                        call_method_name(child) in _P2P_METHODS
                        or self.model.resolve_call(child) is not None):
                    raise _Bail
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child, env, depth)

    def _call(self, call: ast.Call, env: dict, depth: int) -> None:
        from .astutil import is_collective_call

        meth = call_method_name(call)
        recv = receiver_name(call)
        is_comm = recv is not None and recv in env["__comms__"]
        if meth in _P2P_METHODS:
            if not is_comm:
                # p2p-looking method on something that is not a communicator
                # (e.g. socket.send): no claim to make
                return
            self._p2p(call, meth, env)
            return
        coll = is_collective_call(call)
        if coll is not None:
            if is_comm or recv is None:
                self._emit(Op("coll", op=coll, node=call))
            return
        callee = self.model.resolve_call(call)
        if callee is None:
            return
        fn = callee.node
        if not _contains_comm_calls(fn.body, self.model):
            return  # a pure local helper: nothing observable
        if depth >= _MAX_DEPTH:
            raise _Bail
        params = [a.arg for a in fn.args.args]
        if call.keywords or len(call.args) > len(params):
            raise _Bail
        callee_comms = set()
        callee_env: dict = {}
        for param, arg in zip(params, call.args):
            if isinstance(arg, ast.Name) and arg.id in env["__comms__"]:
                callee_comms.add(param)
                continue
            try:
                callee_env[param] = _eval_int(arg, env)
            except _Bail:
                pass  # unevaluable arg: the param is simply unknown
        if not callee_comms and _contains_comm_calls(fn.body, self.model):
            raise _Bail  # helper talks on a communicator we did not pass
        self.run(fn, callee_comms, callee_env, depth + 1)

    def _p2p(self, call: ast.Call, meth: str, env: dict) -> None:
        def arg(pos: int, name: str, default=None):
            for kw in call.keywords:
                if kw.arg == name:
                    return kw.value
            if len(call.args) > pos:
                return call.args[pos]
            return default

        def dep(*exprs) -> bool:
            return self._rank_branch_depth > 0 \
                or any(self._expr_rank_dep(e) for e in exprs)

        if meth == "send":
            dest, tag = arg(0, "dest"), arg(2, "tag")
            self._emit(Op("send", peer=_eval_int(dest, env),
                          tag=0 if tag is None else _eval_int(tag, env),
                          node=call, rank_dep=dep(dest, tag)))
        elif meth in ("recv", "recv_with_status"):
            src, tag = arg(0, "source"), arg(1, "tag")
            self._emit(Op("recv",
                          peer=_ANY if src is None else _eval_int(src, env),
                          tag=_ANY if tag is None else _eval_int(tag, env),
                          node=call, rank_dep=dep(src, tag)))
        elif meth == "sendrecv":
            dest, src, tag = arg(0, "dest"), arg(2, "source"), arg(3, "tag")
            t = 0 if tag is None else _eval_int(tag, env)
            rd = dep(dest, src, tag)
            self._emit(Op("send", peer=_eval_int(dest, env), tag=t,
                          node=call, rank_dep=rd))
            self._emit(Op("recv", peer=_eval_int(src, env), tag=t,
                          node=call, rank_dep=rd))
        # probe is non-blocking: no op


_P2P_METHODS = frozenset({"send", "recv", "recv_with_status", "sendrecv", "probe"})


# --------------------------------------------------------------------------
# the matching simulator


@dataclass
class _Stuck:
    rank: int
    op: Op
    waits_on: "int | None"  # rank owning the earliest unexecuted matching send


def _simulate(traces: list[list[Op]]) -> "list[_Stuck] | None":
    """Replay per-rank op sequences; return the stuck set, or None if the
    protocol drains completely."""
    p = len(traces)
    pc = [0] * p
    posted: list[tuple[int, int, int]] = []  # (src, dst, tag) multiset

    def take(dst: int, src: int, tag: int) -> bool:
        for i, (s, d, t) in enumerate(posted):
            if d != dst:
                continue
            if src not in (_ANY, s):
                continue
            if tag not in (_ANY, t):
                continue
            posted.pop(i)
            return True
        return False

    while True:
        progressed = False
        # drain sends eagerly (buffered, non-blocking)
        for r in range(p):
            while pc[r] < len(traces[r]) and traces[r][pc[r]].kind == "send":
                op = traces[r][pc[r]]
                posted.append((r, op.peer, op.tag))
                pc[r] += 1
                progressed = True
        # receives
        for r in range(p):
            if pc[r] < len(traces[r]) and traces[r][pc[r]].kind == "recv":
                op = traces[r][pc[r]]
                if take(r, op.peer, op.tag):
                    pc[r] += 1
                    progressed = True
        # collectives: advance only when every unfinished rank sits at the
        # same collective
        waiting = [r for r in range(p)
                   if pc[r] < len(traces[r]) and traces[r][pc[r]].kind == "coll"]
        active = [r for r in range(p) if pc[r] < len(traces[r])]
        if waiting and waiting == active:
            names = {traces[r][pc[r]].op for r in waiting}
            if len(names) == 1:
                for r in waiting:
                    pc[r] += 1
                progressed = True
        if all(pc[r] >= len(traces[r]) for r in range(p)):
            return None
        if not progressed:
            break

    stuck: list[_Stuck] = []
    for r in range(p):
        if pc[r] >= len(traces[r]):
            continue
        op = traces[r][pc[r]]
        if op.kind != "recv":
            continue  # blocked collectives are SPMD101's domain
        waits_on = None
        for s in range(p):
            for j in range(pc[s], len(traces[s])):
                cand = traces[s][j]
                if cand.kind != "send":
                    continue
                if cand.peer != r:
                    continue
                if op.peer not in (_ANY, s):
                    continue
                if op.tag not in (_ANY, cand.tag):
                    continue
                waits_on = s
                break
            if waits_on is not None:
                break
        stuck.append(_Stuck(rank=r, op=op, waits_on=waits_on))
    return stuck


def _find_cycle(stuck: list[_Stuck]) -> "list[_Stuck] | None":
    by_rank = {s.rank: s for s in stuck}
    for start in stuck:
        seen: list[int] = []
        cur: "int | None" = start.rank
        while cur is not None and cur in by_rank:
            if cur in seen:
                cycle = seen[seen.index(cur):]
                return [by_rank[r] for r in cycle]
            seen.append(cur)
            cur = by_rank[cur].waits_on
    return None


def _describe(op: Op) -> str:
    peer = "ANY" if op.peer == _ANY else str(op.peer)
    tag = "ANY" if op.tag == _ANY else str(op.tag)
    return f"recv(source={peer}, tag={tag})"


# --------------------------------------------------------------------------
# the rule


def rule_deadlock(model: ModuleModel) -> list[Finding]:
    """SPMD501 + SPMD502 over every exactly-analyzable SPMD function."""
    findings: list[Finding] = []
    seen_nodes: set[int] = set()
    for info in model.functions:
        if not info.is_spmd or not info.comm_names:
            continue
        for size in WORLD_SIZES:
            try:
                traces = []
                for rank in range(size):
                    interp = _Interp(model, rank, size, tainted=info.tainted)
                    interp.run(info.node, info.comm_names, {})
                    traces.append(interp.ops)
            except _Bail:
                break  # not exactly analyzable at any size: stay silent
            if any(o.kind in ("send", "recv") and o.peer != _ANY
                   and not 0 <= o.peer < size
                   for t in traces for o in t):
                continue  # a peer outside this world size: not a real run
            sends = sum(1 for t in traces for o in t if o.kind == "send")
            recvs = sum(1 for t in traces for o in t if o.kind == "recv")
            if recvs == 0 or sends == 0:
                # one-sided halves of a cross-function protocol: the
                # matching partner lives elsewhere, no closed-world claim
                continue
            stuck = _simulate(traces)
            if not stuck:
                continue
            if not any(s.op.rank_dep for s in stuck):
                # nothing rank-dependent is blocked: likely a single-rank
                # helper half of a cross-function protocol, not SPMD code
                continue
            cycle = _find_cycle(stuck)
            if cycle is not None:
                anchor = min(cycle, key=lambda s: s.rank)
                if id(anchor.op.node) in seen_nodes:
                    continue
                seen_nodes.add(id(anchor.op.node))
                chain = " -> ".join(
                    f"rank {s.rank} [{_describe(s.op)} from rank {s.waits_on}]"
                    for s in cycle
                ) + f" -> rank {cycle[0].rank}"
                findings.append(Finding(
                    model.path, anchor.op.node.lineno, anchor.op.node.col_offset,
                    "SPMD502",
                    f"cyclic blocking at p={size}: {chain}; every rank's "
                    "matching send is behind its own blocked receive "
                    "(post the sends first, or use sendrecv)",
                    function=info.name,
                ))
                break
            orphans = [s for s in stuck if s.waits_on is None]
            if orphans:
                s = min(orphans, key=lambda s: s.rank)
                if id(s.op.node) in seen_nodes:
                    continue
                seen_nodes.add(id(s.op.node))
                findings.append(Finding(
                    model.path, s.op.node.lineno, s.op.node.col_offset,
                    "SPMD501",
                    f"rank {s.rank} blocks in {_describe(s.op)} at p={size} "
                    "but no rank ever sends a matching (peer, tag) message: "
                    "the receive can never complete",
                    function=info.name,
                ))
                break
    return findings
