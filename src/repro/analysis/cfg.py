"""Intraprocedural control-flow graphs for the SPMD analyzer.

The linter's first generation reasoned about line numbers; that breaks the
moment control flow does anything interesting (an RMA access *inside a loop*
textually before the ``free()`` that kills the window, code after an early
``return``).  This module builds a conventional basic-block CFG per function
and provides a worklist solver for forward dataflow problems over it.

Scope and precision:

* every statement of the function body lands in exactly one basic block
  (nested function/class bodies are *not* part of the enclosing CFG — they
  execute in their own frame and get their own CFG);
* ``if``/``while``/``for``/``try``/``with``/``match`` produce the usual
  edges; ``break``/``continue``/``return``/``raise`` terminate their block;
* exception edges are approximated: the block entering a ``try`` may jump
  to any handler (we do not model which statement raises);
* unreachable code (after a ``return``, say) lands in blocks with no
  predecessors and is reported by :meth:`CFG.unreachable_stmts` — the
  "reachable or reported" contract the property tests pin down.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


@dataclass
class Block:
    """One basic block: straight-line statements plus CFG edges."""

    id: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(s).__name__ for s in self.stmts)
        return f"Block({self.id}, [{kinds}], ->{self.succs})"


class CFG:
    """Control-flow graph of one function (or module) body."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry: int = self._new()
        self.exit: int = self._new()

    # -- construction --------------------------------------------------

    def _new(self) -> int:
        b = Block(id=len(self.blocks))
        self.blocks.append(b)
        return b.id

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    # -- queries --------------------------------------------------------

    def reachable(self) -> set[int]:
        """Block ids reachable from the entry block."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            stack.extend(self.blocks[b].succs)
        return seen

    def unreachable_stmts(self) -> list[ast.stmt]:
        """Statements in blocks the entry cannot reach (dead code)."""
        live = self.reachable()
        out: list[ast.stmt] = []
        for b in self.blocks:
            if b.id not in live:
                out.extend(b.stmts)
        return out

    def all_stmts(self) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        for b in self.blocks:
            out.extend(b.stmts)
        return out


@dataclass
class _Loop:
    head: int
    after: int


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.current = self.cfg._new()
        self.cfg.add_edge(self.cfg.entry, self.current)
        self.loops: list[_Loop] = []

    # every statement is appended to exactly one block
    def place(self, stmt: ast.stmt) -> None:
        self.cfg.blocks[self.current].stmts.append(stmt)

    def fresh(self, *preds: int) -> int:
        b = self.cfg._new()
        for p in preds:
            self.cfg.add_edge(p, b)
        return b

    def seal(self, dst: int) -> None:
        """End the current block with an edge to ``dst``."""
        self.cfg.add_edge(self.current, dst)

    def dead_block(self) -> None:
        """Open a successor-of-nothing block (code after return/break)."""
        self.current = self.cfg._new()

    # -- statement dispatch ---------------------------------------------

    def build(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            meth = getattr(self, f"_on_{type(stmt).__name__}", self._on_simple)
            meth(stmt)

    def _on_simple(self, stmt: ast.stmt) -> None:
        self.place(stmt)

    def _on_Return(self, stmt: ast.stmt) -> None:
        self.place(stmt)
        self.seal(self.cfg.exit)
        self.dead_block()

    _on_Raise = _on_Return

    def _on_Break(self, stmt: ast.stmt) -> None:
        self.place(stmt)
        if self.loops:
            self.seal(self.loops[-1].after)
        else:  # break outside a loop: syntactically invalid, treat as exit
            self.seal(self.cfg.exit)
        self.dead_block()

    def _on_Continue(self, stmt: ast.stmt) -> None:
        self.place(stmt)
        if self.loops:
            self.seal(self.loops[-1].head)
        else:
            self.seal(self.cfg.exit)
        self.dead_block()

    def _on_If(self, stmt: ast.If) -> None:
        self.place(stmt)
        cond = self.current
        then_b = self.fresh(cond)
        self.current = then_b
        self.build(stmt.body)
        then_end = self.current
        if stmt.orelse:
            else_b = self.fresh(cond)
            self.current = else_b
            self.build(stmt.orelse)
            else_end = self.current
            join = self.fresh(then_end, else_end)
        else:
            join = self.fresh(then_end, cond)
        self.current = join

    def _loop(self, stmt: ast.stmt, body: list[ast.stmt],
              orelse: list[ast.stmt]) -> None:
        head = self.fresh(self.current)
        self.cfg.blocks[head].stmts.append(stmt)
        after = self.cfg._new()
        body_b = self.fresh(head)
        self.loops.append(_Loop(head, after))
        self.current = body_b
        self.build(body)
        self.seal(head)  # back edge
        self.loops.pop()
        if orelse:
            else_b = self.fresh(head)
            self.current = else_b
            self.build(orelse)
            self.seal(after)
        else:
            self.cfg.add_edge(head, after)
        self.current = after

    def _on_While(self, stmt: ast.While) -> None:
        self._loop(stmt, stmt.body, stmt.orelse)

    def _on_For(self, stmt: ast.For) -> None:
        self._loop(stmt, stmt.body, stmt.orelse)

    _on_AsyncFor = _on_For

    def _on_With(self, stmt: ast.With) -> None:
        self.place(stmt)
        body_b = self.fresh(self.current)
        self.current = body_b
        self.build(stmt.body)

    _on_AsyncWith = _on_With

    def _on_Try(self, stmt: ast.Try) -> None:
        self.place(stmt)
        pre = self.current
        body_b = self.fresh(pre)
        self.current = body_b
        self.build(stmt.body)
        body_end = self.current
        ends: list[int] = []
        if stmt.orelse:
            else_b = self.fresh(body_end)
            self.current = else_b
            self.build(stmt.orelse)
            ends.append(self.current)
        else:
            ends.append(body_end)
        for handler in stmt.handlers:
            # any statement in the try body may raise; approximate with an
            # edge from the block that entered the try
            h_b = self.fresh(pre, body_end)
            self.current = h_b
            self.build(handler.body)
            ends.append(self.current)
        if stmt.finalbody:
            fin = self.fresh(*ends)
            self.current = fin
            self.build(stmt.finalbody)
            after = self.fresh(self.current)
        else:
            after = self.fresh(*ends)
        self.current = after

    _on_TryStar = _on_Try

    def _on_Match(self, stmt: ast.stmt) -> None:
        self.place(stmt)
        cond = self.current
        ends: list[int] = [cond]  # no case may match
        for case in stmt.cases:  # type: ignore[attr-defined]
            c_b = self.fresh(cond)
            self.current = c_b
            self.build(case.body)
            ends.append(self.current)
        self.current = self.fresh(*ends)


def build_cfg(fn: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Module") -> CFG:
    """Build the CFG of one function body (or a module's top level)."""
    b = _Builder()
    b.build(fn.body)
    b.seal(b.cfg.exit)
    return b.cfg


def forward_dataflow(
    cfg: CFG,
    init: Any,
    transfer: Callable[[Block, Any], Any],
    join: Callable[[Any, Any], Any],
    equal: Callable[[Any, Any], bool],
) -> dict[int, Any]:
    """Worklist solver for a forward may/must dataflow problem.

    ``init`` is the state at the entry block; ``transfer(block, state)``
    returns the out-state of ``block`` given its in-state (it must not
    mutate ``state``); ``join`` merges predecessor out-states; ``equal``
    decides convergence.  Returns the fixpoint **in-state** of every block.
    """
    in_states: dict[int, Any] = {cfg.entry: init}
    out_states: dict[int, Any] = {}
    work = [cfg.entry]
    while work:
        bid = work.pop(0)
        block = cfg.blocks[bid]
        state = in_states.get(bid, init if bid == cfg.entry else None)
        if state is None:
            continue
        out = transfer(block, state)
        prev = out_states.get(bid)
        if prev is not None and equal(prev, out):
            continue
        out_states[bid] = out
        for s in block.succs:
            merged = out
            for p in cfg.blocks[s].preds:
                if p != bid and p in out_states:
                    merged = join(merged, out_states[p])
            old = in_states.get(s)
            if old is None or not equal(old, merged):
                in_states[s] = merged
                if s not in work:
                    work.append(s)
    return in_states
