"""Static + dynamic correctness analysis for SPMD programs.

The package attacks the failure classes of bulk-synchronous SPMD code that
the runtime's docstrings warn about:

* **collective divergence** — ranks of one communicator entering different
  collectives (deadlock, or silent garbage exchange), typically caused by
  collectives under rank-dependent control flow;
* **point-to-point deadlock** — send/recv (peer, tag) pairs that can never
  match, or cyclic blocking chains (everyone receives before sending);
* **nondeterminism** — unordered iteration, wall clocks, or order-sensitive
  float folds leaking into replicated algorithm state;
* **backend portability** — thread-backend conveniences (shared globals,
  by-reference payloads, closures) that break under a process backend;
* **one-sided races** — unsynchronized ``Get``/``Put``/``Fetch-and-op``
  overlap in passive-target epochs, the hazard of the paper's path-parallel
  augmentation (Algorithm 4).

The *static* half lives here: a CFG + rank-taint dataflow engine
(:mod:`repro.analysis.engine`) with per-function collective-effect
summaries propagated over the module call graph, queried by the rule
catalogue in :mod:`repro.analysis.rules` and its satellite rule modules
(:mod:`.deadlock`, :mod:`.determinism`, :mod:`.portability`).  Entry
points: :func:`lint_paths` / ``repro lint`` with text, JSON, or SARIF
output, inline ``# repro: noqa[...]`` suppression and baseline files
(:mod:`repro.analysis.suppress`).

The *dynamic* half is wired into the runtime and enabled per job with
``spmd(..., verify=True)`` (``repro spmd --verify``): a collective-trace
checker in :class:`repro.runtime.fabric.CollectiveTrace` and an RMA race
detector in :class:`repro.runtime.rma.RmaAccessLog`.
"""

from .lint import lint_file, lint_paths, lint_source
from .report import RULES, Finding, format_json, format_text, sort_findings
from .rules import all_rules
from .sarif import format_sarif, sarif_log
from .suppress import Baseline, load_baseline, write_baseline
from .cli import run_lint

__all__ = [
    "Baseline",
    "Finding",
    "RULES",
    "all_rules",
    "format_json",
    "format_sarif",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "run_lint",
    "sarif_log",
    "sort_findings",
    "write_baseline",
]
