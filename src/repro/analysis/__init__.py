"""Static + dynamic correctness analysis for SPMD programs.

The package attacks the two failure classes of bulk-synchronous SPMD code
that the runtime's docstrings warn about:

* **collective divergence** — ranks of one communicator entering different
  collectives (deadlock, or silent garbage exchange), typically caused by
  collectives under rank-dependent control flow;
* **one-sided races** — unsynchronized ``Get``/``Put``/``Fetch-and-op``
  overlap in passive-target epochs, the hazard of the paper's path-parallel
  augmentation (Algorithm 4).

The *static* half lives here: an AST linter (:func:`lint_paths`,
``repro lint``) with the rule catalogue in :mod:`repro.analysis.rules`.
The *dynamic* half is wired into the runtime and enabled per job with
``spmd(..., verify=True)`` (``repro spmd --verify``): a collective-trace
checker in :class:`repro.runtime.fabric.CollectiveTrace` and an RMA race
detector in :class:`repro.runtime.rma.RmaAccessLog`.
"""

from .lint import lint_file, lint_paths, lint_source
from .report import RULES, Finding, format_json, format_text, sort_findings
from .rules import ALL_RULES
from .cli import run_lint

__all__ = [
    "ALL_RULES",
    "Finding",
    "RULES",
    "format_json",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_lint",
    "sort_findings",
]
