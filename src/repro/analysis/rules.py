"""The first four SPMD rule families, rebuilt on the dataflow engine.

Every rule is a function ``rule(model) -> list[Finding]`` over a
:class:`~repro.analysis.engine.ModuleModel`.  The catalogue mirrors the
failure classes of the paper's MCM-DIST:

SPMD101
    A rank-dependent branch whose sides perform *different* collective
    sequences — including collectives reached only through module-local
    helper calls (interprocedural effect summaries), and collectives that
    become unreachable because one side returns/raises early
    (path-sensitivity).  Under MPI semantics every rank must enter the same
    collectives in the same order; divergence deadlocks or silently
    exchanges garbage.
SPMD102
    A collective (possibly inside a helper) in a loop whose trip count is
    rank-dependent: ranks run different numbers of collective rounds.
SPMD201
    A constant user tag at or above the reserved collective tag base
    (1 << 30): the message would masquerade as collective traffic.
SPMD301
    A one-sided window access on a CFG path where the fence epoch may not
    be open (before the first ``fence``, after ``free`` — including via
    loop back edges — or with no fence at all).
SPMD401
    An unseeded random source inside an SPMD function.  Seeding is scoped
    per RNG: ``random.seed`` at module scope or earlier in the function
    excuses ``random.*``, ``np.random.seed`` excuses the NumPy global RNG,
    and seeding one source never excuses the other (the first-generation
    linter suppressed the whole module on *any* ``.seed()`` call).

The SPMD5xx/6xx/7xx families live in :mod:`.deadlock`,
:mod:`.determinism` and :mod:`.portability`.
"""

from __future__ import annotations

import ast

from .astutil import (
    RESERVED_TAG_BASE,
    RMA_ACCESS_METHODS,
    TAGGED_METHODS,
    _NP_RANDOM_SAFE,
    _RANDOM_SAFE,
    always_terminates,
    call_method_name,
    call_plain_name,
    const_int,
    dotted_name,
    expr_references_rank,
    own_nodes,
    receiver_name,
)
from .cfg import forward_dataflow
from .engine import (
    Effect,
    ModuleModel,
    effect_keys,
    first_anchor,
    flat_ops,
    is_definite,
)
from .report import Finding


# --------------------------------------------------------------- SPMD101/102


def _branch_raises(stmts: list[ast.stmt]) -> bool:
    """Does the branch contain a top-level-ish ``raise`` (validation exits
    that abort the whole SPMD job rather than silently diverging)?"""
    for stmt in stmts:
        if isinstance(stmt, ast.Raise):
            return True
        if isinstance(stmt, ast.If) and (
                _branch_raises(stmt.body) or _branch_raises(stmt.orelse)):
            return True
    return False


def _finding_at(model: ModuleModel, eff: Effect, fn_name: str,
                code: str, message: str) -> Finding:
    node = eff.node
    if eff.via:
        message += f" (reached through helper call {'->'.join(eff.via)})"
    return Finding(model.path, node.lineno, node.col_offset, code, message,
                   function=fn_name)


def rule_collective_divergence(model: ModuleModel) -> list[Finding]:
    """SPMD101 + SPMD102: collectives under rank-divergent control flow."""
    findings: list[Finding] = []
    for info in model.functions:
        if not info.is_spmd:
            continue

        def scan(stmts: list[ast.stmt], following) -> None:
            for i, stmt in enumerate(stmts):
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                rest = stmts[i + 1:]

                def here_after():
                    return model.effects_of(rest, info) + following()

                if isinstance(stmt, ast.If):
                    if expr_references_rank(stmt.test, info.tainted):
                        _check_rank_if(stmt, here_after)
                    scan(stmt.body, here_after)
                    scan(stmt.orelse, here_after)
                elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                    bound = stmt.test if isinstance(stmt, ast.While) else stmt.iter
                    if expr_references_rank(bound, info.tainted):
                        _check_rank_loop(stmt)
                    scan(stmt.body, here_after)
                    scan(stmt.orelse, here_after)
                elif isinstance(stmt, ast.Try):
                    for sub in [stmt.body, stmt.orelse, stmt.finalbody] + [
                            h.body for h in stmt.handlers]:
                        scan(sub, here_after)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    scan(stmt.body, here_after)
                elif hasattr(ast, "Match") and isinstance(stmt, ast.Match):
                    for case in stmt.cases:
                        scan(case.body, here_after)

        def _check_rank_if(stmt: ast.If, following) -> None:
            seq_if = model.effects_of(stmt.body, info)
            seq_else = model.effects_of(stmt.orelse, info)
            # a branch that always raises aborts the whole job under the
            # runtime's abort propagation (root-side validation is a common
            # legitimate pattern), so it cannot *divergently block* peers
            if _branch_raises(stmt.body) or _branch_raises(stmt.orelse):
                return
            term_if = always_terminates(stmt.body)
            term_else = bool(stmt.orelse) and always_terminates(stmt.orelse)
            if effect_keys(seq_if) == effect_keys(seq_else) and term_if == term_else:
                return
            # path-sensitive comparison: ranks that exit early inside the
            # branch skip the collectives *after* the If, so compare whole
            # continuation paths, not just the branch bodies
            after = following() if term_if != term_else else ()
            path_if = seq_if if term_if else seq_if + after
            path_else = seq_else if term_else else seq_else + after
            if effect_keys(path_if) == effect_keys(path_else):
                return
            if not (is_definite(path_if) and is_definite(path_else)):
                return
            anchor = first_anchor(path_if) or first_anchor(path_else)
            if anchor is None:
                return
            findings.append(_finding_at(
                model, anchor, info.name, "SPMD101",
                "collective sequence diverges across rank-dependent "
                f"branches (line {stmt.lineno}): ranks taking the if-branch "
                f"enter {flat_ops(path_if) or ['nothing']}, ranks taking the "
                f"else-branch enter {flat_ops(path_else) or ['nothing']}; "
                "every rank must enter the same collectives in the same order",
            ))

        def _check_rank_loop(stmt) -> None:
            body = model.effects_of(stmt.body, info)
            anchor = first_anchor(body)
            if anchor is not None:
                findings.append(_finding_at(
                    model, anchor, info.name, "SPMD102",
                    f"collective '{anchor.op}' inside a loop bounded by "
                    f"rank-dependent data (loop at line {stmt.lineno}): "
                    "ranks may execute different numbers of collective "
                    "rounds",
                ))

        scan(info.node.body, lambda: ())
    return findings


# ------------------------------------------------------------------- SPMD201


def _tag_expr(call: ast.Call, meth: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == "tag":
            return kw.value
    pos = TAGGED_METHODS[meth]
    if len(call.args) > pos:
        return call.args[pos]
    return None


def rule_reserved_tag(model: ModuleModel) -> list[Finding]:
    """SPMD201: constant user tags in the reserved collective tag space."""
    findings: list[Finding] = []

    def visit(node: ast.AST, function: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            function = node.name
        if isinstance(node, ast.Call):
            meth = call_method_name(node)
            if meth in TAGGED_METHODS:
                tag_node = _tag_expr(node, meth)
                value = const_int(tag_node) if tag_node is not None else None
                if value is not None and value >= RESERVED_TAG_BASE:
                    findings.append(Finding(
                        model.path, tag_node.lineno, tag_node.col_offset, "SPMD201",
                        f"user tag {value} in '{meth}' is >= the reserved collective "
                        f"tag base ({RESERVED_TAG_BASE}): the runtime reserves that "
                        "space for collective traffic and rejects it with CommError",
                        function=function,
                    ))
        for child in ast.iter_child_nodes(node):
            visit(child, function)

    visit(model.tree, "")
    return findings


# ------------------------------------------------------------------- SPMD301

#: May-states of a window along a CFG path.
_PRE, _OPEN, _FREED = "pre", "open", "freed"


def _rma_calls_in_stmt(stmt: ast.stmt) -> list[ast.Call]:
    """Calls in one statement, source order, nested defs excluded."""
    calls: list[ast.Call] = []

    def visit(n: ast.AST) -> None:
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.ClassDef, ast.Lambda)):
            return
        if isinstance(n, ast.Call):
            calls.append(n)
        for child in ast.iter_child_nodes(n):
            visit(child)

    visit(stmt)
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def rule_rma_epoch(model: ModuleModel) -> list[Finding]:
    """SPMD301: window accesses on CFG paths outside a fence epoch."""
    findings: list[Finding] = []
    for info in model.functions:
        fn = info.node
        windows = {
            tgt.id
            for node in own_nodes(fn)
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)
            and call_plain_name(node.value) == "Window"
            for tgt in node.targets if isinstance(tgt, ast.Name)
        }
        # a name that receives a .fence() call is a window however it got
        # here (typically a parameter) — its epoch discipline is checkable
        windows |= {
            receiver_name(n)
            for n in own_nodes(fn)
            if isinstance(n, ast.Call) and call_method_name(n) == "fence"
            and receiver_name(n) is not None
        }
        # fence_all([w, ...]) / free_all(ws) are the batched epoch calls
        # (rma.fence_all): resolve their window list — a literal, or a name
        # assigned a literal list of names — so they participate in the
        # epoch dataflow exactly like per-window fence/free
        list_aliases: dict = {}
        for node in own_nodes(fn):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, (ast.List, ast.Tuple)):
                elts = [e.id for e in node.value.elts if isinstance(e, ast.Name)]
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        list_aliases[tgt.id] = elts

        def batch_epoch_windows(call: ast.Call) -> list:
            if call_plain_name(call) not in ("fence_all", "free_all") \
                    or not call.args:
                return []
            arg = call.args[0]
            if isinstance(arg, (ast.List, ast.Tuple)):
                return [e.id for e in arg.elts if isinstance(e, ast.Name)]
            if isinstance(arg, ast.Name):
                return list_aliases.get(arg.id, [])
            return []

        windows |= {
            w
            for n in own_nodes(fn) if isinstance(n, ast.Call)
            for w in batch_epoch_windows(n)
        }
        if not windows:
            continue
        has_fence = {
            name: any(
                isinstance(n, ast.Call) and (
                    (receiver_name(n) == name and call_method_name(n) == "fence")
                    or (call_plain_name(n) == "fence_all"
                        and name in batch_epoch_windows(n))
                )
                for n in own_nodes(fn)
            )
            for name in windows
        }
        cfg = info.cfg

        def transfer_stmt(stmt: ast.stmt, state: dict, emit=None) -> dict:
            for call in _rma_calls_in_stmt(stmt):
                batch = batch_epoch_windows(call)
                if batch:
                    freeing = call_plain_name(call) == "free_all"
                    for w in batch:
                        if w not in windows:
                            continue
                        cur = state.get(w, frozenset({_PRE}))
                        if freeing:
                            state = {**state, w: frozenset({_FREED})}
                        else:
                            state = {**state, w: frozenset(
                                {_OPEN} | ({_FREED} if _FREED in cur else set())
                            )}
                    continue
                recv, meth = receiver_name(call), call_method_name(call)
                if recv not in windows:
                    if isinstance(stmt, ast.Assign) and call is stmt.value \
                            and call_plain_name(call) == "Window":
                        for tgt in stmt.targets:
                            if isinstance(tgt, ast.Name) and tgt.id in windows:
                                state = {**state, tgt.id: frozenset({_PRE})}
                    continue
                cur = state.get(recv, frozenset({_PRE}))
                if meth == "fence":
                    nxt = frozenset({_OPEN} | ({_FREED} if _FREED in cur else set()))
                    state = {**state, recv: nxt}
                elif meth == "free":
                    state = {**state, recv: frozenset({_FREED})}
                elif meth in RMA_ACCESS_METHODS and emit is not None:
                    if _FREED in cur:
                        emit(call, recv, meth,
                             f"'{recv}.{meth}' may execute after "
                             f"'{recv}.free()': the window no longer exists")
                    elif _PRE in cur:
                        if has_fence[recv]:
                            emit(call, recv, meth,
                                 f"'{recv}.{meth}' is reachable before the "
                                 f"first '{recv}.fence()': the access epoch "
                                 "is not open yet")
                        else:
                            emit(call, recv, meth,
                                 f"'{recv}.{meth}' without any "
                                 f"'{recv}.fence()' in this function: "
                                 "one-sided accesses need a documented "
                                 "epoch (fence ... access ... fence)")
                # a Window(...) call assigned to a tracked name resets it
                if isinstance(stmt, ast.Assign) and call is stmt.value \
                        and call_plain_name(call) == "Window":
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name) and tgt.id in windows:
                            state = {**state, tgt.id: frozenset({_PRE})}
            return state

        def transfer(block, state: dict) -> dict:
            for stmt in block.stmts:
                state = transfer_stmt(stmt, state)
            return state

        def join(a: dict, b: dict) -> dict:
            out = dict(a)
            for k, v in b.items():
                out[k] = out.get(k, frozenset()) | v
            return out

        init = {name: frozenset({_PRE}) for name in windows}
        in_states = forward_dataflow(cfg, init, transfer, join, lambda a, b: a == b)

        reported: set[int] = set()

        def emit(call: ast.Call, recv: str, meth: str, msg: str) -> None:
            if id(call) in reported:
                return
            reported.add(id(call))
            findings.append(Finding(
                model.path, call.lineno, call.col_offset, "SPMD301", msg,
                function=info.name,
            ))

        for block in cfg.blocks:
            if block.id not in in_states:
                continue  # unreachable
            state = in_states[block.id]
            for stmt in block.stmts:
                state = transfer_stmt(stmt, state, emit)
    return findings


# ------------------------------------------------------------------- SPMD401


def _is_seed_call(node: ast.Call) -> bool:
    return isinstance(node.func, ast.Attribute) and node.func.attr == "seed"


def _seed_scope(node: ast.Call) -> str | None:
    """Which RNG a ``.seed()`` call seeds: ``"random"``, ``"np.random"``,
    or None for a seed on some other object (an explicit Generator — its
    uses are already safe, so it excuses nothing global)."""
    target = dotted_name(node.func.value) if isinstance(node.func, ast.Attribute) else None
    if target == "random":
        return "random"
    if target in ("np.random", "numpy.random"):
        return "np.random"
    return None


def _random_hazard(node: ast.Call) -> tuple[str, str] | None:
    """(scope, rendered name) of the unseeded random source used, or None."""
    f = node.func
    if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name) \
            and f.value.id == "random" and f.attr not in _RANDOM_SAFE:
        return "random", f"random.{f.attr}"
    if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Attribute) \
            and f.value.attr == "random" \
            and isinstance(f.value.value, ast.Name) \
            and f.value.value.id in ("np", "numpy"):
        if f.attr not in _NP_RANDOM_SAFE:
            return "np.random", f"{f.value.value.id}.random.{f.attr}"
        if f.attr in ("default_rng", "RandomState") and not node.args and not node.keywords:
            return "", f"{f.value.value.id}.random.{f.attr}()"
    if isinstance(f, ast.Name) and f.id == "default_rng" \
            and not node.args and not node.keywords:
        return "", "default_rng()"
    return None


def _module_scope_seeds(tree: ast.Module) -> set[str]:
    """RNG scopes seeded by module-level statements (imports-time seeding)."""
    seeded: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and _is_seed_call(node):
                scope = _seed_scope(node)
                if scope:
                    seeded.add(scope)
    return seeded


def rule_unseeded_random(model: ModuleModel) -> list[Finding]:
    """SPMD401: unseeded random sources inside SPMD functions, with seeding
    scoped per function and per RNG object."""
    findings: list[Finding] = []
    module_seeded = _module_scope_seeds(model.tree)
    for info in model.functions:
        if not info.is_spmd:
            continue
        seed_lines: dict[str, int] = {}
        for n in own_nodes(info.node):
            if isinstance(n, ast.Call) and _is_seed_call(n):
                scope = _seed_scope(n)
                if scope:
                    seed_lines[scope] = min(seed_lines.get(scope, n.lineno), n.lineno)
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            hazard = _random_hazard(node)
            if hazard is None:
                continue
            scope, name = hazard
            if scope and scope in module_seeded:
                continue
            if scope and scope in seed_lines and node.lineno > seed_lines[scope]:
                continue
            findings.append(Finding(
                model.path, node.lineno, node.col_offset, "SPMD401",
                f"unseeded '{name}' in an SPMD function: each rank draws "
                "an independent stream, so replicated computations diverge; "
                "seed explicitly (e.g. np.random.default_rng(seed))",
                function=info.name,
            ))
    return findings


def _registry():
    from .deadlock import rule_deadlock
    from .determinism import rule_determinism
    from .portability import rule_portability

    return (
        rule_collective_divergence,
        rule_reserved_tag,
        rule_rma_epoch,
        rule_unseeded_random,
        rule_deadlock,
        rule_determinism,
        rule_portability,
    )


#: The rule registry, in report order (filled lazily to avoid import cycles).
ALL_RULES = ()


def all_rules():
    global ALL_RULES
    if not ALL_RULES:
        ALL_RULES = _registry()
    return ALL_RULES
