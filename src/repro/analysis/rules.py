"""The SPMD lint rules.

Every rule is a function ``rule(tree, path) -> list[Finding]`` over a parsed
module.  The catalogue mirrors the failure classes of the paper's MCM-DIST:

SPMD101
    A rank-dependent ``if`` whose branches contain *different* collective
    sequences.  Under MPI semantics every rank of a communicator must enter
    the same collectives in the same order; divergence deadlocks (bcast vs
    nothing) or silently exchanges garbage (bcast vs reduce at p=2).
SPMD102
    A collective inside a loop whose trip count is rank-dependent
    (``for i in range(comm.rank)``): ranks run different numbers of
    collective rounds, which is the same divergence one level up.
SPMD201
    A constant user tag at or above the reserved collective tag base
    (1 << 30): the message would masquerade as collective traffic.
SPMD301
    A one-sided ``get``/``put``/``accumulate``/``fetch_and_op`` on a window
    outside the ``fence`` epoch discipline visible in the function
    (before the first fence, after ``free``, or with no fence at all).
SPMD401
    An unseeded random source inside an SPMD function: ranks draw
    uncorrelated streams, so "identical" replicated computations diverge —
    the nondeterminism hazard the paper's deterministic semirings avoid.
"""

from __future__ import annotations

import ast

from .astutil import (
    RESERVED_TAG_BASE,
    RMA_ACCESS_METHODS,
    TAGGED_METHODS,
    _NP_RANDOM_SAFE,
    _RANDOM_SAFE,
    call_method_name,
    call_plain_name,
    collectives_in,
    const_int,
    expr_references_rank,
    is_spmd_function,
    rank_tainted_names,
    receiver_name,
    walk_functions,
)
from .report import Finding


def _stmts_in(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.stmt]:
    out: list[ast.stmt] = []

    def visit(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            out.append(stmt)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub:
                    visit(sub)
            for handler in getattr(stmt, "handlers", []) or []:
                visit(handler.body)

    visit(fn.body)
    return out


def rule_collective_divergence(tree: ast.AST, path: str) -> list[Finding]:
    """SPMD101 + SPMD102: collectives under rank-divergent control flow."""
    findings: list[Finding] = []
    for fn in walk_functions(tree):
        if not is_spmd_function(fn):
            continue
        tainted = rank_tainted_names(fn)
        for stmt in _stmts_in(fn):
            if isinstance(stmt, ast.If) and expr_references_rank(stmt.test, tainted):
                seq_if = collectives_in(stmt.body)
                seq_else = collectives_in(stmt.orelse)
                ops_if = [op for op, _ in seq_if]
                ops_else = [op for op, _ in seq_else]
                if ops_if != ops_else:
                    anchor = (seq_if or seq_else)[0][1]
                    findings.append(Finding(
                        path, anchor.lineno, anchor.col_offset, "SPMD101",
                        "collective sequence diverges across rank-dependent "
                        f"branches (line {stmt.lineno}): if-branch enters "
                        f"{ops_if or ['nothing']}, else-branch enters "
                        f"{ops_else or ['nothing']}; every rank must enter the "
                        "same collectives in the same order",
                        function=fn.name,
                    ))
            elif isinstance(stmt, (ast.While, ast.For)):
                bound = stmt.test if isinstance(stmt, ast.While) else stmt.iter
                if not expr_references_rank(bound, tainted):
                    continue
                inner = collectives_in(stmt.body)
                if inner:
                    op, call = inner[0]
                    findings.append(Finding(
                        path, call.lineno, call.col_offset, "SPMD102",
                        f"collective '{op}' inside a loop bounded by "
                        f"rank-dependent data (loop at line {stmt.lineno}): "
                        "ranks may execute different numbers of collective "
                        "rounds",
                        function=fn.name,
                    ))
    return findings


def _tag_expr(call: ast.Call, meth: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == "tag":
            return kw.value
    pos = TAGGED_METHODS[meth]
    if len(call.args) > pos:
        return call.args[pos]
    return None


def rule_reserved_tag(tree: ast.AST, path: str) -> list[Finding]:
    """SPMD201: constant user tags in the reserved collective tag space."""
    findings: list[Finding] = []

    def visit(node: ast.AST, function: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            function = node.name
        if isinstance(node, ast.Call):
            meth = call_method_name(node)
            if meth in TAGGED_METHODS:
                tag_node = _tag_expr(node, meth)
                value = const_int(tag_node) if tag_node is not None else None
                if value is not None and value >= RESERVED_TAG_BASE:
                    findings.append(Finding(
                        path, tag_node.lineno, tag_node.col_offset, "SPMD201",
                        f"user tag {value} in '{meth}' is >= the reserved collective "
                        f"tag base ({RESERVED_TAG_BASE}): the runtime reserves that "
                        "space for collective traffic and rejects it with CommError",
                        function=function,
                    ))
        for child in ast.iter_child_nodes(node):
            visit(child, function)

    visit(tree, "")
    return findings


def rule_rma_epoch(tree: ast.AST, path: str) -> list[Finding]:
    """SPMD301: window accesses outside the visible fence epoch."""
    findings: list[Finding] = []
    for fn in walk_functions(tree):
        windows: dict[str, ast.Call] = {}
        fences: dict[str, int] = {}
        frees: dict[str, int] = {}
        accesses: dict[str, list[tuple[str, ast.Call]]] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call) \
                    and call_plain_name(node.value) == "Window":
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        windows[tgt.id] = node.value
            elif isinstance(node, ast.Call):
                recv = receiver_name(node)
                meth = call_method_name(node)
                if recv is None or meth is None:
                    continue
                if meth == "fence":
                    fences[recv] = min(fences.get(recv, node.lineno), node.lineno)
                elif meth == "free":
                    frees[recv] = min(frees.get(recv, node.lineno), node.lineno)
                elif meth in RMA_ACCESS_METHODS:
                    accesses.setdefault(recv, []).append((meth, node))
        for name in windows:
            for meth, call in accesses.get(name, []):
                if name not in fences:
                    findings.append(Finding(
                        path, call.lineno, call.col_offset, "SPMD301",
                        f"'{name}.{meth}' without any '{name}.fence()' in this "
                        "function: one-sided accesses need a documented epoch "
                        "(fence ... access ... fence)",
                        function=fn.name,
                    ))
                elif call.lineno < fences[name]:
                    findings.append(Finding(
                        path, call.lineno, call.col_offset, "SPMD301",
                        f"'{name}.{meth}' before the first '{name}.fence()' "
                        f"(line {fences[name]}): the access epoch is not open "
                        "yet",
                        function=fn.name,
                    ))
                elif name in frees and call.lineno > frees[name]:
                    findings.append(Finding(
                        path, call.lineno, call.col_offset, "SPMD301",
                        f"'{name}.{meth}' after '{name}.free()' "
                        f"(line {frees[name]}): the window no longer exists",
                        function=fn.name,
                    ))
    return findings


def _module_seeds(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _is_seed_call(node):
            return True
    return False


def _is_seed_call(node: ast.Call) -> bool:
    f = node.func
    if isinstance(f, ast.Attribute) and f.attr == "seed":
        return True
    return False


def _random_hazard(node: ast.Call) -> str | None:
    """Name of the unseeded random source used, or None."""
    f = node.func
    # random.<fn>(...)
    if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name) \
            and f.value.id == "random" and f.attr not in _RANDOM_SAFE:
        return f"random.{f.attr}"
    # np.random.<fn>(...) / numpy.random.<fn>(...)
    if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Attribute) \
            and f.value.attr == "random" \
            and isinstance(f.value.value, ast.Name) \
            and f.value.value.id in ("np", "numpy"):
        if f.attr not in _NP_RANDOM_SAFE:
            return f"{f.value.value.id}.random.{f.attr}"
        if f.attr in ("default_rng", "RandomState") and not node.args and not node.keywords:
            return f"{f.value.value.id}.random.{f.attr}()"
    # bare default_rng() with no seed
    if isinstance(f, ast.Name) and f.id == "default_rng" \
            and not node.args and not node.keywords:
        return "default_rng()"
    return None


def rule_unseeded_random(tree: ast.AST, path: str) -> list[Finding]:
    """SPMD401: unseeded random sources inside SPMD functions."""
    findings: list[Finding] = []
    module_seeded = _module_seeds(tree)
    if module_seeded:
        return findings
    for fn in walk_functions(tree):
        if not is_spmd_function(fn):
            continue
        seed_lines = [
            n.lineno for n in ast.walk(fn)
            if isinstance(n, ast.Call) and _is_seed_call(n)
        ]
        first_seed = min(seed_lines) if seed_lines else None
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            hazard = _random_hazard(node)
            if hazard is None:
                continue
            if first_seed is not None and node.lineno > first_seed:
                continue
            findings.append(Finding(
                path, node.lineno, node.col_offset, "SPMD401",
                f"unseeded '{hazard}' in an SPMD function: each rank draws "
                "an independent stream, so replicated computations diverge; "
                "seed explicitly (e.g. np.random.default_rng(seed))",
                function=fn.name,
            ))
    return findings


#: The rule registry, in report order.
ALL_RULES = (
    rule_collective_divergence,
    rule_reserved_tag,
    rule_rma_epoch,
    rule_unseeded_random,
)
