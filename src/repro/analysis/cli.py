"""``repro lint`` — the CLI face of the static SPMD analyzer.

Kept separate from :mod:`repro.cli` so the linter stays importable without
pulling in NumPy-heavy packages, and testable without argparse plumbing.
Exit status follows lint convention: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

from typing import Sequence

from .lint import lint_paths
from .report import format_json, format_text


def run_lint(
    paths: Sequence[str],
    exclude: Sequence[str] = (),
    fmt: str = "text",
) -> int:
    """Lint ``paths``, print a report, and return the process exit code."""
    try:
        findings = lint_paths(paths, exclude=exclude)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}")
        return 2
    if fmt == "json":
        print(format_json(findings))
    else:
        print(format_text(findings))
    return 1 if findings else 0
