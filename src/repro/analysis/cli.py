"""``repro lint`` — the CLI face of the static SPMD analyzer.

Kept separate from :mod:`repro.cli` so the linter stays importable without
pulling in NumPy-heavy packages, and testable without argparse plumbing.
Exit status follows lint convention: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from .lint import lint_paths
from .report import format_json, format_text
from .sarif import format_sarif
from .suppress import load_baseline, write_baseline

FORMATS = ("text", "json", "sarif")


def run_lint(
    paths: Sequence[str],
    exclude: Sequence[str] = (),
    fmt: str = "text",
    baseline: str | None = None,
    write_baseline_to: str | None = None,
    output: str | None = None,
) -> int:
    """Lint ``paths``, print a report, and return the process exit code.

    ``baseline`` filters out tolerated findings before reporting;
    ``write_baseline_to`` instead records the current findings as the new
    baseline (and exits 0).  ``output`` redirects the report to a file —
    useful for ``--format sarif`` artifacts in CI.
    """
    if fmt not in FORMATS:
        print(f"repro lint: unknown format {fmt!r} (choose from {', '.join(FORMATS)})")
        return 2
    try:
        findings = lint_paths(paths, exclude=exclude)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}")
        return 2

    if write_baseline_to is not None:
        write_baseline(write_baseline_to, findings)
        print(f"repro lint: wrote baseline with {len(findings)} finding(s) "
              f"to {write_baseline_to}")
        return 0

    if baseline is not None:
        try:
            findings = load_baseline(baseline).filter(findings)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro lint: bad baseline {baseline}: {exc}")
            return 2

    if fmt == "json":
        report = format_json(findings)
    elif fmt == "sarif":
        report = format_sarif(findings)
    else:
        report = format_text(findings)

    if output is not None:
        Path(output).write_text(report + "\n", encoding="utf-8")
        print(f"repro lint: wrote {fmt} report to {output} "
              f"({len(findings)} finding(s))")
    else:
        print(report)
    return 1 if findings else 0
