"""Findings produced by the static SPMD linter, and their renderings.

A :class:`Finding` pins one rule violation to a ``file:line:col`` location —
the shape every editor and CI annotation format understands.  The module
keeps rendering separate from detection so the same findings can be printed
as human-readable text, machine-readable JSON, or GitHub workflow commands.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


#: Rule catalogue: code -> (summary, severity).  Severities follow compiler
#: convention: "error" findings are certainly wrong under MPI semantics,
#: "warning" findings are hazards that need human judgement.
RULES: dict[str, tuple[str, str]] = {
    "SPMD000": ("file could not be parsed", "error"),
    "SPMD101": ("collective sequence diverges across rank-dependent branches", "error"),
    "SPMD102": ("collective inside rank-dependent loop", "error"),
    "SPMD201": ("user tag collides with the reserved collective tag space", "error"),
    "SPMD301": ("one-sided access outside the fence epoch of its window", "warning"),
    "SPMD401": ("unseeded random source in an SPMD function", "warning"),
    "SPMD501": ("recv blocks forever: no rank ever sends a matching message", "error"),
    "SPMD502": ("cyclic send/recv dependency deadlocks the job", "error"),
    "SPMD601": ("unordered set iteration order escapes into comm or keyed stores", "warning"),
    "SPMD602": ("wall-clock read feeds SPMD algorithm state", "warning"),
    "SPMD603": ("order-sensitive float accumulation over an unordered collection", "warning"),
    "SPMD701": ("SPMD function writes module-level mutable state", "error"),
    "SPMD702": ("unpicklable payload crosses a rank boundary", "error"),
    "SPMD703": ("closure passed to the spmd() launcher cannot be pickled", "warning"),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    function: str = field(default="", compare=False)

    @property
    def severity(self) -> str:
        return RULES.get(self.code, ("", "warning"))[1]

    def render(self) -> str:
        where = f" [in {self.function}]" if self.function else ""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{where}"


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))


def format_text(findings: list[Finding]) -> str:
    """One finding per line plus a summary tail, pyflakes-style."""
    lines = [f.render() for f in sort_findings(findings)]
    nerr = sum(1 for f in findings if f.severity == "error")
    nwarn = len(findings) - nerr
    if findings:
        lines.append(f"{len(findings)} finding(s): {nerr} error(s), {nwarn} warning(s)")
    else:
        lines.append("no findings")
    return "\n".join(lines)


def format_json(findings: list[Finding]) -> str:
    payload = [
        {**asdict(f), "severity": f.severity} for f in sort_findings(findings)
    ]
    return json.dumps(payload, indent=2)
