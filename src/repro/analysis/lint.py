"""Driver of the static SPMD linter: parse files, run every rule.

The entry points mirror pyflakes: :func:`lint_source` for in-memory code
(used heavily by the tests), :func:`lint_file` for one file, and
:func:`lint_paths` for a mixed list of files and directory trees (the CLI's
``repro lint src examples``).

Each file is parsed once into a :class:`repro.analysis.engine.ModuleModel`
(CFGs, rank-taint sets, call graph, collective-effect summaries) that every
rule then queries, and inline ``# repro: noqa[...]`` comments are honoured
before findings leave this module — so every consumer (tests, CLI, CI)
sees the same suppressed view.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, Sequence

from .engine import build_model
from .report import Finding, sort_findings
from .rules import all_rules
from .suppress import apply_noqa


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source text; returns sorted, deduplicated findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, (exc.offset or 1) - 1,
                        "SPMD000", f"syntax error: {exc.msg}")]
    model = build_model(tree, path, source)
    findings: list[Finding] = []
    for rule in all_rules():
        findings.extend(rule(model))
    findings = apply_noqa(findings, source)
    return sort_findings(list(dict.fromkeys(findings)))


def lint_file(path: str | os.PathLike) -> list[Finding]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def _iter_py_files(paths: Sequence[str | os.PathLike]) -> Iterable[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(x for x in p.rglob("*.py") if x.is_file())
        elif p.suffix == ".py" and p.is_file():
            yield p
        else:
            raise FileNotFoundError(f"lint target {p} is not a .py file or directory")


def lint_paths(
    paths: Sequence[str | os.PathLike],
    exclude: Sequence[str | os.PathLike] = (),
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directory trees).

    ``exclude`` entries (files or directories) are skipped by resolved-path
    prefix match, so ``--exclude examples/buggy_spmd.py`` works from any
    working directory.
    """
    excluded = [Path(e).resolve() for e in exclude]

    def is_excluded(f: Path) -> bool:
        rf = f.resolve()
        return any(rf == e or e in rf.parents for e in excluded)

    findings: list[Finding] = []
    seen: set[Path] = set()
    for f in _iter_py_files(paths):
        rf = f.resolve()
        if rf in seen or is_excluded(f):
            continue
        seen.add(rf)
        findings.extend(lint_file(f))
    return sort_findings(findings)
