"""AST helpers shared by the SPMD lint rules.

The helpers encode the vocabulary of the simulated MPI runtime: which method
names are collective (every rank of the communicator must call them, in the
same order), which are point-to-point with a user tag, which are one-sided
window accesses, and what makes an expression *rank-dependent* (its value can
differ across ranks of the same job, so control flow guarded by it can
diverge).
"""

from __future__ import annotations

import ast
from typing import Iterator

#: Method names that are collective over a communicator.  Calling any of
#: these under rank-divergent control flow is the classic SPMD deadlock.
COLLECTIVE_METHODS = frozenset({
    "barrier", "bcast", "reduce", "allreduce",
    "gather", "gatherv", "scatter", "scatterv",
    "allgather", "allgatherv", "alltoall", "alltoallv",
    "scan", "exscan", "split", "fence", "free",
})

#: Constructors that are collective calls (``Window(comm, ...)``).
COLLECTIVE_CONSTRUCTORS = frozenset({"Window"})

#: Point-to-point methods that accept a user ``tag`` and the positional
#: index of that tag (0-based, excluding ``self``).
TAGGED_METHODS: dict[str, int] = {
    "send": 2,
    "recv": 1,
    "recv_with_status": 1,
    "probe": 1,
    "sendrecv": 3,
}

#: One-sided accesses on a :class:`repro.runtime.rma.Window`.
RMA_ACCESS_METHODS = frozenset({
    "get", "put", "accumulate", "fetch_and_op", "compare_and_swap",
})

#: ``random`` module attributes that are fine in SPMD code (seeding,
#: constructing an explicitly-seeded generator, state manipulation).
_RANDOM_SAFE = frozenset({
    "seed", "Random", "SystemRandom", "getstate", "setstate",
})
_NP_RANDOM_SAFE = frozenset({
    "seed", "default_rng", "RandomState", "Generator", "SeedSequence",
    "get_state", "set_state", "BitGenerator", "PCG64", "Philox",
})

#: Tags at or above this collide with the runtime's collective tag space.
#: Mirrors ``repro.runtime.fabric._RESERVED_TAG_BASE`` without importing the
#: runtime (the linter must work on any source tree).
RESERVED_TAG_BASE = 1 << 30


def call_method_name(node: ast.Call) -> str | None:
    """``obj.meth(...)`` -> ``"meth"``; plain-name calls return None."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def call_plain_name(node: ast.Call) -> str | None:
    """``Name(...)`` -> ``"Name"``; attribute calls return None."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def receiver_name(node: ast.Call) -> str | None:
    """``x.meth(...)`` -> ``"x"`` when the receiver is a simple name."""
    if isinstance(node.func, ast.Attribute) and isinstance(node.func.value, ast.Name):
        return node.func.value.id
    return None


def is_collective_call(node: ast.Call) -> str | None:
    """Return the collective op name if ``node`` is a collective call.

    A collective is either a known method name on any receiver *except* a
    string literal (``"a,b".split`` is not MPI_Comm_split) or a bare
    ``Window(...)`` construction.
    """
    meth = call_method_name(node)
    if meth in COLLECTIVE_METHODS:
        recv = node.func.value  # type: ignore[union-attr]
        if isinstance(recv, ast.Constant) and isinstance(recv.value, str):
            return None
        if isinstance(recv, ast.JoinedStr):
            return None
        return meth
    name = call_plain_name(node)
    if name in COLLECTIVE_CONSTRUCTORS:
        return name
    return None


def const_int(node: ast.expr) -> int | None:
    """Fold an integer constant expression (literals, +,-,*,<<,|)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        v = const_int(node.operand)
        return None if v is None else -v
    if isinstance(node, ast.BinOp):
        lhs, rhs = const_int(node.left), const_int(node.right)
        if lhs is None or rhs is None:
            return None
        op = node.op
        if isinstance(op, ast.Add):
            return lhs + rhs
        if isinstance(op, ast.Sub):
            return lhs - rhs
        if isinstance(op, ast.Mult):
            return lhs * rhs
        if isinstance(op, ast.LShift):
            return lhs << rhs
        if isinstance(op, ast.BitOr):
            return lhs | rhs
        if isinstance(op, ast.Pow) and 0 <= rhs < 64:
            return lhs ** rhs
    return None


def expr_references_rank(node: ast.expr, tainted: set[str]) -> bool:
    """Is the expression's value potentially rank-dependent?

    True when it mentions a ``.rank`` attribute (``comm.rank``,
    ``self.rank``, ``grid.comm.rank``) or any name in ``tainted`` — the set
    of local variables assigned from rank-dependent expressions.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "rank":
            return True
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return True
    return False


def rank_tainted_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Local names assigned (directly or transitively) from ``.rank``.

    A single forward pass over the function body in source order; enough for
    the ``rank = comm.rank`` / ``row = rank // pc`` idiom the lint targets.
    """
    tainted: set[str] = set()
    for arg in fn.args.args + fn.args.kwonlyargs:
        if arg.arg == "rank":
            tainted.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and expr_references_rank(node.value, tainted):
            for tgt in node.targets:
                for sub in ast.walk(tgt):
                    if isinstance(sub, ast.Name):
                        tainted.add(sub.id)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            if expr_references_rank(node.value, tainted):
                tainted.add(node.target.id)
    return tainted


def is_spmd_function(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Heuristic: does this function execute on every rank of an SPMD job?

    True when a parameter looks like a communicator (named ``comm`` or
    ``*comm``), when the body touches a ``.rank`` attribute, or when it
    makes any collective call.  Functions outside this set (pure local
    kernels, CLI glue) are exempt from the SPMD rules.
    """
    for arg in fn.args.args + fn.args.kwonlyargs + fn.args.posonlyargs:
        if arg.arg == "comm" or arg.arg.endswith("comm"):
            return True
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr == "rank":
            return True
        if isinstance(node, ast.Call) and is_collective_call(node):
            return True
    return False


def collectives_in(nodes: list[ast.stmt]) -> list[tuple[str, ast.Call]]:
    """All collective calls in a statement list, in source order, skipping
    nested function/class definitions (their bodies run in their own SPMD
    context, if any)."""
    out: list[tuple[str, ast.Call]] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            return
        if isinstance(node, ast.Call):
            op = is_collective_call(node)
            if op is not None:
                out.append((op, node))
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in nodes:
        visit(stmt)
    return sorted(out, key=lambda item: (item[1].lineno, item[1].col_offset))


def walk_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Like ``ast.walk`` but stops at nested function/class definitions.

    The first-generation rules used ``ast.walk(fn)`` and therefore attributed
    nested functions' statements to the enclosing function (and reported them
    twice, once per scope).  Every per-function rule walks ``own_nodes``
    instead: nested definitions execute in their own frame and are analyzed
    as their own functions by :func:`walk_functions`.
    """
    stack: list[ast.AST] = [fn]
    while stack:
        node = stack.pop()
        yield node
        if node is not fn and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue  # the definition itself is visible; its body is not
        stack.extend(ast.iter_child_nodes(node))


def own_statements(fn: ast.AST) -> list[ast.stmt]:
    """All statements of ``fn``'s own body, source order, skipping nested
    function/class bodies."""
    out = [n for n in own_nodes(fn) if isinstance(n, ast.stmt) and n is not fn]
    return sorted(out, key=lambda s: (s.lineno, s.col_offset))


def dotted_name(node: ast.expr) -> str | None:
    """Flatten ``a.b.c`` (Names and Attributes only) to ``"a.b.c"``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def always_terminates(stmts: list[ast.stmt]) -> bool:
    """Does every path through ``stmts`` leave the enclosing code sequence
    (return / raise / break / continue)?  Structural approximation: loops
    are assumed able to complete normally."""
    for stmt in stmts:
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.If) and stmt.orelse \
                and always_terminates(stmt.body) and always_terminates(stmt.orelse):
            return True
        if isinstance(stmt, ast.Try):
            tails = [stmt.body + stmt.orelse] + [h.body for h in stmt.handlers]
            if stmt.finalbody and always_terminates(stmt.finalbody):
                return True
            if all(always_terminates(t) for t in tails):
                return True
    return False


def assigned_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound in the function's own scope: params plus assignment /
    for-target / with-as / import bindings (nested defs excluded)."""
    a = fn.args
    names = {p.arg for p in a.args + a.kwonlyargs + a.posonlyargs}
    if a.vararg:
        names.add(a.vararg.arg)
    if a.kwarg:
        names.add(a.kwarg.arg)
    for node in own_nodes(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for tgt in targets:
                for sub in ast.walk(tgt):
                    # Store-context Names only: ``x[k] = v`` / ``x.a = v``
                    # mutate ``x`` without binding it in this scope
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                        names.add(sub.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not fn:
                names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


def comm_param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameters that look like communicators (``comm``, ``row_comm``…)."""
    out = set()
    for arg in fn.args.args + fn.args.kwonlyargs + fn.args.posonlyargs:
        if arg.arg == "comm" or arg.arg.endswith("comm"):
            out.add(arg.arg)
    return out
