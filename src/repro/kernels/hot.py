"""The three dominant self-time loops, compiled when numba is available.

Each kernel has two implementations with one contract:

* ``_*_np`` — the vectorized NumPy reference (always defined, always the
  one used when numba is absent or ``REPRO_JIT=0``);
* a ``@njit`` twin compiled lazily on first call when numba is present.

The public names (:func:`keyed_min_scatter`, :func:`ragged_gather_flat`,
:func:`pull_candidates`) are bound to one or the other at import time.
Results are bit-identical across implementations — the compiled loops
evaluate the same arithmetic in the same order the NumPy expressions do —
which is what lets the cross-backend parity suite run against either.
"""

from __future__ import annotations

import numpy as np

from . import HAVE_NUMBA

_I64_MAX = np.iinfo(np.int64).max


# ---------------------------------------------------------------------------
# keyed min-scatter (reduce_candidates fast path)
# ---------------------------------------------------------------------------

def _keyed_min_scatter_np(
    rows: np.ndarray, k: np.ndarray, lo: int, width: int
) -> np.ndarray:
    c = rows.size
    enc = k * np.int64(c) + np.arange(c, dtype=np.int64)
    best = np.full(width, _I64_MAX, dtype=np.int64)
    np.minimum.at(best, rows - lo, enc)
    return best


# ---------------------------------------------------------------------------
# ragged gather (every SpMV explode, every degree filter)
# ---------------------------------------------------------------------------

def _ragged_gather_np(
    indptr: np.ndarray, indices: np.ndarray, cols: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    starts = indptr[cols]
    counts = indptr[cols + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), counts
    # positions = concat(arange(starts[k], starts[k]+counts[k]))
    cum = np.cumsum(counts)
    offsets = np.repeat(starts - np.concatenate(([0], cum[:-1])), counts)
    positions = offsets + np.arange(total, dtype=np.int64)
    return indices[positions], counts


# ---------------------------------------------------------------------------
# fused bottom-up pull-and-filter (DCSC CSR-mirror walk)
# ---------------------------------------------------------------------------

def _pull_candidates_np(
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    rows: np.ndarray,
    root_of: np.ndarray,
    null: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    cols, counts = _ragged_gather_np(row_ptr, col_idx, rows)
    cand_rows = np.repeat(rows, counts)
    croots = root_of[cols]
    hit = croots != null
    return cand_rows[hit], cols[hit], croots[hit]


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    @njit(cache=True)
    def _keyed_min_scatter_nb(rows, k, lo, width):
        c = rows.size
        best = np.full(width, _I64_MAX, dtype=np.int64)
        for i in range(c):
            e = k[i] * c + i
            j = rows[i] - lo
            if e < best[j]:
                best[j] = e
        return best

    @njit(cache=True)
    def _ragged_gather_nb(indptr, indices, cols):
        n = cols.size
        counts = np.empty(n, dtype=np.int64)
        total = 0
        for i in range(n):
            cnt = indptr[cols[i] + 1] - indptr[cols[i]]
            counts[i] = cnt
            total += cnt
        out = np.empty(total, dtype=np.int64)
        pos = 0
        for i in range(n):
            s = indptr[cols[i]]
            e = s + counts[i]
            for t in range(s, e):
                out[pos] = indices[t]
                pos += 1
        return out, counts

    @njit(cache=True)
    def _pull_candidates_nb(row_ptr, col_idx, rows, root_of, null):
        # one counting pass, one fill pass: no intermediate candidate arrays
        n = rows.size
        nhit = 0
        for i in range(n):
            r = rows[i]
            for t in range(row_ptr[r], row_ptr[r + 1]):
                if root_of[col_idx[t]] != null:
                    nhit += 1
        out_rows = np.empty(nhit, dtype=np.int64)
        out_cols = np.empty(nhit, dtype=np.int64)
        out_roots = np.empty(nhit, dtype=np.int64)
        pos = 0
        for i in range(n):
            r = rows[i]
            for t in range(row_ptr[r], row_ptr[r + 1]):
                c = col_idx[t]
                g = root_of[c]
                if g != null:
                    out_rows[pos] = r
                    out_cols[pos] = c
                    out_roots[pos] = g
                    pos += 1
        return out_rows, out_cols, out_roots

    def keyed_min_scatter(rows, k, lo, width):
        return _keyed_min_scatter_nb(rows, k, int(lo), int(width))

    def ragged_gather_flat(indptr, indices, cols):
        if indices.dtype != np.int64:  # compiled loop is int64-only
            return _ragged_gather_np(indptr, indices, cols)
        return _ragged_gather_nb(indptr, indices, cols)

    def pull_candidates(row_ptr, col_idx, rows, root_of, null):
        return _pull_candidates_nb(row_ptr, col_idx, rows, root_of, null)

else:
    keyed_min_scatter = _keyed_min_scatter_np
    ragged_gather_flat = _ragged_gather_np
    pull_candidates = _pull_candidates_np


keyed_min_scatter.__doc__ = """Per-row minimum of packed (key, position) codes.

``rows`` (int64) are candidate row ids in ``[lo, lo + width)``; ``k``
(int64) the comparison keys.  Returns ``best`` of length ``width`` where
``best[j]`` is the minimum of ``k[i] * len(rows) + i`` over candidates
with ``rows[i] - lo == j`` (``INT64_MAX`` where no candidate landed) —
the first-arrival tie-breaking encode of
:func:`repro.sparse.semiring.reduce_candidates`'s scatter fast path.
The caller guarantees the packed code cannot overflow."""

ragged_gather_flat.__doc__ = """Concatenate ``indices[indptr[c]:indptr[c+1]]`` for each ``c`` in ``cols``.

Returns ``(gathered, counts)``; ``counts[k]`` is the length contributed
by ``cols[k]``.  The compiled twin runs the direct two-pass fill; the
NumPy fallback is the cumsum/repeat/arange trick."""

pull_candidates.__doc__ = """Fused bottom-up pull: walk ``rows`` through a CSR mirror, keep frontier hits.

For each local row in ``rows``, scan its adjacency ``col_idx[row_ptr[r]:
row_ptr[r+1]]`` and keep the (row, col, root_of[col]) triples whose
column has ``root_of[col] != null``.  Returns the three filtered arrays
with rows in input order and columns ascending within each row — the
order the downstream stable reduction relies on."""
