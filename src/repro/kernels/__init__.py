"""Compiled hot kernels with pure-NumPy fallbacks.

The PR-5 trace critical-path reports put three spans at the top of every
rank's self-time: the ragged gather behind each SpMV explode, the fused
bottom-up pull-and-filter over the DCSC row-major mirror, and the keyed
min-scatter inside ``reduce_candidates``.  This package compiles those
three loops with numba when it is importable and falls back to the
vectorized NumPy implementations otherwise — **bit-identical either way**
(the parity tests assert it), so the fallback is a correctness reference,
not a degraded mode.

Policy:

* numba is an *optional accelerator*, never a dependency.  Importing this
  package on a machine without numba must cost one failed import, once.
* ``REPRO_JIT=0`` disables compilation even when numba is present
  (debugging, coverage runs, bisecting a suspected codegen issue).
* Compiled and fallback kernels share one signature and one docstring;
  call sites never branch on :data:`HAVE_NUMBA` themselves.
"""

from __future__ import annotations

import os

#: True when numba imported successfully and ``REPRO_JIT`` does not disable
#: it; the kernels in :mod:`repro.kernels.hot` are then the compiled ones.
HAVE_NUMBA = False

if os.environ.get("REPRO_JIT", "1").lower() not in ("0", "false", "no"):
    try:  # pragma: no cover - exercised only where numba is installed
        import numba  # noqa: F401

        HAVE_NUMBA = True
    except Exception:
        HAVE_NUMBA = False


def kernel_backend() -> str:
    """Which implementation the hot kernels run: ``"numba"`` or ``"numpy"``."""
    return "numba" if HAVE_NUMBA else "numpy"


from .hot import (  # noqa: E402  (gate above must run first)
    keyed_min_scatter,
    pull_candidates,
    ragged_gather_flat,
)

__all__ = [
    "HAVE_NUMBA",
    "kernel_backend",
    "keyed_min_scatter",
    "pull_candidates",
    "ragged_gather_flat",
]
