"""The interconnect fabric: per-rank mailboxes with (source, tag) matching.

A :class:`Fabric` is the shared state connecting the simulated ranks of one
SPMD job.  Each rank owns a mailbox; a ``send`` deposits an immutable message
envelope into the destination's mailbox and a ``recv`` blocks until an
envelope matching its ``(source, tag)`` selector is present.  Matching
follows MPI ordering semantics: messages from the same (source, tag) pair are
non-overtaking (delivered in send order), while messages from different
sources may interleave arbitrarily.

The fabric also carries job-global services used by the executor and the
communicators:

* an *abort flag* — set when any rank dies, observed by every blocked call;
* a *timeout* — blocking calls that see no progress for this many seconds
  raise :class:`~repro.runtime.errors.DeadlockError`;
* a registry of *sub-communicator* colors created by ``Communicator.split``.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, NamedTuple, Sequence

from .errors import CollectiveMismatchError, CommAbort, DeadlockError

#: Wildcard selector accepted by ``recv``: match a message from any source.
ANY_SOURCE = -1
#: Wildcard selector accepted by ``recv``: match a message with any tag.
ANY_TAG = -1

#: Tags at or above this value are reserved for collective operations.
_RESERVED_TAG_BASE = 1 << 30


class Envelope(NamedTuple):
    """An in-flight message: immutable header plus an opaque payload.

    The payload is whatever object the sender passed.  For NumPy arrays the
    communicator copies at send time so the receiver can never observe
    mutations the sender performs after the send returns — the same guarantee
    a real interconnect gives by serializing bytes onto the wire.

    A ``NamedTuple`` rather than a frozen dataclass: one is built per
    message on both backends, and frozen-dataclass construction costs ~1us
    against a namedtuple's ~0.2us.
    """

    source: int
    dest: int
    tag: int
    payload: Any
    serial: int  # fabric-global send order, for deterministic debugging


class Mailbox:
    """One rank's receive queue with condition-variable blocking."""

    def __init__(self, fabric: "Fabric", owner: int) -> None:
        self._fabric = fabric
        self._owner = owner
        self._queue: list[Envelope] = []
        self._cond = threading.Condition()

    def deposit(self, env: Envelope, reorder_u: "float | None" = None) -> None:
        """Queue an envelope; ``reorder_u`` (injected delay) selects a seeded
        insertion slot ahead of queued traffic, but never ahead of an
        envelope from the same ``(source, tag)`` stream — the reordering a
        real adaptively-routed interconnect may legally perform."""
        with self._cond:
            if reorder_u is None or not self._queue:
                self._queue.append(env)
            else:
                floor = 0
                for i, queued in enumerate(self._queue):
                    if queued.source == env.source and queued.tag == env.tag:
                        floor = i + 1  # non-overtaking within the stream
                pos = floor + int(reorder_u * (len(self._queue) + 1 - floor))
                self._queue.insert(pos, env)
            self._cond.notify_all()

    def deposit_many(
        self, envs: "list[Envelope]", reorder_us: "list[float | None]"
    ) -> None:
        """Queue a coalesced frame's envelopes under one lock acquisition
        with one wakeup — the thread fabric's analogue of a single ring
        write.  Per-envelope reorder draws still place each message
        individually so injected reordering is preserved inside a frame."""
        with self._cond:
            for env, reorder_u in zip(envs, reorder_us):
                if reorder_u is None or not self._queue:
                    self._queue.append(env)
                else:
                    floor = 0
                    for i, queued in enumerate(self._queue):
                        if queued.source == env.source and queued.tag == env.tag:
                            floor = i + 1
                    pos = floor + int(reorder_u * (len(self._queue) + 1 - floor))
                    self._queue.insert(pos, env)
            self._cond.notify_all()

    def _match_index(self, source: int, tag: int) -> int | None:
        for i, env in enumerate(self._queue):
            if source not in (ANY_SOURCE, env.source):
                continue
            if tag not in (ANY_TAG, env.tag):
                continue
            return i
        return None

    def collect(self, source: int, tag: int) -> Envelope:
        """Block until an envelope matching (source, tag) arrives; remove and
        return it."""
        deadline_step = self._fabric.timeout
        self._fabric.last_blocked[self._owner] = ("recv", source, tag)
        with self._cond:
            while True:
                if self._fabric.aborted:
                    raise CommAbort(
                        f"rank {self._owner}: job aborted while receiving "
                        f"(source={source}, tag={tag})"
                    )
                idx = self._match_index(source, tag)
                if idx is not None:
                    return self._queue.pop(idx)
                made_progress = self._cond.wait(timeout=deadline_step)
                if not made_progress and self._match_index(source, tag) is None:
                    if self._fabric.aborted:
                        continue  # loop once more to raise CommAbort
                    raise DeadlockError(
                        f"rank {self._owner}: recv(source={source}, tag={tag}) "
                        f"made no progress for {self._fabric.timeout:.1f}s; "
                        f"pending queue: "
                        f"{[(e.source, e.tag) for e in self._queue[:8]]}"
                    )

    def probe(self, source: int, tag: int) -> bool:
        """Non-blocking: is a matching envelope already queued?"""
        with self._cond:
            return self._match_index(source, tag) is not None

    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    def pending_collective(self) -> list[tuple[int, int]]:
        """(source, tag) of queued envelopes in the reserved collective tag
        space — nonempty after job end means ranks entered mismatched
        collectives that happened to complete without blocking."""
        with self._cond:
            return [
                (e.source, e.tag) for e in self._queue if e.tag >= _RESERVED_TAG_BASE
            ]

    def wake_all(self) -> None:
        """Wake blocked receivers (used when the abort flag flips)."""
        with self._cond:
            self._cond.notify_all()


def describe_blocked_entry(entry: "tuple | None") -> str:
    """Human description of a rank's last blocking operation.

    Shared by every transport: the thread fabric reads its ``last_blocked``
    list, the process transport decodes the same ``(kind, a, b)`` triples
    from the control shared-memory segment of an unresponsive child.
    """
    if entry is None:
        return "never blocked in the runtime (busy or stuck outside it)"
    kind = entry[0]
    if kind == "split":
        _, comm_id, seq = entry
        return f"split rendezvous on comm {comm_id} (collective seq {seq})"
    _, source, tag = entry
    peer = "ANY_SOURCE" if source == ANY_SOURCE else f"rank {source}"
    if tag >= _RESERVED_TAG_BASE:
        packed = tag - _RESERVED_TAG_BASE
        return (
            f"collective recv from {peer} "
            f"(comm {packed >> 32}, collective seq {packed & 0xFFFFFFFF})"
        )
    tag_s = "ANY_TAG" if tag == ANY_TAG else str(tag)
    return f"recv(source={peer}, tag={tag_s})"


def _describe_signature(sig: tuple) -> str:
    """Human form of a collective signature tuple ``(op, root, extra)``."""
    op, root, extra = sig
    parts = []
    if root is not None:
        parts.append(f"root={root}")
    if extra is not None:
        parts.append(f"args={extra}")
    return f"{op}({', '.join(parts)})" if parts else op


class CollectiveTrace:
    """The dynamic collective-divergence checker (``verify=True`` mode).

    Every collective call records a per-rank signature tuple
    ``(op, root, extra)`` keyed by ``(comm_id, seq)`` — the communicator and
    its per-rank collective-call counter.  Because correct SPMD programs
    enter collectives in the same order on every rank of a communicator, the
    n-th collective of one rank must match the n-th collective of its peers:
    the first rank to arrive sets the reference signature and any later
    arrival that disagrees raises :class:`CollectiveMismatchError` with a
    precise diff — instead of the deadlock timeout (mismatched blocking
    pattern) or silent garbage exchange (mismatched but non-blocking
    pattern) the program would otherwise produce.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (comm_id, seq) -> [first_rank, signature, arrived, expected]
        self._pending: dict[tuple[int, int], list] = {}
        self.checked = 0

    def record(
        self, comm_id: int, seq: int, rank: int, comm_size: int, signature: tuple
    ) -> None:
        key = (comm_id, seq)
        with self._lock:
            self.checked += 1
            entry = self._pending.get(key)
            if entry is None:
                self._pending[key] = [rank, signature, 1, comm_size]
                return
            first_rank, first_sig, arrived, expected = entry
            if signature != first_sig:
                raise CollectiveMismatchError(
                    f"collective divergence on communicator {comm_id}, "
                    f"collective call #{seq}: rank {first_rank} entered "
                    f"{_describe_signature(first_sig)} but rank {rank} entered "
                    f"{_describe_signature(signature)}; all ranks of a "
                    "communicator must enter the same collective sequence"
                )
            entry[2] = arrived + 1
            if entry[2] >= expected:
                del self._pending[key]

    def incomplete(self) -> list[str]:
        """Collectives some ranks entered but others never did (job ended)."""
        with self._lock:
            return [
                f"comm {comm_id} call #{seq}: {_describe_signature(sig)} "
                f"entered by {arrived}/{expected} ranks (first: rank {first_rank})"
                for (comm_id, seq), (first_rank, sig, arrived, expected)
                in sorted(self._pending.items())
            ]


@dataclass
class _SplitTable:
    """Rendezvous state for one ``Communicator.split`` call."""

    entries: dict[int, tuple[int, int]] = field(default_factory=dict)  # rank -> (color, key)
    arrived: int = 0
    done: bool = False
    result: dict[int, tuple[int, list[int]]] = field(default_factory=dict)


class Fabric:
    """Shared interconnect for one SPMD job of ``nranks`` simulated ranks."""

    #: Whether this fabric's transport serializes payloads onto a real wire.
    #: ``False`` here: envelopes carry live object references between
    #: threads, so the communicator must copy (``_freeze``) at send time to
    #: get wire semantics.  A serializing fabric (the process backend) makes
    #: that copy redundant — encoding into the ring IS the wire copy — and
    #: the communicator skips it.
    serializes = False

    def __init__(
        self,
        nranks: int,
        timeout: float = 60.0,
        verify: bool = False,
        faults: "Any | None" = None,
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self.timeout = timeout
        #: Optional :class:`~repro.runtime.faults.FaultInjector`.  ``None``
        #: (the default) keeps fault injection zero-cost: every hook site
        #: guards on this attribute with a single ``is None`` check.
        self.faults = faults
        #: Per-rank record of the last blocking operation each rank entered
        #: (``("recv", source, tag)`` or ``("split", comm_id, seq)``), kept
        #: after the call returns so hung-rank diagnostics can name what a
        #: stuck rank was last waiting on.
        self.last_blocked: list[tuple | None] = [None] * nranks
        #: Job-progress markers (e.g. ``{"phase": 3}``) published by
        #: long-running SPMD programs; the executor copies them onto the
        #: primary exception so recovery drivers can compute replay spans.
        self.progress: dict[str, int] = {}
        #: When True the dynamic verifiers are armed: every collective call
        #: is checked against its peers' signatures and every one-sided
        #: window access is race-checked (see ``spmd(..., verify=True)``).
        self.verify = verify
        self.collective_trace = CollectiveTrace() if verify else None
        #: Per-rank span tracers (:class:`repro.runtime.trace.Tracer`),
        #: attached by the executor under ``spmd(..., trace=...)``.  ``None``
        #: (the default) keeps tracing zero-cost: every hook site guards on
        #: this attribute with a single ``is None`` check.
        self.tracers: "list[Any] | None" = None
        self._rma_logs: dict[int, Any] = {}
        self.mailboxes = [Mailbox(self, r) for r in range(nranks)]
        #: Per-rank coalescer buffers (dest -> pending entries), owned by
        #: the sending rank's communicators.  Created here, not lazily, so
        #: communicators on different threads never race a first access.
        self._outboxes: list[dict[int, list]] = [dict() for _ in range(nranks)]
        self._abort = threading.Event()
        self._serial = itertools.count()
        self._serial_lock = threading.Lock()
        # split() rendezvous, keyed by (communicator id, split sequence number)
        self._splits: dict[tuple[int, int], _SplitTable] = {}
        self._split_lock = threading.Condition()
        # window registry: window id -> list of per-rank backing arrays
        self._windows: dict[int, list[Any]] = {}
        self._win_locks: dict[int, list[threading.Lock]] = {}
        self._window_lock = threading.Lock()
        self._next_comm_id = itertools.count(1)
        self._next_win_id = itertools.count(1)

    # -- message transport -------------------------------------------------

    @property
    def aborted(self) -> bool:
        return self._abort.is_set()

    def abort(self) -> None:
        """Flip the abort flag and wake every blocked receiver."""
        self._abort.set()
        for mb in self.mailboxes:
            mb.wake_all()
        with self._split_lock:
            self._split_lock.notify_all()

    def deliver(
        self, source: int, dest: int, tag: int, payload: Any,
        reorder_u: "float | None" = None,
    ) -> None:
        if self.aborted:
            raise CommAbort(f"rank {source}: job aborted while sending to {dest}")
        if not 0 <= dest < self.nranks:
            raise ValueError(f"destination rank {dest} out of range [0, {self.nranks})")
        with self._serial_lock:
            serial = next(self._serial)
        self.mailboxes[dest].deposit(Envelope(source, dest, tag, payload, serial), reorder_u)

    def deliver_frame(
        self, source: int, dest: int, entries: "list[tuple[int, Any, float | None]]"
    ) -> None:
        """Deliver one coalesced frame: all of ``source``'s pending traffic
        toward ``dest``, as ``(tag, payload, reorder_u)`` entries in send
        order.  One serial block, one mailbox transaction."""
        if self.aborted:
            raise CommAbort(f"rank {source}: job aborted while sending to {dest}")
        if not 0 <= dest < self.nranks:
            raise ValueError(f"destination rank {dest} out of range [0, {self.nranks})")
        with self._serial_lock:
            serials = [next(self._serial) for _ in entries]
        envs = [
            Envelope(source, dest, tag, payload, serial)
            for (tag, payload, _), serial in zip(entries, serials)
        ]
        self.mailboxes[dest].deposit_many(envs, [u for (_, _, u) in entries])

    def note_progress(self, key: str, value: int) -> None:
        """Publish a monotone job-progress marker (see ``progress``)."""
        if value > self.progress.get(key, -1):
            self.progress[key] = value

    def describe_blocked(self, rank: int) -> str:
        """Human description of ``rank``'s last blocking operation."""
        return describe_blocked_entry(self.last_blocked[rank])

    def collect(self, rank: int, source: int, tag: int) -> Envelope:
        tracers = self.tracers
        if tracers is None:
            return self.mailboxes[rank].collect(source, tag)
        # wait-vs-work split: the mailbox match is the runtime's blocking
        # point, so the time spent inside it is this rank's wait, charged
        # to the innermost open span (usually the enclosing collective)
        tr = tracers[rank]
        t0 = tr.now()
        env = self.mailboxes[rank].collect(source, tag)
        tr.add_wait(tr.now() - t0)
        return env

    def probe(self, rank: int, source: int, tag: int) -> bool:
        return self.mailboxes[rank].probe(source, tag)

    # -- communicator id allocation ----------------------------------------

    def new_comm_id(self) -> int:
        return next(self._next_comm_id)

    # -- split rendezvous ----------------------------------------------------

    def split_rendezvous(
        self,
        comm_id: int,
        seq: int,
        nmembers: int,
        rank: int,
        color: int,
        key: int,
        group: "Sequence[int] | None" = None,
    ) -> tuple[int, list[int]]:
        """All ranks of a communicator meet here to compute split groups.

        Returns ``(new_comm_id_for_color, member ranks)`` where members are
        *parent-communicator-local* ranks ordered by ``(key, rank)``.  The
        computation is done once by the last rank to arrive; everyone else
        blocks on the condition variable.  ``group`` (the parent
        communicator's global ranks) is unused here — the shared table needs
        no routing — but a message-based fabric routes its rendezvous
        through the group's first rank.
        """
        slot = (comm_id, seq)
        with self._split_lock:
            table = self._splits.setdefault(slot, _SplitTable())
            table.entries[rank] = (color, key)
            table.arrived += 1
            if table.arrived == nmembers:
                colors: dict[int, list[tuple[int, int, int]]] = {}
                for r, (c, k) in table.entries.items():
                    colors.setdefault(c, []).append((k, r, r))
                for c, members in colors.items():
                    members.sort()
                    ranks = [r for (_, _, r) in members]
                    table.result[c] = (self.new_comm_id(), ranks)
                table.done = True
                self._split_lock.notify_all()
            else:
                while not table.done:
                    if self.aborted:
                        raise CommAbort(f"rank {rank}: abort during split")
                    if not self._split_lock.wait(timeout=self.timeout):
                        if table.done:
                            break
                        raise DeadlockError(
                            f"rank {rank}: split on comm {comm_id} seq {seq} "
                            f"stalled with {table.arrived}/{nmembers} ranks"
                        )
            new_id, ranks = table.result[color]
            return new_id, list(ranks)

    # -- window registry -----------------------------------------------------
    #
    # The one-sided layer (``repro.runtime.rma``) talks to window memory only
    # through this five-call fabric API, so the same :class:`Window` class
    # runs over thread-shared arrays here and over per-rank shared-memory
    # segments in the process fabric:
    #
    # * ``new_win_id``  — job-unique id allocation (rank 0 calls, bcasts);
    # * ``win_create``  — expose ``local`` as rank ``rank``'s slot, return
    #   the per-rank slot table (indexable by target rank);
    # * ``win_locks``   — per-target lock table giving element-wise atomicity;
    # * ``win_sync``    — fence hook: make remote writes visible in the
    #   owner's ``local`` array (no-op here: slots ARE the local arrays);
    # * ``win_detach`` / ``win_destroy`` — the two halves of ``free``
    #   (all ranks stop accessing, then backing storage is released).

    def new_win_id(self) -> int:
        return next(self._next_win_id)

    def win_create(
        self, win_id: int, rank: int, size: int, local: Any,
        group: "Sequence[int] | None" = None,
    ) -> Any:
        with self._window_lock:
            slots = self._windows.setdefault(win_id, [None] * size)
        slots[rank] = local
        return slots

    def win_locks(self, win_id: int, size: int) -> list:
        with self._window_lock:
            table = self._win_locks.get(win_id)
            if table is None:
                table = self._win_locks[win_id] = [
                    threading.Lock() for _ in range(size)
                ]
            return table

    def win_sync(self, win_id: int, rank: int) -> None:
        pass  # threads share the arrays: always consistent

    def win_detach(self, win_id: int, rank: int) -> None:
        pass

    def win_destroy(self, win_id: int, rank: int) -> None:
        # every rank calls this after the post-detach barrier; the pops are
        # idempotent so no designated owner is needed
        with self._window_lock:
            self._windows.pop(win_id, None)
            self._win_locks.pop(win_id, None)
            # _rma_logs entries survive the drop: the fabric is per-job, and
            # the verify summary reports totals across freed windows too.

    def rma_log_for(self, win_id: int, factory) -> Any:
        """Shared per-window access log (verify mode); created on first use."""
        with self._window_lock:
            log = self._rma_logs.get(win_id)
            if log is None:
                log = self._rma_logs[win_id] = factory()
            return log

    def rma_ops_checked(self) -> int:
        with self._window_lock:
            return sum(log.total for log in self._rma_logs.values())
