"""MPI-like communicators over the simulated fabric.

Every collective below is implemented on top of the two-sided ``send`` /
``recv`` primitives.  Following the collective-selection playbook of
production MPIs (Thakur et al.'s MPICH optimization work, which the paper
credits — via CombBLAS — for the 2D SpMV's scalability), each collective
has a latency-aware algorithm and a naive textbook baseline, selected per
communicator by a :class:`CollectiveConfig`:

============  =======================  ==================  ==================
collective    engine algorithm         α-β cost            naive baseline
============  =======================  ==================  ==================
barrier       dissemination            α·⌈log₂p⌉           (same)
bcast         binomial tree            (α + βW)·⌈log₂p⌉    linear: (α+βW)(p-1)
reduce        binomial tree            (α + βW)·⌈log₂p⌉    linear: (α+βW)(p-1)
allreduce     recursive doubling       (α + βW)·~⌈log₂p⌉   reduce+bcast, linear
allgather(v)  dissemination (Bruck)    α⌈log₂p⌉ + βW(p-1)/p   ring: α(p-1)+βW(p-1)/p
alltoall(v)   Bruck (small payloads)   α⌈log₂p⌉ + βW⌈log₂p⌉/2   pairwise: α(p-1)+βW
gather(v)     direct to root           α(p-1) + βW at root  (same)
scatter(v)    direct from root         α(p-1) + βW at root  (same)
exscan/scan   linear chain             α(p-1)              (same)
============  =======================  ==================  ==================

``alltoall``'s "auto" mode picks Bruck vs pairwise per call with an α-β
heuristic on the *global* maximum send volume (a ⌈log₂p⌉-step one-word
dissemination max makes the decision rank-uniform); every other "auto"
resolves by ``p`` alone, so all selections are deadlock-free by
construction.  The matching cost *formulas* live in
:mod:`repro.perfmodel.collectives`; this module moves real data with the
same communication patterns, so integration tests can check that measured
message counts equal the model's predictions.  :attr:`CommStats.by_alg`
counts calls/messages/words/steps per (collective, algorithm) pair.

Superstep aggregation (``CollectiveConfig.aggregate``, default on) splits
the ledger in two.  The **logical** ledger above is invariant: counters,
``by_alg``, trace spans and every fault-injection hook fire per logical
message of the selected algorithm, whether or not that message travels
individually.  The **physical** ledger (:attr:`CommStats.frames` /
``frame_words``) counts what actually hits the fabric: a per-destination
coalescer batches every payload a rank emits toward a peer between two
blocking points into one framed buffer — a single mailbox deposit on the
thread fabric, a single ring write (one codec pass) on the process
backend.  The four rootless round-based collectives (barrier, doubling
allreduce, dissemination allgather, pairwise alltoall) additionally swap
their physical schedule for a hub star wave through comm rank 0 — 2(p-1)
frames per call instead of ~p·⌈log₂p⌉ messages — while replaying the
round-based schedule's exact per-message ledger analytically.  Flush
points are deterministic (entry to any blocking receive, every collective
boundary, :meth:`Communicator.flush_sends`), so frame counts are
reproducible and benchmarkable.  ``aggregate=False`` restores
message-per-deliver transport; results are bit-identical either way.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from .errors import CollectiveMismatchError, CommError, TransientCommError
from .fabric import ANY_SOURCE, ANY_TAG, Fabric, _RESERVED_TAG_BASE


class ReduceOp:
    """A named, associative reduction operator usable by reduce/allreduce/scan.

    ``fn`` combines two values (scalars or NumPy arrays of equal shape) and
    must be associative; commutativity is also assumed, as in MPI's built-in
    operators.
    """

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]) -> None:
        self.name = name
        self.fn = fn

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReduceOp({self.name})"


SUM = ReduceOp("sum", lambda a, b: a + b)
PROD = ReduceOp("prod", lambda a, b: a * b)
MIN = ReduceOp("min", lambda a, b: np.minimum(a, b))
MAX = ReduceOp("max", lambda a, b: np.maximum(a, b))
LAND = ReduceOp("land", lambda a, b: np.logical_and(a, b))
LOR = ReduceOp("lor", lambda a, b: np.logical_or(a, b))
BAND = ReduceOp("band", lambda a, b: a & b)
BOR = ReduceOp("bor", lambda a, b: a | b)


_CONFIG_CHOICES = {
    "bcast": ("auto", "binomial", "linear"),
    "reduce": ("auto", "binomial", "linear"),
    "allreduce": ("auto", "doubling", "reduce_bcast", "linear"),
    "allgather": ("auto", "dissemination", "ring"),
    "alltoall": ("auto", "bruck", "pairwise"),
}


@dataclass(frozen=True)
class CollectiveConfig:
    """Per-communicator collective-algorithm selection.

    Every field's ``"auto"`` resolves to the latency-aware engine algorithm
    (``alltoall`` additionally weighs payload size against ``alpha_words``
    per call); pinning a specific name forces it, which is how tests
    cross-check the engine against the naive baselines and how benchmarks
    measure both.  The selection must be identical on every rank of a
    communicator — configs are plumbed through ``spmd(comm_config=...)``
    and inherited by :meth:`Communicator.split`, so this holds by
    construction.

    ``alpha_words`` is the modeled α/β ratio expressed in 8-byte words: the
    payload size below which one extra message costs more than the extra
    volume.  ``pack``/``bitmap_frontiers`` gate the zero-copy payload
    packing and bitmap frontier encodings in :mod:`repro.distmat.ops`.

    ``aggregate`` turns on the superstep coalescer and the hub physical
    plans (see the module docstring): logical ledgers, results and fault
    replay are bit-identical either way, only the physical frame schedule
    changes.  ``alltoall`` defaults to ``"pairwise"`` rather than
    ``"auto"``: Bruck's store-and-forward rounds make every rank's logical
    word count depend on payload sizes it only learns by moving the data
    exactly as Bruck does, so the aggregated planner cannot replay its
    ledger analytically — and pairwise is what the hub plan collapses to
    2(p-1) frames anyway.  Pin ``"auto"`` or ``"bruck"`` to get the old
    selector (those calls then run physical = logical).
    """

    bcast: str = "auto"
    reduce: str = "auto"
    allreduce: str = "auto"
    allgather: str = "auto"
    alltoall: str = "pairwise"
    alpha_words: float = 48.0
    pack: bool = True
    bitmap_frontiers: bool = True
    aggregate: bool = True

    def __post_init__(self) -> None:
        for op, choices in _CONFIG_CHOICES.items():
            val = getattr(self, op)
            if val not in choices:
                raise ValueError(
                    f"unknown {op} algorithm {val!r}; choose from {choices}"
                )
        if self.alpha_words < 0:
            raise ValueError(f"alpha_words must be >= 0, got {self.alpha_words}")


#: The latency-aware engine defaults.
DEFAULT_CONFIG = CollectiveConfig()

#: The naive textbook baselines (and no payload packing) — what the runtime
#: shipped before the collective engine; benchmarks measure against this.
NAIVE_CONFIG = CollectiveConfig(
    bcast="linear",
    reduce="linear",
    allreduce="linear",
    allgather="ring",
    alltoall="pairwise",
    pack=False,
    bitmap_frontiers=False,
    aggregate=False,
)


def _log2ceil(p: int) -> int:
    """⌈log₂p⌉ rounds of a doubling schedule (0 for a singleton)."""
    return (p - 1).bit_length() if p > 1 else 0


@dataclass
class CommStats:
    """Per-rank communication counters (messages and payload words).

    ``words`` counts 8-byte words for NumPy payloads (the unit the paper's β
    is expressed in); non-array payloads count as one word per Python object.
    ``by_alg`` breaks the engine collectives down per chosen algorithm:
    ``{"op:alg": {"calls", "messages", "words", "steps"}}`` where ``steps``
    is the algorithm's sequential round count (the latency term the α-β
    model charges), identical on every rank.

    ``messages_sent``/``words_sent``/``by_op``/``by_alg`` are the
    **logical** ledger: they count the selected algorithm's schedule and
    are invariant under aggregation.  ``frames``/``frame_words`` are the
    **physical** ledger: actual fabric deposits/ring writes.  With
    aggregation off every message is its own frame (``frames ==
    messages_sent``); with it on, coalescing and the hub plans drive
    ``frames`` well below ``messages_sent`` — the quantity BENCH gates on.
    """

    messages_sent: int = 0
    words_sent: int = 0
    by_op: dict[str, int] = field(default_factory=dict)
    by_alg: dict[str, dict[str, int]] = field(default_factory=dict)
    #: physical frames this rank put on the fabric, and the payload words
    #: they carried (>= words_sent under the hub plans: star waves move
    #: some payloads twice, trading words for a large frame reduction)
    frames: int = 0
    frame_words: int = 0
    #: total transient-failure retries and their per-op breakdown (only
    #: nonzero under fault injection; logical message counts above are
    #: unaffected by retries — a retried send still counts once)
    retries: int = 0
    retries_by_op: dict[str, int] = field(default_factory=dict)

    def record(self, op: str, payload: Any) -> int:
        """Count one message; returns its payload word count so callers can
        price it without measuring the payload twice."""
        words = _payload_words(payload)
        self.messages_sent += 1
        self.words_sent += words
        self.by_op[op] = self.by_op.get(op, 0) + 1
        return words

    def record_alg(self, op: str, alg: str, messages: int, words: int, steps: int) -> None:
        d = self.by_alg.setdefault(
            f"{op}:{alg}", {"calls": 0, "messages": 0, "words": 0, "steps": 0}
        )
        d["calls"] += 1
        d["messages"] += messages
        d["words"] += words
        d["steps"] += steps

    def record_frame(self, words: int) -> None:
        """Count one physical frame carrying ``words`` payload words."""
        self.frames += 1
        self.frame_words += words

    def record_retry(self, op: str) -> None:
        self.retries += 1
        self.retries_by_op[op] = self.retries_by_op.get(op, 0) + 1


def _payload_words(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return (payload.nbytes + 7) // 8
    if isinstance(payload, (tuple, list)):
        return sum(_payload_words(x) for x in payload)
    return 1


def _payload_sig(payload: Any) -> tuple:
    """Canonical payload signature for the collective-trace checker.

    NumPy arrays compare by (dtype, shape) — mismatched shapes in a
    reduction combine garbage.  All numeric scalars canonicalize to one
    bucket: ``int`` on one rank vs ``np.int64`` on another is legitimate.
    """
    if isinstance(payload, np.ndarray):
        return ("ndarray", str(payload.dtype), tuple(payload.shape))
    if isinstance(payload, (bool, int, float, complex, np.generic)):
        return ("scalar",)
    return (type(payload).__name__,)


def _check_user_tag(tag: int, *, wildcard_ok: bool) -> None:
    """Reject user tags that collide with the reserved collective space."""
    if wildcard_ok and tag == ANY_TAG:
        return
    if not 0 <= tag < _RESERVED_TAG_BASE:
        raise CommError(
            f"user tag {tag} is outside the valid range [0, {_RESERVED_TAG_BASE}): "
            f"tags >= {_RESERVED_TAG_BASE} (1 << 30) are reserved for collective "
            "operations" + (" and negative tags are not wildcards here" if tag < 0 else "")
        )


def _freeze(payload: Any) -> Any:
    """Copy a payload at send time so sender-side mutation after ``send``
    returns can never be observed by the receiver (wire semantics)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_freeze(x) for x in payload)
    if isinstance(payload, list):
        return [_freeze(x) for x in payload]
    if isinstance(payload, (int, float, bool, str, bytes, type(None), np.generic)):
        return payload
    return copy.deepcopy(payload)


def _doubling_fold(vals: "list[Any]", op: "ReduceOp") -> Any:
    """Fold ``vals`` with the exact reduction tree recursive doubling
    evaluates (fold-in pairs, then a balanced tree with the lower rank's
    contribution on the left).  The aggregated allreduce hub uses this so
    its result is bit-identical to the unaggregated schedule for *any*
    operator, order-sensitive float sums included."""
    p = len(vals)
    if p == 1:
        return vals[0]
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    core = [op(vals[2 * i], vals[2 * i + 1]) for i in range(rem)]
    core.extend(vals[2 * rem:])
    while len(core) > 1:
        core = [op(core[i], core[i + 1]) for i in range(0, len(core), 2)]
    return core[0]


class Request:
    """Waitable handle of a nonblocking operation (``isend``/``irecv``/
    ``iallreduce``).

    ``wait()`` blocks until completion and returns the operation's value
    (``None`` for sends); ``test()`` is a nonblocking completion poll.
    Collective requests follow MPI discipline: every rank of the
    communicator must post and wait them in the same order relative to
    its other collectives.
    """

    def test(self) -> bool:  # pragma: no cover - interface default
        return True

    def wait(self) -> Any:  # pragma: no cover - interface default
        return None


class _DoneRequest(Request):
    """Already-complete request (buffered isend, singleton collectives)."""

    __slots__ = ("_value",)

    def __init__(self, value: Any = None) -> None:
        self._value = value

    def test(self) -> bool:
        return True

    def wait(self) -> Any:
        return self._value


class _DeferredRequest(Request):
    """Runs the full blocking operation at ``wait()`` — the unaggregated
    (or pinned-algorithm) fallback, so ledgers total identically to the
    blocking call they defer."""

    __slots__ = ("_run", "_done", "_value")

    def __init__(self, run: "Callable[[], Any]") -> None:
        self._run = run
        self._done = False
        self._value = None

    def test(self) -> bool:
        return self._done

    def wait(self) -> Any:
        if not self._done:
            self._value = self._run()
            self._run = None
            self._done = True
        return self._value


class _RecvRequest(Request):
    """Nonblocking receive: completion is a mailbox probe."""

    __slots__ = ("_comm", "_source", "_tag", "_done", "_value")

    def __init__(self, comm: "Communicator", source: int, tag: int) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value = None

    def test(self) -> bool:
        if not self._done and self._comm.probe(self._source, self._tag):
            self._value = self._comm.recv(self._source, self._tag)
            self._done = True
        return self._done

    def wait(self) -> Any:
        if not self._done:
            self._value = self._comm.recv(self._source, self._tag)
            self._done = True
        return self._value


class _AllreduceRequest(Request):
    """In-flight aggregated allreduce: the up-leg of the star wave (and the
    full logical ledger) happened at post; ``wait()`` runs the hub fold and
    the down-leg.  The overlap window is everything the rank does between
    post and wait."""

    __slots__ = ("_comm", "_seq", "_op", "_own", "_done", "_value")

    def __init__(self, comm: "Communicator", seq: int, op: "ReduceOp", own: Any) -> None:
        self._comm = comm
        self._seq = seq
        self._op = op
        self._own = own
        self._done = False
        self._value = None

    def test(self) -> bool:
        comm = self._comm
        if not self._done and comm.rank != 0:
            tag = comm._coll_tag(self._seq)
            if comm.fabric.probe(comm.global_rank, comm.group[0], tag):
                self.wait()
        return self._done

    def wait(self) -> Any:
        if self._done:
            return self._value
        comm = self._comm
        p, r = comm.size, comm.rank
        if r == 0:
            vals: list[Any] = [None] * p
            vals[0] = self._own
            for _ in range(p - 1):
                src, item = comm._coll_recv_any("allreduce", self._seq)
                vals[src] = item
            acc = _doubling_fold(vals, self._op)
            for dst in range(1, p):
                comm._phys_send(dst, acc, "allreduce", self._seq)
            comm._flush_frames()
            self._value = acc
        else:
            self._value = comm._coll_recv(0, "allreduce", self._seq)
        self._own = None
        self._done = True
        return self._value


def wait_all(requests: "Sequence[Request]") -> list[Any]:
    """Wait every request, returning their values in order."""
    return [req.wait() for req in requests]


class Communicator:
    """The per-rank handle of one process group.

    ``group`` lists the *global* fabric ranks belonging to this communicator,
    ordered by communicator rank; ``self.rank`` is this rank's position in
    that list.  The base communicator created by the executor covers all
    fabric ranks; sub-communicators (e.g. the process-grid row and column
    communicators used by the 2D SpMV) are created with :meth:`split` and
    inherit ``config``.
    """

    def __init__(
        self,
        fabric: Fabric,
        comm_id: int,
        group: Sequence[int],
        rank: int,
        config: "CollectiveConfig | None" = None,
    ) -> None:
        self.fabric = fabric
        self.comm_id = comm_id
        self.group = list(group)
        self.rank = rank
        self.size = len(self.group)
        self.config = DEFAULT_CONFIG if config is None else config
        self.stats = CommStats()
        #: Optional per-rank span tracer (:class:`repro.runtime.trace.Tracer`),
        #: attached by the executor under ``spmd(..., trace=...)`` and
        #: inherited by :meth:`split`.  ``None`` (the default) keeps tracing
        #: zero-cost: every hook is a single attribute check.
        self.tracer: "Any | None" = None
        self._coll_seq = 0
        if self.group[rank] < 0 or self.group[rank] >= fabric.nranks:
            raise ValueError("communicator group contains out-of-range fabric rank")
        # Per-rank coalescer outbox: dest global rank -> list of pending
        # (tag, payload, reorder_u, words).  Shared with every communicator
        # of this rank via the fabric (split children flush the same box),
        # with a private fallback for duck-typed fabrics in unit tests.
        boxes = getattr(fabric, "_outboxes", None)
        self._outbox: dict[int, list] = (
            {} if boxes is None else boxes[self.group[rank]]
        )

    # -- point to point -----------------------------------------------------

    @property
    def global_rank(self) -> int:
        return self.group[self.rank]

    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Deposit ``payload`` into communicator-rank ``dest``'s mailbox.

        Buffered semantics: the call returns once the (copied) payload is in
        flight, it never blocks on the receiver.
        """
        _check_user_tag(tag, wildcard_ok=False)
        tok = self._trace_begin("send", dest=dest, tag=tag)
        before = self._begin_alg()
        # A serializing fabric (process backend) encodes the payload onto a
        # real wire inside ``deliver`` — that encoding IS the copy, so the
        # defensive freeze would be a second, redundant one.
        if not self.fabric.serializes:
            payload = _freeze(payload)
        self._send_raw(dest, payload, tag, "p2p")
        self._end_alg("send", "p2p", before, 1)
        self._trace_end(tok, "p2p", 1)

    def _send_raw(self, dest: int, payload: Any, tag: int, op: str) -> None:
        words = self.stats.record(op, payload)
        self._deliver_with_faults(self.group[dest], tag, payload, op, words)

    def _fault_sleep(self, seconds: float, category: str) -> None:
        """Sleep injected adversity time, visible in traces.

        Every injected sleep (retry backoff, straggler stall) emits a
        ``cat="fault"`` span carrying ``{category, rank, seconds}`` so
        ``repro trace-report`` can attribute adversity time instead of it
        vanishing into apparent compute time.
        """
        tr = self.tracer
        if tr is None:
            time.sleep(seconds)
            return
        t0 = tr.now()
        time.sleep(seconds)
        tr.add_complete(
            "fault:delay",
            ts=t0,
            dur=tr.now() - t0,
            cat="fault",
            category=category,
            rank=self.global_rank,
            seconds=seconds,
        )

    def _deliver_with_faults(
        self, dest_global: int, tag: int, payload: Any, op: str,
        words: int = 0, defer: bool = False,
    ) -> None:
        """Deliver one envelope, absorbing injected transient failures.

        With no injector armed this is a single attribute check plus the
        dispatch — the zero-cost-when-disabled path.  Under injection the
        full per-message fault protocol (:meth:`_fault_effects`) runs
        first.  ``defer=True`` routes the envelope through the coalescer
        outbox when aggregation is on (collective and isend traffic);
        ``defer=False`` keeps eager per-message delivery (blocking p2p
        ``send``, whose latency contract peers may rely on).
        """
        faults = self.fabric.faults
        if faults is None:
            self._dispatch(dest_global, tag, payload, None, words, defer)
            return
        reorder_u = self._fault_effects(op, dest_global, words)
        self._dispatch(dest_global, tag, payload, reorder_u, words, defer)

    def _fault_effects(self, op: str, dest_global: int, words: int) -> "float | None":
        """Run the injector's per-message protocol for one *logical*
        message and return its reorder draw.

        Transient send failures are retried with capped exponential
        backoff and counted on :class:`CommStats`; a send still failing
        after the retry budget re-raises :class:`TransientCommError` as a
        permanent failure.  Each message that survives is priced into the
        injector's deterministic model-time ledger (straggler/disruption
        factors x degraded-link α-β), and a straggling rank additionally
        serves its wall-clock stall here.  The aggregated physical plans
        call this once per message of the *logical* schedule (via
        :meth:`_logical_send`), so fault decision streams, retries and
        model time replay bit-for-bit whether or not the message travels
        individually.
        """
        faults = self.fabric.faults
        policy = faults.retry
        attempt = 0
        while True:
            try:
                reorder_u = faults.on_send(self.global_rank)
            except TransientCommError:
                attempt += 1
                self.stats.record_retry(op)
                if attempt > policy.max_retries:
                    raise TransientCommError(
                        f"rank {self.global_rank}: send to fabric rank "
                        f"{dest_global} (op {op}) still failing after "
                        f"{policy.max_retries} retries"
                    ) from None
                self._fault_sleep(policy.delay(attempt), "retry-backoff")
                continue
            stall = faults.wall_delay(self.global_rank)
            if stall > 0.0:
                self._fault_sleep(stall, "straggler")
            faults.price_message(self.global_rank, dest_global, words)
            return reorder_u

    def _dispatch(
        self, dest_global: int, tag: int, payload: Any,
        reorder_u: "float | None", words: int, defer: bool,
    ) -> None:
        """Physical send: enqueue into the coalescer (deferred, aggregated)
        or deliver immediately as a single-message frame."""
        if defer and self.config.aggregate:
            self._outbox.setdefault(dest_global, []).append(
                (tag, payload, reorder_u, words)
            )
            return
        self.stats.record_frame(words)
        self.fabric.deliver(self.global_rank, dest_global, tag, payload, reorder_u)

    def _flush_frames(self) -> None:
        """Flush the coalescer: one frame per pending destination.

        Deterministic call sites only — entry to any blocking receive,
        every collective boundary (:meth:`_end_alg`), the hub side of a
        star wave, and :meth:`flush_sends` — so physical frame counts are
        reproducible run to run.  Emits one ``comm:flush`` span
        (``cat="flush"``) whose words equal the frame-ledger delta.
        """
        box = self._outbox
        if not box:
            return
        items = list(box.items())
        box.clear()
        tr = self.tracer
        t0 = tr.now() if tr is not None else 0.0
        fabric = self.fabric
        deliver_frame = getattr(fabric, "deliver_frame", None)
        stats = self.stats
        nmsgs = 0
        nwords = 0
        for dest, entries in items:
            words = 0
            for entry in entries:
                words += entry[3]
            if deliver_frame is not None:
                deliver_frame(
                    self.global_rank, dest,
                    [(tag, payload, u) for (tag, payload, u, _) in entries],
                )
            else:  # duck-typed fabric without frame transport
                for tag, payload, u, _ in entries:
                    fabric.deliver(self.global_rank, dest, tag, payload, u)
            stats.record_frame(words)
            nmsgs += len(entries)
            nwords += words
        if tr is not None:
            tr.add_complete(
                "comm:flush", ts=t0, dur=tr.now() - t0, cat="flush",
                frames=len(items), messages=nmsgs, words=nwords,
            )

    def flush_sends(self) -> None:
        """Flush any coalesced frames still pending toward peers.

        The transports call this when a rank's SPMD function returns (the
        end-of-program safety point); user code only needs it to push out
        ``isend`` tails before a long non-communicating stretch.
        """
        self._flush_frames()

    def _collect(self, src_global: int, tag: int) -> Any:
        """Blocking receive entry: pending coalesced frames are flushed
        first — a blocked rank must never sit on traffic its peers need
        in order to make progress."""
        if self._outbox:
            self._flush_frames()
        return self.fabric.collect(self.global_rank, src_global, tag)

    def _logical_send(self, op: str, dest: int, words: int) -> None:
        """Ledger one message of an unaggregated schedule the physical
        plan replaces: logical counters and the full per-message fault
        protocol fire exactly as the round-based send would; only the
        physical delivery is elided.  ``dest`` is a communicator rank (the
        injector prices per link, so destinations must match the logical
        schedule's)."""
        stats = self.stats
        stats.messages_sent += 1
        stats.words_sent += words
        stats.by_op[op] = stats.by_op.get(op, 0) + 1
        if self.fabric.faults is not None:
            self._fault_effects(op, self.group[dest], words)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Block until a message matching (source, tag) arrives; return its
        payload.  ``source`` is a communicator rank or ``ANY_SOURCE``."""
        _check_user_tag(tag, wildcard_ok=True)
        src_global = ANY_SOURCE if source == ANY_SOURCE else self.group[source]
        env = self._collect(src_global, tag)
        return env.payload

    def recv_with_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> tuple[Any, int, int]:
        """Like :meth:`recv` but also return ``(payload, source_rank, tag)``."""
        _check_user_tag(tag, wildcard_ok=True)
        src_global = ANY_SOURCE if source == ANY_SOURCE else self.group[source]
        env = self._collect(src_global, tag)
        try:
            src_local = self.group.index(env.source)
        except ValueError:  # message from outside the group (shouldn't happen)
            src_local = -1
        return env.payload, src_local, env.tag

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        _check_user_tag(tag, wildcard_ok=True)
        if self._outbox:
            self._flush_frames()  # liveness: a probe loop must not hold traffic
        src_global = ANY_SOURCE if source == ANY_SOURCE else self.group[source]
        return self.fabric.probe(self.global_rank, src_global, tag)

    def isend(self, dest: int, payload: Any, tag: int = 0) -> "Request":
        """Nonblocking buffered send: the payload is captured (copied)
        immediately, so the returned request is already complete and the
        buffer is reusable — MPI buffered-mode semantics.  Under
        aggregation the message rides in this rank's next coalesced frame
        to ``dest``, leaving at the next blocking call, collective
        boundary, or :meth:`flush_sends`."""
        _check_user_tag(tag, wildcard_ok=False)
        tok = self._trace_begin("isend", dest=dest, tag=tag)
        before = self._begin_alg()
        # Always freeze: with a deferred (coalesced) encode, even the
        # serializing fabric's wire copy happens after this call returns.
        payload = _freeze(payload)
        words = self.stats.record("p2p", payload)
        self._deliver_with_faults(
            self.group[dest], tag, payload, "p2p", words, defer=True
        )
        self._end_alg("isend", "p2p", before, 1, flush=False)
        self._trace_end(tok, "p2p", 1)
        return _DoneRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "Request":
        """Nonblocking receive: ``test()`` probes, ``wait()`` blocks and
        returns the payload."""
        _check_user_tag(tag, wildcard_ok=True)
        return _RecvRequest(self, source, tag)

    def sendrecv(self, dest: int, payload: Any, source: int, tag: int = 0) -> Any:
        """Combined exchange: send to ``dest`` and receive from ``source``.

        Because sends are buffered this cannot deadlock even when both sides
        call it simultaneously, matching ``MPI_Sendrecv``.
        """
        self.send(dest, payload, tag)
        return self.recv(source, tag)

    # -- collective plumbing --------------------------------------------------

    def _coll_tag(self, seq: int) -> int:
        # Python ints are unbounded, so packing (comm_id, seq) above the
        # reserved base gives every collective *instance* its own tag: a
        # wildcard receive inside one collective can never match a message
        # belonging to a different collective or communicator.
        return _RESERVED_TAG_BASE + (self.comm_id << 32) + seq

    def _coll_send(self, dest: int, payload: Any, opname: str, seq: int) -> None:
        # Deferred dispatch is safe without an extra freeze on serializing
        # fabrics: collective traffic is always flushed before the call
        # returns (its own receives, or the _end_alg boundary), so no user
        # code can mutate the payload between enqueue and wire encode.
        words = self.stats.record(opname, payload)
        self._deliver_with_faults(
            self.group[dest],
            self._coll_tag(seq),
            # Copy at send time (wire semantics): receivers own their data.
            # A serializing fabric's ring encoding already makes that copy.
            (opname, self.comm_id, seq,
             payload if self.fabric.serializes else _freeze(payload)),
            opname,
            words,
            defer=True,
        )

    def _phys_send(self, dest: int, body: Any, opname: str, seq: int) -> None:
        """One physical-plan message: enqueued into the coalescer with the
        collective's tag/wrapper but NO logical-ledger or fault effects —
        those replay separately via :meth:`_logical_send`."""
        self._dispatch(
            self.group[dest],
            self._coll_tag(seq),
            (opname, self.comm_id, seq,
             body if self.fabric.serializes else _freeze(body)),
            None,
            _payload_words(body),
            defer=True,
        )

    def _coll_recv(self, source: int, opname: str, seq: int) -> Any:
        src_global = self.group[source]
        env = self._collect(src_global, self._coll_tag(seq))
        got_op, got_comm, got_seq, payload = env.payload
        if got_op != opname or got_comm != self.comm_id or got_seq != seq:
            raise CollectiveMismatchError(
                f"rank {self.rank} (comm {self.comm_id}) in {opname}#{seq} "
                f"received {got_op}#{got_seq} from rank {source} "
                f"(comm {got_comm}): ranks entered different collectives"
            )
        return payload

    def _coll_recv_any(self, opname: str, seq: int) -> Any:
        """Hub-side receive of one star-wave up message (any source)."""
        env = self._collect(ANY_SOURCE, self._coll_tag(seq))
        got_op, got_comm, got_seq, body = env.payload
        if got_op != opname or got_comm != self.comm_id or got_seq != seq:
            raise CollectiveMismatchError(
                f"hub of {opname}#{seq} (comm {self.comm_id}) received "
                f"{got_op}#{got_seq} (comm {got_comm}): ranks entered "
                "different collectives"
            )
        return body

    def _hub_exchange(
        self, opname: str, seq: int, up_item: Any,
        down_items: "Callable[[list[Any]], list[Any]]",
    ) -> Any:
        """The aggregated physical schedule shared by the planned rootless
        collectives: every non-hub rank sends one ``(rank, item)`` frame up
        to comm rank 0; the hub computes the per-destination results with
        ``down_items(ups)`` and sends one frame back down to each rank —
        2(p-1) frames per wave, independent of the logical round count.
        Returns this rank's down payload (the hub: ``down_items(ups)[0]``).
        """
        p, r = self.size, self.rank
        if r == 0:
            ups: list[Any] = [None] * p
            ups[0] = up_item
            for _ in range(p - 1):
                src, item = self._coll_recv_any(opname, seq)
                ups[src] = item
            downs = down_items(ups)
            for dst in range(1, p):
                self._phys_send(dst, downs[dst], opname, seq)
            self._flush_frames()  # the hub's down-leg must not linger
            return downs[0]
        self._phys_send(0, (r, up_item), opname, seq)
        return self._coll_recv(0, opname, seq)

    def _next_seq(self) -> int:
        self._coll_seq += 1
        return self._coll_seq

    def _verify(self, op: str, seq: int, root: int | None = None, extra: tuple | None = None) -> None:
        """Record this rank's entry into a collective with the divergence
        checker (active only under ``spmd(..., verify=True)``).

        Raises :class:`CollectiveMismatchError` immediately when this rank's
        n-th collective disagrees with a peer's n-th collective — op, root,
        or (for reductions) operator/payload signature.

        This is also the collective-entry fault point: a plan scheduling a
        crash at this rank's Nth collective fires here, before any peer
        traffic for the collective is generated.
        """
        faults = self.fabric.faults
        if faults is not None:
            faults.on_collective(self.global_rank)
        trace = self.fabric.collective_trace
        if trace is not None:
            trace.record(self.comm_id, seq, self.rank, self.size, (op, root, extra))

    def _begin_alg(self) -> tuple[int, int]:
        """Snapshot (messages, words) so the per-algorithm delta can be
        attributed after the collective's traffic completes."""
        return self.stats.messages_sent, self.stats.words_sent

    def _end_alg(
        self, op: str, alg: str, before: tuple[int, int], steps: int,
        flush: bool = True,
    ) -> None:
        self.stats.record_alg(
            op, alg,
            self.stats.messages_sent - before[0],
            self.stats.words_sent - before[1],
            steps,
        )
        # Every collective boundary is a deterministic flush point, so
        # trailing sends (a bcast leaf, an exscan link, scattered pieces)
        # are on the wire before user code regains control.  isend opts
        # out — deferring its frame IS the point.
        if flush and self._outbox:
            self._flush_frames()

    def _trace_begin(self, opname: str, **args: Any) -> "tuple[int, int] | None":
        """Open one comm span and snapshot (messages, words) — the same
        counters :meth:`_begin_alg` snapshots, and no traffic happens
        between the two snapshot points, so a span's word delta equals its
        ``by_alg`` delta *exactly* (the cross-check invariant the traced
        benchmark asserts).  Returns ``None`` with tracing off."""
        tr = self.tracer
        if tr is None:
            return None
        tr.begin(opname, cat="comm", comm=self.comm_id, peers=self.size, **args)
        return self.stats.messages_sent, self.stats.words_sent

    def _trace_end(self, tok: "tuple[int, int] | None", alg: str, steps: int) -> None:
        if tok is None:
            return
        self.tracer.end(
            alg=alg,
            steps=steps,
            messages=self.stats.messages_sent - tok[0],
            words=self.stats.words_sent - tok[1],
        )

    # -- collectives ----------------------------------------------------------

    def barrier(self) -> None:
        """Dissemination barrier: ⌈log₂p⌉ rounds (one aggregated star wave
        under ``config.aggregate``)."""
        self.barrier_n(1)

    def barrier_n(self, count: int) -> None:
        """``count`` consecutive barriers in one physical wave.

        Logically — ledger, verify signatures, fault points, trace spans —
        identical to calling :meth:`barrier` ``count`` times.  Under
        aggregation the physical release is a single star wave for the
        whole batch (2(p-1) frames total), which is what lets the RMA
        layer's ``fence_all``/``free_all`` fuse their epoch barriers.
        """
        if count <= 0:
            return
        p, r = self.size, self.rank
        aggregated = self.config.aggregate and p > 1
        first_seq = 0
        for i in range(count):
            seq = self._next_seq()
            if i == 0:
                first_seq = seq
            tok = self._trace_begin("barrier")
            self._verify("barrier", seq)
            before = self._begin_alg()
            k = 1
            while k < p:
                if aggregated:
                    self._logical_send("barrier", (r + k) % p, 1)
                else:
                    self._coll_send((r + k) % p, None, "barrier", seq)
                    self._coll_recv((r - k) % p, "barrier", seq)
                k *= 2
            self._end_alg("barrier", "dissemination", before, _log2ceil(p))
            self._trace_end(tok, "dissemination", _log2ceil(p))
        if aggregated:
            self._hub_exchange("barrier", first_seq, None, lambda ups: [None] * p)

    # -- bcast ---------------------------------------------------------------

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast from ``root``; returns the payload on all ranks (a
        private copy on each non-root rank).  Binomial tree by default;
        ``config.bcast = "linear"`` pins the naive root-sends-to-all
        baseline."""
        seq = self._next_seq()
        tok = self._trace_begin("bcast", root=root)
        self._verify("bcast", seq, root=root)
        alg = "binomial" if self.config.bcast == "auto" else self.config.bcast
        before = self._begin_alg()
        if alg == "linear":
            out = self._bcast_linear(payload, root, seq)
            steps = max(0, self.size - 1)
        else:
            out = self._bcast_binomial(payload, root, seq)
            steps = _log2ceil(self.size)
        self._end_alg("bcast", alg, before, steps)
        self._trace_end(tok, alg, steps)
        return out

    def _bcast_binomial(self, payload: Any, root: int, seq: int) -> Any:
        p = self.size
        # Rotate so the root is virtual rank 0 (MPICH binomial algorithm).
        vr = (self.rank - root) % p
        mask = 1
        while mask < p:
            if vr & mask:
                src = ((vr - mask) + root) % p
                payload = self._coll_recv(src, "bcast", seq)
                break
            mask <<= 1
        else:
            payload = _freeze(payload)  # root: keep a private copy
        # ``mask`` is now the lowest set bit of vr (or >= p at the root);
        # forward to children at descending offsets below it.
        mask >>= 1
        while mask > 0:
            if vr + mask < p:
                dst = ((vr + mask) + root) % p
                self._coll_send(dst, payload, "bcast", seq)
            mask >>= 1
        return payload

    def _bcast_linear(self, payload: Any, root: int, seq: int) -> Any:
        if self.rank == root:
            payload = _freeze(payload)
            for dst in range(self.size):
                if dst != root:
                    self._coll_send(dst, payload, "bcast", seq)
            return payload
        return self._coll_recv(root, "bcast", seq)

    # -- gather / scatter ------------------------------------------------------

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Direct gather: every rank sends its payload to ``root``; root
        returns the list ordered by rank, others return ``None``."""
        seq = self._next_seq()
        tok = self._trace_begin("gather", root=root)
        self._verify("gather", seq, root=root)
        before = self._begin_alg()
        if self.rank == root:
            out: "list[Any] | None" = [None] * self.size
            out[root] = _freeze(payload)
            for _ in range(self.size - 1):
                env = self._collect(ANY_SOURCE, self._coll_tag(seq))
                got_op, got_comm, got_seq, body = env.payload
                if got_op != "gather" or got_seq != seq or got_comm != self.comm_id:
                    raise CollectiveMismatchError(
                        f"root of gather#{seq} received {got_op}#{got_seq}"
                    )
                src_local, item = body
                out[src_local] = item
        else:
            self._coll_send(root, (self.rank, payload), "gather", seq)
            out = None
        self._end_alg("gather", "direct", before, max(0, self.size - 1))
        self._trace_end(tok, "direct", max(0, self.size - 1))
        return out

    def gatherv(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Alias of :meth:`gather` — variable-size payloads are natural here."""
        return self.gather(payload, root)

    def scatter(self, payloads: Sequence[Any] | None, root: int = 0) -> Any:
        """Root distributes ``payloads[i]`` to rank ``i``; returns own piece."""
        seq = self._next_seq()
        tok = self._trace_begin("scatter", root=root)
        self._verify("scatter", seq, root=root)
        before = self._begin_alg()
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError("scatter root must supply one payload per rank")
            for dst in range(self.size):
                if dst != root:
                    self._coll_send(dst, payloads[dst], "scatter", seq)
            out = _freeze(payloads[root])
        else:
            out = self._coll_recv(root, "scatter", seq)
        self._end_alg("scatter", "direct", before, max(0, self.size - 1))
        self._trace_end(tok, "direct", max(0, self.size - 1))
        return out

    # -- allgather -------------------------------------------------------------

    def allgather(self, payload: Any) -> list[Any]:
        """Allgather; returns the list of payloads ordered by rank.

        Dissemination (Bruck) by default — ⌈log₂p⌉ rounds moving the same
        p-1 blocks per rank the ring moves in p-1 rounds;
        ``config.allgather = "ring"`` pins the naive ring baseline."""
        seq = self._next_seq()
        tok = self._trace_begin("allgather")
        self._verify("allgather", seq)
        alg = "dissemination" if self.config.allgather == "auto" else self.config.allgather
        before = self._begin_alg()
        if alg == "ring":
            out = self._allgather_ring(payload, seq)
            steps = max(0, self.size - 1)
        elif self.config.aggregate and self.size > 1:
            out = self._allgather_hub(payload, seq)
            steps = _log2ceil(self.size)
        else:
            out = self._allgather_dissemination(payload, seq)
            steps = _log2ceil(self.size)
        self._end_alg("allgather", alg, before, steps)
        self._trace_end(tok, alg, steps)
        return out

    def _allgather_hub(self, payload: Any, seq: int) -> list[Any]:
        """Aggregated dissemination allgather: one star wave carries every
        block (2(p-1) frames), while the ledger replays the dissemination
        rounds' exact per-message word counts — computable here because
        after the wave every rank holds all block sizes."""
        p, r = self.size, self.rank
        out = list(self._hub_exchange(
            "allgather", seq, _freeze(payload), lambda ups: [ups] * p
        ))
        bw = [_payload_words(out[i]) for i in range(p)]
        k = 1
        while k < p:
            # dissemination round k sends held[:nsend] = (src, block) pairs
            # for blocks r..r+nsend-1: one word per src int plus the block
            nsend = min(k, p - k)
            words = nsend + sum(bw[(r + i) % p] for i in range(nsend))
            self._logical_send("allgather", (r - k) % p, words)
            k *= 2
        return out

    def _allgather_ring(self, payload: Any, seq: int) -> list[Any]:
        p, r = self.size, self.rank
        out: list[Any] = [None] * p
        out[r] = _freeze(payload)
        if p == 1:
            return out
        right = (r + 1) % p
        left = (r - 1) % p
        carried = (r, out[r])
        for _ in range(p - 1):
            self._coll_send(right, carried, "allgather", seq)
            carried = self._coll_recv(left, "allgather", seq)
            src, item = carried
            out[src] = item
        return out

    def _allgather_dissemination(self, payload: Any, seq: int) -> list[Any]:
        # Bruck/dissemination allgather: after the round with distance k,
        # rank r holds blocks r .. r+2k-1 (mod p) in acquisition order, so
        # the last round may forward only a partial batch (non-power-of-two
        # p); total traffic is the ring's p-1 blocks in ⌈log₂p⌉ rounds.
        p, r = self.size, self.rank
        out: list[Any] = [None] * p
        out[r] = _freeze(payload)
        if p == 1:
            return out
        held: list[tuple[int, Any]] = [(r, out[r])]
        k = 1
        while k < p:
            nsend = min(k, p - k)
            self._coll_send((r - k) % p, held[:nsend], "allgather", seq)
            held.extend(self._coll_recv((r + k) % p, "allgather", seq))
            k *= 2
        for src, item in held:
            out[src] = item
        return out

    def allgatherv(self, payload: Any) -> list[Any]:
        """Alias of :meth:`allgather` (payloads may differ in size)."""
        return self.allgather(payload)

    # -- alltoall ---------------------------------------------------------------

    def alltoall(self, payloads: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all: ``payloads[i]`` is destined for rank
        ``i``; returns the list of payloads received, indexed by source rank.

        ``config.alltoall`` picks the schedule: "pairwise" (p-1 sendrecv
        steps, minimum volume), "bruck" (⌈log₂p⌉ store-and-forward rounds,
        each block travelling once per set bit of its rank distance), or
        "auto" — an α-β comparison on the global maximum send volume, made
        rank-uniform by a ⌈log₂p⌉-step one-word dissemination max so every
        rank runs the same schedule.
        """
        if len(payloads) != self.size:
            raise ValueError(
                f"alltoall needs exactly {self.size} payloads, got {len(payloads)}"
            )
        seq = self._next_seq()
        tok = self._trace_begin("alltoall")
        self._verify("alltoall", seq)
        p, r = self.size, self.rank
        rounds = _log2ceil(p)
        extra_steps = 0
        # snapshot before the auto sizing exchange so its messages/words are
        # attributed to the chosen algorithm (as its steps already are)
        before = self._begin_alg()
        alg = self.config.alltoall
        if alg == "auto":
            if p <= 3:
                # Bruck's ⌈log₂p⌉ rounds equal p-1 here: no latency win, and
                # forwarding would only add volume — pairwise outright.
                alg = "pairwise"
            else:
                my_words = sum(
                    _payload_words(payloads[d]) for d in range(p) if d != r
                )
                W = self._dissemination_max(my_words, seq)
                extra_steps = rounds
                aw = self.config.alpha_words
                bruck_cost = aw * rounds + W * rounds / 2.0
                pairwise_cost = aw * (p - 1) + W
                alg = "bruck" if bruck_cost < pairwise_cost else "pairwise"
        if alg == "bruck":
            # Bruck's forwarded blocks give each rank logical word counts
            # that depend on payloads it never sees until it moves them, so
            # there is no analytic ledger: physical = logical.
            out = self._alltoall_bruck(payloads, seq)
            steps = extra_steps + rounds
        elif self.config.aggregate and p > 1:
            out = self._alltoall_hub(payloads, seq)
            steps = extra_steps + max(0, p - 1)
        else:
            out = self._alltoall_pairwise(payloads, seq)
            steps = extra_steps + max(0, p - 1)
        self._end_alg("alltoall", alg, before, steps)
        self._trace_end(tok, alg, steps)
        return out

    def _alltoall_hub(self, payloads: Sequence[Any], seq: int) -> list[Any]:
        """Aggregated pairwise alltoall: each rank ships its whole payload
        row up in one frame, the hub repacks per destination and ships one
        frame back down.  Word volume roughly doubles physically (rows
        travel up and repacked columns travel down) but frames drop from
        p(p-1) to 2(p-1) per call — the α-dominated regime this engine
        targets.  The ledger replays pairwise's p-1 per-destination sends."""
        p, r = self.size, self.rank
        for step in range(1, p):
            dst = (r + step) % p
            self._logical_send("alltoall", dst, _payload_words(payloads[dst]))
        row = list(payloads)
        if r == 0:
            row[0] = _freeze(row[0])  # the hub's own block skips the wire
        out = self._hub_exchange(
            "alltoall", seq, row,
            lambda rows: [[rows[s][d] for s in range(p)] for d in range(p)],
        )
        return list(out)

    def _dissemination_max(self, value: int, seq: int) -> int:
        """Global max of a per-rank scalar in ⌈log₂p⌉ one-word rounds.

        Plain dissemination is only a correct allreduce for *idempotent*
        operators (a contribution may be folded in twice past the wrap-
        around) — max is.  Shares the collective's (tag, seq) stream: every
        rank finishes these rounds before its first data round, so per-
        stream FIFO keeps the one-word counts ahead of the data blocks.
        """
        p, r = self.size, self.rank
        k = 1
        while k < p:
            self._coll_send((r + k) % p, value, "alltoall", seq)
            value = max(value, self._coll_recv((r - k) % p, "alltoall", seq))
            k *= 2
        return value

    def _alltoall_pairwise(self, payloads: Sequence[Any], seq: int) -> list[Any]:
        p, r = self.size, self.rank
        out: list[Any] = [None] * p
        out[r] = _freeze(payloads[r])
        for step in range(1, p):
            dst = (r + step) % p
            src = (r - step) % p
            self._coll_send(dst, payloads[dst], "alltoall", seq)
            out[src] = self._coll_recv(src, "alltoall", seq)
        return out

    def _alltoall_bruck(self, payloads: Sequence[Any], seq: int) -> list[Any]:
        # Store-and-forward alltoall: label each block by its rank distance
        # i = (dest - source) mod p.  In the round with distance 2^k, every
        # rank forwards its blocks whose label has bit k set to rank r+2^k
        # and receives the same labels from r-2^k; a block's total travel is
        # the sum of its label's bits = its distance, so it lands exactly at
        # its destination.  Same-labeled blocks move in lockstep, so one
        # slot per label suffices.
        p, r = self.size, self.rank
        buf: list[Any] = [payloads[(r + i) % p] for i in range(p)]
        buf[0] = _freeze(buf[0])  # own block never travels
        step = 1
        while step < p:
            moving = [(i, buf[i]) for i in range(1, p) if i & step]
            self._coll_send((r + step) % p, moving, "alltoall", seq)
            for i, item in self._coll_recv((r - step) % p, "alltoall", seq):
                buf[i] = item
            step <<= 1
        # block with label i now held here came from source (r - i) mod p
        return [buf[(r - s) % p] for s in range(p)]

    def alltoallv(self, payloads: Sequence[Any]) -> list[Any]:
        """Alias of :meth:`alltoall` (variable-size payloads)."""
        return self.alltoall(payloads)

    # -- reductions ---------------------------------------------------------------

    def reduce(self, payload: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        """Reduction to ``root``; returns the reduced value at root and
        ``None`` elsewhere.  Binomial tree by default; ``config.reduce =
        "linear"`` pins the naive everyone-sends-to-root baseline."""
        seq = self._next_seq()
        tok = self._trace_begin("reduce", root=root, op=op.name)
        self._verify("reduce", seq, root=root, extra=(op.name,) + _payload_sig(payload))
        alg = "binomial" if self.config.reduce == "auto" else self.config.reduce
        before = self._begin_alg()
        if alg == "linear":
            out = self._reduce_linear(payload, op, root, seq)
            steps = max(0, self.size - 1)
        else:
            out = self._reduce_binomial(payload, op, root, seq)
            steps = _log2ceil(self.size)
        self._end_alg("reduce", alg, before, steps)
        self._trace_end(tok, alg, steps)
        return out

    def _reduce_binomial(self, payload: Any, op: ReduceOp, root: int, seq: int) -> Any:
        p = self.size
        vr = (self.rank - root) % p
        acc = _freeze(payload)
        mask = 1
        while mask < p:
            if vr & mask:
                dst = ((vr & ~mask) + root) % p
                self._coll_send(dst, acc, "reduce", seq)
                return None
            if vr | mask < p:
                other = self._coll_recv(((vr | mask) + root) % p, "reduce", seq)
                acc = op(acc, other)
            mask <<= 1
        return acc if self.rank == root else None

    def _reduce_linear(self, payload: Any, op: ReduceOp, root: int, seq: int) -> Any:
        if self.rank != root:
            self._coll_send(root, payload, "reduce", seq)
            return None
        acc = _freeze(payload)
        for src in range(self.size):
            if src != root:
                acc = op(acc, self._coll_recv(src, "reduce", seq))
        return acc

    def allreduce(self, payload: Any, op: ReduceOp = SUM) -> Any:
        """Reduction returning the result on every rank.

        Recursive doubling by default (MPICH's algorithm, with the
        fold-in/fold-out rounds for non-power-of-two p); ``config.allreduce``
        pins "reduce_bcast" (binomial reduce to 0 + binomial bcast — the
        runtime's previous composition, traced as those two collectives) or
        "linear" (naive linear reduce + linear bcast).
        """
        alg = "doubling" if self.config.allreduce == "auto" else self.config.allreduce
        tok = self._trace_begin("allreduce", op=op.name)
        before = self._begin_alg()
        if alg == "doubling":
            seq = self._next_seq()
            self._verify(
                "allreduce", seq, extra=(op.name,) + _payload_sig(payload)
            )
            if self.config.aggregate and self.size > 1:
                out, steps = self._allreduce_hub(payload, op, seq)
            else:
                out, steps = self._allreduce_doubling(payload, op, seq)
        else:
            # composed variants: traced exactly like the explicit
            # reduce-then-bcast call sequence they are
            seq = self._next_seq()
            self._verify("reduce", seq, root=0, extra=(op.name,) + _payload_sig(payload))
            if alg == "linear":
                acc = self._reduce_linear(payload, op, 0, seq)
            else:
                acc = self._reduce_binomial(payload, op, 0, seq)
            seq2 = self._next_seq()
            self._verify("bcast", seq2, root=0)
            if alg == "linear":
                out = self._bcast_linear(acc, 0, seq2)
                steps = 2 * max(0, self.size - 1)
            else:
                out = self._bcast_binomial(acc, 0, seq2)
                steps = 2 * _log2ceil(self.size)
        self._end_alg("allreduce", alg, before, steps)
        self._trace_end(tok, alg, steps)
        return out

    def _allreduce_doubling(self, payload: Any, op: ReduceOp, seq: int) -> tuple[Any, int]:
        # MPICH recursive doubling: fold the rem = p - 2^⌊log₂p⌋ surplus
        # ranks into their neighbours, run log₂ rounds of pairwise exchange
        # on the power-of-two core, then fold the result back out.
        p, r = self.size, self.rank
        acc = _freeze(payload)
        if p == 1:
            return acc, 0
        pof2 = 1 << (p.bit_length() - 1)
        if pof2 > p:  # pragma: no cover - bit_length guarantees pof2 <= p
            pof2 >>= 1
        rem = p - pof2
        if r < 2 * rem:
            if r % 2 == 0:
                self._coll_send(r + 1, acc, "allreduce", seq)
                newr = -1  # folded in; waits for fold-out
            else:
                acc = op(self._coll_recv(r - 1, "allreduce", seq), acc)
                newr = r // 2
        else:
            newr = r - rem
        if newr >= 0:
            mask = 1
            while mask < pof2:
                partner_new = newr ^ mask
                partner = (
                    partner_new * 2 + 1 if partner_new < rem else partner_new + rem
                )
                self._coll_send(partner, acc, "allreduce", seq)
                other = self._coll_recv(partner, "allreduce", seq)
                # combine lower-rank contribution on the left: every rank
                # evaluates the same reduction tree, so even order-sensitive
                # operators stay rank-consistent
                acc = op(other, acc) if partner < r else op(acc, other)
                mask <<= 1
        if r < 2 * rem:
            if r % 2 == 1:
                self._coll_send(r - 1, acc, "allreduce", seq)
            else:
                acc = self._coll_recv(r + 1, "allreduce", seq)
        steps = (pof2.bit_length() - 1) + (2 if rem else 0)
        return acc, steps

    def _allreduce_ledger(self, words: int) -> int:
        """Charge the logical ledger with recursive doubling's exact send
        schedule (destinations and program order included, so fault-injector
        decision streams match the unaggregated run) without moving data.
        Returns the step count."""
        p, r = self.size, self.rank
        pof2 = 1 << (p.bit_length() - 1)
        if pof2 > p:  # pragma: no cover - bit_length guarantees pof2 <= p
            pof2 >>= 1
        rem = p - pof2
        if r < 2 * rem:
            if r % 2 == 0:
                self._logical_send("allreduce", r + 1, words)
                newr = -1
            else:
                newr = r // 2
        else:
            newr = r - rem
        if newr >= 0:
            mask = 1
            while mask < pof2:
                partner_new = newr ^ mask
                partner = (
                    partner_new * 2 + 1 if partner_new < rem else partner_new + rem
                )
                self._logical_send("allreduce", partner, words)
                mask <<= 1
        if r < 2 * rem and r % 2 == 1:
            self._logical_send("allreduce", r - 1, words)
        return (pof2.bit_length() - 1) + (2 if rem else 0)

    def _allreduce_hub(self, payload: Any, op: ReduceOp, seq: int) -> tuple[Any, int]:
        """Aggregated allreduce: one up-frame per rank to the hub, which
        evaluates the same balanced reduction tree recursive doubling would
        (:func:`_doubling_fold`, so order-sensitive operators agree bitwise)
        and ships one result frame back down.  2(p-1) physical frames
        instead of ~p·log p messages; the logical ledger replays doubling's
        schedule via :meth:`_allreduce_ledger`."""
        steps = self._allreduce_ledger(_payload_words(payload))
        own = _freeze(payload)
        out = self._hub_exchange(
            "allreduce", seq, own,
            lambda ups: [_doubling_fold(ups, op)] * self.size,
        )
        return out, steps

    def iallreduce(self, payload: Any, op: ReduceOp = SUM) -> Request:
        """Nonblocking allreduce: returns a :class:`Request` whose ``wait``
        yields the reduced value on every rank.

        Ledger, divergence check, and trace span are identical to the
        blocking :meth:`allreduce` (the span is named "allreduce" so the
        trace/ledger cross-check keys line up); only completion is
        deferred.  On the aggregated doubling path non-hub ranks post their
        up-frame immediately and the hub's fold + down wave runs inside
        ``wait`` — the window between post and wait is compute the caller
        overlaps with communication.  Pinned compositions fall back to a
        deferred blocking call (payload frozen at post time).
        """
        alg = "doubling" if self.config.allreduce == "auto" else self.config.allreduce
        if not (self.config.aggregate and self.size > 1 and alg == "doubling"):
            frozen = _freeze(payload)
            return _DeferredRequest(lambda: self.allreduce(frozen, op))
        tok = self._trace_begin("allreduce", op=op.name)
        before = self._begin_alg()
        seq = self._next_seq()
        self._verify("allreduce", seq, extra=(op.name,) + _payload_sig(payload))
        steps = self._allreduce_ledger(_payload_words(payload))
        own = _freeze(payload)
        if self.rank != 0:
            self._phys_send(0, (self.rank, own), "allreduce", seq)
        self._end_alg("allreduce", alg, before, steps)
        self._trace_end(tok, alg, steps)
        return _AllreduceRequest(self, seq, op, own)

    def exscan(self, payload: Any, op: ReduceOp = SUM) -> Any:
        """Exclusive prefix reduction along the rank chain.

        Rank 0 receives ``None`` (no predecessor contribution); rank i
        receives op-fold of payloads from ranks 0..i-1.
        """
        seq = self._next_seq()
        tok = self._trace_begin("exscan", op=op.name)
        self._verify("exscan", seq, extra=(op.name,) + _payload_sig(payload))
        before = self._begin_alg()
        prefix = None
        if self.rank > 0:
            prefix = self._coll_recv(self.rank - 1, "exscan", seq)
        if self.rank + 1 < self.size:
            mine = _freeze(payload) if prefix is None else op(prefix, payload)
            self._coll_send(self.rank + 1, mine, "exscan", seq)
        self._end_alg("exscan", "chain", before, max(0, self.size - 1))
        self._trace_end(tok, "chain", max(0, self.size - 1))
        return prefix

    def scan(self, payload: Any, op: ReduceOp = SUM) -> Any:
        """Inclusive prefix reduction along the rank chain.

        Traced as its inner :meth:`exscan` (scan itself moves no extra
        words, and a second span would double-count the chain's traffic).
        """
        prefix = self.exscan(payload, op)
        return _freeze(payload) if prefix is None else op(prefix, payload)

    # -- communicator management ----------------------------------------------

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition this communicator into disjoint sub-communicators.

        All ranks with equal ``color`` land in the same new communicator,
        ordered by ``(key, old rank)``.  Like ``MPI_Comm_split``, this is a
        collective over the parent communicator, so it consumes a slot of
        the same per-rank collective sequence the tagged collectives use —
        which is what lets the divergence checker catch a rank calling
        ``split`` while its peers are in ``bcast``.  The child inherits
        ``config``.
        """
        seq = self._next_seq()
        tok = self._trace_begin("split", color=color)
        self._verify("split", seq)
        before = self._begin_alg()
        key = self.rank if key is None else key
        if self._outbox:
            self._flush_frames()  # rendezvous blocks without a mailbox wait
        self.fabric.last_blocked[self.global_rank] = ("split", self.comm_id, seq)
        tr = self.tracer
        t0 = tr.now() if tr is not None else 0.0
        new_id, members_parent_ranks = self.fabric.split_rendezvous(
            self.comm_id, seq, self.size, self.rank, color, key,
            group=self.group,
        )
        if tr is not None:
            # the rendezvous is split's blocking point (last rank computes)
            tr.add_wait(tr.now() - t0)
        group = [self.group[r] for r in members_parent_ranks]
        my_pos = members_parent_ranks.index(self.rank)
        child = Communicator(self.fabric, new_id, group, my_pos, config=self.config)
        child.tracer = self.tracer
        self._end_alg("split", "rendezvous", before, 1)
        self._trace_end(tok, "rendezvous", 1)
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(id={self.comm_id}, rank={self.rank}/{self.size})"
