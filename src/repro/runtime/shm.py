"""Shared-memory message transport primitives for the process backend.

Two layers live here, both free of any policy about ranks or matching:

* a **message codec** — pickle protocol 5 with out-of-band buffers, so the
  int32/bitmap arrays the packed-payload path (:mod:`repro.runtime.pack`)
  produces are written into the ring as raw bytes, exactly once, with no
  base64/copy detours.  Decoding hands NumPy the receiver-side bytes as
  writable views over the drained buffer: the receiver owns its data (wire
  semantics) without a second copy.
* a **ring buffer** — one single-consumer byte ring per destination rank,
  all carved out of one ``multiprocessing.shared_memory`` segment the
  parent creates before forking.  Producers (any rank) append frames under
  the ring's pre-forked ``multiprocessing`` condition; the owner drains
  them.  Large messages are chunked into bounded frames (``more`` flag +
  per-source reassembly) so a payload bigger than the ring still flows
  through it instead of needing its own segment.

Senders that find a ring full must not simply block: two ranks in a
``sendrecv`` against each other with both rings full would deadlock, where
the thread backend's unbounded mailboxes cannot.  :meth:`Ring.write` keeps
the buffered-send contract by invoking a caller-supplied ``stall`` hook
between short waits — the process fabric's hook drains the sender's *own*
ring into its local pending list (freeing its peers) and re-checks the
abort flag.

Blocking is deliberately NOT a ``multiprocessing.Condition``: its
wait/notify protocol costs ~5 semaphore operations per wait and ~3 per
notified waiter, which dominates small-message latency.  Instead each ring
pairs one ``multiprocessing.Lock`` (guarding head/tail) with one doorbell
``Semaphore(0)`` the consumer sleeps on; producers post it only when the
consumer has raised its shm sleeping flag — the uncontended hot path does
two lock operations and zero doorbell syscalls per message.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
from typing import Any, Callable

import numpy as np

from .errors import DeadlockError

#: per-frame header: payload byte length, source rank, more-chunks flag
_FRAME_HDR = struct.Struct("<iii")
#: per-message header: tag, reorder draw (NaN = none), sender serial,
#: pickle byte length, out-of-band buffer count, codec kind
_MSG_HDR = struct.Struct("<qdqqqq")

#: codec kinds: 0 = plain pickle-5 with out-of-band buffers; 1 = arrays
#: stripped from the payload container and shipped as raw (dtype, shape,
#: bytes) triples, sidestepping ``ndarray.__reduce_ex__`` entirely
_KIND_PICKLE = 0
_KIND_ARRAYS = 1
#: 2 = a coalesced frame carrying several logical messages in one codec
#: pass / one ring write (see :func:`encode_frame`)
_KIND_BATCH = 2

#: header tag of a batch frame.  Distinct from ``ANY_TAG`` (-1) and outside
#: both the user tag space (>= 0) and the reserved collective space, so
#: :func:`decode_header` peeks stay unambiguous.
_BATCH_TAG = -2

#: default ring capacity per destination rank (bytes); override with
#: $REPRO_SHM_RING_BYTES
DEFAULT_RING_BYTES = 4 << 20

#: how long a producer sleeps on a full ring before re-running its stall hook
_STALL_WAIT = 0.001

#: consumer fast path: yield-spin this many times before a semaphore sleep.
#: On few-core hosts ``sched_yield`` hands the CPU straight to the producer
#: and the reply is usually waiting when we run again — no futex round trip.
#: Overridable for experiments via $REPRO_SHM_SPINS.
_SPIN_YIELDS = int(__import__("os").environ.get("REPRO_SHM_SPINS", "32"))


def _strip_arrays(payload: Any, arrays: list, paths: list) -> Any:
    """Replace well-behaved ndarrays in a shallow tuple/list container with
    ``None``, recording each array and its position.

    Only exact ``np.ndarray`` (no subclasses), C-contiguous, without object
    or structured dtypes — anything else stays in place for pickle.  The
    walk descends two container levels, which covers every payload shape the
    communicator produces (bare packed buffers, ``(op, seq, array)`` tuples,
    lists of arrays, ``(rank, (arrays...))`` nestings).  Written as flat
    loops, not recursion: this runs on every send and a generic recursive
    walk costs ~4x as much in call overhead.
    """
    t = type(payload)
    if t is np.ndarray:
        if payload.dtype.kind not in "OV" and payload.flags.c_contiguous:
            arrays.append(payload)
            paths.append(())
            return None
        return payload
    if t is not tuple and t is not list:
        return payload
    items = None
    for i, x in enumerate(payload):
        xt = type(x)
        if xt is np.ndarray:
            if x.dtype.kind not in "OV" and x.flags.c_contiguous:
                if items is None:
                    items = list(payload)
                items[i] = None
                arrays.append(x)
                paths.append((i,))
        elif xt is tuple or xt is list:
            sub = None
            for j, y in enumerate(x):
                if type(y) is np.ndarray and y.dtype.kind not in "OV" \
                        and y.flags.c_contiguous:
                    if sub is None:
                        sub = list(x)
                    sub[j] = None
                    arrays.append(y)
                    paths.append((i, j))
            if sub is not None:
                if items is None:
                    items = list(payload)
                items[i] = tuple(sub) if xt is tuple else sub
    if items is None:
        return payload
    return tuple(items) if t is tuple else items


def _plant(obj: Any, path: tuple, value: Any) -> Any:
    """Inverse of :func:`_strip_arrays` for one position: rebuild ``obj``
    with ``value`` grafted at ``path`` (tuples are rebuilt; lists, which we
    own after unpickling, are mutated in place)."""
    if not path:
        return value
    i = path[0]
    if type(obj) is tuple:
        items = list(obj)
        items[i] = _plant(items[i], path[1:], value)
        return tuple(items)
    obj[i] = _plant(obj[i], path[1:], value)
    return obj


def encode_message(
    tag: int, payload: Any, serial: int, reorder_u: "float | None"
) -> bytes:
    """Flatten one message to bytes: header, buffer length table, pickle
    stream, then the out-of-band buffers raw.

    NumPy arrays in the payload's top two container levels bypass pickle:
    ``ndarray.__reduce_ex__`` costs ~7us per array where recording
    ``(dtype.str, shape)`` and splicing ``arr.data`` in raw costs well under
    1us.  The pickled skeleton then carries only cheap builtins.
    """
    arrays: list = []
    paths: list = []
    skeleton = _strip_arrays(payload, arrays, paths)
    if arrays:
        kind = _KIND_ARRAYS
        meta = [(a.dtype.str, a.shape) for a in arrays]
        # no buffer_callback here: raws must line up 1:1 with `paths` on
        # decode, and arrays pickle rejected (non-contiguous etc.) are rare
        # enough that an in-band copy is fine
        pkl = pickle.dumps((skeleton, paths, meta), protocol=5)
        raws: list = [a.data for a in arrays]
    else:
        kind = _KIND_PICKLE
        buffers: list = []
        pkl = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
        raws = [b.raw() for b in buffers]
    lens = [r.nbytes for r in raws]
    parts = [
        _MSG_HDR.pack(
            tag,
            float("nan") if reorder_u is None else float(reorder_u),
            serial,
            len(pkl),
            len(raws),
            kind,
        )
    ]
    if lens:
        parts.append(struct.pack(f"<{len(lens)}q", *lens))
    parts.append(pkl)
    parts.extend(raws)
    return b"".join(parts)


def decode_message(data: "bytearray | bytes") -> tuple[int, Any, int, "float | None"]:
    """Inverse of :func:`encode_message`: ``(tag, payload, serial, reorder)``.

    Out-of-band buffers are reconstructed as views over ``data`` — pass a
    buffer the receiver owns (the drained reassembly bytearray) and arrays
    in the payload alias it writably with zero further copies.
    """
    view = memoryview(data)
    tag, reorder, serial, npkl, nbufs, kind = _MSG_HDR.unpack_from(view, 0)
    off = _MSG_HDR.size
    lens: tuple = ()
    if nbufs:
        lens = struct.unpack_from(f"<{nbufs}q", view, off)
        off += 8 * nbufs
    pkl = view[off:off + npkl]
    off += npkl
    buffers = []
    for ln in lens:
        buffers.append(view[off:off + ln])
        off += ln
    if kind == _KIND_ARRAYS:
        skeleton, paths, meta = pickle.loads(pkl)
        payload = skeleton
        for buf, path, (dtype, shape) in zip(buffers, paths, meta):
            arr = np.frombuffer(buf, dtype=dtype)
            if arr.shape != shape:
                arr = arr.reshape(shape)
            payload = _plant(payload, path, arr)
    else:
        payload = pickle.loads(pkl, buffers=buffers)
    return tag, payload, serial, (None if reorder != reorder else reorder)


def decode_header(data: "bytearray | bytes") -> tuple[int, int]:
    """Cheap peek at ``(tag, serial)`` without unpickling the payload —
    the parent's post-job stray-collective sweep needs only the tag.
    A coalesced frame answers ``(_BATCH_TAG, first inner serial)``; use
    :func:`decode_frame` to see the messages inside it."""
    tag, _, serial, _, _, _ = _MSG_HDR.unpack_from(memoryview(data), 0)
    return tag, serial


def encode_frame(
    entries: "list[tuple[int, int, float | None, Any]]",
) -> bytes:
    """Flatten one coalesced frame — several logical messages bound for the
    same destination — into a single wire message.

    ``entries`` are ``(tag, serial, reorder_u, payload)`` in send order.
    Each payload goes through the same array-stripping fast path as
    :func:`encode_message`, with recorded paths prefixed by the entry index,
    so a frame of n packed payloads still does exactly one pickle pass over
    cheap builtins plus raw splices of every well-behaved array.  The outer
    header carries ``_BATCH_TAG`` / the first inner serial / ``_KIND_BATCH``
    so :func:`decode_header` peeks identify batches without a full decode.
    """
    arrays: list = []
    paths: list = []
    heads: list = []
    skels: list = []
    for idx, (tag, serial, reorder_u, payload) in enumerate(entries):
        sub_arrays: list = []
        sub_paths: list = []
        skels.append(_strip_arrays(payload, sub_arrays, sub_paths))
        arrays.extend(sub_arrays)
        paths.extend((idx,) + p for p in sub_paths)
        heads.append(
            (tag, serial,
             float("nan") if reorder_u is None else float(reorder_u))
        )
    meta = [(a.dtype.str, a.shape) for a in arrays]
    pkl = pickle.dumps((heads, skels, paths, meta), protocol=5)
    raws = [a.data for a in arrays]
    lens = [r.nbytes for r in raws]
    parts = [
        _MSG_HDR.pack(
            _BATCH_TAG, float("nan"), entries[0][1], len(pkl), len(raws),
            _KIND_BATCH,
        )
    ]
    if lens:
        parts.append(struct.pack(f"<{len(lens)}q", *lens))
    parts.append(pkl)
    parts.extend(raws)
    return b"".join(parts)


def decode_frame(
    data: "bytearray | bytes",
) -> "list[tuple[int, Any, int, float | None]]":
    """Inverse of :func:`encode_frame`: the coalesced messages as
    ``(tag, payload, serial, reorder)`` tuples in send order, arrays aliasing
    ``data`` writably just like :func:`decode_message`."""
    view = memoryview(data)
    _, _, _, npkl, nbufs, _ = _MSG_HDR.unpack_from(view, 0)
    off = _MSG_HDR.size
    lens: tuple = ()
    if nbufs:
        lens = struct.unpack_from(f"<{nbufs}q", view, off)
        off += 8 * nbufs
    pkl = view[off:off + npkl]
    off += npkl
    buffers = []
    for ln in lens:
        buffers.append(view[off:off + ln])
        off += ln
    heads, skels, paths, meta = pickle.loads(pkl)
    for buf, path, (dtype, shape) in zip(buffers, paths, meta):
        arr = np.frombuffer(buf, dtype=dtype)
        if arr.shape != shape:
            arr = arr.reshape(shape)
        skels[path[0]] = _plant(skels[path[0]], path[1:], arr)
    return [
        (tag, payload, serial, (None if u != u else u))
        for (tag, serial, u), payload in zip(heads, skels)
    ]


class Ring:
    """One destination rank's byte ring inside the shared segment.

    Layout: ``[head u64][tail u64][sleeping u64][pad u64][data (cap
    bytes)]``.  ``head``/``tail`` are monotonically increasing byte
    counters (never wrapped), mutated only under ``lock``; ``used = tail -
    head``.  Frames are written whole-or-not-at-all under the lock, so the
    consumer never observes a torn frame.  ``sleeping`` is the consumer's
    doorbell request: raised (under the lock) before it sleeps on ``bell``,
    so producers skip the doorbell syscall entirely whenever the consumer
    is awake and draining.  Reassembly state (``_partials``) is
    consumer-side plain Python — meaningful only in the owner process.
    """

    HDR = 32

    def __init__(self, buf: memoryview, offset: int, cap: int, lock, bell) -> None:
        # counters as a cast memoryview, NOT a numpy view: these are read
        # and written on every message, and numpy scalar ops cost ~1-2us
        # each where a cast-memoryview index is plain-int nanoseconds
        self._ptrs = buf[offset:offset + self.HDR].cast("Q")
        self._data = buf[offset + self.HDR:offset + self.HDR + cap]
        self.cap = cap
        self.lock = lock
        self.bell = bell
        #: largest frame payload: bounded so one message can't monopolize
        #: the ring and chunked traffic from several sources interleaves
        self.max_frame = max(4096, cap // 4 - _FRAME_HDR.size)
        self._partials: dict[int, bytearray] = {}

    # -- unlocked helpers (call with self.lock held) ------------------------

    def _used(self) -> int:
        return self._ptrs[1] - self._ptrs[0]

    def _ring_doorbell(self) -> None:
        # called with the lock held, right after placing a frame: the
        # consumer raises the flag under the same lock, so exactly one of
        # us observes the other and no wakeup is ever lost
        if self._ptrs[2]:
            self._ptrs[2] = 0
            self.bell.release()

    def _copy_in(self, pos: int, chunk) -> None:
        pos %= self.cap
        n = len(chunk)
        first = min(n, self.cap - pos)
        self._data[pos:pos + first] = chunk[:first]
        if first < n:
            self._data[:n - first] = chunk[first:]

    def _copy_out(self, pos: int, n: int) -> bytearray:
        pos %= self.cap
        out = bytearray(n)
        first = min(n, self.cap - pos)
        out[:first] = self._data[pos:pos + first]
        if first < n:
            out[first:] = self._data[:n - first]
        return out

    def _put_frame(self, src: int, chunk, more: int) -> None:
        tail = self._ptrs[1]
        self._copy_in(tail, _FRAME_HDR.pack(len(chunk), src, more))
        self._copy_in(tail + _FRAME_HDR.size, chunk)
        self._ptrs[1] = tail + _FRAME_HDR.size + len(chunk)

    # -- producer side ------------------------------------------------------

    def write(
        self,
        src: int,
        data: "bytes | memoryview",
        *,
        stall: "Callable[[], None] | None" = None,
        timeout: float = 60.0,
        describe: str = "send",
    ) -> None:
        """Append one whole message as chunked frames.

        Blocks while the ring is full, running ``stall`` between short
        waits (the fabric drains its own ring and checks for abort there);
        raises :class:`DeadlockError` after ``timeout`` seconds without
        placing the next frame.
        """
        total = len(data)
        hsize = _FRAME_HDR.size
        if total <= self.max_frame:
            # single-frame fast path: header packed once, payload spliced
            # straight into the ring when it doesn't wrap
            need = hsize + total
            hdr = _FRAME_HDR.pack(total, src, 0)
            deadline = None
            while True:
                with self.lock:
                    tail = self._ptrs[1]
                    if self.cap - (tail - self._ptrs[0]) >= need:
                        pos = tail % self.cap
                        if pos + need <= self.cap:
                            d = self._data
                            d[pos:pos + hsize] = hdr
                            d[pos + hsize:pos + need] = data
                        else:
                            self._copy_in(tail, hdr)
                            self._copy_in(tail + hsize, data)
                        self._ptrs[1] = tail + need
                        self._ring_doorbell()
                        return
                if deadline is None:
                    deadline = time.monotonic() + timeout
                if stall is not None:
                    stall()
                time.sleep(_STALL_WAIT)
                if time.monotonic() > deadline:
                    raise DeadlockError(
                        f"{describe}: ring buffer full for {timeout:.1f}s "
                        f"(capacity {self.cap} bytes, message {total} bytes); "
                        "receiver is not draining"
                    )
        view = memoryview(data)
        off = 0
        while True:
            chunk = view[off:off + self.max_frame]
            more = 1 if off + len(chunk) < total else 0
            need = hsize + len(chunk)
            deadline = time.monotonic() + timeout
            while True:
                with self.lock:
                    if self.cap - self._used() >= need:
                        self._put_frame(src, chunk, more)
                        self._ring_doorbell()
                        break
                # ring full (rare): poll-sleep; the consumer drains whole
                # frame batches, so space appears in bursts
                if stall is not None:
                    stall()
                time.sleep(_STALL_WAIT)
                if time.monotonic() > deadline:
                    raise DeadlockError(
                        f"{describe}: ring buffer full for {timeout:.1f}s "
                        f"(capacity {self.cap} bytes, message {total} bytes); "
                        "receiver is not draining"
                    )
            off += len(chunk)
            if not more:
                return

    # -- consumer side (owner process only) ---------------------------------

    def drain(self) -> list[tuple[int, bytearray]]:
        """Non-blocking: pop every complete frame, return fully reassembled
        ``(source, message bytes)`` pairs in arrival order."""
        if self._ptrs[1] == self._ptrs[0]:
            return []  # unlocked emptiness peek: only we consume
        frames: list[tuple[int, bytearray, int]] = []
        hsize = _FRAME_HDR.size
        with self.lock:
            head = self._ptrs[0]
            tail = self._ptrs[1]
            d = self._data
            while tail - head >= hsize:
                # frames are placed atomically under the lock, so the whole
                # frame is present whenever its header is
                pos = head % self.cap
                if pos + hsize <= self.cap:
                    plen, src, more = _FRAME_HDR.unpack_from(d, pos)
                else:
                    plen, src, more = _FRAME_HDR.unpack(
                        bytes(self._copy_out(head, hsize))
                    )
                body = head + hsize
                bpos = body % self.cap
                if bpos + plen <= self.cap:
                    chunk = bytearray(d[bpos:bpos + plen])
                else:
                    chunk = self._copy_out(body, plen)
                frames.append((src, chunk, more))
                head = body + plen
            self._ptrs[0] = head
        out: list[tuple[int, bytearray]] = []
        for src, chunk, more in frames:
            pending = self._partials.get(src)
            if pending is None and not more:
                out.append((src, chunk))  # common case: single-frame message
                continue
            if pending is None:
                pending = self._partials[src] = bytearray()
            pending += chunk
            if not more:
                out.append((src, pending))
                del self._partials[src]
        return out

    def wait_data(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds for any queued bytes.

        Fast path: unlocked yield-spins on the shared counters (reads of
        aligned u64s; torn values are impossible) — on a saturated host
        ``sched_yield`` hands the CPU to the producer and the data is
        usually there when we run again, with zero semaphore traffic.
        Slow path: raise the sleeping flag (under the lock, so a racing
        producer must observe it) and sleep on the doorbell.
        """
        for _ in range(_SPIN_YIELDS):
            if self._ptrs[1] != self._ptrs[0]:
                return True
            os.sched_yield()
        with self.lock:
            if self._used() > 0:
                return True
            self._ptrs[2] = 1
        got = self.bell.acquire(True, timeout)
        with self.lock:
            self._ptrs[2] = 0
            queued = self._used() > 0
        if got:
            # absorb any extra posts from producers that raced the flag
            # clear; they would only cause a spurious early wake later
            while self.bell.acquire(False):
                pass
        return queued

    def notify(self) -> None:
        """Wake a consumer blocked on this ring (abort propagation)."""
        self.bell.release()

    def release(self) -> None:
        """Drop the memoryview handles into the shared segment so the
        segment itself can be closed."""
        self._ptrs.release()
        self._data.release()


def ring_segment_size(nranks: int, cap: int) -> int:
    return nranks * (Ring.HDR + cap)


def carve_rings(
    buf: memoryview, nranks: int, cap: int, locks: list, bells: list
) -> "list[Ring]":
    """Slice one shared segment into ``nranks`` rings (locks and doorbell
    semaphores pre-forked so children inherit them)."""
    return [
        Ring(buf, r * (Ring.HDR + cap), cap, locks[r], bells[r])
        for r in range(nranks)
    ]
