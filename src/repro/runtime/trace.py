"""Per-rank span tracing for the simulated runtime.

The aggregate counters of :class:`~repro.runtime.comm.CommStats` say *how
much* was communicated; they cannot say *when* a rank waited, which
collective sat on the critical path, or why a chaos restart cost what it
did.  This module is the structured instrument behind the paper's per-phase
breakdowns (Figs. 4–9): every rank records a stack of nestable spans —
``phase > bfs_iter > spmv > expand/fold``, one span per collective with
``{op, alg, words, peers}`` arguments, RMA epochs on their own lanes — and
the executor merges the rank-local buffers into one :class:`DistTrace`.

Design rules
------------

* **Zero overhead when off.**  Every hook site in the runtime guards on a
  single ``tracer is None`` attribute check; with tracing disabled no span
  object is ever allocated and no clock is ever read.
* **Observation only.**  The tracer never communicates and never branches
  the traced program: traced runs produce bit-identical results to
  untraced runs (asserted by tests).
* **Deterministic option.**  Timestamps come from a pluggable clock:
  ``"wall"`` (``time.perf_counter``) for real profiling, ``"ticks"``
  (:class:`repro.perfmodel.clock.MonotonicTicks`, one private instance per
  rank) for byte-identical traces across runs — the contract the property
  tests and the chaos replay tests rely on.
* **Well-formed by construction.**  Main-lane spans follow stack
  discipline (``begin``/``end`` pairs); spans a crash left open are
  flushed — closed at the current clock and marked ``truncated`` — when
  the job exits, so even a killed rank exports balanced begin/end pairs.

Consumers: :meth:`DistTrace.to_chrome` emits Chrome trace-event JSON (one
pid per rank, loadable in Perfetto via ``repro spmd --trace out.json``);
:mod:`repro.simulate.critpath` replays a :class:`DistTrace` to report the
per-phase critical path (``repro trace-report``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..perfmodel.clock import MonotonicTicks

#: seconds → Chrome trace-event microseconds (tick clocks scale the same
#: way; ``otherData.clock`` records which unit the numbers mean)
_CHROME_SCALE = 1e6

#: the default lane of the per-rank span stack; other lanes (RMA epoch
#: lanes) carry non-nesting complete spans and map to their own Chrome tids
MAIN_TRACK = "main"


class TraceError(RuntimeError):
    """Misuse of the tracer API (``end`` without a matching ``begin``)."""


def make_trace_clock(kind: str) -> Callable[[], float]:
    """Build one rank's timestamp source: ``"wall"`` or ``"ticks"``."""
    if kind == "wall":
        return time.perf_counter
    if kind == "ticks":
        return MonotonicTicks()
    raise ValueError(f"unknown trace clock {kind!r} (wall/ticks)")


@dataclass
class Span:
    """One closed span of one rank's timeline.

    ``ts``/``dur`` are in the tracer's clock units (seconds under the wall
    clock, event ticks under the deterministic clock).  ``args`` carries the
    span's structured payload — collectives record ``{alg, words, messages,
    peers, comm}``, blocking time accumulates under ``wait`` while the span
    is the innermost open one.  ``track`` is the rank-local lane: the
    nesting main stack, or an ``rma:w<id>`` epoch lane.
    """

    name: str
    cat: str
    rank: int
    ts: float
    dur: float = 0.0
    args: dict = field(default_factory=dict)
    track: str = MAIN_TRACK
    # per-tracer event sequence numbers assigned at begin()/end(); they
    # reproduce exact program order in the B/E export even when a tick
    # clock hands equal timestamps to a parent and its first child
    bseq: int = 0
    eseq: int = 0

    @property
    def t1(self) -> float:
        return self.ts + self.dur

    @property
    def wait(self) -> float:
        return self.args.get("wait", 0.0)


class Tracer:
    """One rank's span recorder (owned and written by that rank's thread).

    ``begin``/``end`` maintain the main-lane stack; :meth:`span` is the
    context-manager form; :meth:`add_complete` records an already-closed
    span on an arbitrary lane (RMA epochs).  :meth:`add_wait` charges
    blocking time — measured by the runtime at the fabric's receive-match,
    split-rendezvous and barrier points — to the innermost open span.
    """

    def __init__(self, rank: int, clock: Callable[[], float] | None = None) -> None:
        self.rank = rank
        self.clock = time.perf_counter if clock is None else clock
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._seq = 0
        self._win_seq = 0
        #: blocking time observed while no span was open
        self.idle_wait = 0.0

    def now(self) -> float:
        return self.clock()

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def next_win_id(self) -> int:
        """Job-deterministic label for this rank's next RMA window lane.

        The runtime's real window ids come from a process-global counter
        (they must be unique across fabrics), which would make otherwise
        identical tick-clock traces differ between runs in one process —
        so the trace numbers windows per rank in creation order instead.
        """
        wid = self._win_seq
        self._win_seq += 1
        return wid

    # -- main-lane stack ----------------------------------------------------

    def begin(self, name: str, cat: str = "span", **args: Any) -> Span:
        sp = Span(name=name, cat=cat, rank=self.rank, ts=self.now(),
                  args=dict(args), bseq=self._next_seq())
        self._stack.append(sp)
        return sp

    def end(self, **args: Any) -> Span:
        if not self._stack:
            raise TraceError(f"rank {self.rank}: end() with no open span")
        sp = self._stack.pop()
        sp.dur = max(0.0, self.now() - sp.ts)
        sp.eseq = self._next_seq()
        if args:
            sp.args.update(args)
        self.spans.append(sp)
        return sp

    @contextmanager
    def span(self, name: str, cat: str = "span", **args: Any):
        self.begin(name, cat, **args)
        try:
            yield
        finally:
            self.end()

    @property
    def depth(self) -> int:
        return len(self._stack)

    # -- off-stack lanes and wait accounting --------------------------------

    def add_complete(
        self, name: str, ts: float, dur: float, cat: str = "span",
        track: str = MAIN_TRACK, **args: Any,
    ) -> Span:
        """Record an already-closed span (RMA epochs live on their own
        lane, whose intervals may interleave with other windows' epochs)."""
        sp = Span(name=name, cat=cat, rank=self.rank, ts=ts,
                  dur=max(0.0, dur), args=dict(args), track=track,
                  bseq=self._next_seq(), eseq=self._next_seq())
        self.spans.append(sp)
        return sp

    def add_wait(self, dt: float) -> None:
        if dt <= 0.0:
            return
        if self._stack:
            args = self._stack[-1].args
            args["wait"] = args.get("wait", 0.0) + dt
        else:
            self.idle_wait += dt

    def flush(self) -> None:
        """Close every span still open at the current clock, outermost
        last, marking each ``truncated`` — called at ``spmd()`` exit so a
        crashed rank's timeline still exports balanced begin/end pairs."""
        t = self.now()
        while self._stack:
            sp = self._stack.pop()
            sp.dur = max(0.0, t - sp.ts)
            sp.eseq = self._next_seq()
            sp.args["truncated"] = True
            self.spans.append(sp)


#: Reusable no-op context manager handed out when tracing is off.
_NULL_SPAN = nullcontext()


def tspan(comm: Any, name: str, cat: str = "kernel", **args: Any):
    """Span context manager over ``comm.tracer``; free no-op when off.

    The kernel/algorithm layers (``distmat.ops``, ``matching.mcm_dist``)
    use this so their hot paths stay a single attribute check per span
    site when tracing is disabled.
    """
    tr = comm.tracer
    return _NULL_SPAN if tr is None else tr.span(name, cat, **args)


# ---------------------------------------------------------------------------
# the merged per-job trace
# ---------------------------------------------------------------------------


@dataclass
class DistTrace:
    """All ranks' spans of one SPMD job (plus restart history, if any).

    ``spans[r]`` is rank r's buffer in completion order.  ``meta`` records
    the clock kind, per-rank idle wait, and — after shrink-and-restart
    recovery — one entry per merged attempt.
    """

    nranks: int
    spans: list[list[Span]]
    meta: dict = field(default_factory=dict)

    def all_spans(self) -> Iterator[Span]:
        for rank_spans in self.spans:
            yield from rank_spans

    @property
    def nspans(self) -> int:
        return sum(len(s) for s in self.spans)

    def max_ts(self) -> float:
        return max((sp.t1 for sp in self.all_spans()), default=0.0)

    def min_ts(self) -> float:
        return min((sp.ts for sp in self.all_spans()), default=0.0)

    # -- cross-checking against CommStats ------------------------------------

    def comm_words_by_key(self) -> dict[str, int]:
        """Traced words per ``"op:alg"`` over all ranks — the quantity that
        must equal :attr:`CommStats.by_alg` / ``DistStats.comm_by_alg``
        words exactly (the tracer measures the same counters the stats
        record, so any mismatch means a span boundary leaks traffic)."""
        out: dict[str, int] = {}
        for sp in self.all_spans():
            alg = sp.args.get("alg")
            if sp.cat != "comm" or alg is None:
                continue
            key = f"{sp.name}:{alg}"
            out[key] = out.get(key, 0) + int(sp.args.get("words", 0))
        return out

    def comm_words_by_op(self) -> dict[str, int]:
        """Traced words per collective/P2P op name over all ranks."""
        out: dict[str, int] = {}
        for sp in self.all_spans():
            if sp.cat != "comm":
                continue
            out[sp.name] = out.get(sp.name, 0) + int(sp.args.get("words", 0))
        return out

    def words_sent(self, rank: int) -> int:
        """Total traced payload words rank ``rank`` sent (all comm spans)."""
        return sum(
            int(sp.args.get("words", 0))
            for sp in self.spans[rank] if sp.cat == "comm"
        )

    def flush_totals(self) -> dict[str, int]:
        """Physical-frame totals from the ``comm:flush`` spans
        (``cat="flush"``): ``{"frames", "messages", "words"}`` summed over
        all ranks.  These are the *physical* counters of the aggregation
        engine and must reconcile with :attr:`CommStats.frames` /
        ``frame_words`` — the flush spans are deliberately excluded from
        :meth:`comm_words_by_key`, which cross-checks the *logical* ledger.
        """
        out = {"frames": 0, "messages": 0, "words": 0}
        for sp in self.all_spans():
            if sp.cat != "flush":
                continue
            for k in out:
                out[k] += int(sp.args.get(k, 0))
        return out

    # -- restart merging ------------------------------------------------------

    def concat(
        self,
        other: "DistTrace",
        boundary_name: str = "restart",
        **boundary_args: Any,
    ) -> "DistTrace":
        """Append ``other``'s timeline after this one's.

        ``other``'s timestamps are shifted past this trace's end (tick
        clocks restart at 0 on every fabric rebuild), and one zero-length
        ``boundary_name`` span (cat ``fault``) is stamped on every rank at
        the seam — which is how a chaos run's restarts show up as explicit,
        Perfetto-visible events.
        """
        if other.nranks != self.nranks:
            raise ValueError(
                f"cannot concat traces of {self.nranks} and {other.nranks} ranks"
            )
        seam = self.max_ts() + 1.0
        shift = seam - min(other.min_ts(), 0.0)
        merged: list[list[Span]] = []
        for r in range(self.nranks):
            mine = list(self.spans[r])
            seqbase = max((max(sp.bseq, sp.eseq) for sp in mine), default=0)
            sb = Span(name=boundary_name, cat="fault", rank=r, ts=seam,
                      dur=0.0, args=dict(boundary_args),
                      bseq=seqbase + 1, eseq=seqbase + 2)
            mine.append(sb)
            for sp in other.spans[r]:
                mine.append(Span(
                    name=sp.name, cat=sp.cat, rank=sp.rank,
                    ts=sp.ts + shift, dur=sp.dur, args=dict(sp.args),
                    track=sp.track,
                    bseq=seqbase + 2 + sp.bseq, eseq=seqbase + 2 + sp.eseq,
                ))
            merged.append(mine)
        meta = dict(self.meta)
        attempts = list(meta.get("attempts", []))
        attempts.append({"at": seam, **boundary_args})
        meta["attempts"] = attempts
        idle = other.meta.get("idle_wait")
        if idle is not None:
            mine_idle = meta.get("idle_wait", [0.0] * self.nranks)
            meta["idle_wait"] = [a + b for a, b in zip(mine_idle, idle)]
        return DistTrace(self.nranks, merged, meta)

    # -- Chrome trace-event export / import ----------------------------------

    def _track_tids(self, rank: int) -> dict[str, int]:
        """Stable lane → tid mapping: main = 0, other lanes sorted."""
        extra = sorted({sp.track for sp in self.spans[rank]} - {MAIN_TRACK})
        tids = {MAIN_TRACK: 0}
        tids.update({track: i + 1 for i, track in enumerate(extra)})
        return tids

    def to_chrome(self) -> dict:
        """Chrome trace-event JSON object: one pid per rank, ``B``/``E``
        event pairs in exact program order, metadata naming processes and
        lanes.  ``json.dump`` the result (or use :meth:`dump`) and load it
        in Perfetto / ``chrome://tracing``."""
        events: list[dict] = []
        for r in range(self.nranks):
            tids = self._track_tids(r)
            events.append({
                "ph": "M", "name": "process_name", "pid": r, "tid": 0,
                "args": {"name": f"rank {r}"},
            })
            for track, tid in tids.items():
                events.append({
                    "ph": "M", "name": "thread_name", "pid": r, "tid": tid,
                    "args": {"name": track},
                })
            # B/E pairs in per-rank program order: each span contributes a
            # begin at bseq and an end at eseq; sorting by the sequence
            # number reproduces the exact open/close order even when a
            # tick clock hands out equal timestamps
            timed: list[tuple[int, dict]] = []
            for sp in self.spans[r]:
                tid = tids[sp.track]
                timed.append((sp.bseq, {
                    "ph": "B", "name": sp.name, "cat": sp.cat, "pid": r,
                    "tid": tid, "ts": sp.ts * _CHROME_SCALE, "args": sp.args,
                }))
                timed.append((sp.eseq, {
                    "ph": "E", "name": sp.name, "cat": sp.cat, "pid": r,
                    "tid": tid, "ts": sp.t1 * _CHROME_SCALE,
                }))
            timed.sort(key=lambda pair: pair[0])
            events.extend(ev for _, ev in timed)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": dict(self.meta),
        }

    def dump(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_chrome(cls, doc: dict) -> "DistTrace":
        """Rebuild a :class:`DistTrace` from :meth:`to_chrome` output (the
        consumer path of ``repro trace-report FILE``).  Replays the
        ``B``/``E`` stream per (pid, tid) in array order, so any trace this
        module wrote round-trips."""
        events = doc.get("traceEvents", [])
        track_names: dict[tuple[int, int], str] = {}
        nranks = 0
        for ev in events:
            pid = int(ev.get("pid", 0))
            nranks = max(nranks, pid + 1)
            if ev.get("ph") == "M" and ev.get("name") == "thread_name":
                track_names[(pid, int(ev.get("tid", 0)))] = ev["args"]["name"]
        spans: list[list[Span]] = [[] for _ in range(max(nranks, 1))]
        stacks: dict[tuple[int, int], list[Span]] = {}
        seq = 0
        for ev in events:
            ph = ev.get("ph")
            if ph not in ("B", "E"):
                continue
            seq += 1
            pid = int(ev.get("pid", 0))
            tid = int(ev.get("tid", 0))
            key = (pid, tid)
            if ph == "B":
                stacks.setdefault(key, []).append(Span(
                    name=ev.get("name", "?"), cat=ev.get("cat", "span"),
                    rank=pid, ts=float(ev.get("ts", 0.0)) / _CHROME_SCALE,
                    args=dict(ev.get("args", {})),
                    track=track_names.get(key, MAIN_TRACK if tid == 0 else f"tid{tid}"),
                    bseq=seq,
                ))
            else:
                stack = stacks.get(key)
                if not stack:
                    raise TraceError(
                        f"unbalanced trace events: E without B on pid {pid} tid {tid}"
                    )
                sp = stack.pop()
                sp.dur = max(0.0, float(ev.get("ts", 0.0)) / _CHROME_SCALE - sp.ts)
                sp.eseq = seq
                spans[pid].append(sp)
        dangling = [key for key, stack in stacks.items() if stack]
        if dangling:
            raise TraceError(
                f"unbalanced trace events: B without E on (pid, tid) {dangling[:4]}"
            )
        return cls(max(nranks, 1), spans, meta=dict(doc.get("otherData", {})))

    @classmethod
    def load(cls, path: str) -> "DistTrace":
        with open(path) as fh:
            return cls.from_chrome(json.load(fh))


def merge_tracers(tracers: list[Tracer], clock: str) -> DistTrace:
    """Executor hook: flush every rank's tracer and assemble the job trace."""
    for tr in tracers:
        tr.flush()
    return DistTrace(
        nranks=len(tracers),
        spans=[list(tr.spans) for tr in tracers],
        meta={
            "clock": clock,
            "idle_wait": [tr.idle_wait for tr in tracers],
        },
    )


__all__ = [
    "DistTrace",
    "MAIN_TRACK",
    "Span",
    "TraceError",
    "Tracer",
    "make_trace_clock",
    "merge_tracers",
    "tspan",
]
