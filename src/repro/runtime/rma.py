"""One-sided Remote Memory Access windows.

The paper's path-parallel augmentation (Algorithm 4) updates the distributed
``mate`` vectors with ``MPI_Get`` / ``MPI_Put`` / ``MPI_Fetch_and_op``: each
process walks its own k/p augmenting paths asynchronously, reading and
writing vector elements owned by remote processes without the owner's
participation.  :class:`Window` reproduces those semantics: the window is
created collectively (every rank exposes a NumPy array), after which any rank
may ``get``/``put``/``accumulate``/``fetch_and_op`` on any other rank's
exposed memory.

Atomicity: MPI guarantees element-wise atomicity for ``MPI_Fetch_and_op`` and
``MPI_Accumulate``.  Here a per-target-rank lock provides it (stronger than
required, never weaker).  Plain ``get``/``put`` take the same lock, which
corresponds to running every access inside its own
``MPI_Win_lock``/``unlock`` passive-target epoch — the mode Algorithm 4 needs.

Consistency with the paper's cost model: every ``get``, ``put`` and
``fetch_and_op`` counts as one RMA operation of cost (α + β·words); the
fused fetch-and-op that merges Algorithm 4's lines 5–6 is why its per-step
cost is 3(α + β) rather than 4(α + β).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

import numpy as np

from .comm import Communicator
from .errors import RmaRaceError, TransientCommError, WindowError


@dataclass(frozen=True)
class _Access:
    """One logged one-sided access (verify mode)."""

    origin: int
    op: str
    target: int
    idx: np.ndarray  # sorted unique element indices touched
    write: bool
    atomic: bool
    epoch: int

    def describe(self) -> str:
        lo, hi = (int(self.idx[0]), int(self.idx[-1])) if self.idx.size else (-1, -1)
        span = f"[{lo}]" if lo == hi else f"[{lo}..{hi}] ({self.idx.size} elems)"
        kind = "atomic " if self.atomic else ""
        return (f"rank {self.origin}: {kind}{self.op} on target {self.target}"
                f"{span} in epoch {self.epoch}")


class RmaAccessLog:
    """The dynamic RMA race detector for one window (``verify=True`` mode).

    Shared by all rank-local :class:`Window` objects of the same window id.
    Each access is logged as ``(origin, op, target, indices, write, atomic)``
    tagged with the origin's *epoch* — the count of ``fence`` calls it has
    made on this window.  Because ``fence`` is a barrier, epochs are globally
    aligned, and MPI's passive/active-target rules reduce to: two accesses
    from different origins that overlap on the same target's elements within
    the same epoch are a race unless both are atomic or both are reads.
    Detection happens at access time — the second access of a conflicting
    pair raises :class:`RmaRaceError` naming both — instead of the silent
    lost-update the program would otherwise produce.
    """

    def __init__(self, win_id: int, nranks: int) -> None:
        self.win_id = win_id
        self._lock = threading.Lock()
        self._epoch = [0] * nranks
        self._entries: list[_Access] = []
        self.total = 0

    def advance(self, rank: int) -> None:
        """Called by ``fence``: open the next epoch for ``rank`` and prune
        entries no rank can conflict with anymore."""
        with self._lock:
            self._epoch[rank] += 1
            low = min(self._epoch)
            self._entries = [e for e in self._entries if e.epoch >= low]

    def record(
        self, origin: int, op: str, target: int, index: Any,
        *, write: bool, atomic: bool,
    ) -> None:
        idx = np.unique(np.atleast_1d(np.asarray(index, dtype=np.int64)))
        with self._lock:
            epoch = self._epoch[origin]
            mine = _Access(origin, op, target, idx, write, atomic, epoch)
            for prev in self._entries:
                if prev.target != target or prev.epoch != epoch:
                    continue
                if prev.origin == origin:
                    continue  # same origin: ordered by program order
                if not (prev.write or write):
                    continue  # read-read never conflicts
                if prev.atomic and atomic:
                    continue  # atomic-atomic is element-wise serialized
                overlap = np.intersect1d(prev.idx, idx, assume_unique=True)
                if overlap.size:
                    raise RmaRaceError(
                        f"RMA race on window {self.win_id}: conflicting "
                        f"unsynchronized accesses to target {target} "
                        f"element(s) {overlap[:8].tolist()} — "
                        f"first access: {prev.describe()}; "
                        f"second access: {mine.describe()}. "
                        "Separate them with a fence, or use atomic "
                        "accumulate/fetch_and_op on both sides."
                    )
            self._entries.append(mine)
            self.total += 1


class Window:
    """A collectively-created one-sided access window.

    Parameters
    ----------
    comm:
        Communicator over which the window is created (collective call).
    local:
        This rank's exposed memory, a 1-D NumPy array.  The window aliases
        it: remote ``put``s become visible to the owner through the original
        array, as with ``MPI_Win_create`` on user memory.
    """

    def __init__(self, comm: Communicator, local: np.ndarray) -> None:
        if not isinstance(local, np.ndarray) or local.ndim != 1:
            raise WindowError("window memory must be a 1-D numpy array")
        self.comm = comm
        self.local = local
        # Rank 0 allocates the id from the fabric (job-unique — under the
        # process fabric the counter lives in shared memory, so forked ranks
        # can never collide) and shares it so all ranks attach to the same
        # fabric-level window.
        win_id = comm.fabric.new_win_id() if comm.rank == 0 else None
        self.win_id = comm.bcast(win_id, root=0)
        # The fabric owns the window storage model: the thread fabric's slot
        # table holds the ranks' arrays themselves, the process fabric backs
        # each slot with a shared-memory segment and hands out lazy-attach
        # views.  Either way ``self._slots[target]`` is target's memory.
        self._slots = comm.fabric.win_create(
            self.win_id, comm.rank, comm.size, local, comm.group
        )
        # verify mode: attach the shared race-detection log for this window
        self._tracker: RmaAccessLog | None = None
        if comm.fabric.verify:
            wid, size = self.win_id, comm.size
            self._tracker = comm.fabric.rma_log_for(
                wid, lambda: RmaAccessLog(wid, size)
            )
        self._locks = comm.fabric.win_locks(self.win_id, comm.size)
        comm.barrier()  # window is usable only after all ranks attached
        self.rma_ops = 0
        self.rma_words = 0
        self.rma_retries = 0
        self._epoch_open = True  # passive-target: always accessible
        # span tracing: epochs of different windows interleave (the path
        # augmentation fences three windows back to back), so epoch spans
        # cannot live on the tracer's nesting main stack — each window gets
        # its own ``rma:w<id>`` lane of complete spans, one per epoch,
        # carrying the op/word deltas accumulated since the previous fence.
        self._tracer = comm.tracer
        self._epoch_no = 0
        if self._tracer is not None:
            # rank-local creation-order label, NOT self.win_id: the real id
            # is process-global, which would break tick-trace determinism
            self._trace_win = self._tracer.next_win_id()
            self._ep_t0 = self._tracer.now()
            self._ep_ops = 0
            self._ep_words = 0

    def _trace_epoch(self, close: str) -> None:
        """Record the epoch ending now (at a fence or the final free) as a
        complete span on this window's lane; open the next epoch."""
        tr = self._tracer
        if tr is None:
            return
        now = tr.now()
        tr.add_complete(
            "rma_epoch",
            ts=self._ep_t0,
            dur=now - self._ep_t0,
            cat="rma",
            track=f"rma:w{self._trace_win}",
            win=self._trace_win,
            epoch=self._epoch_no,
            close=close,
            ops=self.rma_ops - self._ep_ops,
            words=self.rma_words - self._ep_words,
        )
        self._epoch_no += 1
        self._ep_t0 = now
        self._ep_ops = self.rma_ops
        self._ep_words = self.rma_words

    # -- access epoch management ---------------------------------------------

    def fence(self) -> None:
        """Collective synchronization separating access epochs
        (``MPI_Win_fence``).  The barrier orders all pre-fence accesses
        before all post-fence ones; ``win_sync`` then refreshes the owner's
        ``local`` array (a no-op on the thread fabric where the window
        aliases it, a shared-memory copy-back on the process fabric).  After
        a fence the owner may read ``self.local``; owner *writes* between
        create and free must go through window operations.
        """
        if not self._epoch_open:
            raise WindowError(
                f"fence on window {self.win_id} after Window.free(): epoch "
                "operations on a freed window are erroneous (MPI_Win_fence "
                "on a freed window)"
            )
        if self._tracker is not None:
            self._tracker.advance(self.comm.rank)
        self._trace_epoch("fence")
        self.comm.barrier()
        self.comm.fabric.win_sync(self.win_id, self.comm.rank)

    def free(self) -> None:
        """Collectively release the window (``MPI_Win_free``).

        Two-barrier sequence: after the first barrier no rank issues new
        accesses, so every rank detaches (the process fabric copies the
        final window contents back into the owner's ``local`` here); after
        the second barrier no rank holds an attachment, so the backing
        storage is destroyed.
        """
        if not self._epoch_open:
            raise WindowError(
                f"double free of window {self.win_id}: Window.free() was "
                "already called"
            )
        self._trace_epoch("free")
        self.comm.barrier()
        self._epoch_open = False
        self.comm.fabric.win_detach(self.win_id, self.comm.rank)
        self.comm.barrier()
        self.comm.fabric.win_destroy(self.win_id, self.comm.rank)

    # -- one-sided operations --------------------------------------------------

    def _target_array(self, target: int) -> np.ndarray:
        if not self._epoch_open:
            raise WindowError("access after Window.free()")
        if not 0 <= target < self.comm.size:
            raise WindowError(f"target rank {target} out of range [0, {self.comm.size})")
        arr = self._slots[target]
        if arr is None:
            raise WindowError(f"target rank {target} never attached its memory")
        return arr

    def _check_index(self, arr: np.ndarray, index: Any, span: int = 1) -> None:
        idx = np.asarray(index)
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) + span - 1 >= arr.size):
            raise WindowError(
                f"window access out of range: indices in [{idx.min()}, {idx.max()}]"
                f" with span {span}, window size {arr.size}"
            )

    def _charge(self, index: Any) -> int:
        words = int(np.asarray(index).size)
        self.rma_ops += 1
        self.rma_words += words
        return words

    def _track(self, op: str, target: int, index: Any, *, write: bool, atomic: bool) -> None:
        if self._tracker is not None:
            self._tracker.record(
                self.comm.rank, op, target, index, write=write, atomic=atomic
            )

    def _fault_point(self, op: str, target: int, words: int) -> None:
        """Injected-fault site for one one-sided op: scheduled crashes
        propagate, transient failures are retried with capped backoff
        (retries land on ``rma_retries`` and ``comm.stats``).  A surviving
        op is priced into the injector's model-time ledger like a p2p
        message, and a straggling origin serves its wall-clock stall
        (both traced through :meth:`Communicator._fault_sleep`)."""
        faults = self.comm.fabric.faults
        if faults is None:
            return
        policy = faults.retry
        attempt = 0
        while True:
            try:
                faults.on_rma(self.comm.global_rank)
                break
            except TransientCommError:
                attempt += 1
                self.rma_retries += 1
                self.comm.stats.record_retry(f"rma_{op}")
                if attempt > policy.max_retries:
                    raise TransientCommError(
                        f"rank {self.comm.global_rank}: RMA {op} on window "
                        f"{self.win_id} still failing after "
                        f"{policy.max_retries} retries"
                    ) from None
                self.comm._fault_sleep(policy.delay(attempt), "retry-backoff")
        stall = faults.wall_delay(self.comm.global_rank)
        if stall > 0.0:
            self.comm._fault_sleep(stall, "straggler")
        faults.price_message(
            self.comm.global_rank, self.comm.group[target], words
        )

    def get(self, target: int, index: Any) -> Any:
        """Read element(s) at ``index`` from ``target``'s window memory.

        ``index`` may be a scalar or an integer array (vectorized get);
        returns a scalar or array copy accordingly.
        """
        arr = self._target_array(target)
        self._check_index(arr, index)
        words = self._charge(index)
        self._fault_point("get", target, words)
        self._track("get", target, index, write=False, atomic=False)
        with self._locks[target]:
            out = arr[index]
        return out.copy() if isinstance(out, np.ndarray) else out

    def put(self, target: int, index: Any, value: Any) -> None:
        """Write ``value`` at ``index`` into ``target``'s window memory."""
        arr = self._target_array(target)
        self._check_index(arr, index)
        words = self._charge(index)
        self._fault_point("put", target, words)
        self._track("put", target, index, write=True, atomic=False)
        with self._locks[target]:
            arr[index] = value

    def accumulate(self, target: int, index: Any, value: Any, op=np.add) -> None:
        """Atomic read-modify-write without returning the old value
        (``MPI_Accumulate``).  ``op`` is any binary NumPy ufunc with an
        ``.at`` unbuffered variant (``np.add``, ``np.minimum``, ...)."""
        arr = self._target_array(target)
        self._check_index(arr, index)
        words = self._charge(index)
        self._fault_point("accumulate", target, words)
        self._track("accumulate", target, index, write=True, atomic=True)
        with self._locks[target]:
            op.at(arr, index, value)

    def fetch_and_op(self, target: int, index: int, value: Any, op=None) -> Any:
        """Atomically read the old value and combine in the new one
        (``MPI_Fetch_and_op``).

        ``op=None`` means REPLACE (the variant Algorithm 4 uses to read the
        old mate while installing the new one).  Otherwise ``op(old, value)``
        is stored.
        """
        arr = self._target_array(target)
        self._check_index(arr, int(index))
        words = self._charge(index)
        self._fault_point("fetch_and_op", target, words)
        self._track("fetch_and_op", target, index, write=True, atomic=True)
        with self._locks[target]:
            old = arr[index]
            old = old.copy() if isinstance(old, np.ndarray) else old
            arr[index] = value if op is None else op(old, value)
        return old

    def compare_and_swap(self, target: int, index: int, expected: Any, desired: Any) -> Any:
        """Atomic compare-and-swap (``MPI_Compare_and_swap``): install
        ``desired`` iff the current value equals ``expected``; return the
        value observed before the operation."""
        arr = self._target_array(target)
        self._check_index(arr, int(index))
        words = self._charge(index)
        self._fault_point("compare_and_swap", target, words)
        self._track("compare_and_swap", target, index, write=True, atomic=True)
        with self._locks[target]:
            old = arr[index]
            if old == expected:
                arr[index] = desired
        return old


def fence_all(windows: list[Window]) -> None:
    """Fence several windows of the same communicator in one call.

    Logically identical to ``for w in windows: w.fence()`` — same barrier
    count, ledger, verify signatures and trace spans — but the epoch
    barriers are issued through :meth:`Communicator.barrier_n`, so under
    message aggregation the whole batch releases in a single physical star
    wave (2(p-1) frames) instead of one wave per window.
    """
    if not windows:
        return
    comm = windows[0].comm
    for w in windows:
        if w.comm is not comm:
            raise WindowError(
                "fence_all requires all windows on the same communicator"
            )
        if not w._epoch_open:
            raise WindowError(
                f"fence on window {w.win_id} after Window.free(): epoch "
                "operations on a freed window are erroneous (MPI_Win_fence "
                "on a freed window)"
            )
        if w._tracker is not None:
            w._tracker.advance(comm.rank)
        w._trace_epoch("fence")
    comm.barrier_n(len(windows))
    for w in windows:
        comm.fabric.win_sync(w.win_id, comm.rank)


def free_all(windows: list[Window]) -> None:
    """Free several windows of the same communicator in one call.

    Same two-barrier protocol as :meth:`Window.free`, batched: one fused
    wave of pre-detach barriers, then every detach, then one fused wave of
    pre-destroy barriers, then every destroy.  The two waves must stay
    separate — detach has to complete everywhere before any backing
    storage is destroyed — so this is ``barrier_n(n); detach×n;
    barrier_n(n); destroy×n``, never a single ``barrier_n(2n)``.
    """
    if not windows:
        return
    comm = windows[0].comm
    for w in windows:
        if w.comm is not comm:
            raise WindowError(
                "free_all requires all windows on the same communicator"
            )
        if not w._epoch_open:
            raise WindowError(
                f"double free of window {w.win_id}: Window.free() was "
                "already called"
            )
        w._trace_epoch("free")
    comm.barrier_n(len(windows))
    for w in windows:
        w._epoch_open = False
        comm.fabric.win_detach(w.win_id, comm.rank)
    comm.barrier_n(len(windows))
    for w in windows:
        comm.fabric.win_destroy(w.win_id, comm.rank)
