"""Deterministic fault injection for the simulated runtime.

Real deployments of MCM-DIST run on thousands of cores where rank failures,
lossy links and adaptive-routing reorderings are the normal case.  This
module gives the simulated fabric the same adversary, *reproducibly*: a
:class:`FaultPlan` is a pure description of which faults to inject and a
:class:`FaultInjector` turns it into per-operation decisions that depend
only on ``(seed, rank, category, counter)`` — never on wall-clock time or
thread interleaving — so the exact same fault sequence replays bit-for-bit
on every run with the same ``(seed, plan)``.

Fault categories
----------------

* **rank crashes** — a rank dies at its Nth collective entry, Nth send, Nth
  one-sided RMA op, or at an MCM phase boundary (:class:`RankKilledError`);
  the executor aborts the job and survivors unwind with ``CommAbort``.
  A crash may target a *group* instead of a single rank: every rank of a
  seeded grid row, grid column, or random clique dies at the same logical
  event — the correlated node-failure shape (one cabinet, one switch).
* **transient send / RMA failures** — an operation fails with
  :class:`TransientCommError` with probability ``p`` per attempt; the
  communicator retries with capped exponential backoff
  (:class:`RetryPolicy`), so these are invisible to the algorithm apart
  from retry counters on ``CommStats``.
* **message delays / reorderings** — a delivered envelope is inserted at a
  seeded position in the destination queue *behind* later traffic, but
  never past an envelope of its own ``(source, tag)`` stream, preserving
  MPI's non-overtaking guarantee.  Only wildcard-receive observation order
  can change — a legal interconnect reordering.
* **persistent stragglers** — one seeded rank per MCM phase has every comm
  op model-time-inflated by a configurable factor (and optionally a real
  wall-clock sleep), the "slowest participant dominates" adversity of
  parallel matching.
* **degraded links** — per-(src, dst)-edge α/β inflation
  (:class:`~repro.perfmodel.links.LinkModel`) priced into each message's
  model time; asymmetric topology damage rather than uniform slowdown.
* **round disruption** — a Bernoulli draw per MCM phase marks the whole
  superstep disrupted, inflating every rank's model time for that phase
  (transient fabric-wide congestion).

Faults change *when* things happen, never *what* is computed: logical comm
counters and the final matching are identical with and without straggler /
link / disrupt clauses (a property test enforces this).

Plan grammar (``repro spmd --chaos SEED --chaos-plan PLAN``)
------------------------------------------------------------

Semicolon-separated clauses::

    crash:rank=R,at=KIND:N   R = rank index or 'any' (seeded choice);
                             KIND = collective | send | rma | phase;
                             N = 1-based occurrence index, or 'every'
                             (phase crashes only: one crash per boundary)
    crash:group=G,at=KIND:N  correlated crash: G = row | col | clique:K;
                             a seeded grid row / column / K-rank clique all
                             die at the same logical event
    transient:p=P            send AND rma ops fail with probability P
    transient:send=P,rma=Q   per-category probabilities
    delay:p=P                deliveries are reordered with probability P
    straggler:factor=F       seeded per-phase slow rank; its comm ops cost
                             F x model time.  Optional rank=R|any (default
                             any = re-drawn per phase), sleep=S (wall-clock
                             seconds added per op, traced as fault spans)
    link:src=A,dst=B,alpha=F degraded directed edge A -> B ('*' = any rank);
                             alpha (and optional beta=G, default = F)
                             inflation factors, must be >= 1; repeatable
    disrupt:p=P              each phase is disrupted with probability P;
                             optional factor=F (default 4) inflates every
                             rank's model time during a disrupted phase

Example: ``crash:group=row,at=phase:2;straggler:factor=8;link:src=0,dst=*,alpha=4``.

Malformed plans raise :class:`~repro.runtime.errors.FaultPlanError` naming
the offending clause or token.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..perfmodel.links import ANY_RANK, LinkModel
from .errors import FaultPlanError, RankKilledError, TransientCommError

_MASK = (1 << 64) - 1

# category salts for the decision hash (arbitrary distinct constants)
_CAT_SEND_FAIL = 0x51
_CAT_RMA_FAIL = 0x52
_CAT_DELAY = 0x53
_CAT_DELAY_SLOT = 0x54
_CAT_VICTIM = 0x55
_CAT_STRAGGLER = 0x56
_CAT_DISRUPT = 0x57
_CAT_GROUP = 0x58
_CAT_CLIQUE = 0x59

#: operation kinds a crash can be scheduled at
CRASH_KINDS = ("collective", "send", "rma", "phase")

#: correlated-crash group shapes (clique takes a :K size suffix)
CRASH_GROUPS = ("row", "col", "clique")


def _mix(*parts: int) -> int:
    """Order-sensitive splitmix64 hash of a tuple of ints.

    Stateless and thread-free: the decision for (seed, category, rank, n)
    is the same no matter which thread asks first, which is what makes the
    injected fault sequence independent of scheduler interleaving.
    """
    x = 0x9E3779B97F4A7C15
    for p in parts:
        x = (x ^ ((p + 0x9E3779B97F4A7C15) & _MASK)) & _MASK
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
        x ^= x >> 31
    return x


def _unit(*parts: int) -> float:
    """Uniform float in [0, 1) derived from the hash."""
    return _mix(*parts) / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient communication failures."""

    max_retries: int = 8
    base_delay: float = 0.0002
    max_delay: float = 0.02

    def delay(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based)."""
        return min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))


@dataclass(frozen=True)
class CrashSpec:
    """One scheduled rank (or rank-group) death.

    ``rank`` is a fixed rank index or ``None`` for a seeded choice;
    ``at`` is one of :data:`CRASH_KINDS`; ``n`` is the 1-based occurrence
    (``None`` = every occurrence, legal only for ``at='phase'``).
    ``group`` makes the crash correlated: ``'row'`` / ``'col'`` kill a
    seeded grid row or column, ``'clique:K'`` a seeded K-rank clique; the
    whole group dies at the same logical event.  ``rank`` must be ``None``
    when ``group`` is set.
    """

    rank: int | None
    at: str
    n: int | None
    group: str | None = None

    def __post_init__(self) -> None:
        if self.at not in CRASH_KINDS:
            raise ValueError(f"crash kind must be one of {CRASH_KINDS}, got {self.at!r}")
        if self.n is None and self.at != "phase":
            raise ValueError("n='every' is only supported for at='phase' crashes")
        if self.n is not None and self.n < 1:
            raise ValueError(f"crash occurrence index must be >= 1, got {self.n}")
        if self.group is not None:
            if self.rank is not None:
                raise ValueError("crash spec cannot set both rank and group")
            base, _, size = self.group.partition(":")
            if base not in CRASH_GROUPS:
                raise ValueError(
                    f"crash group must be one of {CRASH_GROUPS}, got {self.group!r}"
                )
            if base == "clique":
                if not size.isdigit() or int(size) < 1:
                    raise ValueError(
                        f"clique group needs a positive size, got {self.group!r}"
                    )
            elif size:
                raise ValueError(f"group {base!r} takes no size, got {self.group!r}")

    def clique_size(self) -> int:
        """Size K of a ``clique:K`` group (1 for anything else)."""
        if self.group and self.group.startswith("clique"):
            return int(self.group.partition(":")[2])
        return 1


def _plan_int(clause: str, key: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise FaultPlanError(
            f"fault clause {clause!r}: {key}={raw!r} is not an integer"
        ) from None


def _plan_float(clause: str, key: str, raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise FaultPlanError(
            f"fault clause {clause!r}: {key}={raw!r} is not a number"
        ) from None


def _plan_kv(clause: str, body: str, allowed: tuple[str, ...]) -> dict[str, str]:
    """Parse ``k=v,k=v`` with precise errors naming the offending token."""
    kv: dict[str, str] = {}
    for item in filter(None, (i.strip() for i in body.split(","))):
        key, eq, value = item.partition("=")
        if not eq or not value:
            raise FaultPlanError(
                f"fault clause {clause!r}: expected key=value, got {item!r}"
            )
        if key not in allowed:
            raise FaultPlanError(
                f"fault clause {clause!r}: unknown key {key!r} "
                f"(allowed: {', '.join(allowed)})"
            )
        kv[key] = value
    return kv


def _plan_endpoint(clause: str, key: str, raw: str) -> int:
    if raw in ("*", "any"):
        return ANY_RANK
    rank = _plan_int(clause, key, raw)
    if rank < 0:
        raise FaultPlanError(
            f"fault clause {clause!r}: {key}={raw!r} must be a rank index or '*'"
        )
    return rank


@dataclass(frozen=True)
class FaultPlan:
    """A pure, seeded description of the faults to inject into one job."""

    seed: int = 0
    crashes: tuple[CrashSpec, ...] = ()
    transient_send_p: float = 0.0
    transient_rma_p: float = 0.0
    delay_p: float = 0.0
    #: model-time inflation factor of the per-phase straggler (1 = none)
    straggler_factor: float = 1.0
    #: fixed straggler rank, or None = seeded choice per phase
    straggler_rank: int | None = None
    #: wall-clock seconds the straggler sleeps per comm op (traced)
    straggler_sleep: float = 0.0
    #: degraded directed edges: (src, dst, alpha_factor, beta_factor)
    links: tuple[tuple[int, int, float, float], ...] = ()
    #: per-phase Bernoulli disruption probability and its model-time factor
    disrupt_p: float = 0.0
    disrupt_factor: float = 4.0

    @property
    def straggling(self) -> bool:
        return self.straggler_factor > 1.0 or self.straggler_sleep > 0.0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the CLI grammar (see module docstring).

        Raises :class:`FaultPlanError` (a ``ValueError`` subclass) naming
        the offending clause or token on any malformed input.
        """
        crashes: list[CrashSpec] = []
        send_p = rma_p = delay_p = 0.0
        strag_f, strag_rank, strag_sleep = 1.0, None, 0.0
        links: list[tuple[int, int, float, float]] = []
        disrupt_p, disrupt_f = 0.0, 4.0
        if text.strip() == "(no faults)":
            text = ""  # the empty plan's describe() sentinel round-trips
        for clause in filter(None, (c.strip() for c in text.split(";"))):
            head, _, body = clause.partition(":")
            if head == "crash":
                kv = _plan_kv(clause, body, ("rank", "group", "at"))
                group = kv.get("group")
                rank_s = kv.get("rank", "any" if group is None else None)
                rank = (
                    None
                    if rank_s in ("any", None)
                    else _plan_int(clause, "rank", rank_s)
                )
                at_s = kv.get("at", "")
                kind, _, n_s = at_s.partition(":")
                if n_s == "every":
                    n = None
                elif n_s:
                    n = _plan_int(clause, "at", n_s)
                else:
                    raise FaultPlanError(
                        f"fault clause {clause!r}: crash needs at=KIND:N "
                        f"(N a 1-based index or 'every'), got at={at_s!r}"
                    )
                try:
                    crashes.append(CrashSpec(rank=rank, at=kind, n=n, group=group))
                except ValueError as exc:
                    raise FaultPlanError(f"fault clause {clause!r}: {exc}") from None
            elif head == "transient":
                kv = _plan_kv(clause, body, ("p", "send", "rma"))
                if "p" in kv:
                    send_p = rma_p = _plan_float(clause, "p", kv["p"])
                if "send" in kv:
                    send_p = _plan_float(clause, "send", kv["send"])
                if "rma" in kv:
                    rma_p = _plan_float(clause, "rma", kv["rma"])
            elif head == "delay":
                kv = _plan_kv(clause, body, ("p",))
                delay_p = _plan_float(clause, "p", kv.get("p", "0"))
            elif head == "straggler":
                kv = _plan_kv(clause, body, ("factor", "rank", "sleep"))
                if "factor" not in kv:
                    raise FaultPlanError(
                        f"fault clause {clause!r}: straggler needs factor=F"
                    )
                strag_f = _plan_float(clause, "factor", kv["factor"])
                if strag_f < 1.0:
                    raise FaultPlanError(
                        f"fault clause {clause!r}: straggler factor must be >= 1"
                    )
                rank_s = kv.get("rank", "any")
                strag_rank = (
                    None if rank_s == "any" else _plan_int(clause, "rank", rank_s)
                )
                strag_sleep = _plan_float(clause, "sleep", kv.get("sleep", "0"))
            elif head == "link":
                kv = _plan_kv(clause, body, ("src", "dst", "alpha", "beta"))
                if "src" not in kv or "dst" not in kv or "alpha" not in kv:
                    raise FaultPlanError(
                        f"fault clause {clause!r}: link needs src=, dst= and alpha="
                    )
                src = _plan_endpoint(clause, "src", kv["src"])
                dst = _plan_endpoint(clause, "dst", kv["dst"])
                fa = _plan_float(clause, "alpha", kv["alpha"])
                fb = _plan_float(clause, "beta", kv.get("beta", kv["alpha"]))
                if fa < 1.0 or fb < 1.0:
                    raise FaultPlanError(
                        f"fault clause {clause!r}: link inflation factors must be >= 1"
                    )
                links.append((src, dst, fa, fb))
            elif head == "disrupt":
                kv = _plan_kv(clause, body, ("p", "factor"))
                if "p" not in kv:
                    raise FaultPlanError(f"fault clause {clause!r}: disrupt needs p=P")
                disrupt_p = _plan_float(clause, "p", kv["p"])
                disrupt_f = _plan_float(clause, "factor", kv.get("factor", "4"))
                if disrupt_f < 1.0:
                    raise FaultPlanError(
                        f"fault clause {clause!r}: disrupt factor must be >= 1"
                    )
            else:
                raise FaultPlanError(
                    f"unknown fault clause {head!r} in {text!r} (known: crash, "
                    f"transient, delay, straggler, link, disrupt)"
                )
        return cls(
            seed=seed,
            crashes=tuple(crashes),
            transient_send_p=send_p,
            transient_rma_p=rma_p,
            delay_p=delay_p,
            straggler_factor=strag_f,
            straggler_rank=strag_rank,
            straggler_sleep=strag_sleep,
            links=tuple(links),
            disrupt_p=disrupt_p,
            disrupt_factor=disrupt_f,
        )

    def describe(self) -> str:
        parts = []
        for c in self.crashes:
            n = "every" if c.n is None else c.n
            if c.group is not None:
                parts.append(f"crash:group={c.group},at={c.at}:{n}")
            else:
                rank = "any" if c.rank is None else c.rank
                parts.append(f"crash:rank={rank},at={c.at}:{n}")
        if self.transient_send_p or self.transient_rma_p:
            parts.append(
                f"transient:send={self.transient_send_p},rma={self.transient_rma_p}"
            )
        if self.delay_p:
            parts.append(f"delay:p={self.delay_p}")
        if self.straggling:
            rank = "any" if self.straggler_rank is None else self.straggler_rank
            part = f"straggler:factor={self.straggler_factor},rank={rank}"
            if self.straggler_sleep:
                part += f",sleep={self.straggler_sleep}"
            parts.append(part)
        for src, dst, fa, fb in self.links:
            s = "*" if src == ANY_RANK else src
            d = "*" if dst == ANY_RANK else dst
            parts.append(f"link:src={s},dst={d},alpha={fa},beta={fb}")
        if self.disrupt_p:
            parts.append(f"disrupt:p={self.disrupt_p},factor={self.disrupt_factor}")
        return "; ".join(parts) or "(no faults)"


class FaultInjector:
    """Per-job realization of a :class:`FaultPlan` over ``nranks`` ranks.

    The fabric and communicators consult the injector at every send,
    collective entry, RMA op and phase boundary.  All counters are
    per-rank and incremented only by that rank's own thread, so the
    decision stream each rank observes is a pure function of its program
    order — reproducible across runs and thread schedules.

    ``disarmed`` carries crash tokens that already fired in a previous
    incarnation of the job: after a shrink-and-restart recovery the same
    "process death" does not happen twice (the recovery driver passes
    :meth:`fired_tokens` of the failed attempt forward).

    ``grid`` is the (pr, pc) process-grid shape, required to resolve
    correlated ``group=row`` / ``group=col`` crash specs.

    Besides the fault decisions the injector keeps the scenario suite's
    deterministic **model-time ledger**: every priced message adds
    ``model_factor(src) x LinkModel.message_seconds(src, dst, words)`` to
    the sender's :attr:`model_seconds` slot.  The counters live here rather
    than on ``CommStats`` because a crashed attempt's ranks make
    scheduler-dependent progress before they observe the abort; the only
    reproducible ledger values are the per-phase-boundary snapshots of a
    run that *completes* (:attr:`phase_ledger`), which is what the scenario
    driver prices failed attempts from (via the crash-free twin).
    """

    def __init__(
        self,
        plan: FaultPlan,
        nranks: int,
        disarmed: "frozenset | set | None" = None,
        retry: RetryPolicy | None = None,
        grid: "tuple[int, int] | None" = None,
    ) -> None:
        self.plan = plan
        self.nranks = nranks
        self.disarmed: set = set(disarmed or ())
        self.retry = retry or RetryPolicy()
        self.grid = grid
        if grid is not None and grid[0] * grid[1] != nranks:
            raise ValueError(f"grid {grid} does not cover {nranks} ranks")
        if grid is None and any(
            c.group in ("row", "col") for c in plan.crashes
        ):
            raise FaultPlanError(
                "plan uses crash:group=row/col but the injector was built "
                "without a (pr, pc) grid shape"
            )
        self.link_model = LinkModel(degraded=plan.links)
        self._lock = threading.Lock()
        #: crash tokens fired during this job ((spec index, occurrence))
        self.fired: list[tuple[int, int]] = []
        #: per-rank injected-fault log, appended only by the rank's own
        #: thread — the determinism test compares these across runs
        self.events: list[list[tuple]] = [[] for _ in range(nranks)]
        self._counts: list[dict[str, int]] = [
            {"send": 0, "collective": 0, "rma": 0, "phase": 0}
            for _ in range(nranks)
        ]
        #: per-rank accumulated model seconds of priced messages
        self.model_seconds: list[float] = [0.0] * nranks
        #: phase boundary -> max rank ledger observed entering it.  In a run
        #: that completes, every rank reaches every boundary, so each value
        #: is a deterministic max over all ranks — the profile the scenario
        #: driver uses to price the work a *failed* attempt did before dying
        #: (the failed attempt's own ledgers are scheduler-racy: whether a
        #: second victim reaches its death point before the abort unwinds it
        #: depends on thread timing).
        self.phase_ledger: dict[int, float] = {}

    # -- crash scheduling ----------------------------------------------------

    def _victim(self, spec_idx: int, occurrence: int) -> int:
        """Seeded victim rank for a ``rank=any`` crash spec."""
        return _mix(self.plan.seed, _CAT_VICTIM, spec_idx, occurrence) % self.nranks

    def _group_members(self, spec: CrashSpec, spec_idx: int, occurrence: int):
        """Victim set of one crash occurrence (singleton unless correlated)."""
        if spec.group is None:
            rank = spec.rank if spec.rank is not None else self._victim(spec_idx, occurrence)
            return (rank,)
        base = spec.group.partition(":")[0]
        if base == "row":
            pr, pc = self.grid
            i = _mix(self.plan.seed, _CAT_GROUP, spec_idx, occurrence) % pr
            return tuple(range(i * pc, (i + 1) * pc))
        if base == "col":
            pr, pc = self.grid
            j = _mix(self.plan.seed, _CAT_GROUP, spec_idx, occurrence) % pc
            return tuple(range(j, self.nranks, pc))
        # clique:K — K distinct seeded ranks
        k = min(spec.clique_size(), self.nranks)
        members: list[int] = []
        draw = 0
        while len(members) < k:
            r = _mix(self.plan.seed, _CAT_CLIQUE, spec_idx, occurrence, draw) % self.nranks
            draw += 1
            if r not in members:
                members.append(r)
        return tuple(sorted(members))

    def _check_crash(self, rank: int, kind: str, count: int) -> None:
        for i, spec in enumerate(self.plan.crashes):
            if spec.at != kind:
                continue
            if spec.n is not None and spec.n != count:
                continue
            token = (i, count)
            if token in self.disarmed:
                continue
            if rank not in self._group_members(spec, i, count):
                continue
            with self._lock:
                if token not in self.fired:
                    self.fired.append(token)
            self.events[rank].append(("crash", kind, count))
            raise RankKilledError(
                f"rank {rank} killed by fault plan (spec #{i}: {kind} #{count}, "
                f"seed {self.plan.seed})"
            )

    def fired_tokens(self) -> set:
        with self._lock:
            return set(self.fired)

    def absorb_fired(self, tokens) -> None:
        """Merge crash tokens fired by a forked copy of this injector.

        The process transport forks one injector copy per rank; crashes fire
        in the children, so the parent's ``fired`` list — the one the
        resilient driver disarms from — must absorb the tokens the children
        report back."""
        with self._lock:
            known = set(self.fired)
            for tok in tokens:
                tok = tuple(tok)
                if tok not in known:
                    known.add(tok)
                    self.fired.append(tok)

    def absorb_events(self, rank: int, events) -> None:
        """Adopt rank ``rank``'s injected-fault log from its forked copy,
        so the parent's :attr:`events` reads the same on both backends."""
        self.events[rank] = [tuple(e) for e in events]

    def absorb_model(self, rank: int, seconds: float, marks) -> None:
        """Adopt rank ``rank``'s model-time ledger from its forked copy.

        ``marks`` is the child's :attr:`phase_ledger` — since a forked
        injector prices exactly one rank, it holds that rank's boundary
        snapshots, which max-merge into the parent's cross-rank profile."""
        with self._lock:
            self.model_seconds[rank] = seconds
            for phase, led in dict(marks).items():
                phase = int(phase)
                if led > self.phase_ledger.get(phase, 0.0):
                    self.phase_ledger[phase] = float(led)

    # -- scenario adversity (stragglers, disruption, link pricing) ------------

    def straggler_of(self, phase: int) -> int | None:
        """The straggling rank during MCM phase ``phase`` (None = nobody)."""
        if not self.plan.straggling:
            return None
        if self.plan.straggler_rank is not None:
            return self.plan.straggler_rank % self.nranks
        return _mix(self.plan.seed, _CAT_STRAGGLER, phase) % self.nranks

    def phase_disrupted(self, phase: int) -> bool:
        """Bernoulli draw: is MCM phase ``phase`` a disrupted superstep?"""
        p = self.plan.disrupt_p
        return p > 0.0 and _unit(self.plan.seed, _CAT_DISRUPT, phase) < p

    def model_factor(self, rank: int) -> float:
        """Model-time inflation of ``rank``'s comm ops in its current phase."""
        phase = self._counts[rank]["phase"]
        factor = 1.0
        if self.straggler_of(phase) == rank:
            factor *= self.plan.straggler_factor
        if self.phase_disrupted(phase):
            factor *= self.plan.disrupt_factor
        return factor

    def wall_delay(self, rank: int) -> float:
        """Real seconds ``rank`` must sleep before its next comm op."""
        if self.plan.straggler_sleep <= 0.0:
            return 0.0
        phase = self._counts[rank]["phase"]
        return self.plan.straggler_sleep if self.straggler_of(phase) == rank else 0.0

    def price_message(self, src: int, dst: int, words: int) -> float:
        """Charge one src → dst message to the sender's model-time ledger."""
        seconds = self.model_factor(src) * self.link_model.message_seconds(
            src, dst, words
        )
        self.model_seconds[src] += seconds
        return seconds

    # -- per-operation hooks (called from the rank's own thread) --------------

    def on_send(self, rank: int) -> "float | None":
        """Fault point for one send attempt.

        Raises :class:`RankKilledError` (scheduled crash) or
        :class:`TransientCommError` (lossy link).  Returns ``None`` for an
        in-order delivery, or a uniform ``u in [0, 1)`` selecting the
        seeded queue slot of a delayed/reordered delivery.
        """
        c = self._counts[rank]
        c["send"] += 1
        n = c["send"]
        self._check_crash(rank, "send", n)
        p = self.plan.transient_send_p
        if p > 0.0 and _unit(self.plan.seed, _CAT_SEND_FAIL, rank, n) < p:
            self.events[rank].append(("send-fail", n))
            raise TransientCommError(
                f"rank {rank}: injected transient send failure (send #{n})"
            )
        if self.plan.delay_p > 0.0 and _unit(self.plan.seed, _CAT_DELAY, rank, n) < self.plan.delay_p:
            u = _unit(self.plan.seed, _CAT_DELAY_SLOT, rank, n)
            self.events[rank].append(("delay", n))
            return u
        return None

    def on_collective(self, rank: int) -> None:
        """Fault point at one collective entry (crashes only)."""
        c = self._counts[rank]
        c["collective"] += 1
        self._check_crash(rank, "collective", c["collective"])

    def on_rma(self, rank: int) -> None:
        """Fault point for one one-sided RMA op attempt."""
        c = self._counts[rank]
        c["rma"] += 1
        n = c["rma"]
        self._check_crash(rank, "rma", n)
        p = self.plan.transient_rma_p
        if p > 0.0 and _unit(self.plan.seed, _CAT_RMA_FAIL, rank, n) < p:
            self.events[rank].append(("rma-fail", n))
            raise TransientCommError(
                f"rank {rank}: injected transient RMA failure (op #{n})"
            )

    def on_phase(self, rank: int, phase: int) -> None:
        """Fault point at an MCM phase boundary (crashes only).

        ``phase`` is the 1-based global phase number about to start, which
        doubles as the occurrence index so ``at=phase:every`` kills one
        seeded rank per boundary, each boundary at most once across
        restarts.  Also advances the rank's phase counter for straggler /
        disruption resolution and logs those adversities into the event
        stream (determinism witnesses).
        """
        self._counts[rank]["phase"] = phase
        with self._lock:
            # boundary snapshot BEFORE the crash point: even a rank about to
            # die records the ledger it arrived with
            led = self.model_seconds[rank]
            if led > self.phase_ledger.get(phase, 0.0):
                self.phase_ledger[phase] = led
        if self.straggler_of(phase) == rank:
            self.events[rank].append(("straggler", phase))
        if self.phase_disrupted(phase):
            self.events[rank].append(("disrupt", phase))
        self._check_crash(rank, "phase", phase)


__all__ = [
    "CRASH_GROUPS",
    "CRASH_KINDS",
    "CrashSpec",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
]
