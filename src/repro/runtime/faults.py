"""Deterministic fault injection for the simulated runtime.

Real deployments of MCM-DIST run on thousands of cores where rank failures,
lossy links and adaptive-routing reorderings are the normal case.  This
module gives the simulated fabric the same adversary, *reproducibly*: a
:class:`FaultPlan` is a pure description of which faults to inject and a
:class:`FaultInjector` turns it into per-operation decisions that depend
only on ``(seed, rank, category, counter)`` — never on wall-clock time or
thread interleaving — so the exact same fault sequence replays bit-for-bit
on every run with the same ``(seed, plan)``.

Fault categories
----------------

* **rank crashes** — a rank dies at its Nth collective entry, Nth send, Nth
  one-sided RMA op, or at an MCM phase boundary (:class:`RankKilledError`);
  the executor aborts the job and survivors unwind with ``CommAbort``.
* **transient send / RMA failures** — an operation fails with
  :class:`TransientCommError` with probability ``p`` per attempt; the
  communicator retries with capped exponential backoff
  (:class:`RetryPolicy`), so these are invisible to the algorithm apart
  from retry counters on ``CommStats``.
* **message delays / reorderings** — a delivered envelope is inserted at a
  seeded position in the destination queue *behind* later traffic, but
  never past an envelope of its own ``(source, tag)`` stream, preserving
  MPI's non-overtaking guarantee.  Only wildcard-receive observation order
  can change — a legal interconnect reordering.

Plan grammar (``repro spmd --chaos SEED --chaos-plan PLAN``)
------------------------------------------------------------

Semicolon-separated clauses::

    crash:rank=R,at=KIND:N   R = rank index or 'any' (seeded choice);
                             KIND = collective | send | rma | phase;
                             N = 1-based occurrence index, or 'every'
                             (phase crashes only: one crash per boundary)
    transient:p=P            send AND rma ops fail with probability P
    transient:send=P,rma=Q   per-category probabilities
    delay:p=P                deliveries are reordered with probability P

Example: ``crash:rank=any,at=phase:every;transient:p=0.02;delay:p=0.1``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .errors import RankKilledError, TransientCommError

_MASK = (1 << 64) - 1

# category salts for the decision hash (arbitrary distinct constants)
_CAT_SEND_FAIL = 0x51
_CAT_RMA_FAIL = 0x52
_CAT_DELAY = 0x53
_CAT_DELAY_SLOT = 0x54
_CAT_VICTIM = 0x55

#: operation kinds a crash can be scheduled at
CRASH_KINDS = ("collective", "send", "rma", "phase")


def _mix(*parts: int) -> int:
    """Order-sensitive splitmix64 hash of a tuple of ints.

    Stateless and thread-free: the decision for (seed, category, rank, n)
    is the same no matter which thread asks first, which is what makes the
    injected fault sequence independent of scheduler interleaving.
    """
    x = 0x9E3779B97F4A7C15
    for p in parts:
        x = (x ^ ((p + 0x9E3779B97F4A7C15) & _MASK)) & _MASK
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
        x ^= x >> 31
    return x


def _unit(*parts: int) -> float:
    """Uniform float in [0, 1) derived from the hash."""
    return _mix(*parts) / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient communication failures."""

    max_retries: int = 8
    base_delay: float = 0.0002
    max_delay: float = 0.02

    def delay(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based)."""
        return min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))


@dataclass(frozen=True)
class CrashSpec:
    """One scheduled rank death.

    ``rank`` is a fixed rank index or ``None`` for a seeded choice;
    ``at`` is one of :data:`CRASH_KINDS`; ``n`` is the 1-based occurrence
    (``None`` = every occurrence, legal only for ``at='phase'``).
    """

    rank: int | None
    at: str
    n: int | None

    def __post_init__(self) -> None:
        if self.at not in CRASH_KINDS:
            raise ValueError(f"crash kind must be one of {CRASH_KINDS}, got {self.at!r}")
        if self.n is None and self.at != "phase":
            raise ValueError("n='every' is only supported for at='phase' crashes")
        if self.n is not None and self.n < 1:
            raise ValueError(f"crash occurrence index must be >= 1, got {self.n}")


@dataclass(frozen=True)
class FaultPlan:
    """A pure, seeded description of the faults to inject into one job."""

    seed: int = 0
    crashes: tuple[CrashSpec, ...] = ()
    transient_send_p: float = 0.0
    transient_rma_p: float = 0.0
    delay_p: float = 0.0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the CLI grammar (see module docstring)."""
        crashes: list[CrashSpec] = []
        send_p = rma_p = delay_p = 0.0
        for clause in filter(None, (c.strip() for c in text.split(";"))):
            head, _, body = clause.partition(":")
            kv = dict(
                item.split("=", 1) for item in filter(None, body.split(","))
            )
            if head == "crash":
                rank_s = kv.get("rank", "any")
                rank = None if rank_s == "any" else int(rank_s)
                at_s = kv.get("at", "")
                kind, _, n_s = at_s.partition(":")
                n = None if n_s in ("every", "") else int(n_s)
                if n is None and n_s != "every":
                    raise ValueError(f"crash clause needs at=KIND:N, got {clause!r}")
                crashes.append(CrashSpec(rank=rank, at=kind, n=n))
            elif head == "transient":
                if "p" in kv:
                    send_p = rma_p = float(kv["p"])
                send_p = float(kv.get("send", send_p))
                rma_p = float(kv.get("rma", rma_p))
            elif head == "delay":
                delay_p = float(kv.get("p", 0.0))
            else:
                raise ValueError(f"unknown fault clause {head!r} in {text!r}")
        return cls(
            seed=seed,
            crashes=tuple(crashes),
            transient_send_p=send_p,
            transient_rma_p=rma_p,
            delay_p=delay_p,
        )

    def describe(self) -> str:
        parts = []
        for c in self.crashes:
            rank = "any" if c.rank is None else c.rank
            n = "every" if c.n is None else c.n
            parts.append(f"crash:rank={rank},at={c.at}:{n}")
        if self.transient_send_p or self.transient_rma_p:
            parts.append(
                f"transient:send={self.transient_send_p},rma={self.transient_rma_p}"
            )
        if self.delay_p:
            parts.append(f"delay:p={self.delay_p}")
        return "; ".join(parts) or "(no faults)"


class FaultInjector:
    """Per-job realization of a :class:`FaultPlan` over ``nranks`` ranks.

    The fabric and communicators consult the injector at every send,
    collective entry, RMA op and phase boundary.  All counters are
    per-rank and incremented only by that rank's own thread, so the
    decision stream each rank observes is a pure function of its program
    order — reproducible across runs and thread schedules.

    ``disarmed`` carries crash tokens that already fired in a previous
    incarnation of the job: after a shrink-and-restart recovery the same
    "process death" does not happen twice (the recovery driver passes
    :meth:`fired_tokens` of the failed attempt forward).
    """

    def __init__(
        self,
        plan: FaultPlan,
        nranks: int,
        disarmed: "frozenset | set | None" = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.plan = plan
        self.nranks = nranks
        self.disarmed: set = set(disarmed or ())
        self.retry = retry or RetryPolicy()
        self._lock = threading.Lock()
        #: crash tokens fired during this job ((spec index, occurrence))
        self.fired: list[tuple[int, int]] = []
        #: per-rank injected-fault log, appended only by the rank's own
        #: thread — the determinism test compares these across runs
        self.events: list[list[tuple]] = [[] for _ in range(nranks)]
        self._counts: list[dict[str, int]] = [
            {"send": 0, "collective": 0, "rma": 0} for _ in range(nranks)
        ]

    # -- crash scheduling ----------------------------------------------------

    def _victim(self, spec_idx: int, occurrence: int) -> int:
        """Seeded victim rank for a ``rank=any`` crash spec."""
        return _mix(self.plan.seed, _CAT_VICTIM, spec_idx, occurrence) % self.nranks

    def _check_crash(self, rank: int, kind: str, count: int) -> None:
        for i, spec in enumerate(self.plan.crashes):
            if spec.at != kind:
                continue
            if spec.n is not None and spec.n != count:
                continue
            token = (i, count)
            victim = spec.rank if spec.rank is not None else self._victim(i, count)
            if victim != rank or token in self.disarmed:
                continue
            with self._lock:
                self.fired.append(token)
            self.events[rank].append(("crash", kind, count))
            raise RankKilledError(
                f"rank {rank} killed by fault plan (spec #{i}: {kind} #{count}, "
                f"seed {self.plan.seed})"
            )

    def fired_tokens(self) -> set:
        with self._lock:
            return set(self.fired)

    def absorb_fired(self, tokens) -> None:
        """Merge crash tokens fired by a forked copy of this injector.

        The process transport forks one injector copy per rank; crashes fire
        in the children, so the parent's ``fired`` list — the one the
        resilient driver disarms from — must absorb the tokens the children
        report back."""
        with self._lock:
            known = set(self.fired)
            for tok in tokens:
                tok = tuple(tok)
                if tok not in known:
                    known.add(tok)
                    self.fired.append(tok)

    def absorb_events(self, rank: int, events) -> None:
        """Adopt rank ``rank``'s injected-fault log from its forked copy,
        so the parent's :attr:`events` reads the same on both backends."""
        self.events[rank] = [tuple(e) for e in events]

    # -- per-operation hooks (called from the rank's own thread) --------------

    def on_send(self, rank: int) -> "float | None":
        """Fault point for one send attempt.

        Raises :class:`RankKilledError` (scheduled crash) or
        :class:`TransientCommError` (lossy link).  Returns ``None`` for an
        in-order delivery, or a uniform ``u in [0, 1)`` selecting the
        seeded queue slot of a delayed/reordered delivery.
        """
        c = self._counts[rank]
        c["send"] += 1
        n = c["send"]
        self._check_crash(rank, "send", n)
        p = self.plan.transient_send_p
        if p > 0.0 and _unit(self.plan.seed, _CAT_SEND_FAIL, rank, n) < p:
            self.events[rank].append(("send-fail", n))
            raise TransientCommError(
                f"rank {rank}: injected transient send failure (send #{n})"
            )
        if self.plan.delay_p > 0.0 and _unit(self.plan.seed, _CAT_DELAY, rank, n) < self.plan.delay_p:
            u = _unit(self.plan.seed, _CAT_DELAY_SLOT, rank, n)
            self.events[rank].append(("delay", n))
            return u
        return None

    def on_collective(self, rank: int) -> None:
        """Fault point at one collective entry (crashes only)."""
        c = self._counts[rank]
        c["collective"] += 1
        self._check_crash(rank, "collective", c["collective"])

    def on_rma(self, rank: int) -> None:
        """Fault point for one one-sided RMA op attempt."""
        c = self._counts[rank]
        c["rma"] += 1
        n = c["rma"]
        self._check_crash(rank, "rma", n)
        p = self.plan.transient_rma_p
        if p > 0.0 and _unit(self.plan.seed, _CAT_RMA_FAIL, rank, n) < p:
            self.events[rank].append(("rma-fail", n))
            raise TransientCommError(
                f"rank {rank}: injected transient RMA failure (op #{n})"
            )

    def on_phase(self, rank: int, phase: int) -> None:
        """Fault point at an MCM phase boundary (crashes only).

        ``phase`` is the 1-based global phase number about to start, which
        doubles as the occurrence index so ``at=phase:every`` kills one
        seeded rank per boundary, each boundary at most once across
        restarts.
        """
        self._check_crash(rank, "phase", phase)


__all__ = [
    "CRASH_KINDS",
    "CrashSpec",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
]
