"""Zero-copy struct-of-arrays packing for multi-array collective payloads.

The hot collectives of the 2D algorithms (``route``'s fold triples, the
expand allgather's (idx, root) pairs) carry several parallel NumPy arrays
per destination.  Shipping them as a Python tuple costs one envelope object
per array and loses the "one contiguous buffer per peer" property real MPI
datatypes give CombBLAS.  This module flattens any such payload into a
single ``uint8`` buffer with a tiny self-describing header, and unpacks it
back into dtype-preserving *views* of the received buffer — no per-array
copies on either side beyond the one wire copy the fabric always makes.

Headers are little-endian ``int32`` (the fold triples dominate the fold
word budget, so every header word counts); payload segments start on an
8-byte boundary and are padded to 8-byte multiples.

``pack_arrays(a0, .., aK-1)`` — parallel-array payloads (K ≤ 6)::

    word 0 (int32)  bits 0..2   K (number of arrays)
                    bit  3      equal-length flag (parallel arrays: one
                                length word)
                    bits 4..27  per-array dtype codes, 4 bits each (array
                                i at bit 4 + 4i)
    then            one int32 length (equal-length) or K int32 lengths
    then            (pad to 8 bytes) each array's raw bytes, padded to
                    8-byte multiples

The common equal-length case (any K) spends exactly ONE 8-byte word on the
header.

``pack_indices(idx, lo, hi)`` — sorted index sets from a known range
``[lo, hi)``, e.g. the bottom-up unvisited-row exchange.  Two encodings,
chosen by density::

    word 0 (int32)  0 = raw index list, 1 = bitmap
    word 1 (int32)  lo (range base)
    word 2 (int32)  n (raw) or span = hi - lo (bitmap)
    then            (pad to 8 bytes) raw: n int64 global indices
                    bitmap: packbits of the membership mask over [lo, hi),
                    padded to 8-byte multiples

The bitmap wins whenever ``ceil(span / 64) < n`` — one bit instead of one
word per member — which is exactly the wide-frontier regime the bottom-up
direction is chosen for.
"""

from __future__ import annotations

import numpy as np

_DTYPES: "tuple[np.dtype, ...]" = tuple(
    np.dtype(t)
    for t in (
        np.int64, np.int32, np.int16, np.int8,
        np.uint64, np.uint32, np.uint16, np.uint8,
        np.float64, np.float32, np.bool_,
    )
)
_CODE_OF = {dt: i + 1 for i, dt in enumerate(_DTYPES)}
_DTYPE_OF = {i + 1: dt for i, dt in enumerate(_DTYPES)}

_MAX_ARRAYS = 6
_EQUAL_FLAG = 1 << 3
_MAX_LEN = 2 ** 31  # int32 length words


def _pad8(nbytes: int) -> int:
    return (nbytes + 7) & ~7


def pack_arrays(*arrays: np.ndarray) -> np.ndarray:
    """Flatten 1-D parallel arrays into one contiguous ``uint8`` buffer."""
    K = len(arrays)
    if not 1 <= K <= _MAX_ARRAYS:
        raise ValueError(f"pack_arrays takes 1..{_MAX_ARRAYS} arrays, got {K}")
    arrs = []
    codes = []
    for a in arrays:
        a = np.ascontiguousarray(a)
        if a.ndim != 1:
            raise ValueError(f"pack_arrays needs 1-D arrays, got shape {a.shape}")
        if a.size >= _MAX_LEN:
            raise ValueError(f"array too long to pack: {a.size}")
        code = _CODE_OF.get(a.dtype)
        if code is None:
            raise ValueError(f"unsupported dtype {a.dtype} for packing")
        arrs.append(a)
        codes.append(code)
    lens = [a.size for a in arrs]
    equal = all(n == lens[0] for n in lens)
    w0 = K | (_EQUAL_FLAG if equal else 0)
    for i, code in enumerate(codes):
        w0 |= code << (4 + 4 * i)
    header = [w0] + ([lens[0]] if equal else lens)
    hbytes = _pad8(4 * len(header))
    total = hbytes + sum(_pad8(a.nbytes) for a in arrs)
    buf = np.zeros(total, dtype=np.uint8)
    buf[:4 * len(header)].view(np.int32)[:] = header
    off = hbytes
    for a in arrs:
        buf[off:off + a.nbytes] = a.view(np.uint8)
        off += _pad8(a.nbytes)
    return buf


def unpack_arrays(buf: np.ndarray) -> "tuple[np.ndarray, ...]":
    """Inverse of :func:`pack_arrays`: dtype-preserving views into ``buf``."""
    buf = np.ascontiguousarray(buf, dtype=np.uint8)
    w0 = int(buf[:4].view(np.int32)[0])
    K = w0 & 0x7
    if not 1 <= K <= _MAX_ARRAYS:
        raise ValueError(f"corrupt packed buffer: K={K}")
    nlen = 1 if w0 & _EQUAL_FLAG else K
    header = buf[4:4 * (1 + nlen)].view(np.int32)
    lens = [int(header[0])] * K if w0 & _EQUAL_FLAG else [int(x) for x in header]
    out = []
    off = _pad8(4 * (1 + nlen))
    for i, n in enumerate(lens):
        dt = _DTYPE_OF.get((w0 >> (4 + 4 * i)) & 0xF)
        if dt is None:
            raise ValueError("corrupt packed buffer: unknown dtype code")
        nbytes = n * dt.itemsize
        out.append(buf[off:off + nbytes].view(dt))
        off += _pad8(nbytes)
    return tuple(out)


def pack_indices(idx: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Encode a sorted index set from ``[lo, hi)`` — bitmap when dense."""
    idx = np.ascontiguousarray(idx, dtype=np.int64)
    span = int(hi) - int(lo)
    if span < 0:
        raise ValueError(f"bad index range [{lo}, {hi})")
    if span >= _MAX_LEN or idx.size >= _MAX_LEN or not -_MAX_LEN <= lo < _MAX_LEN:
        raise ValueError(f"index range too wide to pack: [{lo}, {hi})")
    bitmap = (span + 63) // 64 < idx.size
    if bitmap:
        bits = np.zeros(span, dtype=bool)
        bits[idx - lo] = True
        payload = np.packbits(bits)
        header = [1, int(lo), span]
    else:
        payload = idx.view(np.uint8)
        header = [0, int(lo), idx.size]
    hbytes = _pad8(4 * len(header))
    buf = np.zeros(hbytes + _pad8(payload.nbytes), dtype=np.uint8)
    buf[:4 * len(header)].view(np.int32)[:] = header
    buf[hbytes:hbytes + payload.nbytes] = payload
    return buf


def unpack_indices(buf: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_indices`: sorted global ``int64`` indices."""
    buf = np.ascontiguousarray(buf, dtype=np.uint8)
    mode, lo, count = (int(x) for x in buf[:12].view(np.int32))
    if mode == 0:
        return buf[16:16 + 8 * count].view(np.int64)
    if mode == 1:
        nbytes = (count + 7) // 8
        bits = np.unpackbits(buf[16:16 + nbytes], count=count)
        return np.flatnonzero(bits).astype(np.int64) + lo
    raise ValueError(f"corrupt packed index buffer: mode={mode}")
