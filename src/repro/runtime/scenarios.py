"""Production-adversity scenario suite: seeded request streams with SLOs.

A single chaos run answers "does recovery work"; a production deployment
asks "what do stragglers, degraded links and correlated failures do to my
latency tail".  This module closes that loop: a :class:`Scenario` bundles a
fault plan with a workload shape (grid, graph scale, request count,
arrival load), and :func:`run_scenario` replays a seeded request stream
through :func:`~repro.runtime.executor.run_mcm_dist_resilient`, queues the
requests through a single-server FIFO in *model time*, and emits a
machine-readable SLO report — p50/p99 model-time latency, recovery time
after kills, checkpoint overhead, restart counts.

Determinism
-----------

Every number in the report except ``seconds_wall`` is a pure function of
``(scenario, backend-independent program order)``:

* request fault seeds and arrival draws come from the same splitmix64
  keying the injector uses (salts 0xA1 / 0xA2 on the scenario seed);
* request *service time* is model time, not wall clock: the successful
  attempt's ``DistStats.model_seconds`` (the injector's per-rank
  message-pricing ledger) plus, for each failed attempt, the work it did
  before dying priced from the crash-free twin's *phase ledger* — the
  boundary-by-boundary ledger profile of a run that completes.  A crashed
  attempt's own counters are scheduler-racy (whether a second victim in a
  correlated group reaches its death point before the abort unwinds it
  depends on thread timing), but its ``(resume_phase, death_phase)`` span
  is deterministic, and the twin prices that span reproducibly;
* arrivals are exponential inter-arrival times derived from the seeded
  uniform draws, scaled so the offered load is ``arrival_load`` of the
  fault-free service rate.

The same scenario therefore reproduces bit-for-bit across runs AND across
the thread/process backends (the parity test holds both to one report).

Each request also runs a crash-free *reference* twin (same plan minus
``crash:`` clauses) whose final cardinality must match — adversity may
slow the matching down but never change it.
"""

from __future__ import annotations

import dataclasses
import math
import tempfile
import time
from dataclasses import dataclass

from .checkpoint import FileCheckpointStore
from .executor import run_mcm_dist_resilient
from .faults import FaultPlan, _mix, _unit

#: splitmix64 salts for scenario-level draws (disjoint from the injector's
#: 0x51-0x59 range)
_CAT_REQUEST = 0xA1
_CAT_ARRIVAL = 0xA2
_CAT_GRAPH = 0xA3


@dataclass(frozen=True)
class Scenario:
    """One named adversity scenario: a fault plan plus a workload shape."""

    name: str
    description: str
    #: fault-plan grammar string (see :mod:`repro.runtime.faults`)
    plan: str
    seed: int = 0
    #: ER RMAT graph scale (2^scale rows/cols per request)
    graph_scale: int = 6
    pr: int = 2
    pc: int = 2
    #: requests in the replayed stream
    requests: int = 5
    checkpoint_every: int = 1
    #: offered load relative to the fault-free service rate (< 1 keeps the
    #: FIFO queue stable so p99 measures adversity, not saturation)
    arrival_load: float = 0.75
    max_restarts: int = 8


#: The committed suite (BENCH_scenarios.json tracks one SLO block each).
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="baseline",
            description="healthy fabric: no faults, pure α-β message pricing",
            plan="",
            seed=1,
        ),
        Scenario(
            name="straggler",
            description="one seeded rank per phase runs its comm 8x slower",
            plan="straggler:factor=8,rank=any",
            seed=2,
        ),
        Scenario(
            name="degraded-links",
            description="rank 0's uplink 6x/3x worse, everything into rank 3 2x",
            plan="link:src=0,dst=*,alpha=6,beta=3;link:src=*,dst=3,alpha=2",
            seed=3,
        ),
        Scenario(
            name="correlated-crash",
            description="a seeded grid row dies at phase 2, on a lossy fabric",
            plan="crash:group=row,at=phase:2;transient:p=0.01",
            seed=4,
        ),
        Scenario(
            name="disrupted",
            description="40% of supersteps 6x-disrupted, 20% delivery reorder",
            plan="disrupt:p=0.4,factor=6;delay:p=0.2",
            seed=5,
        ),
    )
}


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation surprises)."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[idx]


def _ledger_at(ledger: "dict[int, float] | None", phase: int) -> float:
    """Model seconds a completing run had spent when it entered ``phase``."""
    if not ledger or phase <= 0:
        return 0.0
    if phase in ledger:
        return ledger[phase]
    return max((v for p, v in ledger.items() if p <= phase), default=0.0)


def _run_once(coo, scenario: Scenario, plan: FaultPlan, backend: "str | None"):
    """One resilient MCM-DIST run in a throwaway checkpoint directory."""
    with tempfile.TemporaryDirectory(prefix="repro-scenario-") as ckdir:
        return run_mcm_dist_resilient(
            coo,
            scenario.pr,
            scenario.pc,
            faults=plan,
            checkpoint_every=scenario.checkpoint_every,
            checkpoint_store=FileCheckpointStore(ckdir),
            max_restarts=scenario.max_restarts,
            backend=backend,
            init="none",
        )


def run_scenario(
    scenario: "Scenario | str",
    *,
    backend: "str | None" = None,
    requests: "int | None" = None,
) -> dict:
    """Replay ``scenario``'s request stream; return its SLO report dict.

    ``backend`` selects the transport for every run (``None`` resolves via
    ``$REPRO_SPMD_BACKEND``); ``requests`` overrides the stream length.
    All report fields except ``seconds_wall`` are deterministic in the
    scenario seed and identical across backends.
    """
    from ..graphs.rmat import er

    if isinstance(scenario, str):
        try:
            scenario = SCENARIOS[scenario]
        except KeyError:
            raise ValueError(
                f"unknown scenario {scenario!r}; choose from "
                f"{sorted(SCENARIOS)}"
            ) from None
    if requests is not None:
        scenario = dataclasses.replace(scenario, requests=requests)

    wall0 = time.perf_counter()
    services: list[float] = []
    ref_services: list[float] = []
    recovery: list[float] = []
    restarts = phases_replayed = 0
    checkpoint_words = total_words = total_messages = 0
    cardinality = 0
    for i in range(scenario.requests):
        req_seed = _mix(scenario.seed, _CAT_REQUEST, i) & 0x7FFFFFFF
        graph_seed = _mix(scenario.seed, _CAT_GRAPH, i) & 0x7FFFFFFF
        coo = er(scale=scenario.graph_scale, seed=graph_seed, edgefactor=8)
        plan = FaultPlan.parse(scenario.plan, seed=req_seed)
        mate_r, _mate_c, stats = _run_once(coo, scenario, plan, backend)
        card = int((mate_r != -1).sum())
        if plan.crashes:
            # crash-free twin: recovery baseline, correctness witness, and
            # the deterministic phase-ledger profile that prices the work
            # each failed attempt did before dying
            ref_plan = dataclasses.replace(plan, crashes=())
            ref_mate_r, _r, ref_stats = _run_once(coo, scenario, ref_plan, backend)
            ref_card = int((ref_mate_r != -1).sum())
            if card != ref_card:
                raise AssertionError(
                    f"scenario {scenario.name!r} request {i}: recovered "
                    f"cardinality {card} != fault-free {ref_card}"
                )
        else:
            ref_stats = stats
        profile = ref_stats.model_phase_ledger
        service = stats.model_seconds + sum(
            _ledger_at(profile, death) - _ledger_at(profile, resumed)
            for resumed, death in stats.restart_spans
        )
        if plan.crashes:
            recovery.append(max(0.0, service - ref_stats.model_seconds))
        services.append(service)
        ref_services.append(ref_stats.model_seconds)
        restarts += stats.restarts
        phases_replayed += stats.phases_replayed
        checkpoint_words += stats.checkpoint_words
        total_words += stats.total_words
        total_messages += sum(
            d["messages"] for d in (stats.comm_by_alg or {}).values()
        )
        cardinality += card

    # -- queue the stream: exponential arrivals at ``arrival_load`` of the
    # fault-free service rate, FIFO single server, all in model time
    mean_ref = sum(ref_services) / len(ref_services)
    mean_arrival = mean_ref / scenario.arrival_load
    clock = 0.0
    server_free = 0.0
    latencies: list[float] = []
    for i, service in enumerate(services):
        u = _unit(scenario.seed, _CAT_ARRIVAL, i)
        clock += -mean_arrival * math.log(1.0 - u)
        start = max(clock, server_free)
        server_free = start + service
        latencies.append(server_free - clock)
    latencies.sort()

    return {
        "scenario": scenario.name,
        "plan": scenario.plan,
        "seed": scenario.seed,
        "backend_independent": True,
        "requests": scenario.requests,
        "grid": [scenario.pr, scenario.pc],
        "graph_scale": scenario.graph_scale,
        "p50_model_ms": round(_percentile(latencies, 0.50) * 1e3, 6),
        "p99_model_ms": round(_percentile(latencies, 0.99) * 1e3, 6),
        "mean_service_model_ms": round(mean_ref * 1e3, 6),
        "recovery_model_ms": round(
            (sum(recovery) / len(recovery) * 1e3) if recovery else 0.0, 6
        ),
        "restarts": restarts,
        "phases_replayed": phases_replayed,
        "checkpoint_overhead_pct": round(
            100.0 * checkpoint_words / total_words if total_words else 0.0, 4
        ),
        "total_words": total_words,
        "total_messages": total_messages,
        "cardinality": cardinality,
        "seconds_wall": round(time.perf_counter() - wall0, 3),
    }


__all__ = ["SCENARIOS", "Scenario", "run_scenario"]
