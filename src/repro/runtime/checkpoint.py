"""Phase-granular checkpoint stores for restartable SPMD jobs.

MS-BFS maximum matching augments by a set of vertex-disjoint paths per
phase, so the mate vectors after *any* completed phase form a valid
matching: by Berge's theorem a restarted run converges to the same maximum
cardinality from that state.  That makes phase-boundary checkpointing
algorithmically free — the only cost is shipping the two mate vectors.

A :class:`CheckpointStore` outlives the SPMD job that writes to it: the
recovery driver (``run_mcm_dist_resilient``) creates one, every incarnation
of the job saves into it at phase boundaries, and after a failure the next
incarnation resumes from :meth:`latest`.  Two variants are provided:
in-memory (the default — survives fabric rebuilds within one driver call)
and on-disk ``.npz`` files (survives the whole process, one file per
phase, crash-safe via write-to-temp-then-rename).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(frozen=True)
class Checkpoint:
    """One phase-boundary snapshot of the matching state.

    ``rng_state`` is carried for initializers/algorithms that consume
    randomness (None for the deterministic MCM-DIST pipeline) so a resumed
    run replays the same random stream.
    """

    phase: int
    mate_row: np.ndarray
    mate_col: np.ndarray
    rng_state: Any = None

    @property
    def words(self) -> int:
        """8-byte words this snapshot occupies (the DistStats unit)."""
        return int(self.mate_row.size + self.mate_col.size + 2)


@dataclass
class CheckpointStore:
    """In-memory store: keeps the latest checkpoint plus write counters."""

    _latest: Checkpoint | None = None
    saves: int = 0
    #: cumulative 8-byte words written over the store's lifetime (all
    #: incarnations of the job), reported as ``DistStats.checkpoint_words``
    words_written: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def save(self, ck: Checkpoint) -> None:
        with self._lock:
            if self._latest is not None and ck.phase < self._latest.phase:
                return  # never roll the store backwards
            self._latest = ck
            self.saves += 1
            self.words_written += ck.words

    def latest(self) -> Checkpoint | None:
        with self._lock:
            return self._latest

    def clear(self) -> None:
        with self._lock:
            self._latest = None


class FileCheckpointStore(CheckpointStore):
    """On-disk variant: one ``ck_phase{N}.npz`` per checkpointed phase.

    Files are written to a temp name and atomically renamed so a crash
    mid-save never leaves a truncated latest checkpoint.  ``latest()``
    re-scans the directory, so a fresh process can resume a job an earlier
    process checkpointed.
    """

    def __init__(self, directory: str) -> None:
        super().__init__()
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, phase: int) -> str:
        return os.path.join(self.directory, f"ck_phase{phase:06d}.npz")

    def save(self, ck: Checkpoint) -> None:
        with self._lock:
            tmp = self._path(ck.phase) + ".tmp"
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    phase=np.int64(ck.phase),
                    mate_row=ck.mate_row,
                    mate_col=ck.mate_col,
                )
            os.replace(tmp, self._path(ck.phase))
            self.saves += 1
            self.words_written += ck.words

    def latest(self) -> Checkpoint | None:
        with self._lock:
            names = [
                n for n in os.listdir(self.directory)
                if n.startswith("ck_phase") and n.endswith(".npz")
            ]
            if not names:
                return None
            with np.load(os.path.join(self.directory, max(names))) as data:
                return Checkpoint(
                    phase=int(data["phase"]),
                    mate_row=data["mate_row"],
                    mate_col=data["mate_col"],
                )

    def clear(self) -> None:
        with self._lock:
            for n in os.listdir(self.directory):
                if n.startswith("ck_phase"):
                    os.unlink(os.path.join(self.directory, n))


__all__ = ["Checkpoint", "CheckpointStore", "FileCheckpointStore"]
