"""Phase-granular checkpoint stores for restartable SPMD jobs.

MS-BFS maximum matching augments by a set of vertex-disjoint paths per
phase, so the mate vectors after *any* completed phase form a valid
matching: by Berge's theorem a restarted run converges to the same maximum
cardinality from that state.  That makes phase-boundary checkpointing
algorithmically free — the only cost is shipping the two mate vectors.

A :class:`CheckpointStore` outlives the SPMD job that writes to it: the
recovery driver (``run_mcm_dist_resilient``) creates one, every incarnation
of the job saves into it at phase boundaries, and after a failure the next
incarnation resumes from :meth:`latest`.  Two variants are provided:
in-memory (the default — survives fabric rebuilds within one driver call)
and on-disk ``.npz`` files (survives the whole process, one file per
phase, crash-safe via write-to-temp-then-rename).
"""

from __future__ import annotations

import contextlib
import fcntl
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(frozen=True)
class Checkpoint:
    """One phase-boundary snapshot of the matching state.

    ``rng_state`` is carried for initializers/algorithms that consume
    randomness (None for the deterministic MCM-DIST pipeline) so a resumed
    run replays the same random stream.

    ``aux`` carries algorithm-specific dense state beyond the mate vectors
    — the weighted auction engine checkpoints its item prices here (the
    mates alone are NOT a valid auction restart point: a phase resumed
    with zeroed prices would re-fight every bidding war and lose the
    ε-scaling warm start the earlier phases paid for).  Values must be
    NumPy arrays; None means "no extra state".
    """

    phase: int
    mate_row: np.ndarray
    mate_col: np.ndarray
    rng_state: Any = None
    aux: "dict[str, np.ndarray] | None" = None

    @property
    def words(self) -> int:
        """8-byte words this snapshot occupies (the DistStats unit)."""
        extra = sum(a.size for a in self.aux.values()) if self.aux else 0
        return int(self.mate_row.size + self.mate_col.size + extra + 2)


@dataclass
class CheckpointStore:
    """In-memory store: keeps the latest checkpoint plus write counters."""

    _latest: Checkpoint | None = None
    saves: int = 0
    #: cumulative 8-byte words written over the store's lifetime (all
    #: incarnations of the job), reported as ``DistStats.checkpoint_words``
    words_written: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def save(self, ck: Checkpoint) -> None:
        with self._lock:
            if self._latest is not None and ck.phase < self._latest.phase:
                return  # never roll the store backwards
            self._latest = ck
            self.saves += 1
            self.words_written += ck.words

    def latest(self) -> Checkpoint | None:
        with self._lock:
            return self._latest

    def clear(self) -> None:
        with self._lock:
            self._latest = None


class FileCheckpointStore(CheckpointStore):
    """On-disk variant: one ``ck_phase{N}.npz`` per checkpointed phase.

    Safe under *concurrent multi-process writers* — the process backend
    forks one writer per rank, and a resilient driver may overlap a
    restarted incarnation with a dying one:

    * every critical section holds an ``fcntl`` flock on ``ck.lock``
      (processes) nested inside the usual thread lock (threads);
    * data files are written to a **pid-unique** temp name then atomically
      renamed, so two writers racing on the same phase can interleave
      freely — the loser's complete file simply replaces the winner's
      complete file, never a torn mix;
    * the ``saves`` / ``words_written`` counters live in a shared
      ``ck_counters.json`` sidecar (updated under the flock, also via
      temp-and-rename); :meth:`refresh_counters` folds the sidecar back
      into the instance attributes the stats layer reads.
    """

    _COUNTERS = "ck_counters.json"

    def __init__(self, directory: str) -> None:
        super().__init__()
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, phase: int) -> str:
        return os.path.join(self.directory, f"ck_phase{phase:06d}.npz")

    @contextlib.contextmanager
    def _flock(self):
        with self._lock:
            fd = os.open(os.path.join(self.directory, "ck.lock"),
                         os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                yield
            finally:
                os.close(fd)  # closing drops the flock

    def _read_counters(self) -> dict:
        try:
            with open(os.path.join(self.directory, self._COUNTERS)) as fh:
                return json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return {"saves": 0, "words_written": 0}

    def _bump_counters(self, words: int) -> None:
        counters = self._read_counters()
        counters["saves"] += 1
        counters["words_written"] += words
        tmp = os.path.join(
            self.directory, f".{self._COUNTERS}.{os.getpid()}.tmp"
        )
        with open(tmp, "w") as fh:
            json.dump(counters, fh)
        os.replace(tmp, os.path.join(self.directory, self._COUNTERS))

    def refresh_counters(self) -> None:
        """Fold the shared sidecar back into this instance's counters —
        forked rank processes bump the sidecar, not this object."""
        with self._flock():
            counters = self._read_counters()
            self.saves = int(counters["saves"])
            self.words_written = int(counters["words_written"])

    def save(self, ck: Checkpoint) -> None:
        tmp = f"{self._path(ck.phase)}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            np.savez(
                fh,
                phase=np.int64(ck.phase),
                mate_row=ck.mate_row,
                mate_col=ck.mate_col,
                # aux entries ride the same npz under a reserved prefix
                **{f"aux_{k}": v for k, v in (ck.aux or {}).items()},
            )
        with self._flock():
            os.replace(tmp, self._path(ck.phase))
            self._bump_counters(ck.words)
            self.saves += 1
            self.words_written += ck.words

    def latest(self) -> Checkpoint | None:
        with self._flock():
            names = [
                n for n in os.listdir(self.directory)
                if n.startswith("ck_phase") and n.endswith(".npz")
            ]
            if not names:
                return None
            with np.load(os.path.join(self.directory, max(names))) as data:
                aux = {
                    k[len("aux_"):]: data[k]
                    for k in data.files
                    if k.startswith("aux_")
                }
                return Checkpoint(
                    phase=int(data["phase"]),
                    mate_row=data["mate_row"],
                    mate_col=data["mate_col"],
                    aux=aux or None,
                )

    def clear(self) -> None:
        with self._flock():
            for n in os.listdir(self.directory):
                if n.startswith("ck_phase") or n == self._COUNTERS:
                    os.unlink(os.path.join(self.directory, n))


__all__ = ["Checkpoint", "CheckpointStore", "FileCheckpointStore"]
