"""SPMD job launcher for the simulated runtime.

``spmd(nranks, fn, *args)`` plays the role of ``mpiexec -n nranks``: it
creates a fabric, starts one thread per rank, runs ``fn(comm, *args)`` on
each, and collects per-rank return values.  If any rank raises, the fabric is
aborted so peers blocked in communication unwind promptly, and the first
failure is re-raised in the caller with its originating rank attached.

Threads (not processes) are deliberate: NumPy kernels release the GIL, the
mailbox fabric gives message-passing isolation at the API level, and tests
can run hundreds of small jobs per second.  Nothing in ``repro.distmat`` or
``repro.matching.mcm_dist`` touches state outside its rank's own arrays plus
the explicit ``Communicator``/``Window`` calls, so the same code would run
unchanged over mpi4py.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from .checkpoint import Checkpoint, CheckpointStore
from .comm import CollectiveConfig, Communicator, CommStats
from .errors import (
    CollectiveMismatchError,
    CommAbort,
    DeadlockError,
    RankKilledError,
    TransientCommError,
)
from .fabric import Fabric
from .faults import FaultInjector, FaultPlan
from .trace import DistTrace, Tracer, make_trace_clock, merge_tracers

#: Environment override for the deadlock/timeout window of every blocking
#: runtime call (seconds); explicit ``timeout=`` arguments win over it.
TIMEOUT_ENV = "REPRO_SPMD_TIMEOUT"


def resolve_timeout(explicit: "float | None", default: float = 60.0) -> float:
    """Timeout precedence: explicit argument > $REPRO_SPMD_TIMEOUT > default."""
    if explicit is not None:
        return float(explicit)
    env = os.environ.get(TIMEOUT_ENV)
    if env:
        return float(env)
    return default


@dataclass
class SpmdResult:
    """Outcome of one SPMD job: per-rank return values and comm statistics."""

    values: list[Any]
    stats: list[CommStats]
    nranks: int = 0
    #: Verification counters when the job ran with ``verify=True``
    #: (``{"collectives_checked": ..., "rma_ops_checked": ...}``), else None.
    verify_summary: "dict[str, int] | None" = None
    #: Merged per-rank span timeline when the job ran with ``trace=...``
    #: (:class:`~repro.runtime.trace.DistTrace`), else None.
    trace: "DistTrace | None" = None

    def __post_init__(self) -> None:
        self.nranks = len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, rank: int) -> Any:
        return self.values[rank]

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_words(self) -> int:
        return sum(s.words_sent for s in self.stats)


@dataclass
class _RankOutcome:
    value: Any = None
    error: BaseException | None = None
    finished: bool = False


@dataclass
class _Job:
    fabric: Fabric
    outcomes: list[_RankOutcome] = field(default_factory=list)


def spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: "float | None" = None,
    verify: bool = False,
    faults: "FaultInjector | FaultPlan | None" = None,
    join_grace: float = 5.0,
    comm_config: "CollectiveConfig | None" = None,
    trace: "bool | str" = False,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    nranks:
        Number of simulated MPI ranks (threads).
    fn:
        The SPMD program.  Its first argument is this rank's
        :class:`~repro.runtime.comm.Communicator`.
    timeout:
        Deadlock-detection window in seconds for blocking calls.  ``None``
        (the default) resolves through ``$REPRO_SPMD_TIMEOUT`` and falls
        back to 60 seconds.
    faults:
        Optional chaos: a :class:`~repro.runtime.faults.FaultInjector`
        (or a :class:`~repro.runtime.faults.FaultPlan`, instantiated here)
        injecting seeded rank crashes, transient send/RMA failures and
        legal message reorderings.  ``None`` keeps every hook a single
        attribute check.
    comm_config:
        Optional :class:`~repro.runtime.comm.CollectiveConfig` pinning the
        collective algorithms (and payload packing) for the base
        communicator and everything :meth:`Communicator.split` derives from
        it.  ``None`` uses the latency-aware engine defaults.
    trace:
        Span tracing.  ``False`` (the default) keeps every hook a single
        attribute check and adds nothing to the result; ``True`` or
        ``"wall"`` records per-rank span timelines with wall-clock
        timestamps; ``"ticks"`` uses a deterministic per-rank tick clock
        (byte-identical traces across runs of the same program).  The
        merged :class:`~repro.runtime.trace.DistTrace` lands on
        ``result.trace`` — or on the raised exception's ``spmd_trace``
        attribute when the job fails, with crashed ranks' open spans
        flushed (marked ``truncated``) and one ``fault:<Error>`` span per
        errored rank.
    join_grace:
        Final join window (seconds) before a non-terminating rank is
        reported via :class:`TimeoutError`; tests shrink it.
    verify:
        Arm the dynamic correctness verifiers: every collective entry is
        cross-checked against its peers' signatures (op, root, reduction
        operator, payload dtype/shape) raising
        :class:`CollectiveMismatchError` with a precise diff on divergence,
        and every one-sided window access is race-checked, raising
        :class:`~repro.runtime.errors.RmaRaceError` naming both conflicting
        accesses.  Costs one dict lookup per collective and one log scan per
        RMA op; off by default.

    Returns
    -------
    SpmdResult
        ``result[r]`` is rank r's return value; ``result.stats[r]`` its
        communication counters.

    Raises
    ------
    The first per-rank exception, re-raised with rank context via
    exception chaining.  Secondary :class:`CommAbort` errors in other
    ranks (caused by the abort) are suppressed.
    """
    timeout = resolve_timeout(timeout)
    if isinstance(faults, FaultPlan):
        faults = FaultInjector(faults, nranks)
    fabric = Fabric(nranks, timeout=timeout, verify=verify, faults=faults)
    comms = [
        Communicator(fabric, comm_id=0, group=range(nranks), rank=r, config=comm_config)
        for r in range(nranks)
    ]
    tracers = None
    clock_kind = ""
    if trace:
        clock_kind = "wall" if trace is True else str(trace)
        tracers = [Tracer(r, make_trace_clock(clock_kind)) for r in range(nranks)]
        fabric.tracers = tracers
        for r in range(nranks):
            comms[r].tracer = tracers[r]
    outcomes = [_RankOutcome() for _ in range(nranks)]

    def runner(rank: int) -> None:
        try:
            outcomes[rank].value = fn(comms[rank], *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must capture to re-raise in caller
            outcomes[rank].error = exc
            fabric.abort()
        finally:
            outcomes[rank].finished = True

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        # Generous join timeout: the fabric's own deadlock detector fires
        # first in any stuck configuration; this is a final backstop.
        t.join(timeout=timeout * 4)
        if t.is_alive():
            fabric.abort()
    for t in threads:
        t.join(timeout=join_grace)

    dist_trace = None
    if tracers is not None:
        # faults/restarts must be diagnosable from the trace alone: every
        # errored rank gets an explicit zero-length fault span before its
        # open spans are flushed (and marked truncated) by the merge
        for r, oc in enumerate(outcomes):
            if oc.error is not None:
                tr = tracers[r]
                tr.add_complete(
                    f"fault:{type(oc.error).__name__}",
                    ts=tr.now(), dur=0.0, cat="fault",
                    error=str(oc.error)[:200],
                )
        dist_trace = merge_tracers(tracers, clock_kind)

    primary: tuple[int, BaseException] | None = None
    for r, oc in enumerate(outcomes):
        if oc.error is not None and not isinstance(oc.error, CommAbort):
            if primary is None:
                primary = (r, oc.error)
    if primary is None:
        # Only CommAborts (or a hung thread) — surface whichever exists.
        for r, oc in enumerate(outcomes):
            if oc.error is not None:
                primary = (r, oc.error)
                break
        else:
            for r, oc in enumerate(outcomes):
                if not oc.finished:
                    hung = TimeoutError(
                        f"spmd rank {r} failed to terminate; "
                        f"last blocked operation: {fabric.describe_blocked(r)}"
                    )
                    hung.spmd_rank = r
                    hung.spmd_progress = dict(fabric.progress)
                    hung.spmd_trace = dist_trace
                    raise hung
    if primary is not None:
        rank, err = primary
        wrapped = type(err)(f"[spmd rank {rank}] {err}")
        # Recovery context for resilient drivers: which rank died and how
        # far the job had progressed (phase markers published via
        # ``Fabric.note_progress``).
        wrapped.spmd_rank = rank
        wrapped.spmd_progress = dict(fabric.progress)
        wrapped.spmd_trace = dist_trace
        raise wrapped from err

    # A clean job must fully drain its collective traffic.  Leftovers mean
    # some ranks entered collectives that others skipped — a silent
    # mismatch that happened not to block (e.g. bcast vs reduce at p=2).
    for r, mb in enumerate(fabric.mailboxes):
        stray = mb.pending_collective()
        if stray:
            raise CollectiveMismatchError(
                f"rank {r} finished with {len(stray)} undrained collective "
                f"message(s) {stray[:4]}: ranks entered mismatched collectives"
            )

    verify_summary = None
    if fabric.collective_trace is not None:
        # Same-signature collectives that only a strict subset of ranks
        # entered would have deadlocked or left stray messages above, but a
        # root-completes-first pattern can slip through both; the trace
        # holds the authoritative per-rank entry counts.
        unfinished = fabric.collective_trace.incomplete()
        if unfinished:
            raise CollectiveMismatchError(
                "job finished with collectives not entered by every rank: "
                + "; ".join(unfinished[:4])
            )
        verify_summary = {
            "collectives_checked": fabric.collective_trace.checked,
            "rma_ops_checked": fabric.rma_ops_checked(),
        }

    return SpmdResult(
        values=[oc.value for oc in outcomes],
        stats=[c.stats for c in comms],
        verify_summary=verify_summary,
        trace=dist_trace,
    )


#: Failure classes a resilient driver restarts from: simulated process
#: death, the abort it causes in survivors, hangs, and permanently-failed
#: (retry-exhausted) transient links.  Anything else — assertion errors,
#: ValueError, verifier findings — is a program bug and propagates.
RECOVERABLE_ERRORS = (
    RankKilledError,
    CommAbort,
    DeadlockError,
    TimeoutError,
    TransientCommError,
)


def _resilient_rank_main(comm, coo, pr: int, pc: int, **mcm_kwargs):
    """Per-rank entry point of :func:`run_mcm_dist_resilient`.

    Module-level (not a closure over the restart loop) so a process backend
    can pickle it; the checkpoint store and resume point arrive as kwargs.
    """
    from ..matching.mcm_dist import mcm_dist_spmd  # local: avoid import cycle

    data = coo if comm.rank == 0 else None
    return mcm_dist_spmd(comm, data, pr, pc, **mcm_kwargs)


def run_mcm_dist_resilient(
    coo,
    pr: int,
    pc: int,
    *,
    faults: "FaultPlan | None" = None,
    checkpoint_every: int = 1,
    checkpoint_store: "CheckpointStore | None" = None,
    max_restarts: int = 3,
    timeout: "float | None" = None,
    verify: bool = False,
    comm_config: "CollectiveConfig | None" = None,
    trace: "bool | str" = False,
    restart_on: tuple = RECOVERABLE_ERRORS,
    **mcm_kwargs: Any,
):
    """Self-healing MCM-DIST: shrink-and-restart recovery from checkpoints.

    Runs the same job as ``run_mcm_dist(coo, pr, pc, **mcm_kwargs)`` but
    survives rank deaths (injected by ``faults`` or otherwise): at every
    ``checkpoint_every``-th phase boundary the job snapshots
    ``(mate_row, mate_col, phase, rng_state)`` into ``checkpoint_store``
    (in-memory by default; pass a
    :class:`~repro.runtime.checkpoint.FileCheckpointStore` to survive the
    process).  When the SPMD job fails with a recoverable error the fabric
    is rebuilt from scratch — ULFM-style shrink-and-restart with a fresh
    set of simulated processes — and the job resumes from the latest
    checkpoint.  Because each completed phase leaves a valid matching,
    the restarted run converges to the same maximum cardinality.

    Crash events of the fault plan that already fired are disarmed on
    restart (a process only dies once); transient/delay faults re-arm.

    Returns ``(mate_r, mate_c, stats)`` with ``stats.restarts``,
    ``stats.phases_replayed`` and ``stats.checkpoint_words`` recorded.

    With ``trace`` set (see :func:`spmd`), every attempt's timeline —
    including the failed ones, fault spans and truncated spans intact —
    is concatenated into one :class:`~repro.runtime.trace.DistTrace` with
    an explicit ``restart`` span at each seam, attached as ``stats.trace``.
    """
    store = checkpoint_store if checkpoint_store is not None else CheckpointStore()
    disarmed: set = set()
    restarts = 0
    phases_replayed = 0
    job_trace: "DistTrace | None" = None

    def merge_attempt(attempt_trace: "DistTrace | None") -> None:
        nonlocal job_trace
        if attempt_trace is None:
            return
        if job_trace is None:
            job_trace = attempt_trace
        else:
            job_trace = job_trace.concat(attempt_trace, "restart", attempt=restarts)

    while True:
        injector = (
            FaultInjector(faults, pr * pc, disarmed=disarmed)
            if faults is not None
            else None
        )
        resume = store.latest()

        try:
            result = spmd(
                pr * pc, _resilient_rank_main, coo, pr, pc,
                timeout=timeout, verify=verify, faults=injector,
                comm_config=comm_config, trace=trace,
                checkpoint_every=checkpoint_every,
                checkpoint_store=store,
                resume=resume,
                **mcm_kwargs,
            )
            merge_attempt(result.trace)
            break
        except restart_on as exc:
            merge_attempt(getattr(exc, "spmd_trace", None))
            if injector is not None:
                disarmed |= injector.fired_tokens()
            restarts += 1
            if restarts > max_restarts:
                raise
            reached = getattr(exc, "spmd_progress", {}).get("phase", 0)
            latest = store.latest()
            restart_from = latest.phase if latest is not None else 0
            # phases the failed attempt had completed (it entered phase
            # ``reached`` but died inside it) past the checkpoint the next
            # attempt resumes from must run again
            phases_replayed += max(0, reached - 1 - restart_from)

    from ..matching.mcm_dist import merge_by_alg

    mate_r, mate_c, stats = result[0]
    stats.comm_by_alg = merge_by_alg(result.values)
    stats.verify_summary = result.verify_summary
    stats.restarts = restarts
    stats.phases_replayed = phases_replayed
    stats.checkpoint_words = store.words_written
    stats.trace = job_trace
    return mate_r, mate_c, stats
