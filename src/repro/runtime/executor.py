"""SPMD job launcher for the simulated runtime.

``spmd(nranks, fn, *args)`` plays the role of ``mpiexec -n nranks``: it
creates a fabric, starts one thread per rank, runs ``fn(comm, *args)`` on
each, and collects per-rank return values.  If any rank raises, the fabric is
aborted so peers blocked in communication unwind promptly, and the first
failure is re-raised in the caller with its originating rank attached.

Threads (not processes) are deliberate: NumPy kernels release the GIL, the
mailbox fabric gives message-passing isolation at the API level, and tests
can run hundreds of small jobs per second.  Nothing in ``repro.distmat`` or
``repro.matching.mcm_dist`` touches state outside its rank's own arrays plus
the explicit ``Communicator``/``Window`` calls, so the same code would run
unchanged over mpi4py.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from .comm import Communicator, CommStats
from .errors import CollectiveMismatchError, CommAbort
from .fabric import Fabric


@dataclass
class SpmdResult:
    """Outcome of one SPMD job: per-rank return values and comm statistics."""

    values: list[Any]
    stats: list[CommStats]
    nranks: int = 0
    #: Verification counters when the job ran with ``verify=True``
    #: (``{"collectives_checked": ..., "rma_ops_checked": ...}``), else None.
    verify_summary: "dict[str, int] | None" = None

    def __post_init__(self) -> None:
        self.nranks = len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, rank: int) -> Any:
        return self.values[rank]

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_words(self) -> int:
        return sum(s.words_sent for s in self.stats)


@dataclass
class _RankOutcome:
    value: Any = None
    error: BaseException | None = None
    finished: bool = False


@dataclass
class _Job:
    fabric: Fabric
    outcomes: list[_RankOutcome] = field(default_factory=list)


def spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 60.0,
    verify: bool = False,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    nranks:
        Number of simulated MPI ranks (threads).
    fn:
        The SPMD program.  Its first argument is this rank's
        :class:`~repro.runtime.comm.Communicator`.
    timeout:
        Deadlock-detection window in seconds for blocking calls.
    verify:
        Arm the dynamic correctness verifiers: every collective entry is
        cross-checked against its peers' signatures (op, root, reduction
        operator, payload dtype/shape) raising
        :class:`CollectiveMismatchError` with a precise diff on divergence,
        and every one-sided window access is race-checked, raising
        :class:`~repro.runtime.errors.RmaRaceError` naming both conflicting
        accesses.  Costs one dict lookup per collective and one log scan per
        RMA op; off by default.

    Returns
    -------
    SpmdResult
        ``result[r]`` is rank r's return value; ``result.stats[r]`` its
        communication counters.

    Raises
    ------
    The first per-rank exception, re-raised with rank context via
    exception chaining.  Secondary :class:`CommAbort` errors in other
    ranks (caused by the abort) are suppressed.
    """
    fabric = Fabric(nranks, timeout=timeout, verify=verify)
    comms = [Communicator(fabric, comm_id=0, group=range(nranks), rank=r) for r in range(nranks)]
    outcomes = [_RankOutcome() for _ in range(nranks)]

    def runner(rank: int) -> None:
        try:
            outcomes[rank].value = fn(comms[rank], *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must capture to re-raise in caller
            outcomes[rank].error = exc
            fabric.abort()
        finally:
            outcomes[rank].finished = True

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        # Generous join timeout: the fabric's own deadlock detector fires
        # first in any stuck configuration; this is a final backstop.
        t.join(timeout=timeout * 4)
        if t.is_alive():
            fabric.abort()
    for t in threads:
        t.join(timeout=5.0)

    primary: tuple[int, BaseException] | None = None
    for r, oc in enumerate(outcomes):
        if oc.error is not None and not isinstance(oc.error, CommAbort):
            if primary is None:
                primary = (r, oc.error)
    if primary is None:
        # Only CommAborts (or a hung thread) — surface whichever exists.
        for r, oc in enumerate(outcomes):
            if oc.error is not None:
                primary = (r, oc.error)
                break
        else:
            for r, oc in enumerate(outcomes):
                if not oc.finished:
                    raise TimeoutError(f"spmd rank {r} failed to terminate")
    if primary is not None:
        rank, err = primary
        raise type(err)(f"[spmd rank {rank}] {err}") from err

    # A clean job must fully drain its collective traffic.  Leftovers mean
    # some ranks entered collectives that others skipped — a silent
    # mismatch that happened not to block (e.g. bcast vs reduce at p=2).
    for r, mb in enumerate(fabric.mailboxes):
        stray = mb.pending_collective()
        if stray:
            raise CollectiveMismatchError(
                f"rank {r} finished with {len(stray)} undrained collective "
                f"message(s) {stray[:4]}: ranks entered mismatched collectives"
            )

    verify_summary = None
    if fabric.collective_trace is not None:
        # Same-signature collectives that only a strict subset of ranks
        # entered would have deadlocked or left stray messages above, but a
        # root-completes-first pattern can slip through both; the trace
        # holds the authoritative per-rank entry counts.
        unfinished = fabric.collective_trace.incomplete()
        if unfinished:
            raise CollectiveMismatchError(
                "job finished with collectives not entered by every rank: "
                + "; ".join(unfinished[:4])
            )
        verify_summary = {
            "collectives_checked": fabric.collective_trace.checked,
            "rma_ops_checked": fabric.rma_ops_checked(),
        }

    return SpmdResult(
        values=[oc.value for oc in outcomes],
        stats=[c.stats for c in comms],
        verify_summary=verify_summary,
    )
