"""SPMD job launcher for the simulated runtime.

``spmd(nranks, fn, *args)`` plays the role of ``mpiexec -n nranks``: it
resolves a :class:`~repro.runtime.transport.Transport` (threads-as-ranks by
default, forked processes over shared-memory rings with
``backend="process"``), runs ``fn(comm, *args)`` on each rank, and collects
per-rank return values.  If any rank raises, the fabric is aborted so peers
blocked in communication unwind promptly, and the first failure is re-raised
in the caller with its originating rank attached.

Threads as the default are deliberate: NumPy kernels release the GIL, the
mailbox fabric gives message-passing isolation at the API level, and tests
can run hundreds of small jobs per second.  Nothing in ``repro.distmat`` or
``repro.matching.mcm_dist`` touches state outside its rank's own arrays plus
the explicit ``Communicator``/``Window`` calls, so the same code runs
unchanged when ranks become OS processes — the cross-backend parity suite
holds the two transports to bit-identical results.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from .checkpoint import Checkpoint, CheckpointStore  # noqa: F401  (re-export)
from .comm import CollectiveConfig
from .errors import (
    CommAbort,
    DeadlockError,
    RankKilledError,
    TransientCommError,
)
from .faults import FaultInjector, FaultPlan
from .trace import DistTrace
from .transport import (  # noqa: F401  (SpmdResult re-exported for back-compat)
    BACKENDS,
    SpmdJob,
    SpmdResult,
    get_transport,
)

#: Environment override for the deadlock/timeout window of every blocking
#: runtime call (seconds); explicit ``timeout=`` arguments win over it.
TIMEOUT_ENV = "REPRO_SPMD_TIMEOUT"

#: Environment override for the default transport (``thread`` / ``process``);
#: explicit ``backend=`` arguments win over it.
BACKEND_ENV = "REPRO_SPMD_BACKEND"


def resolve_timeout(explicit: "float | None", default: float = 60.0) -> float:
    """Timeout precedence: explicit argument > $REPRO_SPMD_TIMEOUT > default."""
    if explicit is not None:
        return float(explicit)
    env = os.environ.get(TIMEOUT_ENV)
    if env:
        return float(env)
    return default


def resolve_backend(explicit: "str | None", verify: bool = False) -> str:
    """Backend precedence: explicit argument > $REPRO_SPMD_BACKEND > thread.

    ``verify=True`` needs the shared collective trace and RMA access logs
    only the in-process fabric keeps, so it is thread-only: an explicit
    ``backend="process"`` request is an error, while an environment-supplied
    process default (e.g. a CI matrix leg) silently falls back to threads so
    verification tests still exercise what they were written to check.
    """
    if explicit is not None:
        name = explicit
        if name not in BACKENDS:
            raise ValueError(f"unknown spmd backend {name!r}; choose from {BACKENDS}")
        if verify and name == "process":
            raise ValueError(
                "verify=True requires the thread backend (the collective and "
                "RMA verifiers need one shared trace across ranks)"
            )
        return name
    name = os.environ.get(BACKEND_ENV, "").strip() or "thread"
    if name not in BACKENDS:
        raise ValueError(
            f"${BACKEND_ENV}={name!r} is not a valid backend; choose from {BACKENDS}"
        )
    if verify and name == "process":
        return "thread"
    return name


def spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: "float | None" = None,
    verify: bool = False,
    faults: "FaultInjector | FaultPlan | str | None" = None,
    join_grace: float = 5.0,
    comm_config: "CollectiveConfig | None" = None,
    trace: "bool | str" = False,
    backend: "str | None" = None,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    nranks:
        Number of simulated MPI ranks.
    fn:
        The SPMD program.  Its first argument is this rank's
        :class:`~repro.runtime.comm.Communicator`.
    timeout:
        Deadlock-detection window in seconds for blocking calls.  ``None``
        (the default) resolves through ``$REPRO_SPMD_TIMEOUT`` and falls
        back to 60 seconds.
    faults:
        Optional chaos: a :class:`~repro.runtime.faults.FaultInjector`
        (or a :class:`~repro.runtime.faults.FaultPlan`, instantiated here)
        injecting seeded rank crashes, transient send/RMA failures and
        legal message reorderings.  ``None`` keeps every hook a single
        attribute check.
    comm_config:
        Optional :class:`~repro.runtime.comm.CollectiveConfig` pinning the
        collective algorithms (and payload packing) for the base
        communicator and everything :meth:`Communicator.split` derives from
        it.  ``None`` uses the latency-aware engine defaults.
    trace:
        Span tracing.  ``False`` (the default) keeps every hook a single
        attribute check and adds nothing to the result; ``True`` or
        ``"wall"`` records per-rank span timelines with wall-clock
        timestamps; ``"ticks"`` uses a deterministic per-rank tick clock
        (byte-identical traces across runs of the same program).  The
        merged :class:`~repro.runtime.trace.DistTrace` lands on
        ``result.trace`` — or on the raised exception's ``spmd_trace``
        attribute when the job fails, with crashed ranks' open spans
        flushed (marked ``truncated``) and one ``fault:<Error>`` span per
        errored rank.
    backend:
        Which transport runs the ranks: ``"thread"`` (default — daemon
        threads over the in-process mailbox fabric) or ``"process"``
        (forked OS processes exchanging packed messages through
        ``multiprocessing.shared_memory`` ring buffers; true rank
        parallelism).  ``None`` resolves through ``$REPRO_SPMD_BACKEND``.
        Both backends produce bit-identical results; ``fn``, its arguments
        and its return values must be picklable under the process backend.
    join_grace:
        Final join window (seconds) before a non-terminating rank is
        reported via :class:`TimeoutError`; tests shrink it.
    verify:
        Arm the dynamic correctness verifiers: every collective entry is
        cross-checked against its peers' signatures (op, root, reduction
        operator, payload dtype/shape) raising
        :class:`CollectiveMismatchError` with a precise diff on divergence,
        and every one-sided window access is race-checked, raising
        :class:`~repro.runtime.errors.RmaRaceError` naming both conflicting
        accesses.  Costs one dict lookup per collective and one log scan per
        RMA op; off by default.  Thread-backend only (see
        :func:`resolve_backend`).

    Returns
    -------
    SpmdResult
        ``result[r]`` is rank r's return value; ``result.stats[r]`` its
        communication counters.

    Raises
    ------
    The first per-rank exception, re-raised with rank context via
    exception chaining.  Secondary :class:`CommAbort` errors in other
    ranks (caused by the abort) are suppressed.
    """
    timeout = resolve_timeout(timeout)
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    if isinstance(faults, FaultPlan):
        faults = FaultInjector(faults, nranks)
    clock_kind = ""
    if trace:
        clock_kind = "wall" if trace is True else str(trace)
    transport = get_transport(resolve_backend(backend, verify=verify))
    job = SpmdJob(
        nranks=nranks,
        fn=fn,
        args=args,
        kwargs=kwargs,
        timeout=timeout,
        verify=verify,
        faults=faults,
        join_grace=join_grace,
        comm_config=comm_config,
        clock_kind=clock_kind,
    )
    return transport.run(job)


#: Failure classes a resilient driver restarts from: simulated process
#: death, the abort it causes in survivors, hangs, and permanently-failed
#: (retry-exhausted) transient links.  Anything else — assertion errors,
#: ValueError, verifier findings — is a program bug and propagates.
RECOVERABLE_ERRORS = (
    RankKilledError,
    CommAbort,
    DeadlockError,
    TimeoutError,
    TransientCommError,
)


def _resilient_rank_main(comm, coo, pr: int, pc: int, **mcm_kwargs):
    """Per-rank entry point of :func:`run_mcm_dist_resilient`.

    Module-level (not a closure over the restart loop) so a process backend
    can pickle it; the checkpoint store and resume point arrive as kwargs.
    """
    from ..matching.mcm_dist import mcm_dist_spmd  # local: avoid import cycle

    data = coo if comm.rank == 0 else None
    return mcm_dist_spmd(comm, data, pr, pc, **mcm_kwargs)


def _mwm_resilient_rank_main(comm, coo, weights, pr: int, pc: int, **mwm_kwargs):
    """Per-rank entry point of :func:`run_mwm_dist_resilient` (module-level
    for the same picklability reason as :func:`_resilient_rank_main`)."""
    from ..matching.mwm_dist import mwm_dist_spmd  # local: avoid import cycle

    data = (coo, weights) if comm.rank == 0 else (None, None)
    return mwm_dist_spmd(comm, data[0], data[1], pr, pc, **mwm_kwargs)


def _run_resilient(
    rank_main: Callable[..., Any],
    job_args: tuple,
    pr: int,
    pc: int,
    *,
    faults: "FaultPlan | None" = None,
    checkpoint_every: int = 1,
    checkpoint_store: "CheckpointStore | None" = None,
    max_restarts: int = 3,
    timeout: "float | None" = None,
    verify: bool = False,
    comm_config: "CollectiveConfig | None" = None,
    trace: "bool | str" = False,
    backend: "str | None" = None,
    restart_on: tuple = RECOVERABLE_ERRORS,
    **alg_kwargs: Any,
):
    """The algorithm-agnostic shrink-and-restart driver.

    ``rank_main(comm, *job_args, pr, pc, **alg_kwargs)`` must accept
    ``checkpoint_every`` / ``checkpoint_store`` / ``resume`` kwargs and
    snapshot at phase boundaries; everything else — fault-plan arming and
    disarming, fabric rebuilds, resume-point lookup, restart-span and
    replay accounting, trace concatenation, stats merging — is shared
    between the cardinality (:func:`run_mcm_dist_resilient`) and weighted
    (:func:`run_mwm_dist_resilient`) engines.
    """
    resolved_backend = resolve_backend(backend, verify=verify)
    store = checkpoint_store if checkpoint_store is not None else CheckpointStore()
    if resolved_backend == "process" and not hasattr(store, "refresh_counters"):
        if backend is None:
            # backend came from $REPRO_SPMD_BACKEND, not the caller: fall
            # back to thread (mirrors the verify fallback) rather than
            # fail a job that never asked for processes
            resolved_backend = "thread"
        else:
            raise ValueError(
                "backend='process' requires a FileCheckpointStore: forked "
                "ranks cannot write checkpoints into the parent's "
                "in-memory store"
            )
    disarmed: set = set()
    restarts = 0
    phases_replayed = 0
    #: (resume_phase, death_phase) per failed attempt.  Both are
    #: deterministic — the checkpoint write is collective and completes
    #: before the next boundary's crash point, and the first victim notes
    #: its boundary before dying — so the scenario driver can price the
    #: failed attempt's lost work from a crash-free run's phase ledger
    #: without touching the crashed attempt's scheduler-racy counters.
    restart_spans: list = []
    job_trace: "DistTrace | None" = None

    def merge_attempt(attempt_trace: "DistTrace | None") -> None:
        nonlocal job_trace
        if attempt_trace is None:
            return
        if job_trace is None:
            job_trace = attempt_trace
        else:
            job_trace = job_trace.concat(attempt_trace, "restart", attempt=restarts)

    while True:
        injector = (
            FaultInjector(faults, pr * pc, disarmed=disarmed, grid=(pr, pc))
            if faults is not None
            else None
        )
        refresh = getattr(store, "refresh_counters", None)
        if refresh is not None:
            # multi-process writers bump the shared sidecar, not this object
            refresh()
        resume = store.latest()
        resume_phase = resume.phase if resume is not None else 0

        try:
            result = spmd(
                pr * pc, rank_main, *job_args, pr, pc,
                timeout=timeout, verify=verify, faults=injector,
                comm_config=comm_config, trace=trace, backend=resolved_backend,
                checkpoint_every=checkpoint_every,
                checkpoint_store=store,
                resume=resume,
                **alg_kwargs,
            )
            merge_attempt(result.trace)
            break
        except restart_on as exc:
            merge_attempt(getattr(exc, "spmd_trace", None))
            if injector is not None:
                disarmed |= injector.fired_tokens()
            restarts += 1
            if restarts > max_restarts:
                raise
            reached = getattr(exc, "spmd_progress", {}).get("phase", 0)
            restart_spans.append((resume_phase, reached))
            refresh = getattr(store, "refresh_counters", None)
            if refresh is not None:
                refresh()
            latest = store.latest()
            restart_from = latest.phase if latest is not None else 0
            # phases the failed attempt had completed (it entered phase
            # ``reached`` but died inside it) past the checkpoint the next
            # attempt resumes from must run again
            phases_replayed += max(0, reached - 1 - restart_from)

    from ..matching.mcm_dist import merge_by_alg, merge_physical

    refresh = getattr(store, "refresh_counters", None)
    if refresh is not None:
        refresh()
    mate_r, mate_c, stats = result[0]
    stats.comm_by_alg = merge_by_alg(result.values)
    merge_physical(stats, result.values)
    stats.verify_summary = result.verify_summary
    stats.restarts = restarts
    stats.phases_replayed = phases_replayed
    stats.checkpoint_words = store.words_written
    # model-time service of the SUCCESSFUL attempt only: slowest rank's
    # ledger (bulk-synchronous completion rule).  Failed attempts' lost work
    # is NOT folded in here — their counters are scheduler-racy — it is
    # reconstructed by the scenario driver from ``restart_spans`` against a
    # crash-free twin's ``model_phase_ledger``.
    stats.model_seconds = (
        max(injector.model_seconds) if injector is not None else 0.0
    )
    stats.model_phase_ledger = (
        {p: injector.phase_ledger[p] for p in sorted(injector.phase_ledger)}
        if injector is not None
        else None
    )
    stats.restart_spans = tuple(restart_spans)
    stats.trace = job_trace
    return mate_r, mate_c, stats


def run_mcm_dist_resilient(coo, pr: int, pc: int, **kwargs: Any):
    """Self-healing MCM-DIST: shrink-and-restart recovery from checkpoints.

    Runs the same job as ``run_mcm_dist(coo, pr, pc, ...)`` but survives
    rank deaths (injected by ``faults`` or otherwise): at every
    ``checkpoint_every``-th phase boundary the job snapshots
    ``(mate_row, mate_col, phase, rng_state)`` into ``checkpoint_store``
    (in-memory by default; pass a
    :class:`~repro.runtime.checkpoint.FileCheckpointStore` to survive the
    process).  When the SPMD job fails with a recoverable error the fabric
    is rebuilt from scratch — ULFM-style shrink-and-restart with a fresh
    set of simulated processes — and the job resumes from the latest
    checkpoint.  Because each completed phase leaves a valid matching,
    the restarted run converges to the same maximum cardinality.

    Crash events of the fault plan that already fired are disarmed on
    restart (a process only dies once); transient/delay faults re-arm.

    Under ``backend="process"`` the checkpoint store must be a
    :class:`~repro.runtime.checkpoint.FileCheckpointStore` — an in-memory
    store in the parent is invisible to forked ranks, so a restart would
    silently begin from phase 0.

    Returns ``(mate_r, mate_c, stats)`` with ``stats.restarts``,
    ``stats.phases_replayed`` and ``stats.checkpoint_words`` recorded.

    With ``trace`` set (see :func:`spmd`), every attempt's timeline —
    including the failed ones, fault spans and truncated spans intact —
    is concatenated into one :class:`~repro.runtime.trace.DistTrace` with
    an explicit ``restart`` span at each seam, attached as ``stats.trace``.
    """
    return _run_resilient(_resilient_rank_main, (coo,), pr, pc, **kwargs)


def run_mwm_dist_resilient(coo, weights, pr: int, pc: int, **kwargs: Any):
    """Self-healing MWM-DIST: the weighted-auction twin of
    :func:`run_mcm_dist_resilient`.

    Same restart protocol, but the snapshots carry the doubled-graph mate
    vectors AND the item prices (the checkpoint ``aux`` slot): a resumed
    ε-phase re-fights its own bidding wars from scratch, but inherits the
    prices the completed phases established, so the recovered run lands on
    the same matching (and bit-identical mates) as a fault-free one.
    Accepts the :func:`~repro.matching.mwm_dist.run_mwm_dist` algorithm
    kwargs (``epsilon``, ``cardinality_bias``, ``max_rounds``) on top of
    the recovery kwargs.
    """
    return _run_resilient(_mwm_resilient_rank_main, (coo, weights), pr, pc, **kwargs)
