"""True-parallel SPMD backend: ranks as forked processes over shm rings.

:class:`ProcessFabric` duck-types the thread :class:`~repro.runtime.fabric.Fabric`
surface the communicators and windows use — ``deliver``/``collect``/``probe``,
split rendezvous, abort, progress markers, window storage — but every rank is
a real OS process:

* **Point-to-point and collectives** move through per-destination shared
  memory ring buffers (:mod:`repro.runtime.shm`).  Payloads are encoded with
  pickle protocol 5 + out-of-band buffers, so packed int32/bitmap collective
  payloads cross as raw bytes with one copy in (the wire copy — the
  communicator's ``_freeze`` is skipped, see ``Fabric.serializes``) and zero
  copies out (receiver arrays are views over the drained bytes).
* **Abort, progress and hung-rank diagnostics** live in a small control
  segment of int64 slots: the abort flag, shared comm/window id counters,
  and per-rank ``(blocked-kind, a, b, phase)`` records the parent decodes
  with :func:`~repro.runtime.fabric.describe_blocked_entry` when naming a
  stuck child.
* **Split rendezvous** is message-based: members send ``(rank, color,
  key)`` to the parent communicator's first rank on the split's collective
  tag; it computes the same ``(key, rank)``-ordered groups the thread
  fabric's shared table produces and replies with each member's new
  communicator.
* **RMA windows** are per-owner shared-memory segments (created at
  ``win_create``, lazily attached by peers after the creation barrier) with
  element atomicity from a pre-forked striped lock pool.  The owner's
  ``local`` array is copied in at creation, refreshed from the segment at
  each fence (``win_sync``), and copied back at free — the contract that
  owner writes between create and free go through window ops.

The parent process never joins the data plane: it forks the children,
collects their results over pipes, reaps every child (no orphans, even
after ``RankKilledError`` or a hang), merges fired fault tokens back into
its injector, sweeps the rings for stray collective traffic, and raises the
primary error with the same wrapping the thread transport uses.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import multiprocessing.connection as mp_connection
import os
import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np
from multiprocessing import shared_memory

from .comm import CommStats, Communicator
from .errors import CommAbort, CommError, DeadlockError, WindowError
from .fabric import (
    ANY_SOURCE,
    ANY_TAG,
    Envelope,
    _RESERVED_TAG_BASE,
    describe_blocked_entry,
)
from .shm import (
    DEFAULT_RING_BYTES,
    _BATCH_TAG,
    carve_rings,
    decode_frame,
    decode_header,
    decode_message,
    encode_frame,
    encode_message,
    ring_segment_size,
)
from .trace import DistTrace, Tracer, make_trace_clock
from .transport import (
    RankOutcome,
    SpmdJob,
    SpmdResult,
    Transport,
    add_fault_span,
    check_stray_collectives,
    raise_primary,
)

#: $REPRO_SHM_RING_BYTES overrides the per-destination ring capacity.
RING_BYTES_ENV = "REPRO_SHM_RING_BYTES"

#: pre-forked striped lock pool size for window element atomicity
_WIN_LOCK_POOL = 32

# control-segment slot indices (int64)
_CTL_ABORT = 0
_CTL_NEXT_COMM = 1
_CTL_NEXT_WIN = 2
_CTL_RANK_BASE = 4
_CTL_RANK_STRIDE = 4  # kind, a, b, phase

# blocked-kind codes mirrored into the control segment
_BLK_NONE, _BLK_RECV, _BLK_SPLIT = 0, 1, 2


def _ring_bytes() -> int:
    env = os.environ.get(RING_BYTES_ENV)
    return int(env) if env else DEFAULT_RING_BYTES


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment.

    Python (< 3.13) registers attach-side handles with the resource tracker
    too.  This backend only ever forks, so parent and children share one
    tracker process whose per-name cache is a set: the duplicate register is
    idempotent and the creator's eventual ``unlink`` clears the single
    entry.  Do NOT ``unregister`` here — that would strip the creator's
    entry and make its ``unlink`` trip a KeyError inside the tracker.
    """
    return shared_memory.SharedMemory(name=name)


@dataclass
class _OwnWindow:
    """Owner-side state of one window slot backed by a shm segment."""

    seg: shared_memory.SharedMemory
    arr: np.ndarray  # view into seg
    local: np.ndarray  # the user's array win_sync/detach refresh


class _ProcSlots:
    """Window slot table: ``slots[target]`` is target's exposed memory.

    The owner's slot is its shm-backed view (so its own window ops are
    remotely visible); peer slots attach lazily on first access — safe
    because :class:`~repro.runtime.rma.Window` barriers after creation.
    """

    def __init__(self, fabric: "ProcessFabric", win_id: int, size: int,
                 own_rank: int) -> None:
        self._fabric = fabric
        self._win_id = win_id
        self._size = size
        self._own_rank = own_rank

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, target: int) -> np.ndarray:
        if target == self._own_rank:
            # looked up (not captured) so the slot table holds no view into
            # the segment and win_destroy's close() can unmap it
            own = self._fabric._win_own.get(self._win_id)  # noqa: SLF001
            if own is None:
                raise WindowError(f"window {self._win_id} is already freed")
            return own.arr
        return self._fabric.attach_window_slot(self._win_id, target)


class ProcessFabric:
    """Interconnect state shared (via fork) by the rank processes.

    Constructed in the parent *before* forking so the shared segments,
    conditions and locks are inherited by every child.  After fork each
    child calls :meth:`attach` with its rank; per-process receive state
    (the pending list, reassembly buffers) is private to that process.
    """

    serializes = True  # ring encoding is the wire copy; _freeze is skipped

    def __init__(
        self,
        nranks: int,
        timeout: float = 60.0,
        faults: "Any | None" = None,
        ctx: "multiprocessing.context.BaseContext | None" = None,
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self.timeout = timeout
        self.faults = faults
        self.verify = False
        self.collective_trace = None
        self.tracers = None  # per-process tracer lives on self._tracer
        self.last_blocked: list[tuple | None] = [None] * nranks
        self.progress: dict[str, int] = {}
        self.ctx = ctx if ctx is not None else multiprocessing.get_context("fork")
        self.uid = f"rx{os.getpid() % 0xFFFFF:05x}{os.urandom(2).hex()}"
        cap = _ring_bytes()
        self._ring_shm = shared_memory.SharedMemory(
            name=f"{self.uid}r", create=True,
            size=ring_segment_size(nranks, cap),
        )
        locks = [self.ctx.Lock() for _ in range(nranks)]
        bells = [self.ctx.Semaphore(0) for _ in range(nranks)]
        self.rings = carve_rings(self._ring_shm.buf, nranks, cap, locks, bells)
        self._ctl_shm = shared_memory.SharedMemory(
            name=f"{self.uid}c", create=True,
            size=8 * (_CTL_RANK_BASE + _CTL_RANK_STRIDE * nranks),
        )
        # cast memoryview, not numpy: the abort flag and blocked records
        # are touched on every message, and plain-int indexing is ~20x
        # cheaper than numpy scalar access
        self._ctl = self._ctl_shm.buf.cast("q")
        for i in range(len(self._ctl)):
            self._ctl[i] = 0
        self._ctl[_CTL_NEXT_COMM] = 1
        self._ctl[_CTL_NEXT_WIN] = 1
        for r in range(nranks):
            self._ctl[_CTL_RANK_BASE + _CTL_RANK_STRIDE * r + 3] = -1  # phase
        self._ctl_lock = self.ctx.Lock()
        self._win_lock_pool = [self.ctx.Lock() for _ in range(_WIN_LOCK_POOL)]
        # per-rank coalescer buffers (dest -> pending entries); plain dicts
        # forked with the fabric — each child only ever touches its own
        self._outboxes: list[dict[int, list]] = [dict() for _ in range(nranks)]
        # per-process state (meaningful after attach())
        self.rank: "int | None" = None
        self._pending: list[Envelope] = []
        self._sent = 0
        self._tracer: "Tracer | None" = None
        self._win_own: dict[int, _OwnWindow] = {}
        self._win_attached: dict[tuple[int, int], tuple] = {}

    def attach(self, rank: int) -> None:
        """Bind this (forked) process to its rank."""
        self.rank = rank

    # -- abort / progress ----------------------------------------------------

    @property
    def aborted(self) -> bool:
        return self._ctl[0] != 0  # _CTL_ABORT, inlined: read per message

    def abort(self) -> None:
        self._ctl[_CTL_ABORT] = 1
        for ring in self.rings:
            ring.notify()  # wake peers blocked on full/empty rings

    def note_progress(self, key: str, value: int) -> None:
        if value > self.progress.get(key, -1):
            self.progress[key] = value
        if key == "phase" and self.rank is not None:
            slot = _CTL_RANK_BASE + _CTL_RANK_STRIDE * self.rank + 3
            if value > self._ctl[slot]:
                self._ctl[slot] = value

    def _set_blocked(self, kind: int, a: int, b: int) -> None:
        if self.rank is None:
            return
        ctl = self._ctl
        base = _CTL_RANK_BASE + _CTL_RANK_STRIDE * self.rank
        ctl[base] = kind
        ctl[base + 1] = a
        ctl[base + 2] = b

    def blocked_entry(self, rank: int) -> "tuple | None":
        """Decode rank's control-segment blocked record (parent side)."""
        base = _CTL_RANK_BASE + _CTL_RANK_STRIDE * rank
        kind, a, b = self._ctl[base], self._ctl[base + 1], self._ctl[base + 2]
        if kind == _BLK_RECV:
            return ("recv", a, b)
        if kind == _BLK_SPLIT:
            return ("split", a, b)
        return None

    def describe_blocked(self, rank: int) -> str:
        return describe_blocked_entry(self.blocked_entry(rank))

    def ctl_phase_max(self) -> int:
        """Highest phase marker any rank published (parent side)."""
        return max(
            self._ctl[_CTL_RANK_BASE + _CTL_RANK_STRIDE * r + 3]
            for r in range(self.nranks)
        )

    # -- message transport ---------------------------------------------------

    def _stall(self) -> None:
        """Full-destination-ring hook: keep the buffered-send contract by
        draining our own ring (our peers may be blocked on OUR ring — e.g.
        a mutual ``sendrecv`` — and freeing it unblocks the cycle)."""
        if self.aborted:
            raise CommAbort(f"rank {self.rank}: job aborted while sending")
        if self.rank is not None:
            self._drain_own()

    def deliver(
        self, source: int, dest: int, tag: int, payload: Any,
        reorder_u: "float | None" = None,
    ) -> None:
        if self.aborted:
            raise CommAbort(f"rank {source}: job aborted while sending to {dest}")
        if not 0 <= dest < self.nranks:
            raise ValueError(f"destination rank {dest} out of range [0, {self.nranks})")
        self._sent += 1
        # sender-scoped serial (debugging only; arrival order is what
        # matching uses) — a fabric-global counter would need a lock per send
        serial = (source << 32) | (self._sent & 0xFFFFFFFF)
        self.rings[dest].write(
            source,
            encode_message(tag, payload, serial, reorder_u),
            stall=self._stall,
            timeout=self.timeout,
            describe=f"rank {source}: send to rank {dest} (tag {tag})",
        )

    def deliver_frame(
        self, source: int, dest: int, entries: "list[tuple[int, Any, float | None]]"
    ) -> None:
        """Deliver one coalesced frame: ``source``'s pending traffic toward
        ``dest`` as ``(tag, payload, reorder_u)`` entries in send order —
        ONE codec pass and ONE ring write for the whole batch, the physical
        win this backend's aggregation exists for."""
        if self.aborted:
            raise CommAbort(f"rank {source}: job aborted while sending to {dest}")
        if not 0 <= dest < self.nranks:
            raise ValueError(f"destination rank {dest} out of range [0, {self.nranks})")
        wire = []
        for tag, payload, reorder_u in entries:
            self._sent += 1
            serial = (source << 32) | (self._sent & 0xFFFFFFFF)
            wire.append((tag, serial, reorder_u, payload))
        self.rings[dest].write(
            source,
            encode_frame(wire),
            stall=self._stall,
            timeout=self.timeout,
            describe=(
                f"rank {source}: frame to rank {dest} "
                f"({len(entries)} coalesced messages)"
            ),
        )

    def _deposit(self, env: Envelope, reorder_u: "float | None") -> None:
        # same legal-reordering insertion as Mailbox.deposit: an injected
        # delay may jump the queue but never overtakes within (source, tag)
        q = self._pending
        if reorder_u is None or not q:
            q.append(env)
            return
        floor = 0
        for i, queued in enumerate(q):
            if queued.source == env.source and queued.tag == env.tag:
                floor = i + 1
        pos = floor + int(reorder_u * (len(q) + 1 - floor))
        q.insert(pos, env)

    def _drain_own(self) -> int:
        """Move every message queued in our ring into the pending list."""
        msgs = self.rings[self.rank].drain()
        for src, data in msgs:
            tag, _ = decode_header(data)
            if tag == _BATCH_TAG:
                # expand the frame back into per-message envelopes; each
                # keeps its own reorder draw, so injected reordering of
                # unplanned traffic still physically manifests
                for mtag, payload, serial, reorder_u in decode_frame(data):
                    self._deposit(
                        Envelope(src, self.rank, mtag, payload, serial), reorder_u
                    )
                continue
            tag, payload, serial, reorder_u = decode_message(data)
            self._deposit(Envelope(src, self.rank, tag, payload, serial), reorder_u)
        return len(msgs)

    def _match(self, source: int, tag: int) -> "int | None":
        for i, env in enumerate(self._pending):
            if source not in (ANY_SOURCE, env.source):
                continue
            if tag not in (ANY_TAG, env.tag):
                continue
            return i
        return None

    def collect(self, rank: int, source: int, tag: int) -> Envelope:
        self.last_blocked[rank] = ("recv", source, tag)
        self._set_blocked(_BLK_RECV, source, tag)
        tr = self._tracer
        t0 = tr.now() if tr is not None else 0.0
        try:
            return self._collect(source, tag)
        finally:
            if tr is not None:
                tr.add_wait(tr.now() - t0)

    def _collect(self, source: int, tag: int) -> Envelope:
        # clock reads here are deadlock *observation* (the same role the
        # thread mailbox's condition timeout plays), never algorithm state
        last_progress = time.monotonic()  # repro: noqa[SPMD602]
        while True:
            if self.aborted:
                raise CommAbort(
                    f"rank {self.rank}: job aborted while receiving "
                    f"(source={source}, tag={tag})"
                )
            if self._drain_own():
                last_progress = time.monotonic()  # repro: noqa[SPMD602]
            idx = self._match(source, tag)
            if idx is not None:
                return self._pending.pop(idx)
            if self.rings[self.rank].wait_data(timeout=0.05):
                continue
            if time.monotonic() - last_progress > self.timeout:  # repro: noqa[SPMD602]
                raise DeadlockError(
                    f"rank {self.rank}: recv(source={source}, tag={tag}) "
                    f"made no progress for {self.timeout:.1f}s; "
                    f"pending queue: "
                    f"{[(e.source, e.tag) for e in self._pending[:8]]}"
                )

    def probe(self, rank: int, source: int, tag: int) -> bool:
        self._drain_own()
        return self._match(source, tag) is not None

    def pending_collective(self) -> list[tuple[int, int]]:
        """Reserved-tag leftovers still queued at this rank (rank side)."""
        self._drain_own()
        return [
            (e.source, e.tag) for e in self._pending
            if e.tag >= _RESERVED_TAG_BASE
        ]

    # -- id allocation -------------------------------------------------------

    def _bump(self, slot: int) -> int:
        with self._ctl_lock:
            value = self._ctl[slot]
            self._ctl[slot] = value + 1
        return value

    def new_comm_id(self) -> int:
        return self._bump(_CTL_NEXT_COMM)

    def new_win_id(self) -> int:
        return self._bump(_CTL_NEXT_WIN)

    # -- split rendezvous ----------------------------------------------------

    def split_rendezvous(
        self,
        comm_id: int,
        seq: int,
        nmembers: int,
        rank: int,
        color: int,
        key: int,
        group: "Sequence[int] | None" = None,
    ) -> tuple[int, list[int]]:
        """Message-based split: members report to the parent communicator's
        first rank, which computes the same ``(key, rank)``-ordered groups
        the thread fabric's shared table does and replies.  New comm ids
        are allocated in ascending-color order from the shared counter."""
        if group is None:
            raise CommError("process fabric split requires the parent group")
        self.last_blocked[self.rank] = ("split", comm_id, seq)
        self._set_blocked(_BLK_SPLIT, comm_id, seq)
        tag = _RESERVED_TAG_BASE + (comm_id << 32) + seq
        if rank != 0:
            self.deliver(self.rank, group[0], tag, ("split?", rank, color, key))
            env = self._collect(group[0], tag)
            _, new_id, ranks = env.payload
            return new_id, list(ranks)
        entries: dict[int, tuple[int, int]] = {0: (color, key)}
        for _ in range(nmembers - 1):
            env = self._collect(ANY_SOURCE, tag)
            _, member, c, k = env.payload
            entries[member] = (c, k)
        colors: dict[int, list[tuple[int, int]]] = {}
        for member, (c, k) in entries.items():
            colors.setdefault(c, []).append((k, member))
        result: dict[int, tuple[int, list[int]]] = {}
        for c in sorted(colors):
            members = [m for (_, m) in sorted(colors[c])]
            result[c] = (self.new_comm_id(), members)
        for member, (c, _) in entries.items():
            if member != 0:
                self.deliver(
                    self.rank, group[member], tag, ("split=",) + result[c]
                )
        new_id, ranks = result[color]
        return new_id, list(ranks)

    # -- RMA windows ---------------------------------------------------------

    def _seg_name(self, win_id: int, target: int) -> str:
        return f"{self.uid}w{win_id}s{target}"

    def win_create(
        self, win_id: int, rank: int, size: int, local: np.ndarray,
        group: "Sequence[int] | None" = None,
    ) -> _ProcSlots:
        seg = shared_memory.SharedMemory(
            name=self._seg_name(win_id, rank), create=True,
            size=32 + max(8, local.nbytes),
        )
        dts = local.dtype.str.encode("ascii").ljust(16, b" ")
        seg.buf[:16] = dts
        np.frombuffer(seg.buf, np.int64, 1, 16)[0] = local.size
        arr = np.frombuffer(seg.buf, local.dtype, local.size, 32)
        arr[:] = local  # copy-in: the segment is the remotely visible truth
        self._win_own[win_id] = _OwnWindow(seg, arr, local)
        return _ProcSlots(self, win_id, size, rank)

    def attach_window_slot(self, win_id: int, target: int) -> np.ndarray:
        key = (win_id, target)
        cached = self._win_attached.get(key)
        if cached is not None:
            return cached[1]
        try:
            seg = _attach(self._seg_name(win_id, target))
        except FileNotFoundError:
            raise WindowError(
                f"target rank {target} never attached its memory"
            ) from None
        dtype = np.dtype(bytes(seg.buf[:16]).decode("ascii").strip())
        nelems = int(np.frombuffer(seg.buf, np.int64, 1, 16)[0])
        arr = np.frombuffer(seg.buf, dtype, nelems, 32)
        self._win_attached[key] = (seg, arr)
        return arr

    def win_locks(self, win_id: int, size: int) -> list:
        pool = self._win_lock_pool
        return [pool[(win_id * 131 + t) % len(pool)] for t in range(size)]

    def win_sync(self, win_id: int, rank: int) -> None:
        own = self._win_own.get(win_id)
        if own is not None:
            own.local[:] = own.arr  # surface remote puts in the owner's array

    def win_detach(self, win_id: int, rank: int) -> None:
        self.win_sync(win_id, rank)  # final copy-back before teardown
        for key in [k for k in self._win_attached if k[0] == win_id]:
            seg, arr = self._win_attached.pop(key)
            del arr  # the view must die before the segment can unmap
            # a live traceback (e.g. ``free()`` in a user's finally) can
            # still pin a view; the mapping then dies with the process
            with contextlib.suppress(BufferError):
                seg.close()

    def win_destroy(self, win_id: int, rank: int) -> None:
        own = self._win_own.pop(win_id, None)
        if own is None:
            return
        seg, own.arr, own.seg = own.seg, None, None  # views must die first
        with contextlib.suppress(BufferError):
            seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:
            pass

    # -- verify-surface stubs (process backend never arms the verifiers) -----

    def rma_log_for(self, win_id: int, factory) -> Any:  # pragma: no cover
        raise CommError("verify mode is thread-backend only")

    def rma_ops_checked(self) -> int:
        return 0

    # -- teardown ------------------------------------------------------------

    def close_child(self) -> None:
        """Child-exit cleanup: release window segments this rank still holds
        (error paths); ring/control segments die with the parent.  Best
        effort — a view still pinned by some live frame raises BufferError
        on close, and the parent's abandoned-segment sweep reclaims the
        name, so never let teardown kill an otherwise clean exit."""
        for win_id in list(self._win_own):
            with contextlib.suppress(BufferError):
                self.win_detach(win_id, self.rank)
                self.win_destroy(win_id, self.rank)
        for key in list(self._win_attached):
            seg, arr = self._win_attached.pop(key)
            del arr
            with contextlib.suppress(BufferError):
                seg.close()

    def close_parent(self) -> None:
        """Parent-exit cleanup: rings, control segment, and a sweep for
        window segments children abandoned (killed mid-epoch)."""
        max_win = self._ctl[_CTL_NEXT_WIN]
        for ring in self.rings:
            ring.release()
        self._ctl.release()
        self._ctl = None
        for seg in (self._ring_shm, self._ctl_shm):
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass
        for win_id in range(1, max_win):
            for t in range(self.nranks):
                try:
                    leftover = _attach(self._seg_name(win_id, t))
                except FileNotFoundError:
                    continue
                leftover.close()
                try:
                    leftover.unlink()
                except FileNotFoundError:
                    pass


# ---------------------------------------------------------------------------
# the child process entry point
# ---------------------------------------------------------------------------


def _rank_child(fabric: ProcessFabric, rank: int, job: SpmdJob, conn) -> None:
    """Module-level so any start method can resolve it; under fork the
    fabric (rings, control segment, locks) arrives by inheritance."""
    fabric.attach(rank)
    comm = Communicator(
        fabric, comm_id=0, group=range(fabric.nranks), rank=rank,
        config=job.comm_config,
    )
    tracer = None
    if job.clock_kind:
        tracer = Tracer(rank, make_trace_clock(job.clock_kind))
        fabric._tracer = tracer  # noqa: SLF001 - wait accounting in collect
        comm.tracer = tracer
    out: dict[str, Any] = {"ok": True, "value": None, "error": None}
    try:
        out["value"] = job.fn(comm, *job.args, **job.kwargs)
        # push out any coalesced tail (e.g. isends the program never
        # followed with a blocking call) before peers wait on it
        comm.flush_sends()
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        out["ok"] = False
        out["error"] = exc
        fabric.abort()
        if tracer is not None:
            add_fault_span(tracer, exc)
    finally:
        if tracer is not None:
            tracer.flush()
        out["stats"] = comm.stats
        out["progress"] = dict(fabric.progress)
        out["fired"] = (
            sorted(fabric.faults.fired_tokens()) if fabric.faults is not None else []
        )
        out["fault_events"] = (
            list(fabric.faults.events[rank]) if fabric.faults is not None else []
        )
        out["fault_model"] = (
            (fabric.faults.model_seconds[rank], dict(fabric.faults.phase_ledger))
            if fabric.faults is not None
            else (0.0, {})
        )
        try:
            out["pending_coll"] = fabric.pending_collective()
        except Exception:
            out["pending_coll"] = []
        out["spans"] = list(tracer.spans) if tracer is not None else None
        out["idle"] = tracer.idle_wait if tracer is not None else 0.0
        _ship(conn, out, rank)
        # the shipped error's traceback pins frames whose locals hold numpy
        # views over window segments; drop it so close_child can unmap them
        out["error"] = None
        out["value"] = None
        fabric.close_child()
        conn.close()


def _ship(conn, out: dict, rank: int) -> None:
    """Send the result dict; degrade to a stringified error rather than die
    silently when a value or exception object refuses to pickle."""
    try:
        conn.send(out)
        return
    except Exception:
        pass
    reason = (
        f"{type(out['error']).__name__}: {out['error']}"
        if out.get("error") is not None
        else "return value is not picklable (the process backend ships "
        "results over a pipe)"
    )
    fallback = dict(
        out,
        value=None,
        error=CommError(f"rank {rank}: {reason}"),
        ok=False,
        spans=None,
    )
    try:
        conn.send(fallback)
    except Exception:
        pass


# ---------------------------------------------------------------------------
# the transport
# ---------------------------------------------------------------------------


class ProcessTransport(Transport):
    """Ranks as forked OS processes over shared-memory rings.

    Bit-identical to the thread transport on deterministic programs (the
    parity suite pins mates and ``CommStats.by_alg`` ledgers across
    backends); requires picklable ``fn``/args/results; ``verify=True`` is
    rejected upstream by :func:`~repro.runtime.executor.resolve_backend`.
    """

    name = "process"

    def run(self, job: SpmdJob) -> SpmdResult:
        nranks = job.nranks
        fabric = ProcessFabric(
            nranks, timeout=job.timeout, faults=job.faults,
        )
        procs: list = []
        conns: list = []
        results: list[dict | None] = [None] * nranks
        try:
            for r in range(nranks):
                parent_end, child_end = fabric.ctx.Pipe(duplex=False)
                proc = fabric.ctx.Process(
                    target=_rank_child, args=(fabric, r, job, child_end),
                    name=f"spmd-rank-{r}", daemon=True,
                )
                proc.start()
                child_end.close()
                procs.append(proc)
                conns.append(parent_end)

            self._gather(job, fabric, conns, results)
            hung = [r for r in range(nranks) if results[r] is None and procs[r].is_alive()]
            if hung:
                fabric.abort()
            for proc in procs:
                proc.join(timeout=job.join_grace)
            # late results from ranks the abort unblocked
            for r in range(nranks):
                if results[r] is None and conns[r].poll():
                    results[r] = self._recv(conns[r], r)
            self._reap(procs)

            outcomes = [RankOutcome() for _ in range(nranks)]
            progress: dict[str, int] = {}
            for r, res in enumerate(results):
                if res is None:
                    if r not in hung:
                        # died without reporting (hard kill, fatal signal)
                        outcomes[r].error = CommError(
                            f"rank {r} process exited without reporting "
                            f"(exit code {procs[r].exitcode})"
                        )
                        outcomes[r].finished = True
                    continue  # hung: finished stays False -> TimeoutError
                outcomes[r].finished = True
                if res["ok"]:
                    outcomes[r].value = res["value"]
                else:
                    outcomes[r].error = res["error"]
                for key, value in res.get("progress", {}).items():
                    progress[key] = max(progress.get(key, value), value)
                if job.faults is not None:
                    job.faults.absorb_fired(res.get("fired", ()))
                    job.faults.absorb_events(r, res.get("fault_events", ()))
                    seconds, marks = res.get("fault_model", (0.0, {}))
                    job.faults.absorb_model(r, seconds, marks)
            phase = fabric.ctl_phase_max()
            if phase >= 0:
                progress["phase"] = max(progress.get("phase", phase), phase)

            dist_trace = None
            if job.clock_kind:
                dist_trace = DistTrace(
                    nranks,
                    spans=[
                        list((res or {}).get("spans") or []) for res in results
                    ],
                    meta={
                        "clock": job.clock_kind,
                        "idle_wait": [
                            float((res or {}).get("idle", 0.0)) for res in results
                        ],
                    },
                )

            pids = [proc.pid for proc in procs]
            raise_primary(
                outcomes, progress, dist_trace,
                lambda r: (
                    f"spmd rank {r} (pid {pids[r]}) failed to terminate; "
                    f"last blocked operation: {fabric.describe_blocked(r)}"
                ),
            )

            # stray collective sweep: leftovers each rank reported from its
            # pending list, plus whatever still sits undrained in the rings
            # (children are joined; the parent is the only reader now)
            stray: list[list[tuple[int, int]]] = [[] for _ in range(nranks)]
            for r, res in enumerate(results):
                for src, tag in (res or {}).get("pending_coll", ()):
                    stray[r].append((src, tag))
            for r in range(nranks):
                for src, data in fabric.rings[r].drain():
                    tag, _ = decode_header(data)
                    if tag == _BATCH_TAG:
                        for mtag, _p, _s, _u in decode_frame(data):
                            if mtag >= _RESERVED_TAG_BASE:
                                stray[r].append((src, mtag))
                    elif tag >= _RESERVED_TAG_BASE:
                        stray[r].append((src, tag))
            check_stray_collectives(stray)

            return SpmdResult(
                values=[oc.value for oc in outcomes],
                stats=[
                    (res or {}).get("stats") or CommStats() for res in results
                ],
                verify_summary=None,
                trace=dist_trace,
            )
        finally:
            self._reap(procs)
            fabric.close_parent()

    def _gather(
        self, job: SpmdJob, fabric: ProcessFabric, conns: list, results: list
    ) -> None:
        """Collect result dicts until all arrive or the join backstop (the
        same ``timeout * 4`` the thread transport uses) expires.

        A child that dies without reporting (hard kill, fatal signal) shows
        up as pipe EOF here; abort the fabric right away so peers blocked
        on the dead rank raise ``CommAbort`` now instead of each waiting
        out its own deadlock window — their aborts are suppressed by
        ``raise_primary`` and the dead rank's exit-code error stays primary.
        """
        remaining = {id(conn): r for r, conn in enumerate(conns)}
        live = list(conns)
        deadline = time.monotonic() + job.timeout * 4
        while live and time.monotonic() < deadline:
            ready = mp_connection.wait(live, timeout=0.2)
            for conn in ready:
                r = remaining.pop(id(conn))
                live.remove(conn)
                results[r] = self._recv(conn, r)
                if results[r] is None and not fabric.aborted:
                    fabric.abort()

    @staticmethod
    def _recv(conn, rank: int) -> "dict | None":
        try:
            return conn.recv()
        except EOFError:
            return None  # died without reporting (hard kill)
        except Exception:
            return {
                "ok": False,
                "error": CommError(f"rank {rank}: result could not be decoded"),
                "value": None, "stats": CommStats(), "progress": {},
                "fired": [], "pending_coll": [], "spans": None, "idle": 0.0,
            }

    @staticmethod
    def _reap(procs: list) -> None:
        """No orphans, ever: escalate terminate -> kill on leftovers."""
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            if proc.is_alive():
                proc.join(timeout=1.0)
        for proc in procs:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
