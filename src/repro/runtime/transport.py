"""The transport interface: how one SPMD job's ranks run.

A *transport* owns the mechanics the executor used to hard-code: spawning
one execution context per rank, wiring each to a fabric that implements
point-to-point delivery, split rendezvous and abort propagation, joining
the ranks (with the hung-rank backstop), and assembling the
:class:`SpmdResult`.  The algorithm layers above — communicators,
collectives, windows, MCM itself — never see which transport they run on.

Two implementations ship:

* :class:`ThreadTransport` (``backend="thread"``, the default) — ranks are
  daemon threads over the in-process :class:`~repro.runtime.fabric.Fabric`
  mailboxes.  This is bit-compatible with the pre-transport executor: same
  fabric, same error wrapping, same verify/trace plumbing.
* ``ProcessTransport`` (``backend="process"``, in
  :mod:`repro.runtime.procfabric`) — ranks are forked OS processes
  exchanging messages through ``multiprocessing.shared_memory`` ring
  buffers, so rank parallelism is real and engine wins show up in
  wall-clock, not just counters.

The contract every transport must honor (the cross-backend parity suite
asserts the observable parts):

1. run ``fn(comm, *args, **kwargs)`` once per rank with a base
   communicator of ``comm_id=0`` covering ranks ``0..nranks-1``;
2. on any rank's failure, propagate abort so peers unwind with
   :class:`~repro.runtime.errors.CommAbort`, then re-raise the primary
   error wrapped as ``type(err)(f"[spmd rank {r}] ...")`` with
   ``spmd_rank`` / ``spmd_progress`` / ``spmd_trace`` attached
   (:func:`raise_primary`);
3. name a rank that never terminates via :class:`TimeoutError` carrying
   the rank's last blocked operation, and leave no execution contexts
   behind — threads are daemonic, processes are reaped;
4. after a clean job, fail loudly on undrained collective traffic
   (:func:`check_stray_collectives`).
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from .comm import CollectiveConfig, Communicator, CommStats
from .errors import CollectiveMismatchError, CommAbort
from .fabric import Fabric
from .trace import DistTrace, Tracer, make_trace_clock, merge_tracers


@dataclass
class SpmdResult:
    """Outcome of one SPMD job: per-rank return values and comm statistics."""

    values: list[Any]
    stats: list[CommStats]
    nranks: int = 0
    #: Verification counters when the job ran with ``verify=True``
    #: (``{"collectives_checked": ..., "rma_ops_checked": ...}``), else None.
    verify_summary: "dict[str, int] | None" = None
    #: Merged per-rank span timeline when the job ran with ``trace=...``
    #: (:class:`~repro.runtime.trace.DistTrace`), else None.
    trace: "DistTrace | None" = None

    def __post_init__(self) -> None:
        self.nranks = len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, rank: int) -> Any:
        return self.values[rank]

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_words(self) -> int:
        return sum(s.words_sent for s in self.stats)


@dataclass
class RankOutcome:
    """What one rank's execution context reported back."""

    value: Any = None
    error: BaseException | None = None
    finished: bool = False


@dataclass
class SpmdJob:
    """One launch request, fully resolved (timeouts, injectors, config)."""

    nranks: int
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    timeout: float = 60.0
    verify: bool = False
    faults: Any = None
    join_grace: float = 5.0
    comm_config: "CollectiveConfig | None" = None
    #: Trace clock kind (``"wall"`` / ``"ticks"``); empty string = off.
    clock_kind: str = ""


class Transport(abc.ABC):
    """Spawn/join/abort mechanics for one backend (see module docstring)."""

    #: Registry key and the value of ``spmd(backend=...)`` selecting it.
    name: str = ""

    @abc.abstractmethod
    def run(self, job: SpmdJob) -> SpmdResult:
        """Execute the job; return per-rank values or raise the primary
        per-rank error with rank context attached."""


# ---------------------------------------------------------------------------
# shared post-processing (identical across backends by construction)
# ---------------------------------------------------------------------------

def add_fault_span(tracer: Tracer, error: BaseException) -> None:
    """One explicit zero-length ``fault:<Error>`` span on an errored rank's
    timeline, so faults/restarts are diagnosable from the trace alone."""
    tracer.add_complete(
        f"fault:{type(error).__name__}",
        ts=tracer.now(), dur=0.0, cat="fault",
        error=str(error)[:200],
    )


def raise_primary(
    outcomes: "list[RankOutcome]",
    progress: dict,
    dist_trace: "DistTrace | None",
    hung_message: Callable[[int], str],
) -> None:
    """Select and raise the job's primary error, if any.

    Precedence: first non-:class:`CommAbort` error (the root cause), else
    the first :class:`CommAbort`, else a :class:`TimeoutError` naming the
    first rank that never terminated.  The raised exception carries
    ``spmd_rank``, ``spmd_progress`` and ``spmd_trace`` for recovery
    drivers, chained to the original per-rank exception.
    """
    primary: "tuple[int, BaseException] | None" = None
    for r, oc in enumerate(outcomes):
        if oc.error is not None and not isinstance(oc.error, CommAbort):
            primary = (r, oc.error)
            break
    if primary is None:
        for r, oc in enumerate(outcomes):
            if oc.error is not None:
                primary = (r, oc.error)
                break
        else:
            for r, oc in enumerate(outcomes):
                if not oc.finished:
                    hung = TimeoutError(hung_message(r))
                    hung.spmd_rank = r
                    hung.spmd_progress = dict(progress)
                    hung.spmd_trace = dist_trace
                    raise hung
    if primary is not None:
        rank, err = primary
        wrapped = type(err)(f"[spmd rank {rank}] {err}")
        # Recovery context for resilient drivers: which rank died and how
        # far the job had progressed (phase markers published via
        # ``Fabric.note_progress``).
        wrapped.spmd_rank = rank
        wrapped.spmd_progress = dict(progress)
        wrapped.spmd_trace = dist_trace
        raise wrapped from err


def check_stray_collectives(stray_by_rank: "list[list[tuple[int, int]]]") -> None:
    """A clean job must fully drain its collective traffic.  Leftovers mean
    some ranks entered collectives that others skipped — a silent mismatch
    that happened not to block (e.g. bcast vs reduce at p=2)."""
    for r, stray in enumerate(stray_by_rank):
        if stray:
            raise CollectiveMismatchError(
                f"rank {r} finished with {len(stray)} undrained collective "
                f"message(s) {stray[:4]}: ranks entered mismatched collectives"
            )


# ---------------------------------------------------------------------------
# thread transport (the default; bit-compatible with the original executor)
# ---------------------------------------------------------------------------

class ThreadTransport(Transport):
    """Ranks as daemon threads over the in-process mailbox fabric.

    NumPy kernels release the GIL, the mailbox fabric gives
    message-passing isolation at the API level, and tests can run hundreds
    of small jobs per second.  This is also the only transport supporting
    ``verify=True``: the collective-divergence and RMA-race checkers need
    one shared trace across all ranks.
    """

    name = "thread"

    def run(self, job: SpmdJob) -> SpmdResult:
        nranks = job.nranks
        fabric = Fabric(
            nranks, timeout=job.timeout, verify=job.verify, faults=job.faults
        )
        comms = [
            Communicator(
                fabric, comm_id=0, group=range(nranks), rank=r,
                config=job.comm_config,
            )
            for r in range(nranks)
        ]
        tracers = None
        if job.clock_kind:
            tracers = [Tracer(r, make_trace_clock(job.clock_kind)) for r in range(nranks)]
            fabric.tracers = tracers
            for r in range(nranks):
                comms[r].tracer = tracers[r]
        outcomes = [RankOutcome() for _ in range(nranks)]
        fn, args, kwargs = job.fn, job.args, job.kwargs

        def runner(rank: int) -> None:
            try:
                outcomes[rank].value = fn(comms[rank], *args, **kwargs)
                # push out any coalesced tail (e.g. isends the program never
                # followed with a blocking call) before peers wait on it
                comms[rank].flush_sends()
            except BaseException as exc:  # noqa: BLE001 - must capture to re-raise in caller
                outcomes[rank].error = exc
                fabric.abort()
            finally:
                outcomes[rank].finished = True

        threads = [
            threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True)
            for r in range(nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            # Generous join timeout: the fabric's own deadlock detector fires
            # first in any stuck configuration; this is a final backstop.
            t.join(timeout=job.timeout * 4)
            if t.is_alive():
                fabric.abort()
        for t in threads:
            t.join(timeout=job.join_grace)

        dist_trace = None
        if tracers is not None:
            for r, oc in enumerate(outcomes):
                if oc.error is not None:
                    add_fault_span(tracers[r], oc.error)
            dist_trace = merge_tracers(tracers, job.clock_kind)

        raise_primary(
            outcomes, fabric.progress, dist_trace,
            lambda r: (
                f"spmd rank {r} failed to terminate; "
                f"last blocked operation: {fabric.describe_blocked(r)}"
            ),
        )
        check_stray_collectives(
            [mb.pending_collective() for mb in fabric.mailboxes]
        )

        verify_summary = None
        if fabric.collective_trace is not None:
            # Same-signature collectives that only a strict subset of ranks
            # entered would have deadlocked or left stray messages above, but a
            # root-completes-first pattern can slip through both; the trace
            # holds the authoritative per-rank entry counts.
            unfinished = fabric.collective_trace.incomplete()
            if unfinished:
                raise CollectiveMismatchError(
                    "job finished with collectives not entered by every rank: "
                    + "; ".join(unfinished[:4])
                )
            verify_summary = {
                "collectives_checked": fabric.collective_trace.checked,
                "rma_ops_checked": fabric.rma_ops_checked(),
            }

        return SpmdResult(
            values=[oc.value for oc in outcomes],
            stats=[c.stats for c in comms],
            verify_summary=verify_summary,
            trace=dist_trace,
        )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

#: Transport names accepted by ``spmd(backend=...)`` / ``--backend``.
BACKENDS = ("thread", "process")


def get_transport(name: str) -> Transport:
    """Instantiate the transport registered under ``name``."""
    if name == "thread":
        return ThreadTransport()
    if name == "process":
        # local import: the process backend pulls in multiprocessing and
        # shared-memory machinery nothing else needs
        from .procfabric import ProcessTransport

        return ProcessTransport()
    raise ValueError(f"unknown spmd backend {name!r}; choose from {BACKENDS}")
