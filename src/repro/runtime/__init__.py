"""Simulated message-passing runtime (an in-process "MPI").

The paper's algorithms are written against MPI semantics: two-sided
point-to-point messages, bulk-synchronous collectives (broadcast, gather,
allgather, personalized all-to-all, reductions, scans) and one-sided Remote
Memory Access (RMA) windows with ``get``/``put``/``accumulate``/
``fetch_and_op``.  On the reproduction platform there is no MPI and no
multi-node machine, so this package provides those semantics *exactly* inside
a single process: every simulated rank is an OS thread running the user's
SPMD function, connected to its peers through a :class:`~repro.runtime.fabric.Fabric`
of mailboxes.  Data really moves between per-rank buffers; nothing is shared
behind the API's back, which is what makes the distributed algorithms built
on top of it (``repro.distmat``) honest distributed-memory code.

Entry points
------------

``spmd(nranks, fn, *args)``
    Run ``fn(comm, *args)`` on ``nranks`` simulated ranks and return the list
    of per-rank return values.

``Communicator``
    The MPI-like handle passed to each rank.

``Window``
    One-sided RMA window collectively created over a communicator.
"""

from .errors import (
    CommAbort,
    CommError,
    CollectiveMismatchError,
    DeadlockError,
    FaultPlanError,
    RankKilledError,
    RmaRaceError,
    TransientCommError,
    WindowError,
)
from .fabric import CollectiveTrace, Fabric, ANY_SOURCE, ANY_TAG
from .comm import (
    BAND,
    BOR,
    DEFAULT_CONFIG,
    LAND,
    LOR,
    MAX,
    MIN,
    NAIVE_CONFIG,
    PROD,
    SUM,
    CollectiveConfig,
    Communicator,
    CommStats,
    ReduceOp,
)
from .pack import pack_arrays, pack_indices, unpack_arrays, unpack_indices
from .rma import RmaAccessLog, Window
from .trace import DistTrace, Span, TraceError, Tracer, make_trace_clock, tspan
from .faults import CRASH_GROUPS, CrashSpec, FaultInjector, FaultPlan, RetryPolicy
from .checkpoint import Checkpoint, CheckpointStore, FileCheckpointStore
from .scenarios import SCENARIOS, Scenario, run_scenario
from .executor import (
    RECOVERABLE_ERRORS,
    SpmdResult,
    resolve_backend,
    resolve_timeout,
    run_mcm_dist_resilient,
    run_mwm_dist_resilient,
    spmd,
)
from .transport import BACKENDS, SpmdJob, Transport, get_transport

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BACKENDS",
    "BAND",
    "BOR",
    "CRASH_GROUPS",
    "Checkpoint",
    "CheckpointStore",
    "CollectiveConfig",
    "CollectiveMismatchError",
    "CollectiveTrace",
    "CommAbort",
    "CommError",
    "CommStats",
    "Communicator",
    "CrashSpec",
    "DEFAULT_CONFIG",
    "DeadlockError",
    "DistTrace",
    "Fabric",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FileCheckpointStore",
    "LAND",
    "LOR",
    "MAX",
    "MIN",
    "NAIVE_CONFIG",
    "PROD",
    "RECOVERABLE_ERRORS",
    "RankKilledError",
    "ReduceOp",
    "RetryPolicy",
    "RmaAccessLog",
    "RmaRaceError",
    "SCENARIOS",
    "SUM",
    "Scenario",
    "Span",
    "SpmdJob",
    "SpmdResult",
    "TraceError",
    "Tracer",
    "TransientCommError",
    "Transport",
    "Window",
    "WindowError",
    "get_transport",
    "make_trace_clock",
    "pack_arrays",
    "pack_indices",
    "resolve_backend",
    "resolve_timeout",
    "run_mcm_dist_resilient",
    "run_mwm_dist_resilient",
    "run_scenario",
    "spmd",
    "tspan",
    "unpack_arrays",
    "unpack_indices",
]
