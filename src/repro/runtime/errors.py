"""Error types raised by the simulated message-passing runtime."""


class CommError(Exception):
    """Base class for all runtime communication errors."""


class DeadlockError(CommError):
    """A blocking operation timed out.

    In a correct bulk-synchronous program every ``recv`` is eventually matched
    by a ``send`` and every collective is entered by all ranks of the
    communicator.  The simulated runtime cannot prove a deadlock, but a
    blocking call that makes no progress for ``Fabric.timeout`` seconds is
    reported as one, with enough context (rank, operation, peer, tag) to
    debug the SPMD program.
    """


class CollectiveMismatchError(CommError):
    """Ranks of one communicator entered different collectives.

    Each collective call carries an operation name and a sequence number;
    if rank 3 calls ``allgatherv`` while rank 0 is in ``alltoallv`` on the
    same communicator, the mismatch is detected at message-match time instead
    of silently exchanging garbage.
    """


class WindowError(CommError):
    """Illegal one-sided access: out-of-range target, bad dtype, or access
    outside an epoch."""


class RmaRaceError(WindowError):
    """Two conflicting one-sided accesses with no synchronization between.

    Raised by the RMA race detector (``spmd(..., verify=True)``) when two
    ranks touch overlapping window elements inside the same access epoch,
    at least one is a write, and the pair is not atomic-atomic — the MPI
    conditions under which the result is undefined.  The message names both
    conflicting accesses (rank, operation, target, indices).
    """


class FaultPlanError(CommError, ValueError):
    """A fault-plan string failed to parse.

    Raised by :meth:`~repro.runtime.faults.FaultPlan.parse` (and the
    scenario compiler built on it) with the offending clause or token
    named, so a typo in ``--chaos-plan`` / ``--scenario`` surfaces as a
    precise message instead of a generic ``ValueError`` or a silently
    ignored clause.  Subclasses ``ValueError`` so pre-existing callers
    catching that still work.
    """


class TransientCommError(CommError):
    """A send or one-sided op failed transiently (injected lossy link).

    Raised by the fault injector inside ``Communicator``/``Window``
    operations; the runtime retries the attempt with capped exponential
    backoff (see :class:`~repro.runtime.faults.RetryPolicy`) and only
    re-raises once the retry budget is exhausted — at which point the
    failure is treated as permanent by the caller.
    """


class RankKilledError(CommError):
    """A rank was killed by the fault plan (simulated process death).

    Unlike :class:`TransientCommError` this is never retried: the rank's
    SPMD function unwinds, the executor aborts the fabric, and survivors
    exit with :class:`CommAbort`.  Recovery, if any, happens one level up
    in ``run_mcm_dist_resilient`` via checkpoint restart.
    """


class CommAbort(CommError):
    """Raised inside surviving ranks after another rank died.

    When any rank's SPMD function raises, the executor flips the fabric's
    abort flag; ranks blocked in communication calls observe the flag and
    unwind with this exception so the whole job terminates promptly instead
    of deadlocking on the dead peer.
    """
