"""Doubly compressed sparse columns — CombBLAS's hypersparse block format.

On a √p×√p grid each rank stores an (n₁/√p) × (n₂/√p) block holding only
~m/p nonzeros.  At scale, m/p ≪ n₂/√p: most columns of the block are empty,
and CSC's dense column-pointer array would cost O(n₂/√p) memory per rank —
asymptotically more than the data.  DCSC (Buluç & Gilbert) fixes this by
storing pointers only for the ``nzc`` non-empty columns:

* ``jc``  (len nzc)   — sorted ids of non-empty columns;
* ``cp``  (len nzc+1) — column pointers into ``ir``;
* ``ir``  (len nnz)   — row indices, sorted within each column.

Total memory O(nnz + nzc), independent of the block's column dimension.
The SpMV kernel intersects the incoming frontier with ``jc`` by binary
search (O(f log nzc)) and then reuses the same ragged-gather as CSC.

For the direction-optimized (bottom-up) traversal each block also exposes a
**row-major mirror** (:meth:`DCSC.csr_mirror`): dense row pointers over the
block's rows plus column ids sorted ascending within each row.  The mirror
and the block's row-degree vector are built lazily on first use and cached —
the pull kernel and the switch heuristic are O(local nnz) with zero
per-iteration rebuild.  The mirror costs O(block nrows + nnz) words, the
same order as the dense frontier bitmap the bottom-up step replicates.
"""

from __future__ import annotations

import numpy as np

from ..kernels import pull_candidates
from .coo import COO
from .csc import ragged_gather
from .semiring import SR_MIN_PARENT, Semiring, reduce_candidates
from .spvec import VertexFrontier


class DCSC:
    """Hypersparse pattern matrix block."""

    __slots__ = ("nrows", "ncols", "jc", "cp", "ir", "_csr", "_row_degrees")

    def __init__(self, nrows: int, ncols: int, jc: np.ndarray, cp: np.ndarray, ir: np.ndarray) -> None:
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.jc = np.ascontiguousarray(jc, dtype=np.int64)
        self.cp = np.ascontiguousarray(cp, dtype=np.int64)
        self.ir = np.ascontiguousarray(ir, dtype=np.int64)
        if self.cp.size != self.jc.size + 1:
            raise ValueError("cp must have len(jc)+1 entries")
        if self.jc.size:
            if np.any(self.jc[1:] <= self.jc[:-1]):
                raise ValueError("jc must be strictly increasing")
            if self.jc[0] < 0 or self.jc[-1] >= self.ncols:
                raise ValueError("jc column id out of range")
            if np.any(np.diff(self.cp) <= 0):
                raise ValueError("every jc column must be non-empty")
        if self.cp.size and (self.cp[0] != 0 or self.cp[-1] != self.ir.size):
            raise ValueError("cp must start at 0 and end at nnz")
        if self.ir.size and (self.ir.min() < 0 or self.ir.max() >= self.nrows):
            raise ValueError("row index out of range")
        self._csr: "tuple[np.ndarray, np.ndarray] | None" = None
        self._row_degrees: "np.ndarray | None" = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_coo(cls, coo: COO) -> "DCSC":
        if coo.nnz == 0:
            z = np.empty(0, np.int64)
            return cls(coo.nrows, coo.ncols, z, np.zeros(1, np.int64), z.copy())
        order = np.lexsort((coo.rows, coo.cols))
        rows = coo.rows[order]
        cols = coo.cols[order]
        jc, counts = np.unique(cols, return_counts=True)
        cp = np.zeros(jc.size + 1, dtype=np.int64)
        np.cumsum(counts, out=cp[1:])
        return cls(coo.nrows, coo.ncols, jc, cp, rows)

    def to_coo(self) -> COO:
        cols = np.repeat(self.jc, np.diff(self.cp))
        return COO(self.nrows, self.ncols, self.ir.copy(), cols, dedup=False)

    # -- properties ---------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.ir.size)

    @property
    def nzc(self) -> int:
        """Number of non-empty columns."""
        return int(self.jc.size)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def memory_words(self) -> int:
        """Storage in 8-byte words — O(nnz + nzc), never O(ncols)."""
        return self.jc.size + self.cp.size + self.ir.size

    def col_degrees_compressed(self) -> tuple[np.ndarray, np.ndarray]:
        """(non-empty column ids, their degrees)."""
        return self.jc, np.diff(self.cp)

    def row_degrees(self) -> np.ndarray:
        """Degree of every block row (cached; treat as read-only)."""
        if self._row_degrees is None:
            self._row_degrees = np.bincount(self.ir, minlength=self.nrows).astype(np.int64)
        return self._row_degrees

    def csr_mirror(self) -> tuple[np.ndarray, np.ndarray]:
        """Row-major mirror ``(row_ptr, col_idx)`` of the block (cached).

        ``row_ptr`` has ``nrows + 1`` entries (dense over the block's rows —
        the bottom-up pull scans arbitrary unvisited-row subsets, so sparse
        row compression would only add a search per lookup); ``col_idx``
        holds LOCAL column ids, ascending within each row.  Built lazily in
        O(nnz) from the cached row degrees, then reused by every bottom-up
        SpMV — no per-iteration rebuild.
        """
        if self._csr is None:
            row_ptr = np.zeros(self.nrows + 1, dtype=np.int64)
            np.cumsum(self.row_degrees(), out=row_ptr[1:])
            cols = np.repeat(self.jc, np.diff(self.cp))
            order = np.lexsort((cols, self.ir))
            self._csr = (row_ptr, cols[order])
        return self._csr

    def explode_rows(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pull traversal: all (row, column) pairs adjacent to the given
        LOCAL rows, via the cached CSR mirror.  Columns ascend within each
        row, so downstream stable reductions tie-break by column exactly
        like the column-major explode does."""
        rows = np.asarray(rows, dtype=np.int64)
        row_ptr, col_idx = self.csr_mirror()
        cols, counts = ragged_gather(row_ptr, col_idx, rows)
        return np.repeat(rows, counts), cols

    def pull_rows(
        self, rows: np.ndarray, root_of: np.ndarray, null: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused :meth:`explode_rows` + frontier filter for the bottom-up
        pull: walk the given LOCAL rows through the cached CSR mirror and
        keep only edges whose column is on the frontier (``root_of[col] !=
        null``).  Returns ``(rows, cols, roots)`` filtered, rows in input
        order and columns ascending within each row — same order the
        two-step explode-then-mask produces, so downstream stable
        reductions are bit-identical.  One of the three compiled loops of
        :mod:`repro.kernels`: the fused form never materializes the
        unfiltered candidate arrays."""
        rows = np.asarray(rows, dtype=np.int64)
        row_ptr, col_idx = self.csr_mirror()
        return pull_candidates(row_ptr, col_idx, rows, root_of, null)

    # -- kernels ---------------------------------------------------------------

    def _locate(self, cols: np.ndarray) -> np.ndarray:
        """Positions of ``cols`` in ``jc``; -1 where the column is empty."""
        pos = np.searchsorted(self.jc, cols)
        pos_clamped = np.minimum(pos, max(0, self.jc.size - 1))
        hit = (pos < self.jc.size) & (self.jc[pos_clamped] == cols) if self.jc.size else np.zeros(cols.size, bool)
        out = np.where(hit, pos, -1)
        return out

    def explode_cols(
        self, cols: np.ndarray, parents: np.ndarray, roots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw-array variant of :meth:`explode_frontier` for the distributed
        layer: ``cols`` are LOCAL column ids (any order), ``parents``/``roots``
        parallel value arrays carried to every emitted candidate row."""
        if cols.size == 0 or self.nzc == 0:
            e = np.empty(0, np.int64)
            return e, e.copy(), e.copy()
        loc = self._locate(np.asarray(cols, np.int64))
        hit = loc >= 0
        if not hit.any():
            e = np.empty(0, np.int64)
            return e, e.copy(), e.copy()
        rows, counts = ragged_gather(self.cp, self.ir, loc[hit])
        return rows, np.repeat(np.asarray(parents, np.int64)[hit], counts), np.repeat(
            np.asarray(roots, np.int64)[hit], counts
        )

    def explode_frontier(self, fc: VertexFrontier) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Candidate (row, parent, root) triples for the frontier columns
        present in this block.  Parents are the frontier column ids (global
        select2nd semantics), roots inherited."""
        if fc.nnz == 0 or self.nzc == 0:
            e = np.empty(0, np.int64)
            return e, e.copy(), e.copy()
        loc = self._locate(fc.idx)
        hit = loc >= 0
        if not hit.any():
            e = np.empty(0, np.int64)
            return e, e.copy(), e.copy()
        loc_hit = loc[hit]
        rows, counts = ragged_gather(self.cp, self.ir, loc_hit)
        parents = np.repeat(fc.idx[hit], counts)
        roots = np.repeat(fc.root[hit], counts)
        return rows, parents, roots

    def spmv_frontier(
        self,
        fc: VertexFrontier,
        semiring: Semiring = SR_MIN_PARENT,
        rng: np.random.Generator | None = None,
    ) -> VertexFrontier:
        """Local semiring SpMV: same contract as :meth:`CSC.spmv_frontier`,
        restricted to this block's columns/rows."""
        rows, parents, roots = self.explode_frontier(fc)
        ridx, rpar, rroot = reduce_candidates(rows, parents, roots, semiring, rng)
        return VertexFrontier(self.nrows, ridx, rpar, rroot)

    def spmv_count(self, fc: VertexFrontier) -> int:
        """Edge operations a local SpMV with this frontier performs."""
        if fc.nnz == 0 or self.nzc == 0:
            return 0
        loc = self._locate(fc.idx)
        loc = loc[loc >= 0]
        return int((self.cp[loc + 1] - self.cp[loc]).sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DCSC({self.nrows}x{self.ncols}, nnz={self.nnz}, nzc={self.nzc})"
