"""Compressed sparse column pattern matrices and the semiring SpMV kernel.

``CSC`` stores only the pattern (the paper's matrices are binary): column
pointers ``indptr`` (length ncols+1) and row indices ``indices`` sorted
within each column.  A cached transpose provides CSR-style row access where
algorithms need it (e.g. degree-based initializers).

The hot kernel is :meth:`CSC.spmv_frontier` — one step of alternating BFS:
``f_r = A · f_c`` over a ``(select2nd, ⊕)`` semiring.  It is work-efficient
(cost proportional to the nonzeros in the frontier's columns, not the whole
matrix) and fully vectorized:

1. *explode*: gather the adjacency of every frontier column into flat
   candidate arrays with a ragged-gather (no Python loop);
2. *reduce*: one winner per destination row via
   :func:`repro.sparse.semiring.reduce_candidates`.
"""

from __future__ import annotations

import numpy as np

from ..kernels import ragged_gather_flat
from .coo import COO
from .semiring import SR_MIN_PARENT, Semiring, reduce_candidates
from .spvec import VertexFrontier


def ragged_gather(indptr: np.ndarray, indices: np.ndarray, cols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``indices[indptr[c]:indptr[c+1]]`` for each c in ``cols``.

    Returns ``(gathered_indices, counts)`` where ``counts[k]`` is the length
    contributed by ``cols[k]``.  This is the vectorized replacement for the
    per-column Python loop — the single most important optimization in the
    library (every SpMV, every degree filter goes through it), and one of
    the three loops :mod:`repro.kernels` compiles when numba is available.
    """
    return ragged_gather_flat(indptr, indices, np.asarray(cols, dtype=np.int64))


class CSC:
    """Binary pattern matrix in compressed sparse column form."""

    __slots__ = ("nrows", "ncols", "indptr", "indices", "_transpose", "_row_degrees")

    def __init__(self, nrows: int, ncols: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if self.indptr.size != self.ncols + 1:
            raise ValueError(f"indptr length {self.indptr.size} != ncols+1 ({self.ncols + 1})")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(self.indptr[1:] < self.indptr[:-1]):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.nrows):
            raise ValueError("row index out of range")
        self._transpose: "CSC | None" = None
        self._row_degrees: "np.ndarray | None" = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_coo(cls, coo: COO) -> "CSC":
        order = np.lexsort((coo.rows, coo.cols))
        rows = coo.rows[order]
        cols = coo.cols[order]
        indptr = np.zeros(coo.ncols + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=coo.ncols), out=indptr[1:])
        return cls(coo.nrows, coo.ncols, indptr, rows)

    def to_coo(self) -> COO:
        cols = np.repeat(np.arange(self.ncols, dtype=np.int64), np.diff(self.indptr))
        return COO(self.nrows, self.ncols, self.indices.copy(), cols, dedup=False)

    # -- properties ---------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def col_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def row_degrees(self) -> np.ndarray:
        """Degree of every row (cached; the direction-optimization switch
        reads it each iteration — treat the result as read-only)."""
        if self._row_degrees is None:
            self._row_degrees = np.bincount(self.indices, minlength=self.nrows).astype(np.int64)
        return self._row_degrees

    def column(self, j: int) -> np.ndarray:
        """Row indices of column ``j`` (a view, do not mutate)."""
        return self.indices[self.indptr[j]:self.indptr[j + 1]]

    def transpose(self) -> "CSC":
        """CSC of Aᵀ (equivalently, CSR row access to A).  Cached."""
        if self._transpose is None:
            self._transpose = CSC.from_coo(self.to_coo().transpose())
            self._transpose._transpose = self
        return self._transpose

    # -- kernels ---------------------------------------------------------------

    def explode_frontier(self, fc: VertexFrontier) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The expand half of SpMV: candidate triples before reduction.

        Returns ``(cand_rows, cand_parents, cand_roots, counts)``; the new
        parent of a candidate row is the frontier *column index* itself (the
        select2nd semantics — see semiring module docstring), and the root is
        inherited from the column.  ``counts[k]`` is column k's contribution,
        which the distributed layer uses to split candidates by owner block.
        """
        cand_rows, counts = ragged_gather(self.indptr, self.indices, fc.idx)
        cand_parents = np.repeat(fc.idx, counts)
        cand_roots = np.repeat(fc.root, counts)
        return cand_rows, cand_parents, cand_roots, counts

    def spmv_frontier(
        self,
        fc: VertexFrontier,
        semiring: Semiring = SR_MIN_PARENT,
        rng: np.random.Generator | None = None,
    ) -> VertexFrontier:
        """One BFS step: ``f_r = A · f_c`` over the given semiring.

        The result's ``idx`` are the distinct rows adjacent to frontier
        columns; each carries the winning ``(parent, root)``.
        """
        cand_rows, cand_parents, cand_roots, _ = self.explode_frontier(fc)
        ridx, rpar, rroot = reduce_candidates(cand_rows, cand_parents, cand_roots, semiring, rng)
        return VertexFrontier(self.nrows, ridx, rpar, rroot)

    def spmv_count(self, fc: VertexFrontier) -> int:
        """Edge-operations one SpMV with this frontier performs (the model's
        F term): the nonzero count of the frontier's columns."""
        return int((self.indptr[fc.idx + 1] - self.indptr[fc.idx]).sum())

    def neighbor_of_each(self, cols: np.ndarray, pick: str = "first") -> np.ndarray:
        """For each column in ``cols`` (all with degree >= 1) return one
        neighboring row: its first (min) or last (max) stored neighbor.
        Used by greedy initializers."""
        if pick == "first":
            return self.indices[self.indptr[cols]]
        if pick == "last":
            return self.indices[self.indptr[cols + 1] - 1]
        raise ValueError(f"pick must be 'first' or 'last', got {pick!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSC({self.nrows}x{self.ncols}, nnz={self.nnz})"
