"""Sparse vectors and the (parent, root) VERTEX frontier.

Two vector kinds appear in the paper's formulation (Section III-B):

* plain sparse vectors of integers — ``SparseVec`` — used by AUGMENT and the
  maximal-matching initializers;
* sparse vectors of VERTEX ``(parent, root)`` pairs — ``VertexFrontier`` —
  the BFS frontiers ``f_c`` / ``f_r``.  ``PARENT(x)`` and ``ROOT(x)`` of the
  paper are the ``.parent`` / ``.root`` attribute arrays here.

Dense vectors (``mate_r``, ``mate_c``, ``π_r``, ``path_c``) are ordinary
NumPy int64 arrays where ``-1`` denotes a missing value, exactly as in
Algorithm 2's description.

Invariant: ``idx`` is strictly increasing.  All primitive implementations
preserve it, which keeps merges and searches O(nnz) or O(nnz log nnz).
"""

from __future__ import annotations

import numpy as np

NULL = -1  # the paper's "-1 denotes unmatched/unvisited/missing"


def _as_index_array(idx: np.ndarray) -> np.ndarray:
    idx = np.ascontiguousarray(idx, dtype=np.int64)
    if idx.ndim != 1:
        raise ValueError("index array must be 1-D")
    if idx.size > 1 and np.any(idx[1:] <= idx[:-1]):
        raise ValueError("sparse vector indices must be strictly increasing")
    if idx.size and idx[0] < 0:
        raise ValueError("sparse vector indices must be non-negative")
    return idx


class SparseVec:
    """A length-``n`` sparse vector of int64 values.

    Unlike the dense representation, only the ``nnz`` stored entries exist;
    a stored value may legitimately be any integer (including -1 after a SET
    with missing values — callers filter as needed).
    """

    __slots__ = ("n", "idx", "val")

    def __init__(self, n: int, idx: np.ndarray, val: np.ndarray) -> None:
        self.n = int(n)
        self.idx = _as_index_array(idx)
        self.val = np.ascontiguousarray(val, dtype=np.int64)
        if self.val.shape != self.idx.shape:
            raise ValueError("idx and val must have equal length")
        if self.idx.size and self.idx[-1] >= self.n:
            raise ValueError(f"index {self.idx[-1]} out of range for length {self.n}")

    @classmethod
    def empty(cls, n: int) -> "SparseVec":
        return cls(n, np.empty(0, np.int64), np.empty(0, np.int64))

    @classmethod
    def from_dense(cls, dense: np.ndarray, missing: int = NULL) -> "SparseVec":
        """Compress a dense vector, dropping entries equal to ``missing``."""
        dense = np.asarray(dense, dtype=np.int64)
        idx = np.flatnonzero(dense != missing)
        return cls(dense.size, idx, dense[idx])

    @property
    def nnz(self) -> int:
        return int(self.idx.size)

    def is_empty(self) -> bool:
        return self.idx.size == 0

    def to_dense(self, missing: int = NULL) -> np.ndarray:
        out = np.full(self.n, missing, dtype=np.int64)
        out[self.idx] = self.val
        return out

    def copy(self) -> "SparseVec":
        return SparseVec(self.n, self.idx.copy(), self.val.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVec):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.idx, other.idx)
            and np.array_equal(self.val, other.val)
        )

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SparseVec(n={self.n}, nnz={self.nnz})"


class VertexFrontier:
    """A sparse vector of VERTEX ``(parent, root)`` pairs (Section III-B).

    ``idx[k]`` is a vertex currently on the frontier, ``parent[k]`` its BFS
    parent on the other side of the bipartition, and ``root[k]`` the
    unmatched column vertex whose alternating tree it belongs to.  In the
    first iteration of a phase parent == root == idx (the paper: "parent and
    root of a vertex are set to itself").
    """

    __slots__ = ("n", "idx", "parent", "root")

    def __init__(self, n: int, idx: np.ndarray, parent: np.ndarray, root: np.ndarray) -> None:
        self.n = int(n)
        self.idx = _as_index_array(idx)
        self.parent = np.ascontiguousarray(parent, dtype=np.int64)
        self.root = np.ascontiguousarray(root, dtype=np.int64)
        if self.parent.shape != self.idx.shape or self.root.shape != self.idx.shape:
            raise ValueError("idx/parent/root must have equal length")
        if self.idx.size and self.idx[-1] >= self.n:
            raise ValueError(f"index {self.idx[-1]} out of range for length {self.n}")

    @classmethod
    def empty(cls, n: int) -> "VertexFrontier":
        e = np.empty(0, np.int64)
        return cls(n, e, e.copy(), e.copy())

    @classmethod
    def roots_of_self(cls, n: int, idx: np.ndarray) -> "VertexFrontier":
        """The initial column frontier: every entry is its own parent and
        root (Algorithm 2, line 8)."""
        idx = _as_index_array(idx)
        return cls(n, idx, idx.copy(), idx.copy())

    @property
    def nnz(self) -> int:
        return int(self.idx.size)

    def is_empty(self) -> bool:
        return self.idx.size == 0

    def keep(self, mask: np.ndarray) -> "VertexFrontier":
        """Subset by boolean mask over stored entries (order preserved)."""
        return VertexFrontier(self.n, self.idx[mask], self.parent[mask], self.root[mask])

    def parents_vec(self) -> SparseVec:
        """PARENT(x) as a sparse vector over the same indices."""
        return SparseVec(self.n, self.idx, self.parent)

    def roots_vec(self) -> SparseVec:
        """ROOT(x) as a sparse vector over the same indices."""
        return SparseVec(self.n, self.idx, self.root)

    def copy(self) -> "VertexFrontier":
        return VertexFrontier(self.n, self.idx.copy(), self.parent.copy(), self.root.copy())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VertexFrontier(n={self.n}, nnz={self.nnz})"
