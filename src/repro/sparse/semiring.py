"""BFS semirings: ``(select2nd, ⊕)`` with pluggable "addition".

Section III-B: the SpMV that advances a BFS frontier runs over a semiring
whose *multiply* is ``select2nd`` — ``select2nd(a_ij, x_j)`` ignores the
binary matrix element and passes the frontier value ``x_j = (parent, root)``
through — and whose *add* picks ONE candidate among the several frontier
columns adjacent to the same row:

* ``minParent`` — keep the candidate with the smallest parent index
  (deterministic; the paper's running example);
* ``maxParent`` — largest parent (deterministic alternative);
* ``randParent`` — uniformly random candidate;
* ``minRoot`` / ``randRoot`` — decide by root instead of parent;
  randRoot "is useful to randomly distribute vertices among alternating
  trees, ensuring better balance of tree sizes".

:func:`reduce_candidates` is the shared reduction kernel: given the exploded
candidate triples ``(row, parent, root)`` it returns one winner per distinct
row, rows sorted ascending.  Deterministic min/max modes take an O(c) keyed
scatter fast path (``np.minimum.at`` over a dense per-row best array) when
the candidate rows span a compact index range — which they always do on the
hot paths (local pre-reduction inside one DCSC block, destination reduction
inside one vector sub-chunk) — and fall back to the O(c log c) lexsort
otherwise.  ``rand`` modes always use the shuffled stable sort.  Both paths
produce bit-identical winners (the scatter encodes (key, arrival position)
so ties resolve to the first candidate, exactly like the stable lexsort).

The payload arrays keep their own dtypes: BFS semirings carry int64
(parent, root) pairs, while the auction engine's bid resolution carries
(float64 bid, int64 bidder) pairs through the SAME kernel.  The packed
keyed-scatter fast path requires an integer comparison key (the (key,
position) encode needs exact integer arithmetic), so float-keyed
reductions — e.g. ``by="parent"`` over profits — always take the lexsort
path; integer-keyed ones keep the O(c) scatter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import keyed_min_scatter


@dataclass(frozen=True)
class Semiring:
    """A named BFS semiring: select2nd multiply + a candidate tie-break.

    ``by`` chooses the field compared ("parent" or "root"); ``mode`` is
    "min", "max" or "rand".
    """

    name: str
    by: str
    mode: str

    def __post_init__(self) -> None:
        if self.by not in ("parent", "root"):
            raise ValueError(f"semiring 'by' must be parent or root, got {self.by}")
        if self.mode not in ("min", "max", "rand"):
            raise ValueError(f"semiring 'mode' must be min/max/rand, got {self.mode}")

    @property
    def deterministic(self) -> bool:
        return self.mode != "rand"


SR_MIN_PARENT = Semiring("select2nd.minParent", by="parent", mode="min")
SR_MAX_PARENT = Semiring("select2nd.maxParent", by="parent", mode="max")
SR_RAND_PARENT = Semiring("select2nd.randParent", by="parent", mode="rand")
SR_MIN_ROOT = Semiring("select2nd.minRoot", by="root", mode="min")
SR_RAND_ROOT = Semiring("select2nd.randRoot", by="root", mode="rand")

_I64_MAX = np.iinfo(np.int64).max

#: Dense-scatter scratch may be this many times larger than the candidate
#: count before the fast path stops paying for its allocation.
_SCATTER_SLACK = 4


def _reduce_scatter(
    rows: np.ndarray,
    parents: np.ndarray,
    roots: np.ndarray,
    k: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray] | None":
    """O(c) keyed min-scatter; ``None`` when the inputs don't fit the path.

    Each candidate's key and arrival position are packed into one int64
    (``k * c + position``) so a single ``np.minimum.at`` finds, per row, the
    minimal key with first-arrival tie-breaking — the exact winner the
    stable lexsort picks.  Requires the row ids to span a range not much
    wider than the candidate count and the packed keys to fit in int64.
    """
    c = rows.size
    lo = int(rows.min())
    width = int(rows.max()) - lo + 1
    if width > _SCATTER_SLACK * c + 1024:
        return None  # rows too spread out: dense scratch would dominate
    kmax = int(np.abs(k).max()) if c else 0
    if kmax >= (_I64_MAX - c) // c:
        return None  # packed (key, position) would overflow int64
    best = keyed_min_scatter(rows, k, lo, width)
    hit = best != _I64_MAX
    pos = best[hit] % np.int64(c)  # floor-mod recovers the position exactly
    ridx = np.flatnonzero(hit).astype(np.int64, copy=False) + lo
    return ridx, parents[pos], roots[pos]


def reduce_candidates(
    rows: np.ndarray,
    parents: np.ndarray,
    roots: np.ndarray,
    semiring: Semiring = SR_MIN_PARENT,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reduce candidate (row, parent, root) triples to one winner per row.

    Returns ``(row_idx, parent, root)`` with ``row_idx`` strictly increasing.
    For ``mode="rand"`` an ``rng`` must be supplied; the reduction is then a
    uniform choice among each row's candidates.
    """
    rows = np.asarray(rows, dtype=np.int64)
    parents = np.asarray(parents)
    roots = np.asarray(roots)
    if rows.size == 0:
        e = np.empty(0, np.int64)
        return e, np.empty(0, parents.dtype), np.empty(0, roots.dtype)

    key = parents if semiring.by == "parent" else roots
    if semiring.mode == "rand":
        if rng is None:
            raise ValueError(f"semiring {semiring.name} needs an rng")
        # Shuffle candidates, then stable-sort by row: the first candidate of
        # each row group is a uniform choice among that row's candidates.
        perm = rng.permutation(rows.size)
        rows, parents, roots = rows[perm], parents[perm], roots[perm]
        order = np.argsort(rows, kind="stable")
    else:
        k = -key if semiring.mode == "max" else key
        if np.issubdtype(k.dtype, np.integer):
            # the packed (key, position) encode is exact only for integers
            fast = _reduce_scatter(
                rows, parents, roots, np.asarray(k, dtype=np.int64)
            )
            if fast is not None:
                return fast
        order = np.lexsort((k, rows))
    rows, parents, roots = rows[order], parents[order], roots[order]
    first = np.empty(rows.size, dtype=bool)
    first[0] = True
    np.not_equal(rows[1:], rows[:-1], out=first[1:])
    return rows[first], parents[first], roots[first]
