"""BFS semirings: ``(select2nd, ⊕)`` with pluggable "addition".

Section III-B: the SpMV that advances a BFS frontier runs over a semiring
whose *multiply* is ``select2nd`` — ``select2nd(a_ij, x_j)`` ignores the
binary matrix element and passes the frontier value ``x_j = (parent, root)``
through — and whose *add* picks ONE candidate among the several frontier
columns adjacent to the same row:

* ``minParent`` — keep the candidate with the smallest parent index
  (deterministic; the paper's running example);
* ``maxParent`` — largest parent (deterministic alternative);
* ``randParent`` — uniformly random candidate;
* ``minRoot`` / ``randRoot`` — decide by root instead of parent;
  randRoot "is useful to randomly distribute vertices among alternating
  trees, ensuring better balance of tree sizes".

:func:`reduce_candidates` is the shared reduction kernel: given the exploded
candidate triples ``(row, parent, root)`` it returns one winner per distinct
row, rows sorted ascending.  Vectorized via lexsort — O(c log c) for c
candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Semiring:
    """A named BFS semiring: select2nd multiply + a candidate tie-break.

    ``by`` chooses the field compared ("parent" or "root"); ``mode`` is
    "min", "max" or "rand".
    """

    name: str
    by: str
    mode: str

    def __post_init__(self) -> None:
        if self.by not in ("parent", "root"):
            raise ValueError(f"semiring 'by' must be parent or root, got {self.by}")
        if self.mode not in ("min", "max", "rand"):
            raise ValueError(f"semiring 'mode' must be min/max/rand, got {self.mode}")

    @property
    def deterministic(self) -> bool:
        return self.mode != "rand"


SR_MIN_PARENT = Semiring("select2nd.minParent", by="parent", mode="min")
SR_MAX_PARENT = Semiring("select2nd.maxParent", by="parent", mode="max")
SR_RAND_PARENT = Semiring("select2nd.randParent", by="parent", mode="rand")
SR_MIN_ROOT = Semiring("select2nd.minRoot", by="root", mode="min")
SR_RAND_ROOT = Semiring("select2nd.randRoot", by="root", mode="rand")


def reduce_candidates(
    rows: np.ndarray,
    parents: np.ndarray,
    roots: np.ndarray,
    semiring: Semiring = SR_MIN_PARENT,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reduce candidate (row, parent, root) triples to one winner per row.

    Returns ``(row_idx, parent, root)`` with ``row_idx`` strictly increasing.
    For ``mode="rand"`` an ``rng`` must be supplied; the reduction is then a
    uniform choice among each row's candidates.
    """
    rows = np.asarray(rows, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    roots = np.asarray(roots, dtype=np.int64)
    if rows.size == 0:
        e = np.empty(0, np.int64)
        return e, e.copy(), e.copy()

    key = parents if semiring.by == "parent" else roots
    if semiring.mode == "rand":
        if rng is None:
            raise ValueError(f"semiring {semiring.name} needs an rng")
        # Shuffle candidates, then stable-sort by row: the first candidate of
        # each row group is a uniform choice among that row's candidates.
        perm = rng.permutation(rows.size)
        rows, parents, roots = rows[perm], parents[perm], roots[perm]
        order = np.argsort(rows, kind="stable")
    else:
        k = -key if semiring.mode == "max" else key
        order = np.lexsort((k, rows))
    rows, parents, roots = rows[order], parents[order], roots[order]
    first = np.empty(rows.size, dtype=bool)
    first[0] = True
    np.not_equal(rows[1:], rows[:-1], out=first[1:])
    return rows[first], parents[first], roots[first]
