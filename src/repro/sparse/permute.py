"""Vertex permutations: load balancing and matching-based reordering.

Two uses in the paper's pipeline:

* *load balancing* (Section IV-A): "we randomly permute the input matrix A
  before running the matching algorithms" so nonzeros spread evenly over the
  2D grid — :func:`random_permutation` / :func:`randomly_permuted`;
* *the application* (Section I): matchings permute a sparse linear system to
  a zero-free diagonal before factorization — :func:`matching_to_permutation`
  builds that row permutation from a perfect/maximum matching.
"""

from __future__ import annotations

import numpy as np

from .coo import COO
from .spvec import NULL


def random_permutation(n: int, rng: np.random.Generator) -> np.ndarray:
    """A uniformly random permutation as a relabeling array: new id of old
    vertex i is ``perm[i]``."""
    return rng.permutation(n).astype(np.int64)


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """``inv[perm[i]] = i``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv


def randomly_permuted(coo: COO, rng: np.random.Generator) -> tuple[COO, np.ndarray, np.ndarray]:
    """Randomly relabel both vertex sides for 2D load balance.

    Returns ``(permuted matrix, row_perm, col_perm)`` so callers can map a
    matching computed on the permuted matrix back to original labels with
    :func:`unpermute_matching`.
    """
    rp = random_permutation(coo.nrows, rng)
    cp = random_permutation(coo.ncols, rng)
    return coo.permuted(rp, cp), rp, cp


def unpermute_matching(
    mate_r: np.ndarray,
    mate_c: np.ndarray,
    row_perm: np.ndarray,
    col_perm: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Map mate vectors computed on a permuted matrix back to original ids.

    If new row ``row_perm[i]`` is matched to new column j, then original row
    i is matched to original column ``inv_col[j]``.
    """
    inv_c = inverse_permutation(col_perm)
    inv_r = inverse_permutation(row_perm)
    out_r = np.full(mate_r.size, NULL, dtype=np.int64)
    out_c = np.full(mate_c.size, NULL, dtype=np.int64)
    matched_new_rows = np.flatnonzero(mate_r != NULL)
    old_rows = inv_r[matched_new_rows]
    old_cols = inv_c[mate_r[matched_new_rows]]
    out_r[old_rows] = old_cols
    out_c[old_cols] = old_rows
    return out_r, out_c


def matching_to_permutation(mate_c: np.ndarray, nrows: int) -> np.ndarray:
    """Row permutation placing matched entries on the diagonal.

    For a square matrix with a perfect matching (every column matched),
    returns ``rowperm`` with ``rowperm[mate_c[j]] = j``: permuting the rows
    by it puts one matched nonzero in every diagonal position — the
    zero-free-diagonal preprocessing sparse direct solvers need.  Unmatched
    rows (structurally deficient matrices) fill the remaining positions in
    index order.
    """
    mate_c = np.asarray(mate_c, dtype=np.int64)
    rowperm = np.full(nrows, NULL, dtype=np.int64)
    matched_cols = np.flatnonzero(mate_c != NULL)
    rows = mate_c[matched_cols]
    if rows.size and (rows.min() < 0 or rows.max() >= nrows):
        raise ValueError("mate_c refers to rows outside the matrix")
    rowperm[rows] = matched_cols
    # Unmatched rows take the remaining target positions in increasing order.
    unmatched_rows = np.flatnonzero(rowperm == NULL)
    taken = np.zeros(max(nrows, mate_c.size), dtype=bool)
    taken[matched_cols] = True
    free = np.flatnonzero(~taken)[: unmatched_rows.size]
    rowperm[unmatched_rows] = free
    return rowperm
