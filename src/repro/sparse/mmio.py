"""Self-contained MatrixMarket coordinate I/O.

Supports the subset needed to exchange bipartite graphs with the SuiteSparse
ecosystem the paper draws its inputs from: ``matrix coordinate
(pattern|integer|real) general`` headers, 1-based indices, ``%`` comments.
Values of non-pattern files are ignored on read (the matching problem only
sees the pattern, as in the paper); symmetric files are expanded.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .coo import COO

_HEADER = "%%MatrixMarket matrix coordinate pattern general\n"


def write_mm(coo: COO, path: "str | Path") -> None:
    """Write a pattern matrix in MatrixMarket coordinate format."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(_HEADER)
        fh.write(f"% written by repro (bipartite pattern, {coo.nnz} edges)\n")
        fh.write(f"{coo.nrows} {coo.ncols} {coo.nnz}\n")
        body = np.column_stack((coo.rows + 1, coo.cols + 1))
        np.savetxt(fh, body, fmt="%d %d")


def read_mm(path: "str | Path") -> COO:
    """Read a MatrixMarket coordinate file into a pattern :class:`COO`."""
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: not a MatrixMarket file")
        parts = header.strip().lower().split()
        if len(parts) < 5 or parts[1] != "matrix" or parts[2] != "coordinate":
            raise ValueError(f"{path}: unsupported MatrixMarket header {header!r}")
        field, symmetry = parts[3], parts[4]
        if field not in ("pattern", "integer", "real"):
            raise ValueError(f"{path}: unsupported field type {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%") or not line.strip():
            line = fh.readline()
        nrows, ncols, nnz = (int(tok) for tok in line.split()[:3])
        data = np.loadtxt(io.StringIO(fh.read()), dtype=np.float64, ndmin=2) if nnz else np.empty((0, 2))
        if data.shape[0] != nnz:
            raise ValueError(f"{path}: expected {nnz} entries, found {data.shape[0]}")
        rows = data[:, 0].astype(np.int64) - 1
        cols = data[:, 1].astype(np.int64) - 1
    if symmetry == "symmetric":
        # Mirror the strictly-triangular entries across the diagonal.
        off = rows != cols
        rows, cols = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
        )
    return COO(nrows, ncols, rows, cols)
