"""Local sparse-matrix and sparse-vector kernels (the CombBLAS primitives).

Everything here is rank-local, NumPy-vectorized, and written from scratch:

* :class:`~repro.sparse.coo.COO` — edge-list builder/dedup/permutation stage;
* :class:`~repro.sparse.csc.CSC` — compressed sparse column pattern matrix
  with the semiring SpMV kernel at the heart of the paper's formulation;
* :class:`~repro.sparse.dcsc.DCSC` — doubly compressed sparse columns, the
  hypersparse format CombBLAS uses for the per-rank blocks of a 2D-partitioned
  matrix (a block holds ~m/p nonzeros over n/√p columns, so most columns are
  empty and CSC's O(n/√p) column pointers would dwarf the data);
* :class:`~repro.sparse.spvec.SparseVec` / :class:`~repro.sparse.spvec.VertexFrontier`
  — sparse vectors, the latter carrying the paper's ``(parent, root)``
  VERTEX pairs;
* :mod:`~repro.sparse.semiring` — the ``(select2nd, minParent)`` family of
  semirings from Section III-B;
* :mod:`~repro.sparse.primitives` — Table I's IND / SELECT / SET / INVERT /
  PRUNE with exactly the paper's semantics;
* :mod:`~repro.sparse.permute` — random load-balancing permutations
  (Section IV-A) and matching-to-permutation utilities;
* :mod:`~repro.sparse.mmio` — self-contained MatrixMarket I/O.
"""

from .coo import COO
from .csc import CSC
from .dcsc import DCSC
from .spvec import SparseVec, VertexFrontier
from .semiring import Semiring, SR_MIN_PARENT, SR_MAX_PARENT, SR_RAND_PARENT, SR_MIN_ROOT, SR_RAND_ROOT
from . import primitives, permute, mmio

__all__ = [
    "COO",
    "CSC",
    "DCSC",
    "SR_MAX_PARENT",
    "SR_MIN_PARENT",
    "SR_MIN_ROOT",
    "SR_RAND_PARENT",
    "SR_RAND_ROOT",
    "Semiring",
    "SparseVec",
    "VertexFrontier",
    "mmio",
    "permute",
    "primitives",
]
