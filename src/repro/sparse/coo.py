"""Coordinate-format edge lists: the construction/permutation stage.

A bipartite graph ``G = (R, C, E)`` is an ``n1 x n2`` binary pattern matrix
(Section II of the paper): rows are R-vertices, columns are C-vertices, and a
nonzero ``(i, j)`` is the edge between them.  :class:`COO` is the mutable
builder used by generators and I/O; algorithms run on :class:`~repro.sparse.csc.CSC`
or :class:`~repro.sparse.dcsc.DCSC` built from it.
"""

from __future__ import annotations

import numpy as np


class COO:
    """A deduplicated, binary (pattern-only) coordinate matrix."""

    __slots__ = ("nrows", "ncols", "rows", "cols")

    def __init__(self, nrows: int, ncols: int, rows: np.ndarray, cols: np.ndarray, *, dedup: bool = True) -> None:
        if nrows < 0 or ncols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("rows/cols must be equal-length 1-D arrays")
        if rows.size:
            if rows.min() < 0 or rows.max() >= nrows:
                raise ValueError(f"row index out of range [0, {nrows})")
            if cols.min() < 0 or cols.max() >= ncols:
                raise ValueError(f"column index out of range [0, {ncols})")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        if dedup and rows.size:
            # Sort by (col, row) and drop duplicate edges.
            order = np.lexsort((rows, cols))
            rows, cols = rows[order], cols[order]
            keep = np.empty(rows.size, dtype=bool)
            keep[0] = True
            np.not_equal(rows[1:], rows[:-1], out=keep[1:])
            keep[1:] |= cols[1:] != cols[:-1]
            rows, cols = rows[keep], cols[keep]
        self.rows = rows
        self.cols = cols

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_edges(cls, nrows: int, ncols: int, edges: "np.ndarray | list[tuple[int, int]]") -> "COO":
        """Build from an iterable/array of (row, col) pairs."""
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            return cls(nrows, ncols, np.empty(0, np.int64), np.empty(0, np.int64))
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array of (row, col) pairs")
        return cls(nrows, ncols, arr[:, 0], arr[:, 1])

    @classmethod
    def empty(cls, nrows: int, ncols: int) -> "COO":
        return cls(nrows, ncols, np.empty(0, np.int64), np.empty(0, np.int64))

    @classmethod
    def identity(cls, n: int) -> "COO":
        idx = np.arange(n, dtype=np.int64)
        return cls(n, n, idx, idx, dedup=False)

    # -- properties ------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def row_degrees(self) -> np.ndarray:
        return np.bincount(self.rows, minlength=self.nrows).astype(np.int64)

    def col_degrees(self) -> np.ndarray:
        return np.bincount(self.cols, minlength=self.ncols).astype(np.int64)

    # -- transformations --------------------------------------------------------

    def transpose(self) -> "COO":
        return COO(self.ncols, self.nrows, self.cols.copy(), self.rows.copy(), dedup=False)

    def permuted(self, row_perm: np.ndarray | None = None, col_perm: np.ndarray | None = None) -> "COO":
        """Relabel vertices: new row index of old row i is ``row_perm[i]``.

        The paper randomly permutes inputs "to balance load across
        processors" (Section IV-A); see :mod:`repro.sparse.permute`.
        """
        rows = self.rows if row_perm is None else np.asarray(row_perm, np.int64)[self.rows]
        cols = self.cols if col_perm is None else np.asarray(col_perm, np.int64)[self.cols]
        return COO(self.nrows, self.ncols, rows, cols, dedup=False)

    def block(self, r0: int, r1: int, c0: int, c1: int) -> "COO":
        """Extract the submatrix [r0:r1) x [c0:c1) with local indices —
        the per-rank block of the 2D distribution."""
        mask = (self.rows >= r0) & (self.rows < r1) & (self.cols >= c0) & (self.cols < c1)
        return COO(r1 - r0, c1 - c0, self.rows[mask] - r0, self.cols[mask] - c0, dedup=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COO):
            return NotImplemented
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        a = np.lexsort((self.rows, self.cols))
        b = np.lexsort((other.rows, other.cols))
        return bool(
            np.array_equal(self.rows[a], other.rows[b])
            and np.array_equal(self.cols[a], other.cols[b])
        )

    def __hash__(self) -> int:  # COO is mutable in principle; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COO({self.nrows}x{self.ncols}, nnz={self.nnz})"
