"""Table I primitives with the paper's exact serial semantics.

These are the building blocks Algorithm 2 and Algorithm 3 are written in.
Each function documents its correspondence to the paper's table:

==========  =====================================================  ==============
function     semantics                                              complexity
==========  =====================================================  ==============
IND          indices of the nonzero entries of a sparse vector      O(nnz)
SELECT       keep entries of x where expr(y[idx]) holds             O(nnz(x))
SET          dense[idx] = value for each sparse entry               O(nnz(x))
INVERT       swap indices and values; first index wins on ties      O(nnz(x))
PRUNE        drop entries of x whose value occurs among q's values  O(sort)
==========  =====================================================  ==============

Dense vectors are plain int64 NumPy arrays with -1 as the missing value.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .spvec import NULL, SparseVec


def ind(x: SparseVec) -> np.ndarray:
    """IND: local indices of the nonzero entries of ``x`` (Table I row 1)."""
    return x.idx


def select(x: SparseVec, y: np.ndarray, expr: Callable[[np.ndarray], np.ndarray]) -> SparseVec:
    """SELECT: keep the entries of sparse ``x`` whose positions satisfy a
    predicate on dense ``y`` (Table I row 2).

    ``expr`` receives ``y[x.idx]`` and must return a boolean array; only the
    sparse entries are touched — complexity O(nnz(x)), never O(len(y)).
    """
    if y.shape[0] != x.n:
        raise ValueError(f"dense vector length {y.shape[0]} != sparse length {x.n}")
    if x.nnz == 0:
        return SparseVec.empty(x.n)
    mask = np.asarray(expr(y[x.idx]), dtype=bool)
    return SparseVec(x.n, x.idx[mask], x.val[mask])


def set_dense(y: np.ndarray, x: SparseVec) -> np.ndarray:
    """SET: overwrite dense ``y`` at ``x``'s indices with ``x``'s values
    (Table I row 3).  In-place; returns ``y`` for chaining."""
    if y.shape[0] != x.n:
        raise ValueError(f"dense vector length {y.shape[0]} != sparse length {x.n}")
    y[x.idx] = x.val
    return y


def gather_dense(y: np.ndarray, x: SparseVec) -> SparseVec:
    """The SET variant used as a read (Algorithm 3's ``SET(v_c, π_r)``):
    produce a sparse vector over x's indices whose values come from dense
    ``y`` — i.e. replace each entry's value with ``y[value_source]``.

    Concretely: result[i] = y[x[i]] for i in IND(x).  Entries whose looked-up
    value is missing (-1) are dropped.
    """
    if x.nnz == 0:
        return SparseVec.empty(x.n)
    looked = y[x.val]
    keep = looked != NULL
    return SparseVec(x.n, x.idx[keep], looked[keep])


def invert(x: SparseVec, length: int | None = None) -> SparseVec:
    """INVERT: swap the indices and values of ``x`` (Table I row 4).

    ``z[x[i]] = i``; when several entries share a value, the smallest index
    wins ("we keep the first index").  ``length`` sets the output vector's
    length (defaults to ``x.n``, valid when max value < len).
    """
    length = x.n if length is None else int(length)
    if x.nnz == 0:
        return SparseVec.empty(length)
    if x.val.min() < 0 or x.val.max() >= length:
        raise ValueError(
            f"INVERT requires values in [0, {length}); got [{x.val.min()}, {x.val.max()}]"
        )
    # np.unique returns, for each distinct value, the index of its first
    # occurrence in the input — exactly the paper's tie-break.
    new_idx, first_pos = np.unique(x.val, return_index=True)
    return SparseVec(length, new_idx, x.idx[first_pos])


def prune(x: SparseVec, q: SparseVec) -> SparseVec:
    """PRUNE: remove the entries of ``x`` whose *value* occurs among the
    *values* of ``q`` (Table I row 5).

    The paper bounds this by min(sort(ψ)+μ·logψ, sort(μ)+ψ·logμ); NumPy's
    ``isin`` performs the same sort + binary-search strategy internally.
    """
    if q.nnz == 0 or x.nnz == 0:
        return x.copy()
    keep = ~np.isin(x.val, q.val)
    return SparseVec(x.n, x.idx[keep], x.val[keep])


def prune_mask(values: np.ndarray, q_values: np.ndarray) -> np.ndarray:
    """Boolean keep-mask form of PRUNE for callers holding raw arrays
    (the VertexFrontier prune in Algorithm 2 keeps parent and root in sync,
    so it filters all three arrays with one mask)."""
    if q_values.size == 0 or values.size == 0:
        return np.ones(values.size, dtype=bool)
    return ~np.isin(values, q_values)
