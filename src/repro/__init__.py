"""repro — distributed-memory maximum cardinality matching in bipartite graphs.

A from-scratch, pure-Python reproduction of Azad & Buluç, "Distributed-Memory
Algorithms for Maximum Cardinality Matching in Bipartite Graphs" (IPDPS
2016), including every substrate the paper builds on: a simulated MPI
runtime (collectives + one-sided RMA), a CombBLAS-style 2D sparse matrix
layer (DCSC, semiring SpMV, the Table I primitives), the MS-BFS matching
algorithm with both augmentation schedules, the three maximal-matching
initializers, RMAT graph generators, and an α-β performance model that
regenerates the paper's scaling figures at up to 12,288 simulated cores.

Quick start::

    import repro
    from repro.graphs import rmat

    g = rmat.g500(scale=12, seed=7)          # a 4096x4096 RMAT bipartite graph
    mate_r, mate_c, stats = repro.maximum_matching(g)
    print(stats.final_cardinality, "of", g.ncols, "columns matched")

Subpackages: ``runtime`` (simulated MPI), ``sparse`` (local kernels),
``distmat`` (2D-distributed matrices), ``matching`` (algorithms),
``perfmodel`` (α-β cost model), ``simulate`` (execution-driven performance
simulation), ``graphs`` (generators and the Table II stand-in suite).
"""

from .sparse.coo import COO
from .sparse.csc import CSC
from .sparse.dcsc import DCSC
from .matching.api import (
    maximal_matching,
    maximum_matching,
    maximum_weight_matching,
    matching_cardinality,
)
from .matching.validate import is_valid_matching, verify_maximum

__version__ = "1.0.0"

__all__ = [
    "COO",
    "CSC",
    "DCSC",
    "__version__",
    "is_valid_matching",
    "matching_cardinality",
    "maximal_matching",
    "maximum_matching",
    "maximum_weight_matching",
    "verify_maximum",
]
