"""Distributed primitives: routing, 2D SpMV, INVERT, PRUNE.

These are the communication kernels of Section IV-B, written against the
rank-local objects of this package:

* :func:`route` — the personalized all-to-all workhorse: deliver parallel
  arrays to explicit destination ranks (one ``alltoallv``);
* :func:`spmv` — the 2D semiring SpMV: *expand* (allgather of the frontier
  slice along the grid column) → local DCSC explode + pre-reduction →
  *fold* (all-to-all of partial winners along the grid row) → destination
  reduction;
* :func:`invert_route` — INVERT's data movement: entries travel to the
  owner of their *value* interpreted as an index on the other side — an
  all-to-all over ALL p ranks, the paper's scaling bottleneck;
* :func:`allgather_values` — PRUNE's root gather (ring allgather of a small
  value set, replicated on every rank).
"""

from __future__ import annotations

import numpy as np

from ..runtime.comm import Communicator
from ..sparse.semiring import SR_MIN_PARENT, Semiring, reduce_candidates
from .distvec import DistDenseVec, DistVertexFrontier, make_vecmap
from .spmat import DistSparseMatrix


def route(comm: Communicator, dest: np.ndarray, *arrays: np.ndarray) -> tuple[np.ndarray, ...]:
    """Deliver ``arrays`` entries to communicator ranks ``dest``.

    All arrays must be parallel (equal length).  Returns the received
    arrays, concatenated in source-rank order.  One personalized
    all-to-all.
    """
    dest = np.asarray(dest, dtype=np.int64)
    order = np.argsort(dest, kind="stable")
    sorted_dest = dest[order]
    cuts = np.searchsorted(sorted_dest, np.arange(comm.size + 1))
    payloads = [
        tuple(a[order][cuts[r]:cuts[r + 1]] for a in arrays) for r in range(comm.size)
    ]
    received = comm.alltoallv(payloads)
    return tuple(
        np.concatenate([r[k] for r in received]) if received else np.empty(0, np.int64)
        for k in range(len(arrays))
    )


def spmv(
    A: DistSparseMatrix,
    fc: DistVertexFrontier,
    semiring: Semiring = SR_MIN_PARENT,
    rng: np.random.Generator | None = None,
) -> DistVertexFrontier:
    """One step of distributed alternating BFS: ``f_r = A · f_c``.

    Matches :meth:`repro.sparse.csc.CSC.spmv_frontier` exactly for
    deterministic semirings (the integration tests assert this).
    """
    grid = A.grid
    if fc.orient != "col":
        raise ValueError("spmv expects a column frontier")

    # -- expand: assemble the frontier entries of my column block.
    # colcomm ranks own consecutive sub-ranges of block j, so rank-ordered
    # concatenation is already sorted by global column id.
    pieces = grid.colcomm.allgatherv((fc.idx, fc.root))
    gcols = np.concatenate([p[0] for p in pieces])
    groots = np.concatenate([p[1] for p in pieces])

    # -- local explode on the DCSC block (select2nd: parent = column id)
    lrows, parents, roots = A.block.explode_cols(gcols - A.col_lo, gcols, groots)
    grows = lrows + A.row_lo
    # local pre-reduction shrinks the fold volume (CombBLAS does the same)
    grows, parents, roots = reduce_candidates(grows, parents, roots, semiring, rng)

    # -- fold: send each partial winner to the row-vector owner of its row.
    # All my rows live in row block i, whose sub-chunks are owned by the pc
    # ranks of my grid row; the sub index IS the rowcomm rank.
    vmap = make_vecmap(grid, A.nrows, "row")
    sub, _block = vmap.owner(grows)
    rrows, rparents, rroots = route(grid.rowcomm, sub, grows, parents, roots)

    # -- destination reduction: one winner per row across all blocks
    ridx, rpar, rroot = reduce_candidates(rrows, rparents, rroots, semiring, rng)
    return DistVertexFrontier(grid, A.nrows, "row", ridx, rpar, rroot)


def spmv_local_work(A: DistSparseMatrix, fc: DistVertexFrontier) -> int:
    """Edge operations this rank's block performs for the given frontier
    (after expand) — the measured F term of the cost model."""
    grid = A.grid
    pieces = grid.colcomm.allgatherv((fc.idx,))
    gcols = np.concatenate([p[0] for p in pieces])
    if gcols.size == 0 or A.block.nzc == 0:
        return 0
    loc = A.block._locate(gcols - A.col_lo)
    loc = loc[loc >= 0]
    return int((A.block.cp[loc + 1] - A.block.cp[loc]).sum())


def invert_route(
    grid,
    targets: np.ndarray,
    values: np.ndarray,
    target_vec: DistDenseVec,
) -> tuple[np.ndarray, np.ndarray]:
    """INVERT's communication: deliver (target index, value) pairs to the
    rank owning ``target`` in ``target_vec``'s distribution.

    Returns the pairs received by THIS rank.  Collective over the full
    grid communicator (all-to-all over p ranks — the αp latency the paper
    identifies as the strong-scaling bottleneck).
    """
    dest = target_vec.owner_of(np.asarray(targets, np.int64))
    return route(grid.comm, dest, np.asarray(targets, np.int64), np.asarray(values, np.int64))


def allgather_values(comm: Communicator, values: np.ndarray) -> np.ndarray:
    """PRUNE's gather: replicate a (small) value set on every rank."""
    pieces = comm.allgatherv(values)
    return np.concatenate(pieces) if pieces else np.empty(0, np.int64)
