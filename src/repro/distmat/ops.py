"""Distributed primitives: routing, 2D SpMV, INVERT, PRUNE.

These are the communication kernels of Section IV-B, written against the
rank-local objects of this package:

* :func:`route` — the personalized all-to-all workhorse: deliver parallel
  arrays to explicit destination ranks (one ``alltoallv``);
* :func:`spmv` — the 2D semiring SpMV: *expand* (allgather of the frontier
  slice along the grid column) → local DCSC explode + pre-reduction →
  *fold* (all-to-all of partial winners along the grid row) → destination
  reduction;
* :func:`spmv_bottomup` — the direction-optimized (pull) SpMV of the
  paper's stated future work: the frontier's (idx, root) pairs are
  allgathered along the grid column and packed into a dense per-block
  ``root_of`` array, the unvisited row ids are allgathered along the grid
  row, and each block scans its unvisited rows' adjacency through the
  cached DCSC row-major mirror; fold and destination reduction are shared
  with :func:`spmv`, so deterministic semirings produce bit-identical
  frontiers;
* :func:`direction_edge_counts` — the per-iteration switch rule's global
  (top-down, bottom-up) edge counts, one 2-word allreduce;
* :func:`invert_route` — INVERT's data movement: entries travel to the
  owner of their *value* interpreted as an index on the other side — an
  all-to-all over ALL p ranks, the paper's scaling bottleneck;
* :func:`allgather_values` — PRUNE's root gather (ring allgather of a small
  value set, replicated on every rank).
"""

from __future__ import annotations

import numpy as np

from ..runtime.comm import SUM, Communicator
from ..runtime.pack import pack_arrays, pack_indices, unpack_arrays, unpack_indices
from ..runtime.trace import tspan
from ..sparse.semiring import SR_MIN_PARENT, Semiring, reduce_candidates
from ..sparse.spvec import NULL
from .distvec import DistDenseVec, DistVertexFrontier
from .spmat import DistSparseMatrix


def route(comm: Communicator, dest: np.ndarray, *arrays: np.ndarray) -> tuple[np.ndarray, ...]:
    """Deliver ``arrays`` entries to communicator ranks ``dest``.

    All arrays must be parallel (equal length).  Returns the received
    arrays — dtypes preserved, empty results included — concatenated in
    source-rank order.  One personalized all-to-all; with
    ``comm.config.pack`` each destination's arrays travel as ONE packed
    struct-of-arrays buffer (:mod:`repro.runtime.pack`).
    """
    arrays = tuple(np.asarray(a) for a in arrays)
    dest = np.asarray(dest, dtype=np.int64)
    order = np.argsort(dest, kind="stable")
    sorted_dest = dest[order]
    cuts = np.searchsorted(sorted_dest, np.arange(comm.size + 1))
    sorted_arrays = [a[order] for a in arrays]
    if comm.config.pack:
        payloads = [
            pack_arrays(*(sa[cuts[r]:cuts[r + 1]] for sa in sorted_arrays))
            for r in range(comm.size)
        ]
        parts = [unpack_arrays(buf) for buf in comm.alltoallv(payloads)]
    else:
        payloads = [
            tuple(sa[cuts[r]:cuts[r + 1]] for sa in sorted_arrays)
            for r in range(comm.size)
        ]
        parts = comm.alltoallv(payloads)
    return tuple(
        np.concatenate([p[k] for p in parts]) if parts else np.empty(0, arrays[k].dtype)
        for k in range(len(arrays))
    )


def allgather_arrays(comm: Communicator, *arrays: np.ndarray) -> "list[tuple[np.ndarray, ...]]":
    """Allgather parallel arrays, one packed buffer per rank when enabled.

    Returns one tuple of arrays per source rank, in rank order — the
    multi-array analogue of ``comm.allgatherv((a, b))``, used by the expand
    phases for their (idx, root) pairs.
    """
    if comm.config.pack:
        pieces = comm.allgatherv(pack_arrays(*arrays))
        return [unpack_arrays(buf) for buf in pieces]
    return comm.allgatherv(tuple(arrays))


def _fold_and_reduce(
    A: DistSparseMatrix,
    grows: np.ndarray,
    parents: np.ndarray,
    roots: np.ndarray,
    semiring: Semiring,
    rng: np.random.Generator | None,
) -> DistVertexFrontier:
    """Shared SpMV tail: local pre-reduction of the candidate triples, fold
    (route each partial winner to its row-vector owner along the grid row),
    destination reduction.  Both traversal directions funnel through here,
    which is what makes them bit-identical under deterministic semirings."""
    grid = A.grid
    with tspan(grid.comm, "fold"):
        # local pre-reduction shrinks the fold volume (CombBLAS does the same)
        grows, parents, roots = reduce_candidates(grows, parents, roots, semiring, rng)

        # -- fold: send each partial winner to the row-vector owner of its row.
        # All my rows live in row block i, whose sub-chunks are owned by the pc
        # ranks of my grid row; the sub index IS the rowcomm rank.
        sub, _block = A.row_vecmap.owner(grows)
        rrows, rparents, rroots = route(grid.rowcomm, sub, grows, parents, roots)

        # -- destination reduction: one winner per row across all blocks
        ridx, rpar, rroot = reduce_candidates(rrows, rparents, rroots, semiring, rng)
    return DistVertexFrontier(grid, A.nrows, "row", ridx, rpar, rroot)


def spmv(
    A: DistSparseMatrix,
    fc: DistVertexFrontier,
    semiring: Semiring = SR_MIN_PARENT,
    rng: np.random.Generator | None = None,
) -> DistVertexFrontier:
    """One step of distributed alternating BFS: ``f_r = A · f_c``.

    Matches :meth:`repro.sparse.csc.CSC.spmv_frontier` exactly for
    deterministic semirings (the integration tests assert this).
    """
    grid = A.grid
    if fc.orient != "col":
        raise ValueError("spmv expects a column frontier")

    with tspan(grid.comm, "spmv"):
        # -- expand: assemble the frontier entries of my column block.
        # colcomm ranks own consecutive sub-ranges of block j, so rank-ordered
        # concatenation is already sorted by global column id.
        with tspan(grid.comm, "expand"):
            pieces = allgather_arrays(grid.colcomm, fc.idx, fc.root)
            gcols = np.concatenate([p[0] for p in pieces])
            groots = np.concatenate([p[1] for p in pieces])

        # -- local explode on the DCSC block (select2nd: parent = column id)
        lrows, parents, roots = A.block.explode_cols(gcols - A.col_lo, gcols, groots)
        return _fold_and_reduce(A, lrows + A.row_lo, parents, roots, semiring, rng)


def spmv_bottomup(
    A: DistSparseMatrix,
    fc: DistVertexFrontier,
    pi_r: DistDenseVec,
    semiring: Semiring = SR_MIN_PARENT,
    rng: np.random.Generator | None = None,
) -> DistVertexFrontier:
    """Direction-optimized Step 1: unvisited rows PULL from the frontier.

    The paper's stated future work ("the bottom-up BFS in distributed
    memory"), as a drop-in replacement for :func:`spmv` when the frontier is
    wide:

    1. *expand*: allgather the frontier's (idx, root) pairs along the grid
       column — the same collective as the top-down expand — and pack them
       into a dense ``root_of`` array covering this rank's column block (the
       replicated frontier bitmap of the serial ``_bottom_up_step``);
    2. *unvisited exchange*: allgather the unvisited row ids (``π_r`` still
       NULL) along the grid row, assembling row block i's unvisited set from
       the pc sub-chunk owners;
    3. *pull*: every block scans its unvisited rows' adjacency through the
       cached DCSC row-major mirror and keeps edges whose column is on the
       frontier;
    4. fold + destination reduction, shared with :func:`spmv`.

    For a row left unvisited, the candidate set {(r, c) : c ∈ f_c} is
    identical in both directions, so deterministic semirings yield the SAME
    winners as :func:`spmv` followed by the Step 2 unvisited filter — the
    integration tests assert bit-identical mate vectors.
    """
    grid = A.grid
    if fc.orient != "col":
        raise ValueError("spmv_bottomup expects a column frontier")
    if pi_r.orient != "row":
        raise ValueError("spmv_bottomup expects a row-oriented visited vector")

    with tspan(grid.comm, "spmv_bottomup"):
        # -- expand: dense per-block frontier lookup (column block j)
        with tspan(grid.comm, "expand"):
            pieces = allgather_arrays(grid.colcomm, fc.idx, fc.root)
            gcols = np.concatenate([p[0] for p in pieces])
            groots = np.concatenate([p[1] for p in pieces])
        root_of = np.full(A.block.ncols, NULL, dtype=np.int64)
        root_of[gcols - A.col_lo] = groots

        # -- unvisited exchange: assemble row block i's unvisited rows.  rowcomm
        # ranks own consecutive sub-chunks of block i, so rank-ordered
        # concatenation is already sorted by global row id.  Bottom-up steps run
        # exactly when the unvisited set is wide, so the bitmap encoding (one
        # bit per row of the sub-chunk instead of one word per unvisited row)
        # usually wins — pack_indices picks per sender by density.
        with tspan(grid.comm, "unvisited_exchange"):
            mine = np.flatnonzero(pi_r.local == NULL) + pi_r.lo
            if grid.rowcomm.config.bitmap_frontiers:
                upieces = grid.rowcomm.allgatherv(pack_indices(mine, pi_r.lo, pi_r.hi))
                unvisited = np.concatenate([unpack_indices(b) for b in upieces]) - A.row_lo
            else:
                upieces = grid.rowcomm.allgatherv(mine)
                unvisited = np.concatenate(upieces) - A.row_lo

        # -- pull through the cached CSR mirror, filter by frontier membership
        # (one fused kernel — repro.kernels compiles it when numba is there)
        with tspan(grid.comm, "pull"):
            lrows, lcols, croots = A.block.pull_rows(unvisited, root_of, NULL)
            grows = lrows + A.row_lo
            parents = lcols + A.col_lo
        return _fold_and_reduce(A, grows, parents, croots, semiring, rng)


def direction_edge_counts(
    A: DistSparseMatrix,
    fc: DistVertexFrontier,
    pi_r: DistDenseVec,
) -> tuple[int, int]:
    """Collective: the switch rule's global (top-down, bottom-up) edge counts.

    Top-down would examine every edge of the frontier's columns; bottom-up
    every edge of the still-unvisited rows.  Each rank sums full-matrix
    degrees over its own vector sub-chunk using the cached
    :meth:`DistSparseMatrix.degree_slices`, then ONE 2-word allreduce makes
    the counts (and therefore the direction decision) globally uniform —
    the classic direction-optimization rule, distributed.
    """
    degr_sub, degc_sub = A.degree_slices()
    td = int(degc_sub[fc.idx - fc.lo].sum())
    bu = int(degr_sub[pi_r.local == NULL].sum())
    both = A.grid.comm.allreduce(np.array([td, bu], dtype=np.int64), op=SUM)
    return int(both[0]), int(both[1])


def direction_edge_counts_begin(
    A: DistSparseMatrix,
    fc: DistVertexFrontier,
    pi_r: DistDenseVec,
):
    """Nonblocking half of :func:`direction_edge_counts`: post the 2-word
    edge-count ``iallreduce`` and return its request.

    The BFS loop posts this at the tail of one superstep — the moment the
    next frontier and the final ``π_r`` exist, so the counts are exactly
    the ones the blocking call would compute at the next head — and waits
    it with :func:`direction_edge_counts_finish` after the next superstep's
    expand is underway.  That window is the fold/expand overlap the
    nonblocking engine exists for."""
    degr_sub, degc_sub = A.degree_slices()
    td = int(degc_sub[fc.idx - fc.lo].sum())
    bu = int(degr_sub[pi_r.local == NULL].sum())
    return A.grid.comm.iallreduce(np.array([td, bu], dtype=np.int64), op=SUM)


def direction_edge_counts_finish(req) -> tuple[int, int]:
    """Wait the request from :func:`direction_edge_counts_begin`; returns
    the global (top-down, bottom-up) edge counts."""
    both = req.wait()
    return int(both[0]), int(both[1])


def spmv_local_work(A: DistSparseMatrix, fc: DistVertexFrontier) -> int:
    """Edge operations this rank's block performs for the given frontier
    (after expand) — the measured F term of the cost model."""
    grid = A.grid
    pieces = grid.colcomm.allgatherv((fc.idx,))
    gcols = np.concatenate([p[0] for p in pieces])
    if gcols.size == 0 or A.block.nzc == 0:
        return 0
    loc = A.block._locate(gcols - A.col_lo)
    loc = loc[loc >= 0]
    return int((A.block.cp[loc + 1] - A.block.cp[loc]).sum())


def invert_route(
    grid,
    targets: np.ndarray,
    values: np.ndarray,
    target_vec: DistDenseVec,
) -> tuple[np.ndarray, np.ndarray]:
    """INVERT's communication: deliver (target index, value) pairs to the
    rank owning ``target`` in ``target_vec``'s distribution.

    Returns the pairs received by THIS rank.  Collective over the full
    grid communicator (all-to-all over p ranks — the αp latency the paper
    identifies as the strong-scaling bottleneck).
    """
    dest = target_vec.owner_of(np.asarray(targets, np.int64))
    return route(grid.comm, dest, np.asarray(targets, np.int64), np.asarray(values, np.int64))


def allgather_values(comm: Communicator, values: np.ndarray) -> np.ndarray:
    """PRUNE's gather: replicate a (small) value set on every rank.

    The result keeps ``values``' dtype, including when every rank
    contributes an empty array.
    """
    values = np.asarray(values)
    pieces = comm.allgatherv(values)
    if not pieces:
        return np.empty(0, values.dtype)
    return np.concatenate(pieces)
