"""Distribution maps: which rank owns which slice of a matrix dimension or
vector.

Two layers:

* :class:`BlockMap` — a 1-D uniform block partition of ``n`` items into
  ``parts`` blocks of size ⌈n/parts⌉ (the last block ragged, possibly
  empty).  Used for the matrix's row blocks (pr parts) and column blocks
  (pc parts).
* :class:`VecMap` — the paper's 2-D vector distribution: the vector is
  first block-partitioned across one grid dimension (its *blocks*) and each
  block is sub-partitioned across the other dimension, so all pr·pc ranks
  own a contiguous global range.  Column vectors use (blocks=pc, subs=pr)
  with rank (i, j) owning sub-chunk i of block j; row vectors swap roles.
"""

from __future__ import annotations

import numpy as np


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class BlockMap:
    """Uniform block partition of ``[0, n)`` into ``parts`` blocks."""

    def __init__(self, n: int, parts: int) -> None:
        if parts < 1:
            raise ValueError("parts must be >= 1")
        self.n = int(n)
        self.parts = int(parts)
        self.bs = max(1, _ceil_div(self.n, self.parts))

    def owner(self, g: "int | np.ndarray") -> "int | np.ndarray":
        """Block index owning global index ``g``."""
        return np.minimum(np.asarray(g) // self.bs, self.parts - 1) if isinstance(g, np.ndarray) else min(int(g) // self.bs, self.parts - 1)

    def range(self, part: int) -> tuple[int, int]:
        """Global [lo, hi) of one block (empty when lo >= n)."""
        lo = min(part * self.bs, self.n)
        hi = min((part + 1) * self.bs, self.n)
        return lo, hi

    def size(self, part: int) -> int:
        lo, hi = self.range(part)
        return hi - lo


class VecMap:
    """2-D distribution of a length-``n`` vector on a pr × pc grid.

    Parameters
    ----------
    n:
        Vector length.
    blocks:
        Number of primary blocks (pc for a column vector, pr for a row
        vector).
    subs:
        Sub-chunks per block (pr for a column vector, pc for a row vector).

    Rank identification is by ``(sub, block)`` pair; the caller maps that to
    grid coordinates (for a column vector ``sub`` is the grid row i and
    ``block`` the grid column j; for a row vector vice versa).
    """

    def __init__(self, n: int, blocks: int, subs: int) -> None:
        self.n = int(n)
        self.blocks = int(blocks)
        self.subs = int(subs)
        self.bmap = BlockMap(n, blocks)
        self.sub_bs = max(1, _ceil_div(self.bmap.bs, subs))

    def owner(self, g: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(sub, block) owner of each global index (vectorized)."""
        g = np.asarray(g, dtype=np.int64)
        block = np.minimum(g // self.bmap.bs, self.blocks - 1)
        off = g - block * self.bmap.bs
        sub = np.minimum(off // self.sub_bs, self.subs - 1)
        return sub, block

    def local_range(self, sub: int, block: int) -> tuple[int, int]:
        """Contiguous global [lo, hi) owned by rank (sub, block)."""
        blo, bhi = self.bmap.range(block)
        lo = min(blo + sub * self.sub_bs, bhi)
        hi = min(blo + (sub + 1) * self.sub_bs, bhi)
        return lo, hi

    def local_size(self, sub: int, block: int) -> int:
        lo, hi = self.local_range(sub, block)
        return hi - lo
