"""Rank-local pieces of distributed vectors.

Every object stores only this rank's contiguous global range
``[lo, hi)`` of the vector.  Dense vectors hold a NumPy slice; sparse
VERTEX frontiers hold (global idx, parent, root) arrays confined to the
range.  Conversions to/from global arrays exist for tests and for the
root-side scatter/gather at job boundaries.
"""

from __future__ import annotations

import numpy as np

from ..sparse.spvec import NULL
from .grid import ProcGrid
from .vecmap import VecMap


def make_vecmap(grid: ProcGrid, n: int, orient: str) -> VecMap:
    """Column vectors: blocks = grid columns, subs = grid rows; row vectors
    swap the roles."""
    if orient == "col":
        return VecMap(n, blocks=grid.pc, subs=grid.pr)
    if orient == "row":
        return VecMap(n, blocks=grid.pr, subs=grid.pc)
    raise ValueError(f"orient must be 'row' or 'col', got {orient!r}")


def my_subblock(grid: ProcGrid, orient: str) -> tuple[int, int]:
    """(sub, block) coordinates of this rank for the given orientation."""
    return (grid.i, grid.j) if orient == "col" else (grid.j, grid.i)


def owner_ranks(grid: ProcGrid, vmap: VecMap, orient: str, g: np.ndarray) -> np.ndarray:
    """Communicator rank owning each global vector index (vectorized)."""
    sub, block = vmap.owner(g)
    if orient == "col":
        return sub * grid.pc + block
    return block * grid.pc + sub


class DistDenseVec:
    """This rank's slice of a dense distributed vector."""

    def __init__(self, grid: ProcGrid, n: int, orient: str, fill: int = NULL) -> None:
        self.grid = grid
        self.orient = orient
        self.vmap = make_vecmap(grid, n, orient)
        sub, block = my_subblock(grid, orient)
        self.lo, self.hi = self.vmap.local_range(sub, block)
        self.local = np.full(self.hi - self.lo, fill, dtype=np.int64)

    @property
    def n(self) -> int:
        return self.vmap.n

    def owner_of(self, g: np.ndarray) -> np.ndarray:
        return owner_ranks(self.grid, self.vmap, self.orient, g)

    def get_local(self, g: np.ndarray) -> np.ndarray:
        """Read values at global indices that THIS rank owns."""
        return self.local[np.asarray(g, np.int64) - self.lo]

    def set_local(self, g: np.ndarray, values) -> None:
        """Write values at global indices that THIS rank owns."""
        self.local[np.asarray(g, np.int64) - self.lo] = values

    def remote_location(self, g: int) -> tuple[int, int]:
        """(owner rank, local offset) of one global index — the addressing
        step of every one-sided RMA access in path-parallel augmentation."""
        sub, block = self.vmap.owner(np.int64(g))
        rank = (
            int(sub) * self.grid.pc + int(block)
            if self.orient == "col"
            else int(block) * self.grid.pc + int(sub)
        )
        lo, _hi = self.vmap.local_range(int(sub), int(block))
        return rank, int(g) - lo

    def to_global(self) -> np.ndarray:
        """Gather the full vector on every rank (collective; test helper)."""
        pieces = self.grid.comm.allgather((self.lo, self.local))
        out = np.full(self.n, NULL, dtype=np.int64)
        for lo, arr in pieces:
            out[lo:lo + arr.size] = arr
        return out

    @classmethod
    def from_global(cls, grid: ProcGrid, arr: np.ndarray, orient: str) -> "DistDenseVec":
        """Each rank slices its range out of a replicated global array
        (test/boundary helper — no communication)."""
        v = cls(grid, arr.size, orient)
        v.local[:] = arr[v.lo:v.hi]
        return v


class DistVertexFrontier:
    """This rank's entries of a sparse (parent, root) frontier.

    ``idx`` are GLOBAL vertex ids confined to this rank's range, kept
    sorted ascending; parent/root parallel arrays.
    """

    def __init__(self, grid: ProcGrid, n: int, orient: str,
                 idx=None, parent=None, root=None) -> None:
        self.grid = grid
        self.orient = orient
        self.vmap = make_vecmap(grid, n, orient)
        sub, block = my_subblock(grid, orient)
        self.lo, self.hi = self.vmap.local_range(sub, block)
        e = np.empty(0, np.int64)
        self.idx = e if idx is None else np.asarray(idx, np.int64)
        self.parent = e.copy() if parent is None else np.asarray(parent, np.int64)
        self.root = e.copy() if root is None else np.asarray(root, np.int64)
        if self.idx.size:
            if self.idx.min() < self.lo or self.idx.max() >= self.hi:
                raise ValueError(
                    f"frontier entries outside local range [{self.lo}, {self.hi})"
                )

    @property
    def n(self) -> int:
        return self.vmap.n

    @property
    def local_nnz(self) -> int:
        return int(self.idx.size)

    def global_nnz(self) -> int:
        """Collective: total entries across ranks."""
        from ..runtime.comm import SUM

        return int(self.grid.comm.allreduce(self.local_nnz, op=SUM))

    def keep(self, mask: np.ndarray) -> "DistVertexFrontier":
        return DistVertexFrontier(
            self.grid, self.n, self.orient,
            self.idx[mask], self.parent[mask], self.root[mask],
        )

    def to_global_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather (idx, parent, root) of all ranks, sorted by idx
        (collective; test helper)."""
        pieces = self.grid.comm.allgather((self.idx, self.parent, self.root))
        idx = np.concatenate([p[0] for p in pieces])
        par = np.concatenate([p[1] for p in pieces])
        root = np.concatenate([p[2] for p in pieces])
        order = np.argsort(idx)
        return idx[order], par[order], root[order]
