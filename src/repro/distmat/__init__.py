"""CombBLAS-lite: 2D-distributed sparse matrices and vectors (Section IV-A).

This package is the honest distributed-memory layer: objects here hold only
*rank-local* state (a DCSC block of the matrix, a contiguous slice of each
vector) and communicate exclusively through the
:class:`repro.runtime.Communicator` they were created on.  The same code
would run over mpi4py unchanged.

Data layout (exactly the paper's):

* the n₁×n₂ matrix lives on a ``pr × pc`` process grid; rank (i, j) stores
  the (n₁/pr)×(n₂/pc) block ``A_ij`` in DCSC;
* vectors are distributed over the *same* grid: a column vector is split
  into pc blocks (one per grid column), each block subdivided among the pr
  ranks of that grid column — so rank (i, j) owns one contiguous global
  range of every vector, and the "expand" of the 2D SpMV is an allgather
  along the grid column;
* row vectors mirror this with the roles of i and j swapped, making the
  "fold" an all-to-all along the grid row.

Modules: :mod:`~repro.distmat.grid` (process grid + sub-communicators),
:mod:`~repro.distmat.vecmap` (vector distribution maps),
:mod:`~repro.distmat.distvec` (dense/sparse distributed vectors),
:mod:`~repro.distmat.spmat` (the distributed matrix),
:mod:`~repro.distmat.ops` (SpMV, INVERT, PRUNE and friends).
"""

from .grid import ProcGrid
from .vecmap import BlockMap, VecMap
from .distvec import DistDenseVec, DistVertexFrontier
from .spmat import DistSparseMatrix
from . import ops
# imported last: wspmat's methods reach back into repro.matching.auction
from .wspmat import DistWeightedMatrix

__all__ = [
    "BlockMap",
    "DistDenseVec",
    "DistSparseMatrix",
    "DistVertexFrontier",
    "DistWeightedMatrix",
    "ProcGrid",
    "VecMap",
    "ops",
]
