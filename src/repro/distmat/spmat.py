"""The 2D-distributed sparse matrix: one DCSC block per rank."""

from __future__ import annotations

import numpy as np

from ..sparse.coo import COO
from ..sparse.dcsc import DCSC
from .distvec import make_vecmap
from .grid import ProcGrid
from .vecmap import BlockMap


class DistSparseMatrix:
    """Rank-local view of an n₁ × n₂ matrix on a pr × pc grid.

    Rank (i, j) stores block ``A_ij`` (rows ``rowmap.range(i)``, columns
    ``colmap.range(j)``) as a DCSC with *local* indices.  Construction is a
    root scatter: rank 0 holds the COO, partitions it by owner block and
    scatters; every other rank contributes ``None``.

    The row- and column-vector distribution maps are built once here and
    cached (``row_vecmap``/``col_vecmap``) — every SpMV fold and INVERT
    reuses them instead of rebuilding per call.
    """

    def __init__(self, grid: ProcGrid, nrows: int, ncols: int, block: DCSC) -> None:
        self.grid = grid
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.rowmap = BlockMap(nrows, grid.pr)
        self.colmap = BlockMap(ncols, grid.pc)
        self.block = block
        self.row_lo, self.row_hi = self.rowmap.range(grid.i)
        self.col_lo, self.col_hi = self.colmap.range(grid.j)
        self.row_vecmap = make_vecmap(grid, nrows, "row")
        self.col_vecmap = make_vecmap(grid, ncols, "col")
        self._degree_slices: "tuple[np.ndarray, np.ndarray] | None" = None

    # -- construction ------------------------------------------------------------

    @classmethod
    def scatter_from_root(
        cls, grid: ProcGrid, coo: "COO | None", root: int = 0
    ) -> "DistSparseMatrix":
        """Collective: distribute a COO held by ``root`` over the grid."""
        comm = grid.comm
        if comm.rank == root:
            assert coo is not None, "root must supply the matrix"
            shape = (coo.nrows, coo.ncols)
        else:
            shape = None
        nrows, ncols = comm.bcast(shape, root=root)
        rowmap = BlockMap(nrows, grid.pr)
        colmap = BlockMap(ncols, grid.pc)

        if comm.rank == root:
            bi = np.minimum(coo.rows // rowmap.bs, grid.pr - 1)
            bj = np.minimum(coo.cols // colmap.bs, grid.pc - 1)
            dest = bi * grid.pc + bj
            order = np.argsort(dest, kind="stable")
            rows_s, cols_s, dest_s = coo.rows[order], coo.cols[order], dest[order]
            cuts = np.searchsorted(dest_s, np.arange(comm.size + 1))
            payloads = [
                (rows_s[cuts[r]:cuts[r + 1]], cols_s[cuts[r]:cuts[r + 1]])
                for r in range(comm.size)
            ]
        else:
            payloads = None
        my_rows, my_cols = comm.scatter(payloads, root=root)

        # localize indices and build the DCSC block
        rlo, rhi = rowmap.range(grid.i)
        clo, chi = colmap.range(grid.j)
        local = COO(
            max(0, rhi - rlo), max(0, chi - clo),
            my_rows - rlo, my_cols - clo, dedup=False,
        )
        return cls(grid, nrows, ncols, DCSC.from_coo(local))

    # -- properties ---------------------------------------------------------------

    @property
    def local_nnz(self) -> int:
        return self.block.nnz

    def global_nnz(self) -> int:
        """Collective: total nonzeros across the grid."""
        from ..runtime.comm import SUM

        return int(self.grid.comm.allreduce(self.local_nnz, op=SUM))

    def degree_slices(self) -> tuple[np.ndarray, np.ndarray]:
        """Full-matrix (row, column) degrees restricted to this rank's
        row-/column-vector sub-chunks — the O(1)-lookup inputs of the
        direction-optimization switch rule.

        COLLECTIVE on first call (one allreduce along each of rowcomm and
        colcomm, summing the per-block degree contributions), then cached.
        Every rank must reach the first call at the same program point —
        :func:`repro.matching.mcm_dist.mcm_dist_spmd` does so before its
        phase loop.  Treat the returned arrays as read-only.
        """
        if self._degree_slices is None:
            from ..runtime.comm import SUM

            grid, blk = self.grid, self.block
            degr_blk = grid.rowcomm.allreduce(blk.row_degrees(), op=SUM)
            degc_loc = np.zeros(blk.ncols, dtype=np.int64)
            if blk.nzc:
                degc_loc[blk.jc] = np.diff(blk.cp)
            degc_blk = grid.colcomm.allreduce(degc_loc, op=SUM)
            # slice the block-replicated vectors down to this rank's own
            # vector sub-chunk (row vectors: sub = grid.j; col: sub = grid.i)
            rlo, rhi = self.row_vecmap.local_range(grid.j, grid.i)
            clo, chi = self.col_vecmap.local_range(grid.i, grid.j)
            self._degree_slices = (
                degr_blk[rlo - self.row_lo:rhi - self.row_lo],
                degc_blk[clo - self.col_lo:chi - self.col_lo],
            )
        return self._degree_slices

    def gather_to_root(self, root: int = 0) -> "COO | None":
        """Collective: reassemble the global COO at ``root`` (the expensive
        operation Fig. 9 warns about; also the test oracle's round-trip)."""
        local = self.block.to_coo()
        payload = (local.rows + self.row_lo, local.cols + self.col_lo)
        pieces = self.grid.comm.gather(payload, root=root)
        if pieces is None:
            return None
        rows = np.concatenate([p[0] for p in pieces])
        cols = np.concatenate([p[1] for p in pieces])
        return COO(self.nrows, self.ncols, rows, cols, dedup=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistSparseMatrix({self.nrows}x{self.ncols} on "
            f"{self.grid.pr}x{self.grid.pc}, local nnz={self.local_nnz})"
        )
