"""The pr × pc process grid and its row/column sub-communicators."""

from __future__ import annotations

from ..runtime.comm import Communicator


class ProcGrid:
    """A 2D arrangement of the ranks of ``comm``.

    Rank ``r`` sits at grid position ``(i, j) = divmod(r, pc)``.  Each rank
    carries two sub-communicators created with ``comm.split``:

    * ``rowcomm`` — the pc ranks sharing grid row i (the SpMV *fold*
      all-to-all runs here);
    * ``colcomm`` — the pr ranks sharing grid column j (the SpMV *expand*
      allgather runs here).

    The full communicator remains available as ``comm`` for the
    grid-global collectives (INVERT's all-to-all, PRUNE's allgather,
    termination allreduces).
    """

    def __init__(self, comm: Communicator, pr: int, pc: int) -> None:
        if pr * pc != comm.size:
            raise ValueError(
                f"grid {pr}x{pc} needs {pr * pc} ranks, communicator has {comm.size}"
            )
        self.comm = comm
        self.pr = pr
        self.pc = pc
        self.i, self.j = divmod(comm.rank, pc)
        # Both splits are collectives; every rank calls them in the same order.
        self.rowcomm = comm.split(color=self.i)  # members: (i, 0..pc-1), rank == j
        self.colcomm = comm.split(color=self.j)  # members: (0..pr-1, j), rank == i
        assert self.rowcomm.rank == self.j
        assert self.colcomm.rank == self.i

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def nprocs(self) -> int:
        return self.comm.size

    def rank_of(self, i: int, j: int) -> int:
        """Global communicator rank of grid position (i, j)."""
        return i * self.pc + j

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcGrid({self.pr}x{self.pc}, here=({self.i},{self.j}))"
