"""The 2D-distributed WEIGHTED sparse matrix: one CSC block per rank.

The auction engine needs what :class:`DistSparseMatrix` does not carry —
float64 edge weights and O(1) per-column access from arbitrary bidder
subsets — so weighted jobs get their own block container: a dense-pointer
CSC (a pointer per block column, no DCSC compression) whose kernels live
in :mod:`repro.matching.auction` and are shared with the serial oracle.
Partitioning, vector maps, and the root-scatter protocol mirror
:class:`DistSparseMatrix` exactly, so both matrix flavours address the
same grid the same way.
"""

from __future__ import annotations

import numpy as np

from ..sparse.coo import COO
from .distvec import make_vecmap
from .grid import ProcGrid
from .vecmap import BlockMap


class DistWeightedMatrix:
    """Rank-local weighted block of an n₁ × n₂ matrix on a pr × pc grid.

    Rank (i, j) stores block ``A_ij`` as dense-pointer CSC arrays
    ``(cp, ir, w)`` with *local* indices; ``cp`` has one pointer per block
    column (length ``ncols_local + 1``), ``ir`` ascending within a column.
    """

    def __init__(
        self,
        grid: ProcGrid,
        nrows: int,
        ncols: int,
        cp: np.ndarray,
        ir: np.ndarray,
        w: np.ndarray,
        w2: "np.ndarray | None" = None,
    ) -> None:
        self.grid = grid
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.rowmap = BlockMap(nrows, grid.pr)
        self.colmap = BlockMap(ncols, grid.pc)
        self.cp, self.ir, self.w = cp, ir, w
        # optional second per-edge value array sharing the CSC order — the
        # auction engine bids on effective weights (w) but scores matchings
        # with the original ones (w2)
        self.w2 = w2
        self.row_lo, self.row_hi = self.rowmap.range(grid.i)
        self.col_lo, self.col_hi = self.colmap.range(grid.j)
        self.row_vecmap = make_vecmap(grid, nrows, "row")
        self.col_vecmap = make_vecmap(grid, ncols, "col")
        self._degc_sub: "np.ndarray | None" = None

    # -- construction ------------------------------------------------------------

    @classmethod
    def scatter_from_root(
        cls,
        grid: ProcGrid,
        coo: "COO | None",
        weights: "np.ndarray | None",
        root: int = 0,
        weights2: "np.ndarray | None" = None,
    ) -> "DistWeightedMatrix":
        """Collective: distribute a weighted COO held by ``root``.

        ``weights2`` optionally ships a second per-edge value array (e.g.
        original weights alongside bias-shifted effective weights); every
        block stores it in the same CSC order as ``weights``.
        """
        comm = grid.comm
        if comm.rank == root:
            assert coo is not None and weights is not None, "root must supply matrix+weights"
            assert weights.size == coo.rows.size, "one weight per edge"
            shape = (coo.nrows, coo.ncols, weights2 is not None)
        else:
            shape = None
        nrows, ncols, has_w2 = comm.bcast(shape, root=root)
        rowmap = BlockMap(nrows, grid.pr)
        colmap = BlockMap(ncols, grid.pc)

        if comm.rank == root:
            vals = np.asarray(weights, np.float64)
            vals2 = np.asarray(weights2, np.float64) if has_w2 else np.zeros(0)
            bi = np.minimum(coo.rows // rowmap.bs, grid.pr - 1)
            bj = np.minimum(coo.cols // colmap.bs, grid.pc - 1)
            dest = bi * grid.pc + bj
            order = np.argsort(dest, kind="stable")
            rows_s, cols_s = coo.rows[order], coo.cols[order]
            vals_s, dest_s = vals[order], dest[order]
            vals2_s = vals2[order] if has_w2 else vals2
            cuts = np.searchsorted(dest_s, np.arange(comm.size + 1))
            payloads = [
                (
                    rows_s[cuts[r]:cuts[r + 1]],
                    cols_s[cuts[r]:cuts[r + 1]],
                    vals_s[cuts[r]:cuts[r + 1]],
                    vals2_s[cuts[r]:cuts[r + 1]] if has_w2 else None,
                )
                for r in range(comm.size)
            ]
        else:
            payloads = None
        my_rows, my_cols, my_vals, my_vals2 = comm.scatter(payloads, root=root)

        # imported lazily: matching.auction is a sibling layer and importing
        # it at module scope would close an import cycle through the
        # repro.matching package __init__
        from ..matching.auction import build_csc

        rlo, rhi = rowmap.range(grid.i)
        clo, chi = colmap.range(grid.j)
        if has_w2:
            cp, ir, w, w2 = build_csc(
                max(0, rhi - rlo), max(0, chi - clo),
                my_rows - rlo, my_cols - clo, my_vals, my_vals2,
            )
        else:
            cp, ir, w = build_csc(
                max(0, rhi - rlo), max(0, chi - clo),
                my_rows - rlo, my_cols - clo, my_vals,
            )
            w2 = None
        return cls(grid, nrows, ncols, cp, ir, w, w2)

    # -- properties ---------------------------------------------------------------

    @property
    def local_nnz(self) -> int:
        return int(self.ir.size)

    def global_nnz(self) -> int:
        """Collective: total nonzeros across the grid."""
        from ..runtime.comm import SUM

        return int(self.grid.comm.allreduce(self.local_nnz, op=SUM))

    def col_degrees_sub(self) -> np.ndarray:
        """Full-matrix column degrees restricted to this rank's
        column-vector sub-chunk — which bidders exist at all.

        COLLECTIVE on first call (one allreduce along colcomm), then
        cached; every rank must reach the first call at the same program
        point.  Treat the returned array as read-only.
        """
        if self._degc_sub is None:
            from ..runtime.comm import SUM

            grid = self.grid
            degc_blk = grid.colcomm.allreduce(np.diff(self.cp), op=SUM)
            clo, chi = self.col_vecmap.local_range(grid.i, grid.j)
            self._degc_sub = degc_blk[clo - self.col_lo:chi - self.col_lo]
        return self._degc_sub

    # -- auction kernels (global-index wrappers over the shared helpers) ----------

    def top2(
        self, gcols: np.ndarray, price_blk: np.ndarray, bias: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-bidder (best, second) profits over THIS block, global ids.

        ``gcols`` are global bidding columns within this rank's column
        range; ``price_blk`` the block-replicated prices of this rank's row
        block (local row indexing).  Returns global column and row ids.
        """
        from ..matching.auction import top2_cols

        cols, best, brow, bw, second = top2_cols(
            self.cp, self.ir, self.w,
            np.asarray(gcols, np.int64) - self.col_lo,
            price_blk, bias,
        )
        return cols + self.col_lo, best, brow + self.row_lo, bw, second

    def matched_weight_local(self, mate_blk: np.ndarray) -> float:
        """Original-weight sum of this block's matched edges.

        ``mate_blk[r]`` is the global mate column of local block row ``r``
        (NULL if unmatched).  Summing over ranks (each edge lives in one
        block) gives the global matching weight.
        """
        from ..matching.auction import matched_weight

        return matched_weight(self.cp, self.ir, self.w, mate_blk, self.col_lo)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistWeightedMatrix({self.nrows}x{self.ncols} on "
            f"{self.grid.pr}x{self.grid.pc}, local nnz={self.local_nnz})"
        )
