"""MS-BFS-Graft: tree grafting across phases (the paper's future work).

Plain MS-BFS (Algorithm 2) throws its alternating forest away after every
phase and rebuilds from scratch — most of those traversals are redundant,
which is why the authors name "implementing the tree grafting technique
together with the bottom-up BFS in distributed memory" as future work,
citing their shared-memory MS-BFS-Graft [7].  This module implements the
technique on the same matrix-algebra substrate:

* the forest (row parents ``π_r``, row roots, column roots) persists across
  phases;
* after augmenting, only the trees that yielded augmenting paths are
  invalidated — their vertices become *renewable* (reset to unvisited);
  the remaining *active* trees keep their entire explored structure;
* the next phase is seeded by a **graft** step — a bottom-up sweep in which
  unvisited/renewable rows scan their adjacency for any column of an active
  tree and attach themselves to it (inheriting its root) — after which the
  level-synchronous iterations continue exactly as in Algorithm 2;
* when a grafted phase discovers nothing, one conventional from-scratch
  phase confirms maximality (Berge), so correctness never rests on the
  grafting bookkeeping.

With deterministic semirings the result is a maximum matching identical in
cardinality to every other engine; the savings show up as a lower
total-traversed-edge count (asserted in tests, reported by the ablation
bench).
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import CSC, ragged_gather
from ..sparse.semiring import SR_MIN_PARENT, Semiring, reduce_candidates
from ..sparse.spvec import NULL, VertexFrontier
from .augment import augment_auto
from .msbfs import MatchingStats


def _graft_candidates(
    a: CSC, pi_r: np.ndarray, root_c: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Bottom-up graft sweep: every unvisited row examines its adjacency
    for columns belonging to active trees (``root_c != NULL``).

    Returns the candidate (rows, cols) edge arrays.
    """
    at = a.transpose()
    unvisited = np.flatnonzero(pi_r == NULL)
    cand_cols, counts = ragged_gather(at.indptr, at.indices, unvisited)
    cand_rows = np.repeat(unvisited, counts)
    hit = root_c[cand_cols] != NULL
    return cand_rows[hit], cand_cols[hit]


def ms_bfs_graft(
    a: CSC,
    mate_r: np.ndarray | None = None,
    mate_c: np.ndarray | None = None,
    *,
    semiring: Semiring = SR_MIN_PARENT,
    rng: np.random.Generator | None = None,
    prune: bool = True,
    augment_mode: str = "auto",
    nprocs_for_switch: int = 1,
    rebuild_threshold: float = 0.5,
) -> tuple[np.ndarray, np.ndarray, MatchingStats]:
    """Maximum cardinality matching with tree grafting.

    Same contract as :func:`repro.matching.msbfs.ms_bfs_mcm`; the returned
    stats additionally reflect the reduced edge traffic.

    ``rebuild_threshold``: when more than this fraction of the visited
    forest is invalidated by a phase's augmentations, the next phase
    rebuilds from scratch instead of grafting — the [7] heuristic that
    keeps grafting from paying repeated whole-graph sweep costs on inputs
    whose trees mostly die each phase.
    """
    n1, n2 = a.nrows, a.ncols
    mate_r = np.full(n1, NULL, np.int64) if mate_r is None else np.asarray(mate_r, np.int64).copy()
    mate_c = np.full(n2, NULL, np.int64) if mate_c is None else np.asarray(mate_c, np.int64).copy()
    stats = MatchingStats(initial_cardinality=int((mate_r != NULL).sum()))

    pi_r = np.full(n1, NULL, dtype=np.int64)
    root_r = np.full(n1, NULL, dtype=np.int64)
    root_c = np.full(n2, NULL, dtype=np.int64)

    fresh = True          # first phase (and confirmation phases) start clean
    confirmed_empty = False

    while True:
        stats.phases += 1
        path_c = np.full(n2, NULL, dtype=np.int64)

        if fresh:
            pi_r.fill(NULL)
            root_r.fill(NULL)
            root_c.fill(NULL)
            seeds = np.flatnonzero(mate_c == NULL)
            root_c[seeds] = seeds
            fc = VertexFrontier.roots_of_self(n2, seeds)
            fr_pre = None
        else:
            # GRAFT: unvisited rows attach to active trees (bottom-up)
            g_rows, g_cols = _graft_candidates(a, pi_r, root_c)
            stats.edges_traversed += g_rows.size
            ridx, rpar, rroot = reduce_candidates(
                g_rows, g_cols, root_c[g_cols], semiring, rng
            )
            fr_pre = VertexFrontier(n1, ridx, rpar, rroot)
            fc = VertexFrontier.empty(n2)

        # ---- level-synchronous iterations (Algorithm 2 steps 1-7, with the
        # frontier optionally pre-seeded by the graft sweep) ----------------
        while True:
            if fr_pre is not None:
                fr = fr_pre
                fr_pre = None
            elif fc.nnz:
                stats.iterations += 1
                cand_rows, cand_parents, cand_roots, _ = a.explode_frontier(fc)
                stats.edges_traversed += cand_rows.size
                ridx, rpar, rroot = reduce_candidates(
                    cand_rows, cand_parents, cand_roots, semiring, rng
                )
                fr = VertexFrontier(n1, ridx, rpar, rroot)
            else:
                break

            # Step 2-3: unvisited rows join the forest
            fr = fr.keep(pi_r[fr.idx] == NULL)
            pi_r[fr.idx] = fr.parent
            root_r[fr.idx] = fr.root
            # Step 4: split
            unmatched = mate_r[fr.idx] == NULL
            ufr = fr.keep(unmatched)
            fr = fr.keep(~unmatched)

            if ufr.nnz:
                # Step 5: record augmenting path endpoints (first per root)
                troots, first = np.unique(ufr.root, return_index=True)
                fresh_mask = path_c[troots] == NULL
                path_c[troots[fresh_mask]] = ufr.idx[first[fresh_mask]]
                # Step 6: prune
                if prune and fr.nnz:
                    fr = fr.keep(~np.isin(fr.root, troots))

            # Step 7: next column frontier through mates
            mates = mate_r[fr.idx]
            order = np.argsort(mates)
            new_cols = mates[order]
            new_roots = fr.root[order]
            root_c[new_cols] = new_roots
            fc = VertexFrontier(n2, new_cols, new_cols, new_roots)

        # ---- phase end -----------------------------------------------------
        k = int((path_c != NULL).sum())
        stats.paths_per_phase.append(k)
        if k == 0:
            if fresh:
                break  # a from-scratch phase found nothing: maximum certified
            # stale forest found nothing: confirm with one fresh phase
            fresh = True
            continue

        augment_auto(
            path_c, pi_r, mate_r, mate_c,
            mode=augment_mode, nprocs=nprocs_for_switch, stats=stats.augment,
        )
        # invalidate the augmented trees: their members become renewable
        aug_roots = np.flatnonzero(path_c != NULL)
        visited_before = int((root_r != NULL).sum())
        dead_rows = np.isin(root_r, aug_roots)
        pi_r[dead_rows] = NULL
        root_r[dead_rows] = NULL
        root_c[np.isin(root_c, aug_roots)] = NULL
        # graft only when a useful share of the forest survived; otherwise a
        # from-scratch phase is cheaper than sweeping all renewables
        died = int(dead_rows.sum())
        fresh = visited_before == 0 or died > rebuild_threshold * visited_before

    stats.final_cardinality = int((mate_r != NULL).sum())
    return mate_r, mate_c, stats
