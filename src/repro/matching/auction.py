"""Synchronized-auction primitives for maximum WEIGHT bipartite matching.

The auction algorithm (Bertsekas) treats columns as *bidders* and rows as
*items* carrying prices.  An unmatched bidder j looks at its incident
edges' profits ``w_ij - p_i``, picks the best item i*, and raises that
item's price to the point where i* becomes exactly as attractive as the
bidder's second-best option, plus a bid increment ``delta``.  Each item
accepts the highest bid it received, evicting its previous mate.

**Assignment reduction.**  ε-scaling (reusing prices across phases of
shrinking ``delta``) is only sound for the PERFECT assignment problem:
with both matchings perfect, the price sums in the primal-dual bound
cancel, giving ``weight(M) >= OPT - N*delta`` no matter how inflated the
inherited prices are.  The "unmatched is worth 0, retire at profit <= 0"
variant has no such luck — a coarse phase can overprice an item by its
phase's delta and permanently scare off the only bidder that wanted it.
So the engines solve MWM(G) via the standard doubling
(:func:`double_for_assignment`): a (n1+n2) × (n1+n2) graph carrying the
original weight block, its transpose, and zero-weight dummy diagonal
edges that make a perfect matching always exist.  The two weight blocks
yield two candidate matchings of G; the better one satisfies
``weight >= (1 - epsilon) * OPT`` (see the module tests for the proof
obligations asserted as ε-complementary slackness).

This module holds the *pure-NumPy round kernels* shared verbatim by the
serial reference engine (:mod:`repro.matching.reference.auction_twin`) and
the distributed engine (:mod:`repro.matching.mwm_dist`):

* :func:`delta_schedule` — the ε-scaling ladder of bid increments;
* :func:`top2_cols` — per-bidder (best, second-best) profits over a CSC
  block — the (select, +)-semiring SpMV of one bidding round;
* :func:`combine_partials` — the associative merge of per-block partial
  (best, second) results at the bidder's owner rank;
* :func:`compute_bids` — the Bertsekas bid from combined (best, second);
* :func:`resolve_bids` — per-item max-bid resolution (the column-wise
  max-reduce), riding :func:`repro.sparse.semiring.reduce_candidates`
  with float keys.

Because every kernel is deterministic (profit ties break to the smallest
row id, bid ties to the smallest bidder id) and all bids of one round are
computed against the same round-start prices (Jacobi style), the round
sequence is a function of global state only — the distributed engine is
bit-identical to the serial twin on every grid shape, backend, and
aggregation setting.
"""

from __future__ import annotations

import numpy as np

from ..sparse.semiring import SR_MAX_PARENT, reduce_candidates
from ..sparse.spvec import NULL

_NEG_INF = -np.inf


def delta_schedule(scale: float, n: int, epsilon: float) -> "list[float]":
    """ε-scaling bid increments, largest first.

    Starts at ``scale / 8`` and divides by 8 until reaching the final
    increment ``epsilon * scale / n`` — the only one that matters for
    the (1-ε) bound; the earlier coarse phases exist to keep the number of
    bidding rounds polylogarithmic in 1/ε.  ``scale`` is the (bias-shifted)
    maximum edge weight and ``n`` the assignment size (``n1 + n2`` after
    the doubling); an empty/zero-weight problem yields ``[]``.
    """
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    if scale <= 0.0:
        return []
    d_final = epsilon * scale / max(1, int(n))
    schedule: list[float] = []
    d = scale / 8.0
    while d > d_final:
        schedule.append(d)
        d /= 8.0  # exact in binary floating point: exponent shift only
    schedule.append(d_final)
    return schedule


def dedup_edges(
    rows: np.ndarray, cols: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse parallel edges to the heaviest copy, (col, row)-sorted.

    An auction can only ever transact an (i, j) pair at its best weight —
    lighter duplicates change no bid and no price — but they WOULD corrupt
    the bookkeeping around them: the searchsorted in
    :func:`lookup_pair_weights` assumes strictly increasing (col, row)
    keys, and the distributed extraction sums ``w_orig`` over every local
    nonzero flagged as matched, counting each duplicate once.  Both entry
    points therefore dedup through this one kernel, keeping the serial
    twin and the distributed engine bit-identical on multigraph inputs.
    """
    rows = np.asarray(rows, np.int64)
    cols = np.asarray(cols, np.int64)
    weights = np.asarray(weights, np.float64)
    if rows.size == 0:
        return rows, cols, weights
    order = np.lexsort((weights, rows, cols))
    rows, cols, weights = rows[order], cols[order], weights[order]
    last = np.empty(rows.size, dtype=bool)
    last[-1] = True
    np.not_equal(rows[1:], rows[:-1], out=last[:-1])
    last[:-1] |= cols[1:] != cols[:-1]
    return rows[last], cols[last], weights[last]


def double_for_assignment(
    n1: int,
    n2: int,
    rows: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
    bias_add: float = 0.0,
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """MWM(G) → perfect assignment on the doubled graph G'.

    G' has ``N = n1 + n2`` items and bidders: items ``0..n1`` are the
    original rows, items ``n1..N`` the original columns (and vice versa
    for bidders), with four edge groups —

    * real block: item i, bidder j, weight ``w_ij + bias_add``;
    * transpose block: item n1+j, bidder n2+i, weight ``w_ij + bias_add``;
    * dummy diagonals: (item i, bidder n2+i) and (item n1+j, bidder j) at
      weight 0, so the identity-on-dummies perfect matching always exists.

    A perfect matching of G' selects two (independent) matchings of G —
    one per weight block — whose effective weights sum to its total, so
    the better of the two is at least half… and with the auction's
    ``N·delta = ε·scale`` slack, at least ``(1-ε)·OPT``.

    ``bias_add`` is the cardinality/weight knob: real edges are shifted by
    it while dummies stay at 0, so at ``bias_add >= scale`` any real edge
    beats retreating to a dummy and the auction chases cardinality.  (A
    uniform shift of ALL edges would be invisible — perfect matchings all
    have exactly N edges.)

    Returns ``(N, rows', cols', w_eff, w_orig)``; ``w_eff`` is bid on,
    ``w_orig`` (bias-free, dummies 0) is what matchings are scored with.
    """
    rows = np.asarray(rows, np.int64)
    cols = np.asarray(cols, np.int64)
    weights = np.asarray(weights, np.float64)
    ar1 = np.arange(n1, dtype=np.int64)
    ar2 = np.arange(n2, dtype=np.int64)
    z1, z2 = np.zeros(n1), np.zeros(n2)
    drows = np.concatenate([rows, n1 + cols, ar1, n1 + ar2])
    dcols = np.concatenate([cols, n2 + rows, n2 + ar1, ar2])
    w_eff = np.concatenate([weights + bias_add, weights + bias_add, z1, z2])
    w_orig = np.concatenate([weights, weights, z1, z2])
    return n1 + n2, drows, dcols, w_eff, w_orig


def _empty_top2() -> tuple[np.ndarray, ...]:
    e = np.empty(0, np.int64)
    f = np.empty(0, np.float64)
    return e, f.copy(), e.copy(), f.copy(), f.copy()


def top2_cols(
    cp: np.ndarray,
    ir: np.ndarray,
    w: np.ndarray,
    cols: np.ndarray,
    price: np.ndarray,
    bias: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Best and second-best profits per bidding column over one CSC block.

    ``cp`` is a dense column-pointer array (length ncols+1), ``ir``/``w``
    the row ids and weights; ``cols`` the bidding columns (local ids, any
    subset); ``price`` the per-row prices the profits are computed against;
    ``bias`` a uniform weight shift (the cardinality/weight trade-off knob —
    every edge gains ``bias``, making longer matchings dominate).

    Returns ``(cols, best, best_row, best_w, second)`` restricted to the
    columns with at least one edge in the block: the winning profit, its
    row and *shifted* weight, and the profit of the best OTHER edge
    (``-inf`` for single-edge columns).  Ties on profit break to the
    smallest row id, which is what makes distributed pre-reduction +
    :func:`combine_partials` reproduce this function applied globally.
    """
    cols = np.asarray(cols, np.int64)
    cnt = cp[cols + 1] - cp[cols]
    keep = cnt > 0
    kcols, kcnt = cols[keep], cnt[keep]
    tot = int(kcnt.sum())
    if tot == 0:
        return _empty_top2()
    group = np.repeat(np.arange(kcols.size, dtype=np.int64), kcnt)
    # flat CSC positions of every (bidding column, edge) pair
    starts_of = np.concatenate(([0], np.cumsum(kcnt)))[:-1]
    flat = np.arange(tot, dtype=np.int64) + np.repeat(cp[kcols] - starts_of, kcnt)
    rows_e = ir[flat]
    w_e = w[flat] + bias
    profit = w_e - price[rows_e]
    order = np.lexsort((rows_e, -profit, group))
    g_s, r_s, p_s, w_s = group[order], rows_e[order], profit[order], w_e[order]
    first = np.empty(g_s.size, dtype=bool)
    first[0] = True
    np.not_equal(g_s[1:], g_s[:-1], out=first[1:])
    starts = np.flatnonzero(first)
    nxt = starts + 1
    has2 = nxt < g_s.size
    has2[has2] = ~first[nxt[has2]]  # next entry must belong to the same group
    second = np.full(starts.size, _NEG_INF)
    second[has2] = p_s[nxt[has2]]
    return kcols, p_s[starts], r_s[starts], w_s[starts], second


def combine_partials(
    cols: np.ndarray,
    best: np.ndarray,
    best_row: np.ndarray,
    best_w: np.ndarray,
    second: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Merge per-block (best, second) partials into global per-column top-2.

    Each input entry is one block's :func:`top2_cols` result for a column;
    a column may appear once per block holding its edges.  The winner is
    the partial with the largest best profit (ties: smallest row), and the
    global second-best is the max of every partial's ``second`` and the
    best of every NON-winning partial — the associative (best, second)
    combine, evaluated in one vectorized pass.  Returns arrays with one
    entry per distinct column, sorted ascending by column id.
    """
    if cols.size == 0:
        return _empty_top2()
    order = np.lexsort((best_row, -best, cols))
    c_s = cols[order]
    b_s, r_s, w_s, s_s = best[order], best_row[order], best_w[order], second[order]
    first = np.empty(c_s.size, dtype=bool)
    first[0] = True
    np.not_equal(c_s[1:], c_s[:-1], out=first[1:])
    starts = np.flatnonzero(first)
    grp = np.cumsum(first) - 1
    # max of every partial's own second-best (includes the winner's)
    smax = np.full(starts.size, _NEG_INF)
    np.maximum.at(smax, grp, s_s)
    # best profit of the runner-up partial (the entry right after the winner)
    nxt = starts + 1
    has2 = nxt < c_s.size
    has2[has2] = ~first[nxt[has2]]
    b2 = np.full(starts.size, _NEG_INF)
    b2[has2] = b_s[nxt[has2]]
    return c_s[starts], b_s[starts], r_s[starts], w_s[starts], np.maximum(smax, b2)


def compute_bids(
    best: np.ndarray,
    best_w: np.ndarray,
    second: np.ndarray,
    delta: float,
    sec_floor: float,
) -> np.ndarray:
    """The Bertsekas bid: raise the best item's price until it is only
    ``delta`` more attractive than the second-best option.

    ``bid = w_eff - min(max(second, sec_floor), best) + delta``.  The
    ``sec_floor`` clamp keeps single-edge bidders finite (their second
    profit is -inf); the ``min(·, best)`` clamp keeps bids monotone —
    without it, a bidder whose every profit has sunk below the floor
    would compute a bid BELOW the item's current price, and a Jacobi
    round that accepted it would move prices backwards, breaking both
    termination and the standing matches' ε-complementary slackness.
    With the clamps, ``bid >= price + delta`` always (minimal escalation
    in the desperate case) and the accepted pair's new profit
    ``min(max(second, floor), best) - delta >= second - delta`` keeps
    ε-CS in every branch.
    """
    return best_w - np.minimum(np.maximum(second, sec_floor), best) + delta


def resolve_bids(
    rows: np.ndarray, bids: np.ndarray, bidders: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-item max-bid resolution: one winner per row, ties to the
    smallest bidder id.

    Rides the shared :func:`~repro.sparse.semiring.reduce_candidates`
    kernel with a FLOAT comparison key — the weighted (profit, bidder)
    payload shape the kernel's dtype generalization exists for.  The
    pre-sort by bidder makes the stable first-wins reduction deterministic
    regardless of the arrival order of routed bids.
    """
    rows = np.asarray(rows, np.int64)
    bids = np.asarray(bids, np.float64)
    bidders = np.asarray(bidders, np.int64)
    order = np.argsort(bidders, kind="stable")
    return reduce_candidates(
        rows[order], bids[order], bidders[order], SR_MAX_PARENT
    )


def build_csc(
    nrows: int, ncols: int, rows: np.ndarray, cols: np.ndarray, *vals: np.ndarray
) -> tuple[np.ndarray, ...]:
    """Dense-pointer CSC arrays ``(cp, ir, *vals)`` from weighted triples.

    Unlike :class:`~repro.sparse.dcsc.DCSC` this keeps a pointer per column
    (auction blocks are dense in columns and need O(1) per-column access),
    and carries float64 values — any number of parallel value arrays (the
    doubled matrix ships effective AND original weights) are permuted into
    the same (col, row)-sorted order.  Rows within a column are ascending.
    """
    rows = np.asarray(rows, np.int64)
    cols = np.asarray(cols, np.int64)
    order = np.lexsort((rows, cols))
    rows, cols = rows[order], cols[order]
    cp = np.zeros(ncols + 1, dtype=np.int64)
    np.cumsum(np.bincount(cols, minlength=ncols), out=cp[1:])
    return (cp, rows, *(np.asarray(v, np.float64)[order] for v in vals))


def lookup_pair_weights(
    n1: int,
    cp: np.ndarray,
    ir: np.ndarray,
    w: np.ndarray,
    qrows: np.ndarray,
    qcols: np.ndarray,
) -> np.ndarray:
    """Weights of query edges ``(qrows[k], qcols[k])`` against a CSC graph
    (0.0 for absent edges).  The CSC's (col, row)-sorted order makes the
    composite key ``col * (n1 + 1) + row`` strictly increasing, so one
    vectorized searchsorted answers every query."""
    if ir.size == 0 or qrows.size == 0:
        return np.zeros(qrows.size)
    stride = np.int64(n1 + 1)
    cols_e = np.repeat(np.arange(cp.size - 1, dtype=np.int64), np.diff(cp))
    keys = cols_e * stride + ir
    q = np.asarray(qcols, np.int64) * stride + np.asarray(qrows, np.int64)
    pos = np.searchsorted(keys, q)
    out = np.zeros(q.size)
    inb = pos < keys.size
    hit = np.flatnonzero(inb)
    hit = hit[keys[pos[hit]] == q[hit]]
    out[hit] = w[pos[hit]]
    return out


def extract_matchings(
    n1: int, n2: int, mate_item: np.ndarray
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Split a doubled-graph perfect matching into its two G-matchings.

    ``mate_item[g]`` is the bidder matched to item ``g`` of G'.  Returns
    ``((rows1, cols1), (rows2, cols2))``: the real-block pairs (item < n1
    matched to a bidder < n2) and the transpose-block pairs, both sorted
    by the item index that produced them — the canonical order every rank
    and grid shape reproduces identically.
    """
    m1 = np.flatnonzero((mate_item[:n1] != NULL) & (mate_item[:n1] < n2))
    pairs1 = (m1, mate_item[m1])
    tr = mate_item[n1:n1 + n2]
    m2 = np.flatnonzero(tr >= n2)
    pairs2 = (tr[m2] - np.int64(n2), m2)
    return pairs1, pairs2


def matched_weight(
    cp: np.ndarray, ir: np.ndarray, w: np.ndarray, mate_of_row: np.ndarray,
    col_offset: int = 0,
) -> float:
    """Sum of ORIGINAL edge weights selected by a row-mate vector over one
    CSC block.  ``mate_of_row[r]`` is the global mate column of local row r
    (NULL if unmatched); block columns map to global ids via
    ``col_offset``.  Each edge lives in exactly one block, so summing the
    per-block results gives the global matching weight.
    """
    if w.size == 0:
        return 0.0
    cols_e = np.repeat(np.arange(cp.size - 1, dtype=np.int64), np.diff(cp))
    hit = mate_of_row[ir] == cols_e + col_offset
    return float(w[hit].sum())
