"""MWM-DIST: distributed maximum WEIGHT matching via ε-scaled auctions.

The weighted sibling of :mod:`repro.matching.mcm_dist` — same SPMD
discipline (rank-local blocks and vector slices, all coordination through
collectives), but the phase engine is a synchronized Bertsekas auction on
the DOUBLED perfect-assignment graph (see :mod:`repro.matching.auction`
for why the doubling is what makes ε-scaling sound).

One bidding round, as it appears on the wire:

1. **bid** — every rank lists its unmatched bidder columns, expands them
   along the grid COLUMN (one allgatherv: each rank of the column needs
   the full bidder set to scan its block), and runs the
   (select, +)-semiring block kernel :func:`~repro.matching.auction.top2_cols`
   against the block-replicated item prices.  Per-block (best, second)
   partials are routed along the grid column to each bidder's owner rank
   and merged (:func:`~repro.matching.auction.combine_partials`); the
   Bertsekas bid is computed from the combined top-2.
2. **resolve** — bids travel one grid-wide all-to-all to the item owners;
   each item keeps its highest bid (ties to the smallest bidder — the
   float-keyed :func:`~repro.sparse.semiring.reduce_candidates`), evicts
   its previous mate, and raises its price to the winning bid.  Mate
   updates fan out to the bidder owners (winners and evictees are
   disjoint sets, so one routed message serves both), and accepted prices
   replicate along the grid ROW into every block copy.
3. **quiescence** — one 2-word allreduce carries (active bidders,
   accepted bids); the phase ends when no bidder was active.

All bids of a round are computed against the same round-start prices
(Jacobi), and every tie-break is by smallest id, so the mate vectors are
bit-identical to :func:`repro.matching.reference.auction_twin.auction_mwm_serial`
on every grid shape, backend, and aggregation setting.

Checkpointing rides the phase-boundary protocol of the cardinality
engine, but snapshots the item PRICES alongside the doubled mate vectors
(the :class:`~repro.runtime.checkpoint.Checkpoint` ``aux`` slot): mates
alone are not a valid auction restart point — a phase resumed with zeroed
prices would forfeit the warm start the earlier ε-phases paid for.
"""

from __future__ import annotations

import numpy as np

from ..distmat.distvec import DistDenseVec
from ..distmat.grid import ProcGrid
from ..distmat.ops import allgather_arrays, route
from ..distmat.wspmat import DistWeightedMatrix
from ..runtime import spmd
from ..runtime.checkpoint import Checkpoint, CheckpointStore
from ..runtime.comm import SUM, Communicator
from ..runtime.trace import tspan
from ..sparse.coo import COO
from ..sparse.spvec import NULL
from .auction import (
    combine_partials,
    compute_bids,
    dedup_edges,
    delta_schedule,
    double_for_assignment,
    resolve_bids,
)
from .mcm_dist import (
    DistStats,
    _local_by_alg,
    _local_physical,
    _phase_boundary,
    merge_by_alg,
    merge_physical,
)


def _gather_prices(grid: ProcGrid, mate_item: DistDenseVec, price_own: np.ndarray) -> np.ndarray:
    """Assemble the global item-price vector (collective).

    ``price_own`` is this rank's row-vector sub-chunk, aligned with
    ``mate_item.local``; the float analogue of ``DistDenseVec.to_global``.
    """
    pieces = grid.comm.allgather((mate_item.lo, price_own))
    out = np.zeros(mate_item.n)
    for lo, arr in pieces:
        out[lo:lo + arr.size] = arr
    return out


def _save_auction_checkpoint(
    grid: ProcGrid,
    store: CheckpointStore,
    phase: int,
    mate_item: DistDenseVec,
    mate_bidder: DistDenseVec,
    price_own: np.ndarray,
    stats: DistStats,
) -> None:
    """Snapshot (doubled mates, item prices) after a completed ε-phase.

    Same write/barrier discipline as the cardinality engine's
    ``_save_checkpoint`` — rank 0 is the single writer, and no rank passes
    the closing barrier (toward the next crashable phase boundary) before
    the snapshot is durable.
    """
    with tspan(grid.comm, "checkpoint", cat="phase", phase=phase):
        g_item = mate_item.to_global()
        g_bidder = mate_bidder.to_global()
        prices = _gather_prices(grid, mate_item, price_own)
        if grid.comm.rank == 0:
            store.save(Checkpoint(
                phase=phase, mate_row=g_item, mate_col=g_bidder,
                rng_state=None, aux={"prices": prices},
            ))
        grid.comm.barrier()
        stats.checkpoint_words += g_item.size + g_bidder.size + prices.size + 2


def mwm_dist_spmd(
    comm: Communicator,
    coo_on_root: "COO | None",
    weights_on_root: "np.ndarray | None",
    pr: int,
    pc: int,
    *,
    epsilon: float = 0.05,
    cardinality_bias: float = 0.0,
    max_rounds: int = 1_000_000,
    checkpoint_every: int = 0,
    checkpoint_store: "CheckpointStore | None" = None,
    resume: "Checkpoint | None" = None,
) -> tuple[np.ndarray, np.ndarray, DistStats]:
    """The per-rank body of MWM-DIST (launch via :func:`run_mwm_dist`).

    ``coo_on_root``/``weights_on_root`` live on rank 0 (None elsewhere).
    Returns globally assembled ``(mate_r, mate_c, stats)`` on every rank,
    a matching of the ORIGINAL graph with
    ``weight >= (1 - epsilon) * OPT`` over positive weights;
    ``stats.matching_weight`` carries the objective and
    ``stats.auction_prices`` the final doubled-graph prices (for ε-CS
    assertions).  ``cardinality_bias`` trades weight for cardinality by
    shifting real edges against the zero-weight dummy diagonal (>= 1
    makes any real edge beat going unmatched).
    """
    grid = ProcGrid(comm, pr, pc)
    stats = DistStats()
    stats.epsilon = float(epsilon)

    # -- problem setup: root doubles the graph, every rank derives the
    # identical schedule from the broadcast header -------------------------------
    if comm.rank == 0:
        assert coo_on_root is not None and weights_on_root is not None
        n1, n2 = coo_on_root.nrows, coo_on_root.ncols
        # parallel edges collapse to their heaviest copy (the only one an
        # auction could transact) — same kernel as the serial twin, so the
        # two engines see the identical edge list
        e_rows, e_cols, w_in = dedup_edges(
            coo_on_root.rows, coo_on_root.cols, weights_on_root
        )
        scale = float(w_in.max()) if w_in.size else 0.0
        header = (n1, n2, scale)
    else:
        header = None
    n1, n2, scale = comm.bcast(header, root=0)
    stats.weight_scale = scale
    bias_add = cardinality_bias * scale
    scale_eff = scale + bias_add
    schedule = delta_schedule(scale_eff, n1 + n2, epsilon) if scale > 0.0 else []
    sec_floor = -(scale_eff + 1.0)

    if comm.rank == 0:
        N, dr, dc, dweff, dworig = double_for_assignment(
            n1, n2, e_rows, e_cols, w_in, bias_add
        )
        doubled = COO(N, N, dr, dc, dedup=False)  # groups are disjoint by construction
    else:
        doubled, dweff, dworig = None, None, None
    A = DistWeightedMatrix.scatter_from_root(grid, doubled, dweff, weights2=dworig)
    N = A.nrows

    mate_item = DistDenseVec(grid, N, "row")     # item -> bidder
    mate_bidder = DistDenseVec(grid, N, "col")   # bidder -> item
    # item prices: this rank's row-vector sub-chunk + its row-block replica
    price_own = np.zeros(mate_item.hi - mate_item.lo)
    price_blk = np.zeros(A.row_hi - A.row_lo)

    start_phase = 0
    if resume is not None:
        mate_item.local[:] = resume.mate_row[mate_item.lo:mate_item.hi]
        mate_bidder.local[:] = resume.mate_col[mate_bidder.lo:mate_bidder.hi]
        prices_g = resume.aux["prices"] if resume.aux else np.zeros(N)
        price_own[:] = prices_g[mate_item.lo:mate_item.hi]
        price_blk[:] = prices_g[A.row_lo:A.row_hi]
        start_phase = resume.phase
    elif checkpoint_store is not None:
        # phase-0 snapshot: uniform restart bookkeeping with the MCM engine
        _save_auction_checkpoint(
            grid, checkpoint_store, 0, mate_item, mate_bidder, price_own, stats
        )

    rounds = bids_local = updates_local = price_words_local = 0
    for phase_no in range(start_phase + 1, len(schedule) + 1):
        delta = schedule[phase_no - 1]
        stats.phases = phase_no
        _phase_boundary(grid, phase_no)
        with tspan(grid.comm, "phase", cat="phase", phase=phase_no):
            # each ε-phase restarts the assignment; prices persist (sound
            # for PERFECT assignment — the price sums cancel in the bound)
            mate_item.local.fill(NULL)
            mate_bidder.local.fill(NULL)
            while True:
                if rounds >= max_rounds:
                    raise RuntimeError(f"auction exceeded {max_rounds} rounds")
                with tspan(grid.comm, "auction_round", cat="phase", round=rounds + 1):
                    with tspan(grid.comm, "bid"):
                        # expand: every rank of the grid column needs the
                        # column's full unmatched-bidder set for its block
                        lbidders = np.flatnonzero(mate_bidder.local == NULL) + mate_bidder.lo
                        pieces = grid.colcomm.allgatherv((lbidders,))
                        gcols = np.concatenate([p[0] for p in pieces])
                        kcols, best, brow, bw, second = A.top2(gcols, price_blk)
                        # fold the per-block partials at each bidder's owner
                        sub, _blk = A.col_vecmap.owner(kcols)
                        cc, cb, cr, cw, cs = route(
                            grid.colcomm, sub, kcols, best, brow, bw, second
                        )
                        cc, cb, cr, cw, cs = combine_partials(cc, cb, cr, cw, cs)
                        bids = compute_bids(cb, cw, cs, delta, sec_floor)
                    with tspan(grid.comm, "resolve"):
                        # per-item max-bid resolution at the item owners
                        rrow, rbid, rbidder = route(
                            grid.comm, mate_item.owner_of(cr), cr, bids, cc
                        )
                        ridx, wbid, winner = resolve_bids(rrow, rbid, rbidder)
                        prev = mate_item.get_local(ridx)
                        mate_item.set_local(ridx, winner)
                        price_own[ridx - mate_item.lo] = wbid
                        # winners were unmatched at round start and evictees
                        # matched, so the sets are disjoint: one routed
                        # message updates both at the bidder owners
                        ev = prev[prev != NULL]
                        nb = np.concatenate([winner, ev])
                        nv = np.concatenate([ridx, np.full(ev.size, NULL, np.int64)])
                        bb, bv = route(grid.comm, mate_bidder.owner_of(nb), nb, nv)
                        mate_bidder.set_local(bb, bv)
                        # replicate accepted prices along the grid row into
                        # every block copy of this row block
                        for gi, gp in allgather_arrays(grid.rowcomm, ridx, wbid):
                            price_blk[gi - A.row_lo] = gp
                        price_words_local += 2 * int(ridx.size) * (grid.pc - 1)
                        updates_local += int(ridx.size)
                    # quiescence: 2 words carry (active bidders, accepts)
                    counts = grid.comm.allreduce(
                        np.array([lbidders.size, ridx.size], np.int64), op=SUM
                    )
                if counts[0] == 0:
                    break  # the round was a no-op: perfect assignment stands
                rounds += 1
                bids_local += int(lbidders.size)
            if (
                checkpoint_store is not None
                and checkpoint_every > 0
                and phase_no % checkpoint_every == 0
            ):
                _save_auction_checkpoint(
                    grid, checkpoint_store, phase_no,
                    mate_item, mate_bidder, price_own, stats,
                )

    # -- extraction: the better of the two G-matchings the assignment picked.
    # Pairs are assembled in the canonical item-index order on EVERY rank, so
    # the float weight sums (and hence the M1-vs-M2 choice) are grid-invariant
    # and bit-identical to the serial twin's.
    mate_item_g = mate_item.to_global()
    w_orig = A.w2 if A.w2 is not None else np.zeros(0)
    cols_e = np.repeat(np.arange(A.cp.size - 1, dtype=np.int64), np.diff(A.cp))
    grows = A.ir + A.row_lo
    gcols = cols_e + A.col_lo
    matched = mate_item_g[grows] == gcols if grows.size else np.zeros(0, bool)
    m1 = matched & (grows < n1) & (gcols < n2)
    m2 = matched & (grows >= n1) & (gcols >= n2)
    p1 = allgather_arrays(grid.comm, grows[m1], gcols[m1], w_orig[m1])
    p2 = allgather_arrays(grid.comm, gcols[m2] - np.int64(n2), grows[m2] - np.int64(n1),
                          w_orig[m2])
    cand = []
    for pieces, sort_key in ((p1, 0), (p2, 1)):
        ii = np.concatenate([p[0] for p in pieces])
        jj = np.concatenate([p[1] for p in pieces])
        ww = np.concatenate([p[2] for p in pieces])
        # the twin enumerates M1 by item (row) index and M2 by column index
        order = np.argsort(ii if sort_key == 0 else jj)
        ii, jj, ww = ii[order], jj[order], ww[order]
        cand.append((ii, jj, ww, float(ww[ww > 0].sum())))
    ii, jj, ww, weight = cand[1] if cand[1][3] > cand[0][3] else cand[0]
    pos = ww > 0.0  # never keep a zero/negative-weight or dummy-backed pair
    g_mate_r = np.full(n1, NULL, dtype=np.int64)
    g_mate_c = np.full(n2, NULL, dtype=np.int64)
    g_mate_r[ii[pos]] = jj[pos]
    g_mate_c[jj[pos]] = ii[pos]

    stats.matching_weight = weight
    stats.final_cardinality = int(pos.sum())
    stats.auction_rounds = rounds
    totals = grid.comm.allreduce(
        np.array([bids_local, updates_local, price_words_local], np.int64), op=SUM
    )
    stats.bids_placed = int(totals[0])
    stats.price_updates = int(totals[1])
    stats.price_words = int(totals[2])
    stats.auction_prices = _gather_prices(grid, mate_item, price_own)
    # snapshot BEFORE the summing collectives so they don't count themselves
    words = np.array(
        [
            grid.colcomm.stats.words_sent,
            grid.rowcomm.stats.words_sent,
            grid.comm.stats.words_sent,
        ],
        dtype=np.int64,
    )
    words = grid.comm.allreduce(words, op=SUM)
    stats.expand_words = int(words[0])
    stats.fold_words = int(words[1])
    stats.total_words = int(words[0] + words[1] + words[2])
    stats.comm_by_alg = _local_by_alg(grid)
    stats.comm_messages, stats.frames, stats.frame_words = _local_physical(grid)
    return g_mate_r, g_mate_c, stats


def _mwm_rank_main(
    comm: Communicator, coo: COO, weights: np.ndarray, pr: int, pc: int, **mwm_kwargs
):
    """Per-rank entry point of :func:`run_mwm_dist` (module-level so a
    process backend can pickle it)."""
    data = (coo, weights) if comm.rank == 0 else (None, None)
    return mwm_dist_spmd(comm, data[0], data[1], pr, pc, **mwm_kwargs)


def run_mwm_dist(
    coo: COO,
    weights: np.ndarray,
    pr: int,
    pc: int,
    *,
    epsilon: float = 0.05,
    cardinality_bias: float = 0.0,
    max_rounds: int = 1_000_000,
    timeout: "float | None" = None,
    verify: bool = False,
    faults=None,
    comm_config=None,
    trace: "bool | str" = False,
    backend: "str | None" = None,
) -> tuple[np.ndarray, np.ndarray, DistStats]:
    """Launch MWM-DIST on a simulated pr × pc process grid.

    The weighted matrix starts on rank 0 and is scattered (doubled into
    the perfect-assignment form first); the returned mate vectors describe
    a matching of the ORIGINAL graph with
    ``weight >= (1 - epsilon) * OPT`` (positive weights).  All the
    runtime knobs (``verify``, ``faults``, ``comm_config``, ``trace``,
    ``backend``, ``timeout``) behave exactly as in
    :func:`~repro.matching.mcm_dist.run_mcm_dist`; this entry point has
    no recovery — use
    :func:`~repro.runtime.executor.run_mwm_dist_resilient` to survive
    injected crashes.
    """
    from ..runtime.executor import resolve_timeout

    result = spmd(
        pr * pc, _mwm_rank_main, coo, weights, pr, pc,
        timeout=resolve_timeout(timeout, default=120.0),
        verify=verify, faults=faults, comm_config=comm_config, trace=trace,
        backend=backend,
        epsilon=epsilon, cardinality_bias=cardinality_bias, max_rounds=max_rounds,
    )
    mate_r, mate_c, stats = result[0]
    stats.comm_by_alg = merge_by_alg(result.values)
    merge_physical(stats, result.values)
    stats.verify_summary = result.verify_summary
    if result.trace is not None:
        stats.trace = result.trace
    return mate_r, mate_c, stats
