"""Matching algorithms: the paper's contribution and every baseline.

Layout
------

Serial references (oracles and the "shared-memory comparator" of §VI-E):

* :mod:`~repro.matching.hopcroft_karp` — O(m√n) Hopcroft-Karp;
* :mod:`~repro.matching.pothen_fan` — multi-source DFS with lookahead;
* :mod:`~repro.matching.single_source` — obviously-correct O(mn) BFS MCM;
* :mod:`~repro.matching.maximal` — serial greedy / Karp-Sipser / dynamic
  mindegree initializers.

The matrix-algebraic formulation (Section III):

* :mod:`~repro.matching.msbfs` — Algorithm 2 (MS-BFS MCM) written in the
  Table I primitives over global arrays, with instrumentation hooks the
  execution-driven performance simulator attaches to;
* :mod:`~repro.matching.augment` — Algorithm 3 (level-parallel) and
  Algorithm 4 (path-parallel RMA) augmentation plus the k < 2p² switch;
* :mod:`~repro.matching.maximal_rounds` — the round-synchronous distributed
  initializers of the authors' companion paper [21].

The true distributed implementations:

* :mod:`~repro.matching.mcm_dist` — MCM-DIST running SPMD over
  :mod:`repro.distmat` and :mod:`repro.runtime` (each rank owns only its
  DCSC block and vector slices);
* :mod:`~repro.matching.mwm_dist` — MWM-DIST, the maximum WEIGHT sibling:
  ε-scaled synchronized auctions on the doubled perfect-assignment graph,
  sharing the pure-NumPy round kernels of :mod:`~repro.matching.auction`
  with the serial oracle twin
  (:mod:`~repro.matching.reference.auction_twin`); the exact O(n³)
  Hungarian reference lives in :mod:`~repro.matching.reference.hungarian`.

Validation:

* :mod:`~repro.matching.validate` — matching validity, maximality, and a
  König-theorem vertex-cover certificate that proves *maximum*ality without
  an external oracle.

Public API: :func:`repro.matching.api.maximum_matching` and
:func:`repro.matching.api.maximal_matching`.
"""

from .validate import (
    cardinality,
    is_maximal_matching,
    is_valid_matching,
    koenig_vertex_cover,
    verify_maximum,
)
from .hopcroft_karp import hopcroft_karp
from .pothen_fan import pothen_fan
from .single_source import single_source_mcm
from .maximal import greedy_maximal, karp_sipser, dynamic_mindegree
from .msbfs import MsBfsHooks, MatchingStats, ms_bfs_mcm, run_phase
from .augment import augment_level_parallel, augment_path_parallel, choose_augment_mode
from .maximal_rounds import greedy_rounds, karp_sipser_rounds, mindegree_rounds, MaximalHooks
from .graft import ms_bfs_graft
from .push_relabel import push_relabel_mcm
from .reference import auction_mwm_serial, hungarian_mwm
from .mwm_dist import run_mwm_dist
from .api import maximum_matching, maximal_matching, maximum_weight_matching

__all__ = [
    "MatchingStats",
    "MaximalHooks",
    "MsBfsHooks",
    "auction_mwm_serial",
    "augment_level_parallel",
    "augment_path_parallel",
    "cardinality",
    "hungarian_mwm",
    "choose_augment_mode",
    "dynamic_mindegree",
    "greedy_maximal",
    "greedy_rounds",
    "hopcroft_karp",
    "is_maximal_matching",
    "is_valid_matching",
    "karp_sipser",
    "karp_sipser_rounds",
    "koenig_vertex_cover",
    "maximal_matching",
    "maximum_matching",
    "maximum_weight_matching",
    "mindegree_rounds",
    "run_mwm_dist",
    "ms_bfs_graft",
    "ms_bfs_mcm",
    "pothen_fan",
    "push_relabel_mcm",
    "run_phase",
    "single_source_mcm",
    "verify_maximum",
]
