"""Matching validation and the König optimality certificate.

``verify_maximum`` proves a matching is maximum *without any oracle*: by
König's theorem, in a bipartite graph the size of a maximum matching equals
the size of a minimum vertex cover; exhibiting a vertex cover whose size
equals the matching's cardinality certifies both optimal.  The cover is
constructed from the alternating-BFS reachability set of the final (empty)
phase, so this is also an end-to-end check of the search machinery itself.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import CSC
from ..sparse.spvec import NULL


def cardinality(mate: np.ndarray) -> int:
    """Number of matched vertices on one side = matching cardinality."""
    return int((np.asarray(mate) != NULL).sum())


def is_valid_matching(a: CSC, mate_r: np.ndarray, mate_c: np.ndarray) -> bool:
    """Check the two mate vectors describe a matching of graph ``a``:

    * mutual: ``mate_c[mate_r[i]] == i`` for every matched row (and vice
      versa) — no vertex is claimed twice;
    * real: every matched pair is an edge of the graph.
    """
    mate_r = np.asarray(mate_r, dtype=np.int64)
    mate_c = np.asarray(mate_c, dtype=np.int64)
    if mate_r.size != a.nrows or mate_c.size != a.ncols:
        return False
    rows = np.flatnonzero(mate_r != NULL)
    cols = mate_r[rows]
    if cols.size and (cols.min() < 0 or cols.max() >= a.ncols):
        return False
    if not np.array_equal(mate_c[cols], rows):
        return False
    ccols = np.flatnonzero(mate_c != NULL)
    if ccols.size != cols.size or not np.array_equal(np.sort(cols), ccols):
        return False
    # edge existence: binary search each matched pair in its CSC column
    for r, c in zip(rows.tolist(), cols.tolist()):
        col = a.column(c)
        pos = np.searchsorted(col, r)
        if pos >= col.size or col[pos] != r:
            return False
    return True


def is_maximal_matching(a: CSC, mate_r: np.ndarray, mate_c: np.ndarray) -> bool:
    """No edge may have both endpoints unmatched."""
    unmatched_cols = np.flatnonzero(np.asarray(mate_c) == NULL)
    for c in unmatched_cols.tolist():
        col = a.column(c)
        if col.size and (np.asarray(mate_r)[col] == NULL).any():
            return False
    return True


def _alternating_reachable(a: CSC, mate_r: np.ndarray, mate_c: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vertices reachable from unmatched columns by alternating paths
    (unmatched edge from C to R, matched edge back from R to C).

    Returns boolean masks ``(reach_c, reach_r)``.
    """
    reach_c = np.zeros(a.ncols, dtype=bool)
    reach_r = np.zeros(a.nrows, dtype=bool)
    frontier = np.flatnonzero(np.asarray(mate_c) == NULL)
    reach_c[frontier] = True
    while frontier.size:
        # all rows adjacent to frontier columns (any edge from C-side is
        # non-matched for unmatched cols; for matched cols every edge except
        # the matched one — but traversing the matched edge backwards would
        # just revisit its column, so exploring all edges is equivalent)
        from .msbfs import _explode_rows  # local import to avoid a cycle

        rows = _explode_rows(a, frontier)
        rows = rows[~reach_r[rows]]
        if rows.size == 0:
            break
        rows = np.unique(rows)
        reach_r[rows] = True
        mates = np.asarray(mate_r)[rows]
        nxt = mates[mates != NULL]
        nxt = nxt[~reach_c[nxt]]
        frontier = np.unique(nxt)
        reach_c[frontier] = True
    return reach_c, reach_r


def koenig_vertex_cover(a: CSC, mate_r: np.ndarray, mate_c: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """König construction: with Z the alternating-reachability set from
    unmatched columns, the cover is (C \\ Z) ∪ (R ∩ Z).

    Returns ``(cover_rows_mask, cover_cols_mask)``.
    """
    reach_c, reach_r = _alternating_reachable(a, mate_r, mate_c)
    return reach_r.copy(), ~reach_c


def is_vertex_cover(a: CSC, cover_rows: np.ndarray, cover_cols: np.ndarray) -> bool:
    """Every edge must have at least one covered endpoint."""
    coo = a.to_coo()
    covered = cover_rows[coo.rows] | cover_cols[coo.cols]
    return bool(covered.all())


def verify_maximum(a: CSC, mate_r: np.ndarray, mate_c: np.ndarray) -> bool:
    """Self-contained maximum-matching certificate.

    True iff the mate vectors are a valid matching AND the König cover built
    from them (i) covers all edges and (ii) has size equal to the matching
    cardinality.  By weak LP duality any cover is ≥ any matching, so equality
    proves both are optimal.
    """
    if not is_valid_matching(a, mate_r, mate_c):
        return False
    cover_rows, cover_cols = koenig_vertex_cover(a, mate_r, mate_c)
    if not is_vertex_cover(a, cover_rows, cover_cols):
        return False
    return int(cover_rows.sum() + cover_cols.sum()) == cardinality(mate_r)
