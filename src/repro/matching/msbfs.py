"""Algorithm 2: the matrix-algebraic MS-BFS maximum-matching search.

This module is the paper's Figure 1 / Algorithm 2 written over the Table I
primitives with NumPy-global state.  It is *numerically identical* to the
distributed implementation (``mcm_dist``) — both compose the same seven
steps — and serves three roles:

1. the fast single-process reference implementation of the public API;
2. the execution engine of the performance simulator: the
   :class:`MsBfsHooks` callbacks expose, per superstep, exactly the
   quantities the α-β model needs (frontier sizes, edges touched, candidate
   destinations, prune volumes), measured from the real run;
3. the semantics oracle the SPMD implementation is tested against.

Each phase grows vertex-disjoint alternating BFS trees from all unmatched
columns, records at most one augmenting path per tree (keyed by root in the
dense ``path_c``), optionally prunes trees that already found a path
(Section VI-D studies the impact), and finally augments by all discovered
paths at once.  Phases repeat until one finds no augmenting path, which by
Berge's theorem certifies maximum cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.csc import CSC, ragged_gather
from ..sparse.semiring import SR_MIN_PARENT, Semiring, reduce_candidates
from ..sparse.spvec import NULL, VertexFrontier
from .augment import AugmentStats, augment_auto


def _explode_rows(a: CSC, cols: np.ndarray) -> np.ndarray:
    """All row indices adjacent to ``cols`` (with multiplicity)."""
    rows, _ = ragged_gather(a.indptr, a.indices, cols)
    return rows


class MsBfsHooks:
    """Instrumentation callbacks; the default implementation is a no-op.

    The performance simulator subclasses this and converts each event into
    priced supersteps.  All array arguments are read-only views of live
    algorithm state — implementations must not mutate them.
    """

    def on_phase_start(self, fc_nnz: int) -> None:
        """A phase begins with ``fc_nnz`` unmatched columns on the frontier."""

    def on_spmv(self, fc: VertexFrontier, cand_rows: np.ndarray, cand_cols: np.ndarray, fr: VertexFrontier) -> None:
        """Step 1 done top-down: ``cand_*`` are the exploded edge endpoints
        (the fold traffic); ``fr`` the reduced row frontier (before Step 2's
        filter)."""

    def on_spmv_bottomup(self, fc: VertexFrontier, cand_rows: np.ndarray, cand_cols: np.ndarray, fr: VertexFrontier, unvisited: np.ndarray) -> None:
        """Step 1 done bottom-up (direction-optimized): the ``unvisited``
        rows scanned their adjacency against a dense frontier bitmap.
        ``cand_*`` are the edges that hit the frontier; in distributed terms
        the frontier's (idx, root) pairs are allgathered along grid columns
        and packed into a dense per-block ``root_of`` array, and the
        unvisited row ids are allgathered along grid rows."""

    def on_select_set(self, fr: VertexFrontier, ufr: VertexFrontier) -> None:
        """Steps 2-4 done: frontier filtered to matched (``fr``) and
        unmatched (``ufr``) row subsets."""

    def on_invert_paths(self, ufr: VertexFrontier) -> None:
        """Step 5: INVERT of the unmatched rows' roots — (row, root) pairs
        travel to the root owners (alltoall over all p ranks)."""

    def on_prune(self, fr: VertexFrontier, new_path_roots: np.ndarray, kept: int) -> None:
        """Step 6: PRUNE of ψ=fr.nnz against μ=len(new_path_roots)."""

    def on_next_frontier(self, fr: VertexFrontier, fc_cols: np.ndarray) -> None:
        """Step 7: INVERT through mates produced the next column frontier."""

    def on_iteration_end(self, iteration: int) -> None:
        """One level-synchronous iteration of the while loop finished."""

    def on_phase_end(self, paths_found: int, phase_iters: int) -> None:
        """A phase ended having discovered ``paths_found`` augmenting paths."""


@dataclass
class MatchingStats:
    """Execution statistics of one MCM run (useful in tests and benches)."""

    phases: int = 0
    iterations: int = 0
    edges_traversed: int = 0
    paths_per_phase: list[int] = field(default_factory=list)
    augment: AugmentStats = field(default_factory=AugmentStats)
    initial_cardinality: int = 0
    final_cardinality: int = 0

    @property
    def total_paths(self) -> int:
        return sum(self.paths_per_phase)


def _bottom_up_step(
    at: CSC,
    fc: VertexFrontier,
    unvisited: np.ndarray,
    ncols: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Direction-optimized Step 1: unvisited rows scan THEIR adjacency for
    frontier columns, instead of frontier columns pushing to rows.

    ``at`` is the row-major mirror (Aᵀ), computed ONCE per phase by the
    caller — the cached :meth:`CSC.transpose` — never per iteration.  With a
    deterministic semiring the winners are identical to the top-down step's
    (the candidate edge set {(r, c) : c ∈ f_c, r unvisited} is the same;
    only the traversal direction differs), so the switch never changes the
    computed matching.  Returns the hit (cand_rows, cand_cols) and the dense
    ``root_of`` lookup, followed by the shared reduction.
    """
    cand_cols, counts = ragged_gather(at.indptr, at.indices, unvisited)
    cand_rows = np.repeat(unvisited, counts)
    # dense frontier membership + root lookup (the replicated bitmap of the
    # distributed formulation)
    root_of = np.full(ncols, NULL, dtype=np.int64)
    root_of[fc.idx] = fc.root
    hit = root_of[cand_cols] != NULL
    return cand_rows[hit], cand_cols[hit], root_of


def run_phase(
    a: CSC,
    mate_r: np.ndarray,
    mate_c: np.ndarray,
    pi_r: np.ndarray,
    *,
    semiring: Semiring = SR_MIN_PARENT,
    rng: np.random.Generator | None = None,
    prune: bool = True,
    hooks: MsBfsHooks | None = None,
    stats: MatchingStats | None = None,
    direction: str = "topdown",
) -> np.ndarray:
    """One phase of Algorithm 2 (the repeat-until body, lines 3–25).

    Mutates ``pi_r`` (parents of rows visited this phase, NULL elsewhere)
    and returns the dense ``path_c``: ``path_c[j] = i`` records an
    augmenting path from unmatched column j to unmatched row i.

    ``direction`` selects the Step 1 traversal: ``"topdown"`` (the paper's
    SpMV), ``"bottomup"`` (unvisited rows pull from a dense frontier — the
    paper's stated future work), or ``"auto"`` (per-iteration choice by
    comparing the two directions' edge counts, the classic
    direction-optimization rule).
    """
    if direction not in ("topdown", "bottomup", "auto"):
        raise ValueError(f"direction must be topdown/bottomup/auto, got {direction!r}")
    hooks = hooks or MsBfsHooks()
    n2 = a.ncols
    path_c = np.full(n2, NULL, dtype=np.int64)
    # Hoisted out of the iteration loop: the row-major mirror and the row
    # degrees are both cached on the CSC, built at most once per run.
    at = a.transpose() if direction != "topdown" else None
    deg_r = a.row_degrees() if direction != "topdown" else None

    # Initial column frontier: every unmatched column, parent = root = self.
    fc = VertexFrontier.roots_of_self(n2, np.flatnonzero(mate_c == NULL))
    hooks.on_phase_start(fc.nnz)

    iteration = 0
    while fc.nnz:
        iteration += 1
        # -- Step 1: explore neighbors of the column frontier (one BFS step)
        use_bottom_up = direction == "bottomup"
        if direction == "auto":
            top_down_edges = a.spmv_count(fc)
            bottom_up_edges = int(deg_r[pi_r == NULL].sum())
            use_bottom_up = bottom_up_edges < top_down_edges
        if use_bottom_up:
            unvisited = np.flatnonzero(pi_r == NULL)
            cand_rows, cand_cols, root_of = _bottom_up_step(at, fc, unvisited, n2)
            cand_parents = cand_cols
            cand_roots = root_of[cand_cols]
            ridx, rpar, rroot = reduce_candidates(cand_rows, cand_parents, cand_roots, semiring, rng)
            fr = VertexFrontier(a.nrows, ridx, rpar, rroot)
            hooks.on_spmv_bottomup(fc, cand_rows, cand_parents, fr, unvisited)
        else:
            cand_rows, cand_parents, cand_roots, _ = a.explode_frontier(fc)
            ridx, rpar, rroot = reduce_candidates(cand_rows, cand_parents, cand_roots, semiring, rng)
            fr = VertexFrontier(a.nrows, ridx, rpar, rroot)
            hooks.on_spmv(fc, cand_rows, cand_parents, fr)
        if stats is not None:
            stats.edges_traversed += cand_rows.size

        # -- Step 2: keep unvisited rows (SELECT on π_r = -1)
        fr = fr.keep(pi_r[fr.idx] == NULL)
        # -- Step 3: record their parents (SET)
        pi_r[fr.idx] = fr.parent
        # -- Step 4: split into unmatched and matched rows (two SELECTs)
        unmatched = mate_r[fr.idx] == NULL
        ufr = fr.keep(unmatched)
        fr = fr.keep(~unmatched)
        hooks.on_select_set(fr, ufr)

        if ufr.nnz:
            # -- Step 5: store endpoints of new augmenting paths
            # INVERT(ROOT(uf_r)): roots become indices, rows become values;
            # first occurrence wins, and roots that found a path in an
            # earlier iteration (possible only with pruning off) keep the
            # earlier, shorter path.
            hooks.on_invert_paths(ufr)
            troots, first = np.unique(ufr.root, return_index=True)
            fresh = path_c[troots] == NULL
            path_c[troots[fresh]] = ufr.idx[first[fresh]]

            # -- Step 6: prune trees that discovered augmenting paths
            if prune and fr.nnz:
                keep = ~np.isin(fr.root, troots)
                hooks.on_prune(fr, troots, int(keep.sum()))
                fr = fr.keep(keep)

        # -- Step 7: next column frontier = mates of the matched rows, with
        # parents set to the mates themselves and roots carried over
        # (SET + INVERT in the paper's formulation).
        mates = mate_r[fr.idx]
        order = np.argsort(mates)
        fc = VertexFrontier(n2, mates[order], mates[order], fr.root[order])
        hooks.on_next_frontier(fr, mates)
        hooks.on_iteration_end(iteration)
        if stats is not None:
            stats.iterations += 1

    hooks.on_phase_end(int((path_c != NULL).sum()), iteration)
    return path_c


def ms_bfs_mcm(
    a: CSC,
    mate_r: np.ndarray | None = None,
    mate_c: np.ndarray | None = None,
    *,
    semiring: Semiring = SR_MIN_PARENT,
    rng: np.random.Generator | None = None,
    prune: bool = True,
    hooks: MsBfsHooks | None = None,
    augment_mode: str = "auto",
    nprocs_for_switch: int = 1,
    direction: str = "topdown",
) -> tuple[np.ndarray, np.ndarray, MatchingStats]:
    """MCM-DIST's algorithm (Algorithm 2) on global arrays.

    Parameters
    ----------
    a:
        The bipartite graph as an n₁×n₂ pattern matrix.
    mate_r, mate_c:
        Initial matching (e.g. from a maximal-matching initializer); fresh
        unmatched vectors when omitted.  Updated copies are returned.
    semiring:
        Candidate tie-break; ``SR_MIN_PARENT`` reproduces the paper's
        running example, ``SR_RAND_ROOT`` balances tree sizes.
    prune:
        Step 6 on/off — the knob of the paper's Fig. 8 study.
    augment_mode:
        "level" (Algorithm 3), "path" (Algorithm 4) or "auto" (the paper's
        k < 2p² switch, using ``nprocs_for_switch`` processes).

    Returns ``(mate_r, mate_c, stats)``.
    """
    mate_r = np.full(a.nrows, NULL, dtype=np.int64) if mate_r is None else np.asarray(mate_r, np.int64).copy()
    mate_c = np.full(a.ncols, NULL, dtype=np.int64) if mate_c is None else np.asarray(mate_c, np.int64).copy()
    stats = MatchingStats(initial_cardinality=int((mate_r != NULL).sum()))
    pi_r = np.empty(a.nrows, dtype=np.int64)

    while True:
        pi_r.fill(NULL)
        stats.phases += 1
        path_c = run_phase(
            a, mate_r, mate_c, pi_r,
            semiring=semiring, rng=rng, prune=prune, hooks=hooks, stats=stats,
            direction=direction,
        )
        k = int((path_c != NULL).sum())
        stats.paths_per_phase.append(k)
        if k == 0:
            break
        augment_auto(
            path_c, pi_r, mate_r, mate_c,
            mode=augment_mode, nprocs=nprocs_for_switch, stats=stats.augment,
        )

    stats.final_cardinality = int((mate_r != NULL).sum())
    return mate_r, mate_c, stats
