"""Round-synchronous maximal matching — the distributed initializers of [21].

The paper initializes MCM-DIST with a maximal matching computed by the
matrix-algebraic distributed algorithms of the authors' companion paper
(Azad & Buluç, IPDPS 2015 [21]).  Those algorithms are bulk-synchronous
*rounds*: every round all eligible vertices propose to a neighbor via an
SpMV-like exploration, conflicts are resolved (each row accepts one
proposal), the new pairs are matched, and residual degrees are updated.
The three variants differ in who proposes:

* :func:`greedy_rounds` — every unmatched column proposes to its minimum
  still-unmatched neighbor; few rounds, modest quality;
* :func:`karp_sipser_rounds` — degree-1 vertices propose first (their match
  is always safe); falls back to a greedy round when no degree-1 vertex
  exists.  The degree-1 cascades cost MANY extra rounds — this is exactly
  why the paper finds distributed Karp-Sipser slow (Fig. 3) despite its
  better approximation ratio;
* :func:`mindegree_rounds` — only currently-minimum-degree columns propose
  (dynamic mindegree); quality close to Karp-Sipser at a fraction of the
  rounds, which is why the paper adopts it as the default initializer.

:class:`MaximalHooks` exposes every round's exploration/update traffic to
the execution-driven cost simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csc import CSC, ragged_gather
from ..sparse.spvec import NULL


class MaximalHooks:
    """Per-round instrumentation; default is a no-op.

    ``cand_rows``/``cand_cols`` of :meth:`on_explore` are the endpoints of
    every edge scanned while building proposals (the SpMV fold traffic);
    :meth:`on_update`'s arrays are the endpoints touched by residual-degree
    maintenance.
    """

    def on_explore(self, algo: str, cand_rows: np.ndarray, cand_cols: np.ndarray) -> None:
        """Proposal-building exploration of one round."""

    def on_resolve(self, algo: str, proposals: int) -> None:
        """Conflict resolution among ``proposals`` proposals (alltoall)."""

    def on_update(self, algo: str, rows_touched: np.ndarray, cols_touched: np.ndarray) -> None:
        """Residual degree updates after matching."""

    def on_round_end(self, algo: str, matched_this_round: int, round_index: int) -> None:
        """A bulk-synchronous round completed."""


@dataclass
class RoundsResult:
    mate_r: np.ndarray
    mate_c: np.ndarray
    rounds: int
    edges_scanned: int

    @property
    def cardinality(self) -> int:
        return int((self.mate_r != NULL).sum())


def _fresh(a: CSC) -> tuple[np.ndarray, np.ndarray]:
    return (
        np.full(a.nrows, NULL, dtype=np.int64),
        np.full(a.ncols, NULL, dtype=np.int64),
    )


def _propose_min_unmatched(
    a: CSC, cols: np.ndarray, mate_r: np.ndarray, key_r: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """For each column in ``cols``, pick its best still-unmatched row
    neighbor (min row index, or min ``key_r`` when given).

    Returns ``(prop_cols, prop_rows, cand_rows, cand_cols)`` where the cand
    arrays are ALL scanned edges (for cost accounting).
    """
    cand_rows, counts = ragged_gather(a.indptr, a.indices, cols)
    cand_cols = np.repeat(cols, counts)
    free = mate_r[cand_rows] == NULL
    rows_f, cols_f = cand_rows[free], cand_cols[free]
    if rows_f.size == 0:
        e = np.empty(0, np.int64)
        return e, e.copy(), cand_rows, cand_cols
    sort_key = rows_f if key_r is None else key_r[rows_f]
    order = np.lexsort((rows_f, sort_key, cols_f))
    cols_s, rows_s = cols_f[order], rows_f[order]
    first = np.empty(cols_s.size, dtype=bool)
    first[0] = True
    np.not_equal(cols_s[1:], cols_s[:-1], out=first[1:])
    return cols_s[first], rows_s[first], cand_rows, cand_cols


def _resolve_and_match(
    prop_cols: np.ndarray,
    prop_rows: np.ndarray,
    mate_r: np.ndarray,
    mate_c: np.ndarray,
    key_c: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Each proposed row accepts one proposing column (min index or min
    ``key_c``); matches the winners.  Returns the matched (rows, cols)."""
    if prop_cols.size == 0:
        e = np.empty(0, np.int64)
        return e, e.copy()
    sort_key = prop_cols if key_c is None else key_c[prop_cols]
    order = np.lexsort((prop_cols, sort_key, prop_rows))
    rows_s, cols_s = prop_rows[order], prop_cols[order]
    first = np.empty(rows_s.size, dtype=bool)
    first[0] = True
    np.not_equal(rows_s[1:], rows_s[:-1], out=first[1:])
    wr, wc = rows_s[first], cols_s[first]
    # Second pass: a column may have won several rows (possible when row-side
    # and column-side proposals are combined); keep one row per column.
    order2 = np.argsort(wc, kind="stable")
    wc_s, wr_s = wc[order2], wr[order2]
    first2 = np.empty(wc_s.size, dtype=bool)
    first2[0] = True
    np.not_equal(wc_s[1:], wc_s[:-1], out=first2[1:])
    wr, wc = wr_s[first2], wc_s[first2]
    mate_r[wr] = wc
    mate_c[wc] = wr
    return wr, wc


def greedy_rounds(
    a: CSC,
    hooks: MaximalHooks | None = None,
    rng: np.random.Generator | None = None,
) -> RoundsResult:
    """Round-synchronous greedy maximal matching."""
    hooks = hooks or MaximalHooks()
    mate_r, mate_c = _fresh(a)
    rounds = scanned = 0
    while True:
        cols = np.flatnonzero(mate_c == NULL)
        pc, pr, cr, cc = _propose_min_unmatched(a, cols, mate_r)
        scanned += cr.size
        hooks.on_explore("greedy", cr, cc)
        if pc.size == 0:
            break
        hooks.on_resolve("greedy", pc.size)
        wr, wc = _resolve_and_match(pc, pr, mate_r, mate_c)
        rounds += 1
        hooks.on_round_end("greedy", wr.size, rounds)
    return RoundsResult(mate_r, mate_c, rounds, scanned)


def _decrement_degrees(
    a: CSC,
    at: CSC,
    wr: np.ndarray,
    wc: np.ndarray,
    deg_r: np.ndarray,
    deg_c: np.ndarray,
    hooks: MaximalHooks,
    algo: str,
) -> int:
    """Residual-degree maintenance after matching pairs (wr, wc): every
    unmatched neighbor of a newly matched vertex loses one degree."""
    rows_touched, _ = ragged_gather(a.indptr, a.indices, wc)
    cols_touched, _ = ragged_gather(at.indptr, at.indices, wr)
    if rows_touched.size:
        np.subtract.at(deg_r, rows_touched, 1)
    if cols_touched.size:
        np.subtract.at(deg_c, cols_touched, 1)
    hooks.on_update(algo, rows_touched, cols_touched)
    return rows_touched.size + cols_touched.size


def karp_sipser_rounds(
    a: CSC,
    hooks: MaximalHooks | None = None,
    rng: np.random.Generator | None = None,
) -> RoundsResult:
    """Round-synchronous Karp-Sipser: degree-1 cascades, greedy fallback.

    Every degree-1 round only matches the currently degree-1 vertices, so a
    long chain costs a round per link — the synchronization-heavy behavior
    responsible for Fig. 3's slow distributed Karp-Sipser.
    """
    hooks = hooks or MaximalHooks()
    at = a.transpose()
    mate_r, mate_c = _fresh(a)
    deg_r = a.row_degrees().astype(np.int64).copy()
    deg_c = a.col_degrees().astype(np.int64).copy()
    rounds = scanned = 0

    while True:
        free_c = mate_c == NULL
        free_r = mate_r == NULL
        deg1_c = np.flatnonzero(free_c & (deg_c == 1))
        deg1_r = np.flatnonzero(free_r & (deg_r == 1))
        if deg1_c.size or deg1_r.size:
            # -- degree-1 stage: both sides propose to their unique free
            # neighbor; row-side proposals are mapped to (col -> row) form
            # so one resolution pass covers both.
            pc1, pr1, cr1, cc1 = _propose_min_unmatched(a, deg1_c, mate_r)
            scanned += cr1.size
            hooks.on_explore("karp-sipser", cr1, cc1)
            # rows of degree 1 propose to their unique free column
            pr2, pc2, cc2, cr2 = _propose_min_unmatched(at, deg1_r, mate_c)
            scanned += cc2.size
            hooks.on_explore("karp-sipser", cr2, cc2)
            pc = np.concatenate((pc1, pc2))
            pr = np.concatenate((pr1, pr2))
            if pc.size == 0:
                # stale degree-1 entries (their neighbors got matched):
                # recompute true residual degrees for them and continue
                deg_c[deg1_c] = 0
                deg_r[deg1_r] = 0
                continue
            hooks.on_resolve("karp-sipser", pc.size)
            # a column may appear in both proposal sets; resolution handles rows,
            # then drop duplicate columns
            wr, wc = _resolve_and_match(pc, pr, mate_r, mate_c)
        else:
            # -- fallback greedy round over all eligible columns
            cols = np.flatnonzero(free_c)
            pc, pr, cr, cc = _propose_min_unmatched(a, cols, mate_r)
            scanned += cr.size
            hooks.on_explore("karp-sipser", cr, cc)
            if pc.size == 0:
                break
            hooks.on_resolve("karp-sipser", pc.size)
            wr, wc = _resolve_and_match(pc, pr, mate_r, mate_c)
        scanned += _decrement_degrees(a, at, wr, wc, deg_r, deg_c, hooks, "karp-sipser")
        rounds += 1
        hooks.on_round_end("karp-sipser", wr.size, rounds)
    return RoundsResult(mate_r, mate_c, rounds, scanned)


def mindegree_rounds(
    a: CSC,
    hooks: MaximalHooks | None = None,
    rng: np.random.Generator | None = None,
) -> RoundsResult:
    """Round-synchronous dynamic mindegree: every unmatched column proposes
    to its minimum-residual-degree free row neighbor; rows accept their
    minimum-residual-degree proposer.

    Unlike Karp-Sipser's degree-1 cascades this matches large batches each
    round (round count comparable to greedy), while the dynamic-degree
    preference keeps the approximation quality close to Karp-Sipser — the
    trade-off that makes it the paper's default initializer (§VI-A).
    """
    hooks = hooks or MaximalHooks()
    at = a.transpose()
    mate_r, mate_c = _fresh(a)
    deg_r = a.row_degrees().astype(np.int64).copy()
    deg_c = a.col_degrees().astype(np.int64).copy()
    rounds = scanned = 0

    while True:
        cols = np.flatnonzero(mate_c == NULL)
        if cols.size == 0:
            break
        pc, pr, cr, cc = _propose_min_unmatched(a, cols, mate_r, key_r=deg_r)
        scanned += cr.size
        hooks.on_explore("mindegree", cr, cc)
        if pc.size == 0:
            break
        hooks.on_resolve("mindegree", pc.size)
        wr, wc = _resolve_and_match(pc, pr, mate_r, mate_c, key_c=deg_c)
        scanned += _decrement_degrees(a, at, wr, wc, deg_r, deg_c, hooks, "mindegree")
        rounds += 1
        hooks.on_round_end("mindegree", wr.size, rounds)
    return RoundsResult(mate_r, mate_c, rounds, scanned)
