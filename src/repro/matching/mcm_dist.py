"""MCM-DIST: the true SPMD distributed implementation of Algorithm 2.

Every function here runs *per rank* under the simulated MPI runtime: state
is rank-local (DCSC block, vector slices), all coordination goes through
collectives, routed all-to-alls and — for path-parallel augmentation —
one-sided RMA windows.  The code would run unchanged over mpi4py.

Correspondence to the paper:

====================================  =========================================
paper                                  here
====================================  =========================================
Algorithm 2 (MCM-DIST)                 :func:`mcm_dist_spmd`
Step 1 SpMV (expand/fold)              :func:`repro.distmat.ops.spmv`
Step 1, direction-optimized            :func:`repro.distmat.ops.spmv_bottomup`
                                       (+ ``direction="auto"`` switch via
                                       :func:`repro.distmat.ops.direction_edge_counts`)
Steps 2–4 SELECT/SET                   local NumPy on aligned slices
Step 5 INVERT to ``path_c``            :func:`repro.distmat.ops.invert_route`
Step 6 PRUNE (allgather of roots)      :func:`repro.distmat.ops.allgather_values`
Step 7 INVERT to next frontier         :func:`repro.distmat.ops.invert_route`
Algorithm 3 (level-parallel augment)   :func:`augment_level_spmd`
Algorithm 4 (path-parallel RMA)        :func:`augment_path_spmd_rma`
k < 2p² switch                          :func:`mcm_dist_spmd` per phase
distributed greedy init [21]           :func:`greedy_init_spmd`
====================================  =========================================

The driver :func:`run_mcm_dist` launches the whole job on a pr×pc grid of
simulated ranks and returns globally assembled mate vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distmat.distvec import DistDenseVec, DistVertexFrontier
from ..distmat.grid import ProcGrid
from ..distmat.ops import (
    allgather_values,
    direction_edge_counts,
    direction_edge_counts_begin,
    direction_edge_counts_finish,
    invert_route,
    route,
    spmv,
    spmv_bottomup,
)
from ..distmat.spmat import DistSparseMatrix
from ..runtime import Window, spmd
from ..runtime.checkpoint import Checkpoint, CheckpointStore
from ..runtime.rma import fence_all, free_all
from ..runtime.comm import SUM, Communicator
from ..runtime.trace import tspan
from ..sparse.coo import COO
from ..sparse.semiring import SR_MIN_PARENT, Semiring
from ..sparse.spvec import NULL
from .augment import choose_augment_mode


@dataclass
class DistStats:
    """Per-run counters reported by rank 0."""

    phases: int = 0
    iterations: int = 0
    augment_level_calls: int = 0
    augment_path_calls: int = 0
    initial_cardinality: int = 0
    final_cardinality: int = 0
    #: Step-1 direction tally (``topdown_steps + bottomup_steps == iterations``)
    topdown_steps: int = 0
    bottomup_steps: int = 0
    #: global edges the chosen directions examined across all Step-1 SpMVs
    edges_examined: int = 0
    #: grid-wide words sent on the column/row subcommunicators (expand/fold)
    #: and on every communicator combined, over the whole job
    expand_words: int = 0
    fold_words: int = 0
    total_words: int = 0
    #: grid-wide per-algorithm collective counters, summed over all ranks and
    #: the grid/row/column communicators: ``{"op:alg": {"calls", "messages",
    #: "words", "steps"}}`` (see :attr:`repro.runtime.comm.CommStats.by_alg`)
    comm_by_alg: "dict[str, dict[str, int]] | None" = None
    #: the logical/physical ledger split of the aggregation engine, summed
    #: over all ranks and communicators: ``comm_messages`` counts every
    #: message of the logical (round-based) schedule — the number BENCH
    #: gates and the trace cross-check price — while ``frames`` counts the
    #: coalesced deposits/ring writes that actually crossed the fabric
    #: (``frames == comm_messages`` with ``aggregate=False``)
    comm_messages: int = 0
    frames: int = 0
    frame_words: int = 0
    #: recovery counters, filled by ``run_mcm_dist_resilient``: fabric
    #: rebuilds after failures, completed phases re-executed because they
    #: post-dated the restart checkpoint, and 8-byte words written to the
    #: checkpoint store across all incarnations of the job
    restarts: int = 0
    phases_replayed: int = 0
    checkpoint_words: int = 0
    #: deterministic model-time service of the successful attempt under a
    #: fault injector: the slowest rank's priced-message ledger (through
    #: straggler/disruption factors and the degraded-link α-β model).
    #: Failed attempts are excluded — the scenario driver reconstructs
    #: their lost work from ``restart_spans`` x a crash-free twin's
    #: ``model_phase_ledger``, because a crashed attempt's own counters
    #: depend on which victims the abort unwinds first
    model_seconds: float = 0.0
    #: phase boundary -> max per-rank model-second ledger entering it
    #: (successful attempt; None without a fault injector)
    model_phase_ledger: "dict[int, float] | None" = None
    #: (resume_phase, death_phase) per failed attempt of a resilient run
    restart_spans: "tuple[tuple[int, int], ...]" = ()
    #: filled by :func:`run_mcm_dist` when the job ran with ``verify=True``
    verify_summary: "dict[str, int] | None" = None
    #: weighted-auction counters (``run_mwm_dist``; zero for cardinality
    #: jobs): synchronized bidding rounds across all ε-phases, bids placed
    #: (one per active bidder per round, globally summed), item price
    #: increases accepted, and 8-byte words spent replicating accepted
    #: prices along the grid rows
    auction_rounds: int = 0
    bids_placed: int = 0
    price_updates: int = 0
    price_words: int = 0
    #: weighted objective of the reported matching (original weights), its
    #: weight scale (max edge weight) and the ε the schedule was built for
    matching_weight: float = 0.0
    weight_scale: float = 0.0
    epsilon: float = 0.0

    # The merged span timeline (:class:`repro.runtime.trace.DistTrace`) when
    # the job ran with ``trace=...``.  Deliberately a plain class attribute,
    # NOT a dataclass field: ``dataclasses.asdict(stats)`` (the CLI's
    # ``--stats-json``) must not serialize it, and a disabled tracer must add
    # zero entries to DistStats.
    trace = None
    # Final doubled-graph item prices of a weighted auction job — a class
    # attribute for the same asdict/JSON reason as ``trace``; tests read it
    # to assert ε-complementary slackness.
    auction_prices = None


# ---------------------------------------------------------------------------
# distributed greedy initialization (the matrix-algebraic greedy of [21])
# ---------------------------------------------------------------------------

def greedy_init_spmd(
    A: DistSparseMatrix,
    mate_r: DistDenseVec,
    mate_c: DistDenseVec,
    semiring: Semiring = SR_MIN_PARENT,
) -> None:
    """Round-synchronous greedy maximal matching, SPMD.

    Each round: all unmatched columns flood their adjacency (one SpMV);
    every unmatched row keeps the semiring-winning column; an INVERT to the
    column side resolves multi-row winners (min row); both sides' mates are
    set.  Terminates when a round matches nothing, which is exactly
    maximality.
    """
    grid = A.grid
    while True:
        lcols = np.flatnonzero(mate_c.local == NULL) + mate_c.lo
        fc = DistVertexFrontier(grid, A.ncols, "col", lcols, lcols, lcols)
        fr = spmv(A, fc, semiring)
        fr = fr.keep(mate_r.get_local(fr.idx) == NULL)
        # resolve: columns keep their minimum proposing row
        c_arr, r_arr = invert_route(grid, fr.parent, fr.idx, mate_c)
        if c_arr.size:
            order = np.lexsort((r_arr, c_arr))
            c_s, r_s = c_arr[order], r_arr[order]
            first = np.empty(c_s.size, dtype=bool)
            first[0] = True
            np.not_equal(c_s[1:], c_s[:-1], out=first[1:])
            wc, wr = c_s[first], r_s[first]
        else:
            wc = wr = np.empty(0, np.int64)
        mate_c.set_local(wc, wr)
        # notify row owners of the accepted pairs
        rr, rc = route(grid.comm, mate_r.owner_of(wr), wr, wc)
        mate_r.set_local(rr, rc)
        matched = int(grid.comm.allreduce(wr.size, op=SUM))
        if matched == 0:
            return


def _init_block_degrees(A: DistSparseMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Block-replicated residual degrees: every rank of grid row i holds the
    row degrees of row block i (rowcomm allreduce); every rank of grid
    column j the column degrees of column block j (colcomm allreduce)."""
    grid, blk = A.grid, A.block
    local_degr = np.bincount(blk.ir, minlength=blk.nrows).astype(np.int64)
    degr_blk = grid.rowcomm.allreduce(local_degr, op=SUM)
    local_degc = np.zeros(blk.ncols, dtype=np.int64)
    if blk.nzc:
        local_degc[blk.jc] = np.diff(blk.cp)
    degc_blk = grid.colcomm.allreduce(local_degc, op=SUM)
    return degr_blk, degc_blk


def _spmd_proposal_round(
    A: DistSparseMatrix,
    mate_r: DistDenseVec,
    mate_c: DistDenseVec,
    proposer_cols_local: np.ndarray,
    degr_blk: np.ndarray,
    degc_blk: np.ndarray,
    *,
    degree_keys: bool,
) -> int:
    """One bulk-synchronous proposal round shared by the SPMD initializers.

    ``proposer_cols_local`` are this rank's proposing columns (global ids).
    Steps: explode proposals at the block owners → fold to row owners →
    free rows accept (min degree if ``degree_keys``, else min index) →
    column owners resolve (same keying) → mates set on both sides →
    block-replicated residual degrees decremented.  Returns the GLOBAL
    number of pairs matched this round.
    """
    grid, blk = A.grid, A.block
    # 1. proposals: proposing columns explode their adjacency
    pieces = grid.colcomm.allgatherv((proposer_cols_local,))
    gcols = np.concatenate([p[0] for p in pieces])
    rows_l, parents, _roots = A.block.explode_cols(gcols - A.col_lo, gcols, gcols)
    grows = rows_l + A.row_lo
    degc_of = degc_blk[parents - A.col_lo]
    sub, _b = mate_r.vmap.owner(grows)
    rrows, rcols, rdegc = route(grid.rowcomm, sub, grows, parents, degc_of)

    # 2a. free rows accept one proposer
    free = mate_r.get_local(rrows) == NULL
    rrows, rcols, rdegc = rrows[free], rcols[free], rdegc[free]
    if rrows.size:
        key = rdegc if degree_keys else rcols
        order = np.lexsort((rcols, key, rrows))
        rr, rc = rrows[order], rcols[order]
        first = np.empty(rr.size, dtype=bool)
        first[0] = True
        np.not_equal(rr[1:], rr[:-1], out=first[1:])
        rr, rc = rr[first], rc[first]
    else:
        rr = rc = np.empty(0, np.int64)
    degr_of = degr_blk[rr - A.row_lo] if rr.size else rr

    # 2b. columns keep one row
    dest = mate_c.owner_of(rc)
    c_arr, r_arr, rdeg_arr = route(grid.comm, dest, rc, rr, degr_of)
    if c_arr.size:
        key = rdeg_arr if degree_keys else r_arr
        order = np.lexsort((r_arr, key, c_arr))
        c_s, r_s = c_arr[order], r_arr[order]
        first = np.empty(c_s.size, dtype=bool)
        first[0] = True
        np.not_equal(c_s[1:], c_s[:-1], out=first[1:])
        wc, wr = c_s[first], r_s[first]
    else:
        wc = wr = np.empty(0, np.int64)
    mate_c.set_local(wc, wr)
    back_r, back_c = route(grid.comm, mate_r.owner_of(wr), wr, wc)
    mate_r.set_local(back_r, back_c)

    # 3. residual degree maintenance from the globally matched sets
    wr_all = np.concatenate(grid.comm.allgatherv(wr))
    wc_all = np.concatenate(grid.comm.allgatherv(wc))
    matched = int(wr_all.size)
    if matched == 0:
        return 0
    # rows adjacent to newly matched columns lose a degree
    lc = wc_all[(wc_all >= A.col_lo) & (wc_all < A.col_hi)] - A.col_lo
    rows_touched, _, _ = A.block.explode_cols(lc, lc, lc)
    dec_r = np.bincount(rows_touched, minlength=blk.nrows).astype(np.int64)
    degr_blk -= grid.rowcomm.allreduce(dec_r, op=SUM)
    # columns adjacent to newly matched rows lose a degree (row scan of the
    # column-major DCSC block)
    lr = wr_all[(wr_all >= A.row_lo) & (wr_all < A.row_hi)] - A.row_lo
    if blk.nnz and lr.size:
        hit = np.isin(blk.ir, lr)
        cols_rep = np.repeat(blk.jc, np.diff(blk.cp))
        dec_c = np.bincount(cols_rep[hit], minlength=blk.ncols).astype(np.int64)
    else:
        dec_c = np.zeros(blk.ncols, dtype=np.int64)
    degc_blk -= grid.colcomm.allreduce(dec_c, op=SUM)
    return matched


def mindegree_init_spmd(
    A: DistSparseMatrix,
    mate_r: DistDenseVec,
    mate_c: DistDenseVec,
) -> None:
    """Round-synchronous dynamic-mindegree maximal matching, SPMD.

    The paper's default initializer in true distributed form: every round
    all unmatched columns propose, proposals are keyed by block-replicated
    residual degrees on both sides (matching the serial
    ``mindegree_rounds`` tie-breaking), and degrees are maintained with
    row/column-communicator allreduces.  Terminates when a round matches
    nothing (maximality).
    """
    degr_blk, degc_blk = _init_block_degrees(A)
    while True:
        lcols = np.flatnonzero(mate_c.local == NULL) + mate_c.lo
        matched = _spmd_proposal_round(
            A, mate_r, mate_c, lcols, degr_blk, degc_blk, degree_keys=True
        )
        if matched == 0:
            return


def karp_sipser_init_spmd(
    A: DistSparseMatrix,
    mate_r: DistDenseVec,
    mate_c: DistDenseVec,
) -> None:
    """Round-synchronous Karp-Sipser (column-oriented), SPMD.

    Rounds where any residual degree-1 column exists process ONLY those
    columns (their match is always safe); otherwise a greedy round runs.
    The degree-1 cascades serialize into many bulk-synchronous rounds —
    exactly the behaviour that makes distributed Karp-Sipser slow in the
    paper's Fig. 3.
    """
    grid = A.grid
    degr_blk, degc_blk = _init_block_degrees(A)
    while True:
        free_local = np.flatnonzero(mate_c.local == NULL) + mate_c.lo
        my_deg = degc_blk[free_local - A.col_lo]
        deg1 = free_local[my_deg == 1]
        any_deg1 = int(grid.comm.allreduce(int(deg1.size), op=SUM)) > 0
        proposers = deg1 if any_deg1 else free_local[my_deg > 0]
        matched = _spmd_proposal_round(
            A, mate_r, mate_c, proposers, degr_blk, degc_blk, degree_keys=False
        )
        if matched == 0 and not any_deg1:
            return
        if matched == 0 and any_deg1:
            # stale degree-1 entries can occur transiently after ties; a
            # greedy sweep makes progress or proves maximality
            matched = _spmd_proposal_round(
                A, mate_r, mate_c, free_local[my_deg > 0], degr_blk, degc_blk,
                degree_keys=False,
            )
            if matched == 0:
                return


# ---------------------------------------------------------------------------
# augmentation
# ---------------------------------------------------------------------------

def augment_level_spmd(
    grid: ProcGrid,
    start_rows: np.ndarray,
    pi_r: DistDenseVec,
    mate_r: DistDenseVec,
    mate_c: DistDenseVec,
) -> None:
    """Algorithm 3, SPMD: all paths advance one (row, column) pair per
    lockstep iteration; two routed all-to-alls + one allreduce each."""
    rows = np.asarray(start_rows, np.int64)
    while True:
        if int(grid.comm.allreduce(rows.size, op=SUM)) == 0:
            return
        # deliver each active row to its owner; read parent, flip row's mate
        (rows_o,) = route(grid.comm, mate_r.owner_of(rows), rows)
        cols = pi_r.get_local(rows_o)
        mate_r.set_local(rows_o, cols)
        # deliver (col, row) to the column owner; read previous mate, flip
        c_arr, r_arr = route(grid.comm, mate_c.owner_of(cols), cols, rows_o)
        prev = mate_c.get_local(c_arr)
        mate_c.set_local(c_arr, r_arr)
        rows = prev[prev != NULL]


def augment_path_spmd_rma(
    grid: ProcGrid,
    start_rows: np.ndarray,
    pi_r: DistDenseVec,
    mate_r: DistDenseVec,
    mate_c: DistDenseVec,
) -> None:
    """Algorithm 4, SPMD: each rank walks its own paths asynchronously with
    one-sided Get/Put/Fetch-and-op — 3 RMA calls per pair-step, exactly the
    paper's accounting.  Vertex-disjointness of the paths makes the
    unordered remote updates safe."""
    win_pi = Window(grid.comm, pi_r.local)
    win_mr = Window(grid.comm, mate_r.local)
    win_mc = Window(grid.comm, mate_c.local)
    windows = [win_pi, win_mr, win_mc]
    # fused epoch management: logically three fences / three frees, but the
    # epoch barriers ride one physical star wave each under aggregation
    fence_all(windows)
    for r0 in np.asarray(start_rows, np.int64).tolist():
        r = int(r0)
        while r != NULL:
            rank, off = pi_r.remote_location(r)
            c = int(win_pi.get(rank, off))           # MPI_Get(π_r[r])
            win_mr.put(rank, off, c)                 # MPI_Put(mate_r[r] = c)
            crank, coff = mate_c.remote_location(c)
            r = int(win_mc.fetch_and_op(crank, coff, r))  # fused read-old/put-new
    fence_all(windows)
    free_all(windows)


# ---------------------------------------------------------------------------
# phase-granular checkpointing
# ---------------------------------------------------------------------------

def _save_checkpoint(
    grid: ProcGrid,
    store: CheckpointStore,
    phase: int,
    mate_r: DistDenseVec,
    mate_c: DistDenseVec,
    stats: DistStats,
) -> None:
    """Snapshot the globally assembled matching after a completed phase.

    The assembly is collective (allgather on the grid communicator); only
    rank 0 writes to the store, so file-backed stores see one writer.  The
    closing barrier orders the write against every peer's progress: no rank
    can pass this checkpoint (and reach the next crashable phase boundary)
    until rank 0 has durably saved it, which is what makes the restart
    trajectory of a seeded fault plan deterministic rather than dependent
    on how far ahead the allgather let individual ranks run.
    """
    with tspan(grid.comm, "checkpoint", cat="phase", phase=phase):
        g_r = mate_r.to_global()
        g_c = mate_c.to_global()
        if grid.comm.rank == 0:
            store.save(Checkpoint(phase=phase, mate_row=g_r, mate_col=g_c, rng_state=None))
        grid.comm.barrier()
        stats.checkpoint_words += g_r.size + g_c.size + 2


def _phase_boundary(grid: ProcGrid, phase_no: int) -> None:
    """Publish phase progress and give the fault plan its phase-boundary
    crash point (a no-op without an armed injector)."""
    fabric = grid.comm.fabric
    fabric.note_progress("phase", phase_no)
    if fabric.faults is not None:
        fabric.faults.on_phase(grid.comm.global_rank, phase_no)


# ---------------------------------------------------------------------------
# the SPMD algorithm
# ---------------------------------------------------------------------------

def mcm_dist_spmd(
    comm: Communicator,
    coo_on_root: "COO | None",
    pr: int,
    pc: int,
    *,
    init: str = "greedy",
    semiring: Semiring = SR_MIN_PARENT,
    prune: bool = True,
    augment: str = "auto",
    direction: str = "topdown",
    checkpoint_every: int = 0,
    checkpoint_store: "CheckpointStore | None" = None,
    resume: "Checkpoint | None" = None,
) -> tuple[np.ndarray, np.ndarray, DistStats]:
    """The per-rank body of MCM-DIST (launch via :func:`run_mcm_dist`).

    ``coo_on_root`` is the input matrix on rank 0 (None elsewhere);
    ``augment`` is "level", "path" or "auto" (the k < 2p² switch);
    ``direction`` is "topdown", "bottomup" or "auto" — "auto" picks the
    cheaper Step-1 direction every iteration by one global 2-word edge-count
    allreduce.  Deterministic semirings yield identical mate vectors in all
    three modes.  Returns (globally gathered mate_r, mate_c, stats) on
    every rank.

    Checkpoint/restart (driven by ``run_mcm_dist_resilient``): with
    ``checkpoint_store`` set, the job snapshots the globally assembled
    mate vectors after the initializer and after every
    ``checkpoint_every``-th completed phase — each completed phase is a
    valid matching, so any snapshot is a correct restart point.  With
    ``resume`` set, the initializer is skipped and the phase loop continues
    from the checkpointed matching.
    """
    if direction not in ("topdown", "bottomup", "auto"):
        raise ValueError(
            f"unknown direction {direction!r} (topdown/bottomup/auto)"
        )
    grid = ProcGrid(comm, pr, pc)
    A = DistSparseMatrix.scatter_from_root(grid, coo_on_root)
    mate_r = DistDenseVec(grid, A.nrows, "row")
    mate_c = DistDenseVec(grid, A.ncols, "col")
    stats = DistStats()

    if resume is not None:
        # restart path: the checkpointed matching replaces the initializer
        mate_r.local[:] = resume.mate_row[mate_r.lo:mate_r.hi]
        mate_c.local[:] = resume.mate_col[mate_c.lo:mate_c.hi]
    elif init == "greedy":
        with tspan(grid.comm, "init:greedy", cat="phase"):
            greedy_init_spmd(A, mate_r, mate_c, semiring)
    elif init == "mindegree":
        with tspan(grid.comm, "init:mindegree", cat="phase"):
            mindegree_init_spmd(A, mate_r, mate_c)
    elif init == "karp-sipser":
        with tspan(grid.comm, "init:karp-sipser", cat="phase"):
            karp_sipser_init_spmd(A, mate_r, mate_c)
    elif init not in (None, "none"):
        raise ValueError(
            f"unknown distributed init {init!r} (greedy/mindegree/karp-sipser/none)"
        )
    stats.initial_cardinality = int(
        grid.comm.allreduce(int((mate_r.local != NULL).sum()), op=SUM)
    )
    if checkpoint_store is not None and resume is None:
        # phase-0 snapshot: initializer work survives a crash in phase 1
        _save_checkpoint(grid, checkpoint_store, 0, mate_r, mate_c, stats)

    pi_r = DistDenseVec(grid, A.nrows, "row")
    path_c = DistDenseVec(grid, A.ncols, "col")

    # direction-switch inputs: cached degree sub-slices (collective on the
    # first call, so EVERY mode primes them at the same program point) —
    # also used for the edges-examined accounting below.
    degr_sub, degc_sub = A.degree_slices()
    edges_local = 0
    phase_no = resume.phase if resume is not None else 0

    while True:
        phase_no += 1
        stats.phases = phase_no
        _phase_boundary(grid, phase_no)
        # leaving the ``with`` via the k == 0 break below still closes the
        # span, so even the final (no-path) phase is timed
        with tspan(grid.comm, "phase", cat="phase", phase=phase_no):
            pi_r.local.fill(NULL)
            path_c.local.fill(NULL)

            # initial column frontier: unmatched columns, parent = root = self
            lcols = np.flatnonzero(mate_c.local == NULL) + mate_c.lo
            fc = DistVertexFrontier(grid, A.ncols, "col", lcols, lcols, lcols)

            # in-flight edge-count iallreduce (direction="auto"): posted at
            # each superstep's tail, waited at the next head, so its hub
            # fold/down-leg overlaps the frontier-count exchange between them
            dir_req = None
            while fc.global_nnz() > 0:
                stats.iterations += 1
                with tspan(grid.comm, "bfs_iter", cat="phase", iter=stats.iterations):
                    # Step 1: SpMV (expand + fold), direction-optimized.  The
                    # decision must be globally uniform: "auto" allreduces the
                    # two edge counts; fixed modes are trivially uniform.
                    td_local = int(degc_sub[fc.idx - fc.lo].sum())
                    bu_local = int(degr_sub[pi_r.local == NULL].sum())
                    if direction == "auto":
                        if dir_req is None:  # first superstep of the phase
                            td_g, bu_g = direction_edge_counts(A, fc, pi_r)
                        else:
                            td_g, bu_g = direction_edge_counts_finish(dir_req)
                            dir_req = None
                        use_bu = bu_g < td_g
                    else:
                        use_bu = direction == "bottomup"
                    edges_local += bu_local if use_bu else td_local
                    # the chosen direction appears in the trace as the kernel
                    # span's name: spmv (top-down) vs spmv_bottomup (pull)
                    if use_bu:
                        stats.bottomup_steps += 1
                        fr = spmv_bottomup(A, fc, pi_r, semiring)
                    else:
                        stats.topdown_steps += 1
                        fr = spmv(A, fc, semiring)
                    # Step 2: SELECT unvisited rows (a no-op after a bottom-up
                    # step, which only ever proposes unvisited rows — kept
                    # unconditionally so both directions share one code path)
                    fr = fr.keep(pi_r.get_local(fr.idx) == NULL)
                    # Step 3: SET parents
                    pi_r.set_local(fr.idx, fr.parent)
                    # Step 4: split matched/unmatched
                    unmatched = mate_r.get_local(fr.idx) == NULL
                    ufr = fr.keep(unmatched)
                    fr = fr.keep(~unmatched)

                    # Step 5: INVERT roots of unmatched rows into path_c
                    t_roots, t_rows = invert_route(grid, ufr.root, ufr.idx, path_c)
                    if t_roots.size:
                        order = np.lexsort((t_rows, t_roots))
                        tr_s, tv_s = t_roots[order], t_rows[order]
                        first = np.empty(tr_s.size, dtype=bool)
                        first[0] = True
                        np.not_equal(tr_s[1:], tr_s[:-1], out=first[1:])
                        tr_s, tv_s = tr_s[first], tv_s[first]
                        fresh = path_c.get_local(tr_s) == NULL
                        path_c.set_local(tr_s[fresh], tv_s[fresh])

                    # Step 6: PRUNE trees that found augmenting paths this
                    # iteration
                    if prune:
                        new_roots = allgather_values(grid.comm, np.unique(ufr.root))
                        if new_roots.size and fr.local_nnz:
                            fr = fr.keep(~np.isin(fr.root, new_roots))

                    # Step 7: INVERT through mates -> next column frontier
                    mates = mate_r.get_local(fr.idx)
                    nc, nroot = invert_route(grid, mates, fr.root, mate_c)
                    order = np.argsort(nc)
                    fc = DistVertexFrontier(
                        grid, A.ncols, "col", nc[order], nc[order], nroot[order]
                    )
                    # superstep tail: the next frontier and the final π_r of
                    # this iteration exist, so the next head's direction
                    # counts can already be in flight (overlap window spans
                    # the global_nnz exchange of the loop condition)
                    if direction == "auto":
                        dir_req = direction_edge_counts_begin(A, fc, pi_r)
            if dir_req is not None:
                # the tail post of the last superstep: a collective every
                # rank entered, so every rank must complete it
                direction_edge_counts_finish(dir_req)
                dir_req = None

            # phase end: augment by all discovered paths (my local path ends)
            local_rows = path_c.local[path_c.local != NULL]
            k = int(grid.comm.allreduce(local_rows.size, op=SUM))
            if k == 0:
                break
            mode = augment if augment != "auto" else choose_augment_mode(k, grid.nprocs)
            if mode == "level":
                stats.augment_level_calls += 1
                with tspan(grid.comm, "augment:level", cat="phase", k=k):
                    augment_level_spmd(grid, local_rows, pi_r, mate_r, mate_c)
            elif mode == "path":
                stats.augment_path_calls += 1
                with tspan(grid.comm, "augment:path", cat="phase", k=k):
                    augment_path_spmd_rma(grid, local_rows, pi_r, mate_r, mate_c)
            else:
                raise ValueError(f"unknown augment mode {mode!r}")

            # phase complete: the augmented matching is valid (vertex-disjoint
            # augmenting paths), so it is a correct restart point
            if (
                checkpoint_store is not None
                and checkpoint_every > 0
                and phase_no % checkpoint_every == 0
            ):
                _save_checkpoint(grid, checkpoint_store, phase_no, mate_r, mate_c, stats)

    stats.final_cardinality = int(
        grid.comm.allreduce(int((mate_r.local != NULL).sum()), op=SUM)
    )
    stats.edges_examined = int(grid.comm.allreduce(edges_local, op=SUM))
    # snapshot BEFORE the summing collectives so they don't count themselves
    words = np.array(
        [
            grid.colcomm.stats.words_sent,
            grid.rowcomm.stats.words_sent,
            grid.comm.stats.words_sent,
        ],
        dtype=np.int64,
    )
    words = grid.comm.allreduce(words, op=SUM)
    stats.expand_words = int(words[0])
    stats.fold_words = int(words[1])
    stats.total_words = int(words[0] + words[1] + words[2])
    g_r = mate_r.to_global()
    g_c = mate_c.to_global()
    # per-algorithm counters, aggregated over this rank's grid/row/column
    # communicators as the LAST act of the job — no message leaves any rank
    # after this snapshot, so the per-rank tables account for every word of
    # the whole job (which is what lets the span tracer cross-check them
    # exactly).  The drivers sum the rank-local tables into the grid-wide
    # ``comm_by_alg`` with ZERO extra communication: the executor already
    # returns every rank's values.
    stats.comm_by_alg = _local_by_alg(grid)
    stats.comm_messages, stats.frames, stats.frame_words = _local_physical(grid)
    return g_r, g_c, stats


def _local_physical(grid: ProcGrid) -> tuple[int, int, int]:
    """This rank's (logical messages, physical frames, frame words) summed
    over the job's three communicators — snapshotted at the same no-more-
    traffic point as :func:`_local_by_alg`, so frames account for every
    flush of the job."""
    msgs = frames = fwords = 0
    for c in (grid.colcomm, grid.rowcomm, grid.comm):
        msgs += c.stats.messages_sent
        frames += c.stats.frames
        fwords += c.stats.frame_words
    return msgs, frames, fwords


def _local_by_alg(grid: ProcGrid) -> dict[str, dict[str, int]]:
    """This rank's ``{"op:alg": counters}`` summed over the job's three
    communicators (grid, row, column)."""
    mine: dict[str, dict[str, int]] = {}
    for c in (grid.colcomm, grid.rowcomm, grid.comm):
        for key, d in c.stats.by_alg.items():
            agg = mine.setdefault(
                key, {"calls": 0, "messages": 0, "words": 0, "steps": 0}
            )
            for field_name, v in d.items():
                agg[field_name] += v
    return mine


def merge_by_alg(rank_values) -> dict[str, dict[str, int]]:
    """Driver-side fold of per-rank ``(mate_r, mate_c, stats)`` tuples'
    local ``comm_by_alg`` tables into the grid-wide table (pure local
    computation on the already-gathered SPMD return values)."""
    merged: dict[str, dict[str, int]] = {}
    for _, _, st in rank_values:
        for key, d in (st.comm_by_alg or {}).items():
            agg = merged.setdefault(
                key, {"calls": 0, "messages": 0, "words": 0, "steps": 0}
            )
            for field_name, v in d.items():
                agg[field_name] += v
    return merged


def merge_physical(stats: DistStats, rank_values) -> None:
    """Driver-side fold of the per-rank logical/physical ledgers onto the
    reported ``stats`` (companion of :func:`merge_by_alg`)."""
    stats.comm_messages = sum(st.comm_messages for _, _, st in rank_values)
    stats.frames = sum(st.frames for _, _, st in rank_values)
    stats.frame_words = sum(st.frame_words for _, _, st in rank_values)


def _mcm_rank_main(comm: Communicator, coo: COO, pr: int, pc: int, **mcm_kwargs):
    """Per-rank entry point of :func:`run_mcm_dist`.

    A module-level function (not a closure) so a process backend can pickle
    it; the graph and grid shape arrive through ``spmd``'s ``*args``.
    """
    data = coo if comm.rank == 0 else None
    return mcm_dist_spmd(comm, data, pr, pc, **mcm_kwargs)


def run_mcm_dist(
    coo: COO,
    pr: int,
    pc: int,
    *,
    init: str = "greedy",
    semiring: Semiring = SR_MIN_PARENT,
    prune: bool = True,
    augment: str = "auto",
    direction: str = "topdown",
    timeout: "float | None" = None,
    verify: bool = False,
    faults=None,
    comm_config=None,
    trace: "bool | str" = False,
    backend: "str | None" = None,
) -> tuple[np.ndarray, np.ndarray, DistStats]:
    """Launch MCM-DIST on a simulated pr × pc process grid.

    The matrix starts on rank 0 and is scattered; the returned mate vectors
    are the globally assembled result (identical on every rank).
    ``direction`` selects the Step-1 traversal ("topdown"/"bottomup"/"auto").
    ``verify=True`` arms the runtime's collective-divergence and RMA-race
    verifiers for the whole job (``repro spmd --verify``).
    ``timeout`` is the deadlock window for every blocking runtime call
    (``None`` → ``$REPRO_SPMD_TIMEOUT`` → 120 s); ``faults`` optionally arms
    a seeded :class:`~repro.runtime.faults.FaultPlan`/``FaultInjector`` —
    this entry point has no recovery, use
    :func:`~repro.runtime.executor.run_mcm_dist_resilient` to survive the
    injected crashes.  ``comm_config`` optionally pins the collective
    algorithms and payload packing
    (:class:`~repro.runtime.comm.CollectiveConfig`); deterministic semirings
    yield bit-identical mate vectors under every choice.  ``trace`` turns on
    per-rank span tracing (``True``/``"wall"`` for wall-clock timestamps,
    ``"ticks"`` for the deterministic clock); the merged
    :class:`~repro.runtime.trace.DistTrace` lands on ``stats.trace`` —
    tracing never changes results (the tracer only observes).
    ``backend`` selects the transport ("thread"/"process" — forked OS
    processes over shared-memory rings; bit-identical mates either way);
    ``None`` resolves through ``$REPRO_SPMD_BACKEND``.
    """
    from ..runtime.executor import resolve_timeout

    result = spmd(
        pr * pc, _mcm_rank_main, coo, pr, pc,
        timeout=resolve_timeout(timeout, default=120.0),
        verify=verify, faults=faults, comm_config=comm_config, trace=trace,
        backend=backend,
        init=init, semiring=semiring, prune=prune, augment=augment,
        direction=direction,
    )
    mate_r, mate_c, stats = result[0]
    stats.comm_by_alg = merge_by_alg(result.values)
    merge_physical(stats, result.values)
    stats.verify_summary = result.verify_summary
    if result.trace is not None:
        stats.trace = result.trace
    return mate_r, mate_c, stats
