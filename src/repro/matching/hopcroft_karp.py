"""Serial Hopcroft-Karp: the O(m√n) reference algorithm.

The paper cites Hopcroft-Karp [11] as the asymptotically best augmenting-path
algorithm (and notes that MS-BFS style algorithms beat it in practice).  We
implement it as an oracle and as the "shared-memory competitor" of §VI-E:
phases of (a) one global BFS computing level labels from all unmatched
columns, then (b) vertex-disjoint DFS along strictly level-increasing edges
harvesting a *maximal* set of shortest augmenting paths.  O(√n) phases.

Implementation notes: iterative DFS on CSC adjacency with an explicit stack
and a per-column "next edge to try" cursor, so each phase's DFS touches each
edge O(1) times.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import CSC
from ..sparse.spvec import NULL

_INF = np.iinfo(np.int64).max


def hopcroft_karp(
    a: CSC,
    mate_r: np.ndarray | None = None,
    mate_c: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Maximum cardinality matching of the bipartite pattern matrix ``a``.

    Accepts an optional initial matching; returns updated mate vectors
    (copies).  Column vertices are the search side, matching the paper's
    convention.
    """
    n1, n2 = a.nrows, a.ncols
    mate_r = np.full(n1, NULL, np.int64) if mate_r is None else np.asarray(mate_r, np.int64).copy()
    mate_c = np.full(n2, NULL, np.int64) if mate_c is None else np.asarray(mate_c, np.int64).copy()
    indptr, indices = a.indptr, a.indices

    level = np.empty(n2, dtype=np.int64)

    while True:
        # ---- BFS: level structure over columns --------------------------------
        level.fill(_INF)
        frontier = np.flatnonzero(mate_c == NULL)
        level[frontier] = 0
        depth = 0
        found_free_row = False
        row_seen = np.zeros(n1, dtype=bool)
        while frontier.size:
            rows, counts = _gather(indptr, indices, frontier)
            rows = np.unique(rows[~row_seen[rows]]) if rows.size else rows
            if rows.size == 0:
                break
            row_seen[rows] = True
            mates = mate_r[rows]
            if (mates == NULL).any():
                found_free_row = True
            nxt = mates[mates != NULL]
            nxt = nxt[level[nxt] == _INF]
            depth += 1
            nxt = np.unique(nxt)
            level[nxt] = depth
            frontier = nxt
        if not found_free_row:
            break

        # ---- DFS: maximal set of vertex-disjoint shortest augmenting paths ----
        cursor = indptr.copy()[:-1]  # next adjacency position to try per column
        row_used = np.zeros(n1, dtype=bool)
        for c0 in np.flatnonzero(mate_c == NULL):
            _try_augment(int(c0), indptr, indices, cursor, level, row_used, mate_r, mate_c)
    return mate_r, mate_c


def _gather(indptr: np.ndarray, indices: np.ndarray, cols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    from ..sparse.csc import ragged_gather

    return ragged_gather(indptr, indices, cols)


def _try_augment(
    c0: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    cursor: np.ndarray,
    level: np.ndarray,
    row_used: np.ndarray,
    mate_r: np.ndarray,
    mate_c: np.ndarray,
) -> bool:
    """Iterative DFS from unmatched column ``c0`` along the level structure.

    On success, flips the path's edges and returns True.  ``cursor``
    persists across calls within a phase, guaranteeing each edge is tried at
    most once per phase (the key to the O(m) phase bound).
    """
    # stack of (column, row chosen at this depth)
    stack: list[int] = [c0]
    chosen: list[int] = []
    while stack:
        c = stack[-1]
        advanced = False
        while cursor[c] < indptr[c + 1]:
            r = int(indices[cursor[c]])
            cursor[c] += 1
            if row_used[r]:
                continue
            m = int(mate_r[r])
            if m == NULL:
                # Free row: complete the augmenting path along the stack.
                row_used[r] = True
                chosen.append(r)
                for cc, rr in zip(stack, chosen):
                    mate_c[cc] = rr
                    mate_r[rr] = cc
                return True
            if level[m] == level[c] + 1:
                row_used[r] = True
                chosen.append(r)
                stack.append(m)
                advanced = True
                break
        if not advanced:
            # Dead end: backtrack (row_used stays set — vertex-disjointness).
            # Invariant: len(chosen) == len(stack) - 1 between iterations.
            stack.pop()
            while len(chosen) > max(0, len(stack) - 1):
                chosen.pop()
    return False
