"""Single-source BFS maximum matching — the obviously-correct O(mn) oracle.

The simplest textbook algorithm (the paper's "SS" family): repeatedly grow
one alternating BFS tree from a single unmatched column; if it reaches an
unmatched row, flip the path.  No tree interaction, no pruning, no
parallelism — slow, but its correctness is immediate, which makes it the
ground truth for everything else in this package.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..sparse.csc import CSC
from ..sparse.spvec import NULL


def _augment_from(a: CSC, c0: int, mate_r: np.ndarray, mate_c: np.ndarray) -> bool:
    """BFS an alternating tree from unmatched column ``c0``; augment and
    return True if an unmatched row is reached."""
    parent_col_of_row: dict[int, int] = {}
    queue: deque[int] = deque([c0])
    visited_cols = {c0}
    while queue:
        c = queue.popleft()
        for r in a.column(c).tolist():
            if r in parent_col_of_row:
                continue
            parent_col_of_row[r] = c
            m = int(mate_r[r])
            if m == NULL:
                # augment: walk parents back to c0
                while True:
                    c_par = parent_col_of_row[r]
                    nxt = int(mate_c[c_par])
                    mate_r[r] = c_par
                    mate_c[c_par] = r
                    if c_par == c0:
                        return True
                    r = nxt
            if m not in visited_cols:
                visited_cols.add(m)
                queue.append(m)
    return False


def single_source_mcm(
    a: CSC,
    mate_r: np.ndarray | None = None,
    mate_c: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Maximum matching by one BFS per unmatched column (O(mn))."""
    mate_r = np.full(a.nrows, NULL, np.int64) if mate_r is None else np.asarray(mate_r, np.int64).copy()
    mate_c = np.full(a.ncols, NULL, np.int64) if mate_c is None else np.asarray(mate_c, np.int64).copy()
    for c in range(a.ncols):
        if mate_c[c] == NULL:
            _augment_from(a, c, mate_r, mate_c)
    return mate_r, mate_c
