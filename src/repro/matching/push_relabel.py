"""Push-relabel maximum matching — the other algorithm family.

Section II-A divides MCM algorithms into augmenting-path based and
push-relabel based [8], [9]; the only prior distributed MCM attempt the
paper cites (Langguth et al. [19]) used push-relabel and stopped scaling at
64 processes.  We implement the serial bipartite push-relabel matcher (in
the style of Kaya, Langguth, Uçar & Çatalyürek's maximum-transversal
formulation) as a correctness baseline and as the comparison point for the
"why MS-BFS parallelizes better" discussion.

Algorithm: every column holding "flow to place" is active.  Rows carry
labels ψ (even lower bounds on the alternating distance to a free column
exit).  An active column scans its adjacency for the minimum-label row; if
that label is below the 2·n₁ horizon, the column (re)matches the row —
evicting the row's previous column, which becomes active again — and the
row is relabeled to (second-minimum neighbor label) + 2.  A column whose
best neighbor reached the horizon can never be matched and retires.  The
relabel rule preserves the invariant that ψ never overestimates, which
bounds total relabels by O(n²) and guarantees a maximum matching at
termination.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..sparse.csc import CSC
from ..sparse.spvec import NULL


def push_relabel_mcm(
    a: CSC,
    mate_r: np.ndarray | None = None,
    mate_c: np.ndarray | None = None,
    *,
    fifo: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Maximum cardinality matching by bipartite push-relabel.

    Accepts an optional initial matching; returns updated copies.
    ``fifo`` selects FIFO active-column processing (the usual choice);
    False uses LIFO, exercising a different schedule.
    """
    n1 = a.nrows
    mate_r = np.full(n1, NULL, np.int64) if mate_r is None else np.asarray(mate_r, np.int64).copy()
    mate_c = np.full(a.ncols, NULL, np.int64) if mate_c is None else np.asarray(mate_c, np.int64).copy()
    indptr, indices = a.indptr, a.indices

    psi = np.zeros(n1, dtype=np.int64)  # row labels
    horizon = 2 * n1 + 1

    active: deque[int] = deque(int(c) for c in np.flatnonzero(mate_c == NULL))
    guard = 0
    guard_limit = 8 * (n1 + 1) * (a.ncols + 1) + 16 * a.nnz + 64

    while active:
        guard += 1
        if guard > guard_limit:  # pragma: no cover - safety net
            raise RuntimeError("push-relabel exceeded its operation bound")
        c = active.popleft() if fifo else active.pop()
        lo, hi = indptr[c], indptr[c + 1]
        if lo == hi:
            continue  # isolated column: never matchable
        adj = indices[lo:hi]
        labels = psi[adj]
        best_pos = int(np.argmin(labels))
        best_label = int(labels[best_pos])
        if best_label >= horizon:
            continue  # provably unmatchable from here: retire
        r = int(adj[best_pos])
        # relabel r to second-min + 2 BEFORE pushing (standard double scan)
        if adj.size > 1:
            second = int(np.partition(labels, 1)[1])
        else:
            second = horizon
        psi[r] = second + 2
        # push: match (r, c), evicting r's previous column if any
        prev = int(mate_r[r])
        mate_r[r] = c
        mate_c[c] = r
        if prev != NULL:
            mate_c[prev] = NULL
            active.append(prev)
    return mate_r, mate_c
