"""User-facing matching API.

These are the functions a downstream user (e.g. a sparse direct solver's
preprocessing step) calls; everything else in the package is machinery
behind them.

>>> from repro import maximum_matching
>>> from repro.graphs import rmat
>>> g = rmat.g500(scale=10, seed=1)
>>> mate_r, mate_c, stats = maximum_matching(g)
>>> stats.final_cardinality > 0
True
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..sparse.coo import COO
from ..sparse.csc import CSC
from ..sparse.semiring import SR_MIN_PARENT, Semiring
from ..sparse.spvec import NULL
from .maximal import dynamic_mindegree, greedy_maximal, karp_sipser
from .msbfs import MatchingStats, MsBfsHooks, ms_bfs_mcm

_INITIALIZERS: dict[str, Callable] = {
    "greedy": greedy_maximal,
    "karp-sipser": karp_sipser,
    "mindegree": dynamic_mindegree,
}


def _as_csc(graph: "COO | CSC") -> CSC:
    if isinstance(graph, CSC):
        return graph
    if isinstance(graph, COO):
        return CSC.from_coo(graph)
    raise TypeError(f"expected COO or CSC, got {type(graph).__name__}")


def maximal_matching(
    graph: "COO | CSC",
    method: str = "mindegree",
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Maximal (not maximum) matching — the initializer stage.

    ``method`` is one of ``"greedy"``, ``"karp-sipser"``, ``"mindegree"``
    (the paper's default, see Section VI-A).  Returns ``(mate_r, mate_c)``
    with -1 for unmatched vertices.
    """
    a = _as_csc(graph)
    try:
        fn = _INITIALIZERS[method]
    except KeyError:
        raise ValueError(
            f"unknown maximal matching method {method!r}; "
            f"choose from {sorted(_INITIALIZERS)}"
        ) from None
    return fn(a, np.random.default_rng(seed))


def maximum_matching(
    graph: "COO | CSC",
    *,
    init: str | None = "mindegree",
    semiring: Semiring = SR_MIN_PARENT,
    prune: bool = True,
    seed: int = 0,
    hooks: MsBfsHooks | None = None,
    augment_mode: str = "auto",
    direction: str = "topdown",
) -> tuple[np.ndarray, np.ndarray, MatchingStats]:
    """Maximum cardinality matching of a bipartite graph (Algorithm 2).

    Parameters
    ----------
    graph:
        The bipartite graph as an n₁×n₂ pattern matrix (COO or CSC).
    init:
        Maximal-matching initializer name, or ``None`` to start from the
        empty matching.
    semiring:
        BFS tie-break semiring (see :mod:`repro.sparse.semiring`).
    prune:
        Enable Step 6 tree pruning (Fig. 8's knob; keep on).
    seed:
        Seed for the initializer and any randomized semiring.
    hooks:
        Optional :class:`~repro.matching.msbfs.MsBfsHooks` instrumentation.
    augment_mode:
        ``"level"``, ``"path"`` or ``"auto"``.
    direction:
        BFS traversal direction per iteration: ``"topdown"`` (the paper's
        SpMV), ``"bottomup"``, or ``"auto"`` (direction-optimizing — the
        paper's stated future work).

    Returns ``(mate_r, mate_c, stats)``; the matching is provably maximum
    (terminates only when a phase finds no augmenting path).
    """
    a = _as_csc(graph)
    if init is None:
        mate_r = mate_c = None
    else:
        mate_r, mate_c = maximal_matching(a, init, seed)
    rng = np.random.default_rng(seed + 1)
    return ms_bfs_mcm(
        a, mate_r, mate_c,
        semiring=semiring, rng=rng, prune=prune, hooks=hooks,
        augment_mode=augment_mode, direction=direction,
    )


def maximum_weight_matching(
    graph: COO,
    weights: np.ndarray,
    *,
    epsilon: float = 0.05,
    cardinality_bias: float = 0.0,
    method: str = "auction",
) -> tuple[np.ndarray, np.ndarray, float]:
    """Maximum WEIGHT matching of an edge-weighted bipartite graph.

    ``graph`` must be a :class:`~repro.sparse.coo.COO` with ``weights``
    parallel to its edge arrays (CSC is rejected because its edge order
    differs and would silently misalign the weights).  ``method`` picks the
    engine: ``"auction"`` — the ε-scaled serial auction
    (:func:`~repro.matching.reference.auction_twin.auction_mwm_serial`,
    weight ≥ ``(1 - epsilon) * OPT``, the serial twin of the distributed
    :func:`~repro.matching.mwm_dist.run_mwm_dist`) — or ``"exact"`` — the
    O(n³) Hungarian oracle
    (:func:`~repro.matching.reference.hungarian.hungarian_mwm`).
    ``cardinality_bias`` trades weight for cardinality (auction only;
    ``>= 1`` prefers any real edge over leaving vertices unmatched).
    Returns ``(mate_r, mate_c, weight)`` over positive-weight edges.
    """
    if not isinstance(graph, COO):
        raise TypeError(
            f"maximum_weight_matching needs a COO (weights are parallel to "
            f"its edge arrays), got {type(graph).__name__}"
        )
    weights = np.asarray(weights, np.float64)
    if weights.shape != graph.rows.shape:
        raise ValueError("one weight per edge required")
    if method == "auction":
        from .reference.auction_twin import auction_mwm_serial

        mate_r, mate_c, info = auction_mwm_serial(
            graph.nrows, graph.ncols, graph.rows, graph.cols, weights,
            epsilon=epsilon, cardinality_bias=cardinality_bias,
        )
        return mate_r, mate_c, float(info["weight"])
    if method == "exact":
        from .reference.hungarian import hungarian_mwm

        return hungarian_mwm(
            graph.nrows, graph.ncols, graph.rows, graph.cols, weights
        )
    raise ValueError(f"unknown method {method!r}; choose from ['auction', 'exact']")


def matching_cardinality(mate: np.ndarray) -> int:
    """Convenience: number of matched pairs described by a mate vector."""
    return int((np.asarray(mate) != NULL).sum())
