"""Augmentation: Algorithm 3 (level-parallel) and Algorithm 4 (path-parallel).

Both algorithms flip the matched/unmatched status of every edge along each
discovered augmenting path (the symmetric difference M ⊕ P).  They compute
identical matchings; they differ in *how the work is scheduled* and hence in
communication cost:

* **level-parallel** (Algorithm 3): all k paths advance in lockstep from
  their unmatched-row ends toward their roots; each of the h/2 iterations
  performs two INVERTs and two SETs, costing ``h(6αp + 4βk/p)`` — latency
  h·6αp regardless of k, so tiny path sets at high process counts drown in
  synchronization;
* **path-parallel** (Algorithm 4): each process walks its own k/p paths
  asynchronously with one-sided Get/Put/Fetch-and-op, costing
  ``(k/p)·3h(α+β)`` — latency proportional to the local path count instead
  of p.

Comparing the latency terms gives the paper's switch: path-parallel wins
when **k < 2p²**, which :func:`choose_augment_mode` implements and the
matching driver applies per phase.

The functions below operate on global dense vectors (the single-process and
simulator engines); the true one-sided SPMD version lives in
``mcm_dist.augment_spmd_rma``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.spvec import NULL


@dataclass
class AugmentStats:
    """Measured augmentation characteristics, consumed by the cost model."""

    calls: int = 0
    level_calls: int = 0
    path_calls: int = 0
    total_paths: int = 0
    #: per call: number of lockstep iterations (h/2 of the longest path)
    level_iterations: list[int] = field(default_factory=list)
    #: per call: per-path pair-step counts (path-parallel RMA walk lengths)
    path_steps: list[np.ndarray] = field(default_factory=list)
    #: per call: k values actually augmented
    k_per_call: list[int] = field(default_factory=list)
    #: per call: live path count at each lockstep iteration
    active_per_level: list[list[int]] = field(default_factory=list)


def _collect_paths(path_c: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(roots, end_rows) of the recorded vertex-disjoint augmenting paths."""
    roots = np.flatnonzero(path_c != NULL)
    return roots, path_c[roots]


def augment_level_parallel(
    path_c: np.ndarray,
    pi_r: np.ndarray,
    mate_r: np.ndarray,
    mate_c: np.ndarray,
    stats: AugmentStats | None = None,
) -> int:
    """Algorithm 3: lockstep augmentation of all paths.

    Starting from each path's unmatched row end, every iteration matches one
    (row, parent-column) pair on every live path and steps to the column's
    previous mate — vectorized over the whole path set, exactly the
    INVERT/SET composition of the paper's pseudocode.  Returns k.
    """
    roots, rows = _collect_paths(path_c)
    k = rows.size
    if stats is not None:
        stats.calls += 1
        stats.level_calls += 1
        stats.total_paths += k
        stats.k_per_call.append(int(k))
        stats.active_per_level.append([])
    if k == 0:
        if stats is not None:
            stats.level_iterations.append(0)
        return 0

    active_rows = rows
    iters = 0
    while active_rows.size:
        iters += 1
        if stats is not None:
            stats.active_per_level[-1].append(int(active_rows.size))
        cols = pi_r[active_rows]                # INVERT + SET(π_r): parent columns
        prev_rows = mate_c[cols]                # SET(mate_c): columns' old mates
        mate_r[active_rows] = cols              # flip: match (row, parent)
        mate_c[cols] = active_rows
        active_rows = prev_rows[prev_rows != NULL]  # paths ending here drop out
    if stats is not None:
        stats.level_iterations.append(iters)
    return int(k)


def augment_path_parallel(
    path_c: np.ndarray,
    pi_r: np.ndarray,
    mate_r: np.ndarray,
    mate_c: np.ndarray,
    stats: AugmentStats | None = None,
) -> int:
    """Algorithm 4's result computed path-at-a-time (the asynchronous
    schedule), recording each path's walk length for the RMA cost model.

    Augmenting paths are vertex-disjoint, so walking them in any order or
    interleaving yields the same matching as the lockstep version — which is
    precisely why the paper can switch freely between the two.  Returns k.
    """
    roots, rows = _collect_paths(path_c)
    k = rows.size
    steps = np.zeros(k, dtype=np.int64)
    for p in range(k):
        r = int(rows[p])
        while r != NULL:
            c = int(pi_r[r])            # MPI_GET(π_r)
            prev = int(mate_c[c])       # MPI_FETCH_AND_OP(mate_c): read old, put new
            mate_c[c] = r
            mate_r[r] = c               # MPI_PUT(mate_r)
            steps[p] += 1
            r = prev
    if stats is not None:
        stats.calls += 1
        stats.path_calls += 1
        stats.total_paths += k
        stats.k_per_call.append(int(k))
        stats.path_steps.append(steps)
    return int(k)


def choose_augment_mode(k: int, nprocs: int) -> str:
    """The paper's automatic switch: path-parallel iff k < 2p²."""
    return "path" if k < 2 * nprocs * nprocs else "level"


def augment_auto(
    path_c: np.ndarray,
    pi_r: np.ndarray,
    mate_r: np.ndarray,
    mate_c: np.ndarray,
    *,
    mode: str = "auto",
    nprocs: int = 1,
    stats: AugmentStats | None = None,
) -> int:
    """Dispatch to an augmentation variant ("level", "path" or "auto")."""
    if mode == "auto":
        k = int((path_c != NULL).sum())
        mode = choose_augment_mode(k, nprocs)
    if mode == "level":
        return augment_level_parallel(path_c, pi_r, mate_r, mate_c, stats)
    if mode == "path":
        return augment_path_parallel(path_c, pi_r, mate_r, mate_c, stats)
    raise ValueError(f"unknown augment mode {mode!r} (level/path/auto)")
