"""Serial maximal-matching initializers: greedy, Karp-Sipser, dynamic mindegree.

Section II-A: initializing an MCM algorithm with a high-approximation-ratio
maximal matching cuts total runtime substantially, and the three standard
O(m) initializers differ only in the order unmatched vertices are processed:

* **greedy** — arbitrary (index) order;
* **Karp-Sipser** — degree-1 vertices first (matching a degree-1 vertex to
  its unique neighbor is always optimal), random edge otherwise;
* **dynamic mindegree** — always process a currently-minimum-degree vertex
  (degrees maintained dynamically as the graph shrinks).

These serial versions are the quality oracles for the round-synchronous
distributed formulations in :mod:`repro.matching.maximal_rounds`.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import CSC
from ..sparse.spvec import NULL


def _fresh(a: CSC) -> tuple[np.ndarray, np.ndarray]:
    return (
        np.full(a.nrows, NULL, dtype=np.int64),
        np.full(a.ncols, NULL, dtype=np.int64),
    )


def greedy_maximal(a: CSC, rng: np.random.Generator | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Greedy: scan columns in index order, match each to its first
    still-unmatched neighbor.  O(m)."""
    mate_r, mate_c = _fresh(a)
    indptr, indices = a.indptr, a.indices
    for c in range(a.ncols):
        for pos in range(indptr[c], indptr[c + 1]):
            r = int(indices[pos])
            if mate_r[r] == NULL:
                mate_r[r] = c
                mate_c[c] = r
                break
    return mate_r, mate_c


def karp_sipser(a: CSC, rng: np.random.Generator | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Karp-Sipser: exhaust degree-1 vertices before resorting to random
    picks.

    Degrees of the *residual* graph (unmatched vertices only) are maintained
    with lazy decrements: matching a vertex decrements all its neighbors'
    degrees; vertices reaching degree 1 enter the queue.  When no degree-1
    vertex exists, an unmatched column is drawn at random and matched to a
    random unmatched neighbor.  Amortized O(m).
    """
    rng = rng or np.random.default_rng(0)
    mate_r, mate_c = _fresh(a)
    at = a.transpose()  # row-side adjacency
    deg_r = a.row_degrees().copy()
    deg_c = a.col_degrees().copy()

    def neighbors_c(c: int) -> np.ndarray:
        return a.column(c)

    def neighbors_r(r: int) -> np.ndarray:
        return at.column(r)

    def match(r: int, c: int) -> None:
        mate_r[r] = c
        mate_c[c] = r
        for rr in neighbors_c(c).tolist():
            deg_r[rr] -= 1
            if deg_r[rr] == 1 and mate_r[rr] == NULL:
                q_rows.append(rr)
        for cc in neighbors_r(r).tolist():
            deg_c[cc] -= 1
            if deg_c[cc] == 1 and mate_c[cc] == NULL:
                q_cols.append(cc)

    q_rows = [int(r) for r in np.flatnonzero((deg_r == 1))]
    q_cols = [int(c) for c in np.flatnonzero((deg_c == 1))]
    # random processing order for the fallback stage
    col_order = rng.permutation(a.ncols)

    ptr = 0
    while True:
        # -- degree-1 stage
        progressed = True
        while progressed:
            progressed = False
            while q_rows:
                r = q_rows.pop()
                if mate_r[r] != NULL or deg_r[r] != 1:
                    continue
                cand = [c for c in neighbors_r(r).tolist() if mate_c[c] == NULL]
                if cand:
                    match(r, cand[0])
                    progressed = True
            while q_cols:
                c = q_cols.pop()
                if mate_c[c] != NULL or deg_c[c] != 1:
                    continue
                cand = [r for r in neighbors_c(c).tolist() if mate_r[r] == NULL]
                if cand:
                    match(cand[0], c)
                    progressed = True
        # -- random stage: one pick, then return to degree-1 processing
        while ptr < col_order.size:
            c = int(col_order[ptr])
            ptr += 1
            if mate_c[c] != NULL:
                continue
            cand = neighbors_c(c)
            cand = cand[mate_r[cand] == NULL]
            if cand.size:
                match(int(cand[rng.integers(cand.size)]), c)
                break
        else:
            break  # all columns processed
    return mate_r, mate_c


def dynamic_mindegree(a: CSC, rng: np.random.Generator | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Dynamic mindegree: always match a currently-minimum-degree unmatched
    column to its minimum-degree unmatched row neighbor.

    Implemented with degree buckets over columns (degrees only decrease, so
    a lazily-maintained bucket queue gives amortized O(m + n) total).
    """
    mate_r, mate_c = _fresh(a)
    at = a.transpose()
    deg_r = a.row_degrees().copy()
    deg_c = a.col_degrees().copy()
    maxdeg = int(deg_c.max()) if a.ncols else 0

    buckets: list[list[int]] = [[] for _ in range(maxdeg + 1)]
    for c in range(a.ncols):
        buckets[deg_c[c]].append(c)

    def requeue(c: int) -> None:
        d = int(deg_c[c])
        if 0 <= d <= maxdeg:
            buckets[d].append(c)

    d = 0
    while d <= maxdeg:
        if not buckets[d]:
            d += 1
            continue
        c = buckets[d].pop()
        if mate_c[c] != NULL:
            continue
        if deg_c[c] != d:  # stale entry: degree has decreased since queueing
            continue
        cand = a.column(c)
        cand = cand[mate_r[cand] == NULL]
        if cand.size == 0:
            if d != 0:
                deg_c[c] = 0  # isolated in the residual graph
            continue
        r = int(cand[np.argmin(deg_r[cand])])
        mate_r[r] = c
        mate_c[c] = r
        # update residual degrees and requeue touched columns
        for rr in a.column(c).tolist():
            deg_r[rr] -= 1
        for cc in at.column(r).tolist():
            if mate_c[cc] == NULL:
                deg_c[cc] -= 1
                if deg_c[cc] < d:
                    d = max(0, int(deg_c[cc]))
                requeue(cc)
    return mate_r, mate_c
