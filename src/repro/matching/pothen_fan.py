"""Pothen-Fan: multi-source DFS with lookahead (serial reference).

The paper's Section II-A cites Pothen-Fan [12] as the specialized
multi-source DFS that outperforms Hopcroft-Karp on most practical inputs
(on shared memory).  Structure: phases of DFS from every unmatched column;
before descending, each column first *looks ahead* for an immediately
adjacent unmatched row (the classic PF optimization that skips most deep
searches); visited marks are phase-global so the paths found within a phase
are vertex-disjoint.  Phases repeat until none augments.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import CSC
from ..sparse.spvec import NULL


def pothen_fan(
    a: CSC,
    mate_r: np.ndarray | None = None,
    mate_c: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Maximum matching by repeated phases of lookahead-DFS."""
    n1, n2 = a.nrows, a.ncols
    mate_r = np.full(n1, NULL, np.int64) if mate_r is None else np.asarray(mate_r, np.int64).copy()
    mate_c = np.full(n2, NULL, np.int64) if mate_c is None else np.asarray(mate_c, np.int64).copy()
    indptr, indices = a.indptr, a.indices

    # Lookahead cursor persists ACROSS phases: each column's adjacency is
    # scanned for free rows at most once over the whole run (Duff-style).
    lookahead = indptr.copy()[:-1]

    while True:
        augmented = 0
        visited_row = np.zeros(n1, dtype=bool)
        cursor = indptr.copy()[:-1]
        for c0 in np.flatnonzero(mate_c == NULL):
            if _dfs_lookahead(
                int(c0), indptr, indices, cursor, lookahead, visited_row, mate_r, mate_c
            ):
                augmented += 1
        if augmented == 0:
            break
    return mate_r, mate_c


def _dfs_lookahead(
    c0: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    cursor: np.ndarray,
    lookahead: np.ndarray,
    visited_row: np.ndarray,
    mate_r: np.ndarray,
    mate_c: np.ndarray,
) -> bool:
    """Iterative DFS from column ``c0``; True if it augmented."""
    stack = [c0]
    chosen: list[int] = []
    while stack:
        c = stack[-1]
        # -- lookahead: any adjacent free row ends the search immediately
        free_row = NULL
        while lookahead[c] < indptr[c + 1]:
            r = int(indices[lookahead[c]])
            lookahead[c] += 1
            if mate_r[r] == NULL and not visited_row[r]:
                free_row = r
                break
        if free_row != NULL:
            visited_row[free_row] = True
            chosen.append(free_row)
            for cc, rr in zip(stack, chosen):
                mate_c[cc] = rr
                mate_r[rr] = cc
            return True
        # -- regular DFS step over matched rows
        advanced = False
        while cursor[c] < indptr[c + 1]:
            r = int(indices[cursor[c]])
            cursor[c] += 1
            if visited_row[r] or mate_r[r] == NULL:
                continue  # free rows are the lookahead's job
            visited_row[r] = True
            chosen.append(r)
            stack.append(int(mate_r[r]))
            advanced = True
            break
        if not advanced:
            stack.pop()
            while len(chosen) > max(0, len(stack) - 1):
                chosen.pop()
    return False
