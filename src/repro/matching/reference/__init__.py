"""Serial oracles for maximum-weight matching parity testing.

Two independent references judge the distributed auction engine:

* :func:`~repro.matching.reference.hungarian.hungarian_mwm` — an exact
  O(n³) Hungarian solve (the ground truth for the (1-ε) bound);
* :func:`~repro.matching.reference.auction_twin.auction_mwm_serial` — a
  serial auction built from the SAME round kernels as the distributed
  engine, expected to match it bit for bit on mates and prices.
"""

from .auction_twin import auction_mwm_serial
from .hungarian import hungarian_mwm

__all__ = ["auction_mwm_serial", "hungarian_mwm"]
