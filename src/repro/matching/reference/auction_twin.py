"""Serial auction twin: the distributed engine's bit-exact oracle.

Runs the identical ε-scaled synchronized auction as
:mod:`repro.matching.mwm_dist`, but on the global doubled graph in one
process — every round calls the SAME shared kernels (:func:`top2_cols`,
:func:`compute_bids`, :func:`resolve_bids`) against the same round-start
prices, so the mate vectors and final prices it produces are what the
distributed engine must reproduce bit for bit on every grid shape,
backend, and aggregation setting.  Deviations are engine bugs by
definition (routing, partial combination, price propagation), never
float noise.
"""

from __future__ import annotations

import numpy as np

from ...sparse.spvec import NULL
from ..auction import (
    build_csc,
    compute_bids,
    dedup_edges,
    delta_schedule,
    double_for_assignment,
    extract_matchings,
    lookup_pair_weights,
    resolve_bids,
    top2_cols,
)


def auction_mwm_serial(
    n1: int,
    n2: int,
    rows: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
    *,
    epsilon: float = 0.05,
    cardinality_bias: float = 0.0,
    max_rounds: int = 1_000_000,
) -> tuple[np.ndarray, np.ndarray, dict]:
    """ε-scaled serial auction; returns ``(mate_r, mate_c, info)``.

    ``mate_r``/``mate_c`` describe a matching of the ORIGINAL graph with
    ``weight >= (1 - epsilon) * OPT`` for positive weights (exact bound:
    the perfect assignment on the doubled graph is within ``ε·scale_eff``
    of its optimum, and the better of its two extracted matchings
    inherits it).  ``info`` carries ``weight`` (original, unbiased),
    ``rounds``, ``phases``, ``bids``, the final doubled ``prices``, the
    ``schedule`` of increments, and the doubled ``mate_item`` vector
    (for ε-CS assertions).  ``cardinality_bias`` shifts real edges by
    ``bias * scale`` against the zero-weight dummies, trading weight for
    cardinality (at bias >= 1 any real edge beats going unmatched).
    """
    rows, cols, weights = dedup_edges(rows, cols, weights)
    mate_r = np.full(n1, NULL, dtype=np.int64)
    mate_c = np.full(n2, NULL, dtype=np.int64)
    scale = float(weights.max()) if weights.size else 0.0
    info = {
        "weight": 0.0, "cardinality": 0, "rounds": 0, "phases": 0, "bids": 0,
        "scale": scale, "epsilon": epsilon,
    }
    if scale <= 0.0 or n1 == 0 or n2 == 0:
        return mate_r, mate_c, info  # OPT is the empty matching

    bias_add = cardinality_bias * scale
    scale_eff = scale + bias_add
    N, dr, dc, dweff, dworig = double_for_assignment(n1, n2, rows, cols, weights, bias_add)
    cp, ir, weff, _worig = build_csc(N, N, dr, dc, dweff, dworig)
    schedule = delta_schedule(scale_eff, N, epsilon)
    sec_floor = -(scale_eff + 1.0)

    price = np.zeros(N)
    mate_item = np.full(N, NULL, dtype=np.int64)
    mate_bidder = np.full(N, NULL, dtype=np.int64)
    rounds = bids_placed = 0
    for delta in schedule:
        # each ε-phase restarts the assignment; prices persist (sound for
        # perfect assignment: both sides' price sums cancel in the bound)
        mate_item.fill(NULL)
        mate_bidder.fill(NULL)
        while True:
            bidders = np.flatnonzero(mate_bidder == NULL)
            if bidders.size == 0:
                break  # perfect assignment reached: phase done
            if rounds >= max_rounds:
                raise RuntimeError(f"auction exceeded {max_rounds} rounds")
            kcols, best, brow, bw, second = top2_cols(cp, ir, weff, bidders, price)
            bids = compute_bids(best, bw, second, delta, sec_floor)
            ridx, wbid, winner = resolve_bids(brow, bids, kcols)
            prev = mate_item[ridx]
            mate_bidder[prev[prev != NULL]] = NULL
            mate_item[ridx] = winner
            mate_bidder[winner] = ridx
            price[ridx] = wbid
            rounds += 1
            bids_placed += int(bidders.size)

    # extract the better of the two G-matchings selected by the assignment
    cp0, ir0, w0 = build_csc(n1, n2, rows, cols, weights)
    (r1, c1), (r2, c2) = extract_matchings(n1, n2, mate_item)
    w1 = lookup_pair_weights(n1, cp0, ir0, w0, r1, c1)
    w2 = lookup_pair_weights(n1, cp0, ir0, w0, r2, c2)
    weight1, weight2 = float(w1[w1 > 0].sum()), float(w2[w2 > 0].sum())
    if weight2 > weight1:
        rr, cc, ww, weight = r2, c2, w2, weight2
    else:
        rr, cc, ww, weight = r1, c1, w1, weight1
    pos = ww > 0.0  # never keep a zero/negative-weight or dummy-backed pair
    mate_r[rr[pos]] = cc[pos]
    mate_c[cc[pos]] = rr[pos]

    info.update(
        weight=weight, cardinality=int(pos.sum()), rounds=rounds,
        phases=len(schedule), bids=bids_placed, prices=price,
        schedule=schedule, mate_item=mate_item, scale_eff=scale_eff,
        sec_floor=sec_floor,
    )
    return mate_r, mate_c, info
