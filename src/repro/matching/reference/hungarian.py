"""Exact maximum-weight bipartite matching: O(n³) Hungarian algorithm.

The potential-based (Jonker-Volgenant style) formulation: maintain dual
potentials ``u`` (rows of the assignment problem) and ``v`` (columns),
insert one row at a time, and grow a shortest augmenting path in the
reduced-cost graph, updating potentials by the bottleneck slack ``delta``
at each step.  Serial and dense on purpose — this is the parity oracle
the ε-scaled distributed auction is judged against, so it must be
unimpeachably simple, not fast.

Objective semantics (matching the auction engine): maximize the sum of
edge weights over a *matching* — not necessarily perfect — where edges
with weight ≤ 0 are never worth taking (dropping a negative edge always
increases the objective; a zero edge never changes it).  Internally we
solve the classic minimum-cost PERFECT assignment on a square-padded
dense matrix with cost ``wmax - max(w, 0)`` (missing and padded cells
cost ``wmax``, i.e. zero benefit), then discard assigned pairs that do
not correspond to a real positive-weight edge.
"""

from __future__ import annotations

import numpy as np

from ...sparse.spvec import NULL


def _dense_benefit(
    nrows: int, ncols: int, rows: np.ndarray, cols: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """n × n benefit matrix: clamped weights, 0 for non-edges/padding.
    Duplicate (i, j) entries keep the largest weight."""
    n = max(nrows, ncols, 1)
    benefit = np.zeros((n, n))
    np.maximum.at(benefit, (rows, cols), np.maximum(weights, 0.0))
    return benefit


def hungarian_mwm(
    nrows: int,
    ncols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Exact MWM over weighted triples; returns ``(mate_r, mate_c, weight)``.

    ``mate_r[i]`` is the column matched to row i (NULL if unmatched),
    ``mate_c`` the inverse, ``weight`` the maximum achievable sum of
    positive edge weights.
    """
    rows = np.asarray(rows, np.int64)
    cols = np.asarray(cols, np.int64)
    weights = np.asarray(weights, np.float64)
    mate_r = np.full(nrows, NULL, dtype=np.int64)
    mate_c = np.full(ncols, NULL, dtype=np.int64)
    if rows.size == 0:
        return mate_r, mate_c, 0.0

    benefit = _dense_benefit(nrows, ncols, rows, cols, weights)
    n = benefit.shape[0]
    wmax = float(benefit.max())
    cost = wmax - benefit  # min-cost perfect assignment == max-benefit

    # e-maxx formulation, 1-based with a virtual row/column 0
    inf = np.inf
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    p = np.zeros(n + 1, dtype=np.int64)   # p[j] = row assigned to column j
    way = np.zeros(n + 1, dtype=np.int64)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n + 1, inf)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            free = np.flatnonzero(~used[1:]) + 1
            # reduced costs of row i0 against every unused column, in one shot
            cur = cost[i0 - 1, free - 1] - u[i0] - v[free]
            upd = cur < minv[free]
            minv[free[upd]] = cur[upd]
            way[free[upd]] = j0
            k = int(np.argmin(minv[free]))
            delta = minv[free][k]
            j1 = int(free[k])
            usedj = np.flatnonzero(used)
            u[p[usedj]] += delta
            v[usedj] -= delta
            minv[free] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:  # unroll the alternating path recorded in `way`
            j1 = int(way[j0])
            p[j0] = p[j1]
            j0 = j1

    # keep assigned pairs only where a real positive edge backs them
    for j in range(1, n + 1):
        i = int(p[j]) - 1
        jj = j - 1
        if i < nrows and jj < ncols and benefit[i, jj] > 0.0:
            mate_r[i] = jj
            mate_c[jj] = i
    matched = mate_r != NULL
    return mate_r, mate_c, float(benefit[np.flatnonzero(matched), mate_r[matched]].sum())
