"""Setuptools shim.

Modern ``pip install -e .`` goes through PEP 517 and needs the ``wheel``
package; on fully-offline machines without it, ``python setup.py develop``
installs the same editable package using only setuptools.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
