"""Shared infrastructure for the paper-reproduction benchmarks.

Every ``bench_*`` module regenerates one of the paper's tables/figures.
The pattern: build the scaled stand-in inputs, record one execution trace
per input, price it on the α-β machine model over the experiment's core
counts, print a paper-shaped table, and persist CSV + text artifacts under
``benchmarks/results/``.

Environment knobs:

* ``REPRO_BENCH_TARGET_NNZ`` — stand-in size (default 60000 nonzeros;
  larger = closer to the paper's balance, slower to record);
* ``REPRO_BENCH_FAST`` — set to 1 to shrink inputs/configurations for a
  quick smoke run.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.graphs import suite
from repro.perfmodel import EDISON
from repro.simulate import price, record, scaled_machine
from repro.simulate.costsim import Trace

RESULTS_DIR = Path(__file__).resolve().parent / "results"

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")
TARGET_NNZ = int(os.environ.get("REPRO_BENCH_TARGET_NNZ", "20000" if FAST else "60000"))

#: The paper's Fig. 4 core counts, adjusted to exact square grids of
#: 12-thread processes (6 threads at 24 cores, as in the paper).
CORE_SWEEP = [(24, 6), (48, 12), (108, 12), (192, 12), (432, 12), (972, 12), (2028, 12)]
if FAST:
    CORE_SWEEP = [(24, 6), (108, 12), (972, 12)]

#: Fig. 6's sweep up to 12,288 cores (square-grid adjusted).
SYNTH_SWEEP = [(48, 12), (192, 12), (768, 12), (3072, 12), (6912, 12), (12288, 12)]
if FAST:
    SYNTH_SWEEP = [(48, 12), (768, 12), (12288, 12)]


@lru_cache(maxsize=None)
def suite_input(name: str, target_nnz: int = TARGET_NNZ, seed: int = 0):
    """(stand-in COO, reduction factor) for a Table II matrix."""
    return suite.load_scaled(name, target_nnz, seed)


@lru_cache(maxsize=None)
def suite_trace(name: str, init: str = "mindegree", prune: bool = True) -> tuple[Trace, float]:
    """(execution trace, nnz reduction R) for a Table II stand-in."""
    coo, _red = suite_input(name)
    trace = record(coo, init=init, prune=prune)
    entry = suite.SUITE[name]
    return trace, entry.paper_nnz / coo.nnz


def machine_for(reduction: float):
    """The reduced-Edison machine matching a stand-in's reduction factor
    (see ``repro.simulate.costsim.scaled_machine``)."""
    return scaled_machine(reduction, EDISON)


def price_sweep(trace: Trace, reduction: float, sweep=None):
    """Price a trace over a core sweep on the scaled machine."""
    sweep = CORE_SWEEP if sweep is None else sweep
    m = machine_for(reduction)
    return [price(trace, cores, threads, m) for cores, threads in sweep]


def save_text(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + ("\n" if not text.endswith("\n") else ""))
    return path


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    save_text(name + ".txt", text)
