"""Fig. 4: strong scaling of MCM-DIST on the 13 real matrices.

Paper content: speedup of MCM-DIST relative to a single node (24 cores,
2×2 grid × 6 threads) as cores grow to ~2048; smaller matrices in the left
panel, larger in the right.  Shape to reproduce: (a) every matrix speeds up
from its 24-core baseline; (b) larger matrices scale further/higher than
smaller ones (paper: avg 9× at 972 cores, best 16–18× at 2048 on
road_usa/delaunay_n24; worst ~5× on amazon-2008); (c) small matrices
flatten earliest.  Magnitudes are compressed at our reduced scale — the
stand-ins' frontiers are ~1000× narrower (see EXPERIMENTS.md).
"""

import numpy as np

from repro.graphs import suite
from repro.simulate.report import CSV_FIELDS, results_to_rows, speedup_table, write_csv

from .common import CORE_SWEEP, RESULTS_DIR, emit, price_sweep, suite_trace


def run_panel(names):
    out = {}
    for name in names:
        trace, R = suite_trace(name)
        out[name] = price_sweep(trace, R)
    return out


def summarize(panel) -> str:
    blocks = []
    for name, results in panel.items():
        blocks.append(speedup_table(results, name))
    return "\n\n".join(blocks)


def test_fig4_small_matrices(benchmark):
    panel = benchmark.pedantic(run_panel, args=(suite.SMALL,), rounds=1, iterations=1)
    emit("fig4_small", summarize(panel))
    rows = [r for n, res in panel.items() for r in results_to_rows(n, res)]
    write_csv(RESULTS_DIR / "fig4_small.csv", rows, CSV_FIELDS)
    for name, results in panel.items():
        best = max(results[0].seconds / r.seconds for r in results)
        assert best >= 1.0, f"{name} never speeds up"


def test_fig4_large_matrices(benchmark):
    panel = benchmark.pedantic(run_panel, args=(suite.LARGE,), rounds=1, iterations=1)
    emit("fig4_large", summarize(panel))
    rows = [r for n, res in panel.items() for r in results_to_rows(n, res)]
    write_csv(RESULTS_DIR / "fig4_large.csv", rows, CSV_FIELDS)

    speedup_at_top = {}
    for name, results in panel.items():
        base = results[0].seconds
        best = max(base / r.seconds for r in results)
        top = base / results[-1].seconds
        speedup_at_top[name] = top
        assert best > 1.2, f"{name} should scale meaningfully"
    # large matrices must keep a real speedup at the top core count
    assert np.mean(list(speedup_at_top.values())) > 2.0


def test_fig4_large_outscale_small(benchmark):
    def compare():
        small = run_panel(suite.SMALL)
        large = run_panel(suite.LARGE)
        def avg_top(panel):
            return float(np.mean([
                res[0].seconds / res[-1].seconds for res in panel.values()
            ]))
        return avg_top(small), avg_top(large)

    s_top, l_top = benchmark.pedantic(compare, rounds=1, iterations=1)
    emit("fig4_summary",
         f"avg speedup at {CORE_SWEEP[-1][0]} cores: small matrices {s_top:.2f}x, "
         f"large matrices {l_top:.2f}x (paper: large matrices scale better)")
    assert l_top > s_top, "larger matrices must scale better (paper's Fig. 4)"
