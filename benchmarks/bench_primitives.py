"""Table I ablation: wall-clock microbenchmarks of the matrix-algebra
primitives and their claimed complexities.

Paper content: Table I lists the serial complexity of each primitive —
IND/SELECT/SET/INVERT are O(nnz) in the SPARSE operand only, PRUNE is
sort-bounded, SpMV is bounded by the frontier columns' nonzeros.  These
benches time the real kernels (pytest-benchmark) and assert the defining
work-efficiency property: cost tracks the sparse operand, not the vector
length.
"""

import time

import numpy as np
import pytest

from repro.graphs import rmat
from repro.sparse import CSC, SR_MIN_PARENT, SparseVec, VertexFrontier
from repro.sparse.primitives import invert, prune, select, set_dense

N = 2_000_000
NNZ = 20_000


@pytest.fixture(scope="module")
def sparse_operand():
    rng = np.random.default_rng(0)
    idx = np.sort(rng.choice(N, NNZ, replace=False)).astype(np.int64)
    val = rng.integers(0, N, NNZ)
    return SparseVec(N, idx, val)


@pytest.fixture(scope="module")
def dense_operand():
    return np.random.default_rng(1).integers(-1, 5, N).astype(np.int64)


def test_bench_select(benchmark, sparse_operand, dense_operand):
    out = benchmark(select, sparse_operand, dense_operand, lambda v: v == -1)
    assert out.nnz <= sparse_operand.nnz


def test_bench_set(benchmark, sparse_operand, dense_operand):
    y = dense_operand.copy()
    benchmark(set_dense, y, sparse_operand)


def test_bench_invert(benchmark, sparse_operand):
    out = benchmark(invert, sparse_operand, N)
    assert out.nnz <= sparse_operand.nnz


def test_bench_prune(benchmark, sparse_operand):
    rng = np.random.default_rng(2)
    q = SparseVec(N, np.sort(rng.choice(N, 500, replace=False)), rng.integers(0, N, 500))
    out = benchmark(prune, sparse_operand, q)
    assert out.nnz <= sparse_operand.nnz


def test_bench_spmv(benchmark):
    a = CSC.from_coo(rmat.g500(scale=14, seed=3))
    rng = np.random.default_rng(4)
    fidx = np.sort(rng.choice(a.ncols, 2000, replace=False)).astype(np.int64)
    fc = VertexFrontier.roots_of_self(a.ncols, fidx)
    out = benchmark(a.spmv_frontier, fc, SR_MIN_PARENT)
    assert out.nnz > 0


def test_work_efficiency_select_independent_of_dense_length(benchmark):
    """SELECT over a 100x longer dense vector must not cost ~100x more —
    Table I's O(nnz(x)) claim."""
    rng = np.random.default_rng(5)
    nnz = 5000

    def timed(n):
        idx = np.sort(rng.choice(n, nnz, replace=False)).astype(np.int64)
        x = SparseVec(n, idx, idx.copy())
        y = rng.integers(-1, 3, n).astype(np.int64)
        t0 = time.perf_counter()
        for _ in range(200):
            select(x, y, lambda v: v == -1)
        return time.perf_counter() - t0

    def run():
        return timed(50_000), timed(5_000_000)

    t_small, t_large = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t_large < t_small * 20, (
        f"SELECT scaled with dense length: {t_small:.4f}s -> {t_large:.4f}s"
    )


def test_spmv_cost_tracks_frontier_not_matrix(benchmark):
    """SpMV with a 10x smaller frontier must do ~10x less work."""
    a = CSC.from_coo(rmat.er(scale=13, seed=6))
    rng = np.random.default_rng(7)
    big = np.sort(rng.choice(a.ncols, 4000, replace=False)).astype(np.int64)
    small = big[::10]

    def counts():
        return (
            a.spmv_count(VertexFrontier.roots_of_self(a.ncols, small)),
            a.spmv_count(VertexFrontier.roots_of_self(a.ncols, big)),
        )

    c_small, c_big = benchmark.pedantic(counts, rounds=1, iterations=1)
    assert c_small * 5 < c_big
