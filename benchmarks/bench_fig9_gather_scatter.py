"""Fig. 9: the cost of employing a shared-memory matcher on a distributed
graph.

Paper content: time to gather a distributed graph on MPI rank 0 and scatter
the mate vectors back, vs edge count, on 2048 cores — growing linearly to
~20 s at 900 M edges (nlpkkt200's size), i.e. about twice the cost of just
running MCM-DIST distributed.  Two reproductions:

* *model*: the α-β root-funnel model across the paper's edge-count range,
  checking linearity and the 900 M-edge magnitude;
* *measured*: an actual gather/scatter through the simulated MPI runtime at
  small scale (real bytes through rank mailboxes), checking the same
  linear-growth shape end to end.
"""

import time

import numpy as np
import pytest

from repro.distmat.grid import ProcGrid
from repro.distmat.spmat import DistSparseMatrix
from repro.graphs import rmat
from repro.runtime import spmd
from repro.simulate import gather_scatter_time

from .common import FAST, emit


def model_curve():
    sizes = [1e6, 5e6, 2.5e7, 1e8, 4.5e8, 9e8]
    return [(int(m), gather_scatter_time(int(m), int(m // 28), cores=2048)) for m in sizes]


def test_fig9_model_curve(benchmark):
    curve = benchmark.pedantic(model_curve, rounds=1, iterations=1)
    lines = [f"{'edges':>12} {'gather(s)':>10} {'preproc(s)':>11} {'scatter(s)':>11} {'total(s)':>9}"]
    for m, c in curve:
        lines.append(f"{m:>12,} {c.gather:>10.3f} {c.preprocess:>11.3f} {c.scatter:>11.3f} {c.total:>9.3f}")
    emit("fig9_gather_model", "\n".join(lines))

    totals = [c.total for _, c in curve]
    # monotone and roughly linear: 900x edges -> >= 100x time
    assert all(b > a for a, b in zip(totals, totals[1:]))
    assert totals[-1] / totals[0] > 100
    # the paper's landmark: ~20 s at 900 M edges (within a factor of ~3)
    assert 6.0 < totals[-1] < 60.0


def test_fig9_measured_gather_scatter(benchmark):
    """Real data through the simulated runtime: gather a distributed matrix
    to rank 0, scatter mate vectors back, measure wall time vs nnz."""

    scales = [8, 10, 12] if not FAST else [8, 10]

    def measure_one(scale):
        coo = rmat.er(scale=scale, seed=3)

        def main(comm):
            grid = ProcGrid(comm, 2, 2)
            A = DistSparseMatrix.scatter_from_root(grid, coo if comm.rank == 0 else None)
            comm.barrier()
            t0 = time.perf_counter()
            gathered = A.gather_to_root()
            if comm.rank == 0:
                mates = [np.arange(coo.nrows)] * comm.size
            else:
                mates = None
            comm.scatter(mates, root=0)
            comm.barrier()
            elapsed = time.perf_counter() - t0
            if comm.rank == 0:
                assert gathered.nnz == coo.nnz
            return elapsed

        res = spmd(4, main)
        return coo.nnz, max(res.values)

    def run():
        return [measure_one(s) for s in scales]

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'nnz':>10} {'measured gather+scatter (s)':>28}"]
    for nnz, secs in points:
        lines.append(f"{nnz:>10,} {secs:>28.4f}")
    emit("fig9_gather_measured", "\n".join(lines))

    # shape: cost grows with edge count through the real message fabric
    assert points[-1][1] > points[0][1]


def test_fig9_gather_exceeds_distributed_mcm(benchmark):
    """The paper's punchline: for nlpkkt200-sized inputs the gather+scatter
    alone (~20 s) costs about TWICE the distributed MCM runtime (~10 s at
    2048 cores) — so collecting to one node cannot beat MCM-DIST."""

    def compute():
        gather = gather_scatter_time(900_000_000, 16_240_000, cores=2048).total
        mcm_dist_paper = 10.0  # paper's Fig. 4 reading for nlpkkt200 at 2048
        return gather, mcm_dist_paper

    gather, mcm = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("fig9_punchline",
         f"gather+scatter model: {gather:.1f}s vs distributed MCM ~{mcm:.0f}s "
         f"(ratio {gather / mcm:.1f}x; paper reports ~2x)")
    assert gather > mcm
