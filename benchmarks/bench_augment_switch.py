"""Ablation: level-parallel vs path-parallel augmentation and the k < 2p²
switch (Section IV-B's closing analysis).

Paper content (text, not a numbered figure): Algorithm 3 costs
h(6αp + 4βk/p) while Algorithm 4 costs (k/p)·3h(α+β); comparing latency
terms, path-parallel wins exactly when k < 2p².  This bench prices both
variants over a (k, p) sweep from synthetic path sets and verifies the
automatic switch picks the cheaper variant in (nearly) every cell.
"""

import numpy as np
import pytest

from repro.matching import choose_augment_mode
from repro.perfmodel import EDISON, collectives as C

from .common import emit

H = 8  # pair-steps per path (path length ~ 2H+1)


def level_cost(k: int, P: int, alpha: float, beta: float) -> float:
    steps = np.full(k, H)
    comm = 0.0
    for level in range(H):
        active = int((steps > level).sum())
        comm += 6 * C.alltoallv(P, alpha, beta, 0.0, "bruck") + beta * 4 * (-(-active // P))
    return comm


def path_cost(k: int, P: int, alpha: float, beta: float) -> float:
    per_rank = -(-k // P) * H
    return 3 * per_rank * C.rma_op(alpha, beta, 1.0) + C.barrier_dissemination(P, alpha)


def run_sweep():
    alpha, beta = EDISON.alpha, EDISON.beta
    rows = []
    for P in (4, 16, 64, 256):
        for k in (1, 8, 2 * P * P // 4, 2 * P * P, 8 * P * P, 64 * P * P):
            lv = level_cost(k, P, alpha, beta)
            pp = path_cost(k, P, alpha, beta)
            rows.append({
                "P": P, "k": k,
                "level_s": lv, "path_s": pp,
                "cheaper": "path" if pp < lv else "level",
                "chosen": choose_augment_mode(k, P),
            })
    return rows


def test_augment_switch_ablation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'P':>5} {'k':>9} {'level (s)':>11} {'path (s)':>11} {'cheaper':>8} {'chosen':>7}"]
    for r in rows:
        lines.append(
            f"{r['P']:>5} {r['k']:>9} {r['level_s']:>11.3e} {r['path_s']:>11.3e} "
            f"{r['cheaper']:>8} {r['chosen']:>7}"
        )
    emit("augment_switch", "\n".join(lines))

    # tiny k: path-parallel must win at every P
    for r in rows:
        if r["k"] <= 8:
            assert r["cheaper"] == "path", r
        if r["k"] >= 64 * r["P"] ** 2:
            assert r["cheaper"] == "level", r
    # the k < 2p² rule agrees with the priced winner away from the boundary
    clear = [r for r in rows if r["k"] <= 8 or r["k"] >= 64 * r["P"] ** 2]
    agree = sum(1 for r in clear if r["chosen"] == r["cheaper"])
    assert agree == len(clear)


def test_augment_variants_real_timing(benchmark):
    """Wall-clock microbenchmark of the two (global-array) augmentation
    implementations on identical synthetic path sets."""
    from repro.matching import augment_level_parallel
    from repro.sparse.spvec import NULL

    rng = np.random.default_rng(0)
    n = 60_000
    pi_r = np.full(n, NULL, np.int64)
    mate_r = np.full(n, NULL, np.int64)
    mate_c = np.full(n, NULL, np.int64)
    path_c = np.full(n, NULL, np.int64)
    v = list(rng.permutation(n))
    while len(v) >= 4:
        c_root, r1, c1, r2 = v.pop(), v.pop(), v.pop(), v.pop()
        pi_r[r1] = c_root
        pi_r[r2] = c1
        mate_r[r1] = c1
        mate_c[c1] = r1
        path_c[c_root] = r2

    def run():
        augment_level_parallel(path_c, pi_r, mate_r.copy(), mate_c.copy())

    benchmark(run)
