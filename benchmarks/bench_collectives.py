"""Machine-readable perf baseline for the latency-aware collective engine.

Two artifacts, committed at the repo root so CI can diff against them:

* ``BENCH_collectives.json`` — micro benchmarks: per-collective merged
  message/word/step counters for the engine algorithms vs the naive
  baselines at p=4 and p=9 (the 2×2 and 3×3 grid communicator sizes);
* ``BENCH_spmd.json`` — end-to-end MCM-DIST runs (er:7 on 2×2, er:9 on
  3×3, direction=auto) under the engine and naive configs: phases, words
  (expand/fold/total), wall-clock phase times, the per-algorithm
  collective breakdown, the physical frame ledger of the superstep
  coalescer (``comm_messages``/``frames``/``frame_words`` — gated by the
  same >10% rule as every other counter), and a ``backends`` block timing
  the thread vs process transports (median-of-5 wall clock with the
  min..max spread recorded, plus the host ``cpu_count``; on any
  multi-cpu host the process backend must beat the thread backend).

All counters are deterministic (the simulated fabric counts logical
messages, not bytes on a wire); the ``seconds_*`` fields vary run to run
and are excluded from the counter regression checks.  The one wall-clock
gate is the process backend's ``seconds_total``: ``--check`` fails if it
regresses >10% vs the committed baseline both in absolute terms *and*
relative to the same-run thread time (the ratio cancels shared-machine
noise that absolute times on a loaded host cannot).

Usage::

    PYTHONPATH=src python benchmarks/bench_collectives.py           # full, writes JSONs
    PYTHONPATH=src python benchmarks/bench_collectives.py --quick   # skip er:9
    PYTHONPATH=src python benchmarks/bench_collectives.py --quick --check
        # compare counters against the committed JSONs; exit 1 on any
        # >10% regression (more messages/words/steps than the baseline)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.graphs.rmat import er
from repro.matching.mcm_dist import run_mcm_dist
from repro.runtime import DEFAULT_CONFIG, NAIVE_CONFIG, SUM

REPO_ROOT = Path(__file__).resolve().parent.parent
COLLECTIVES_JSON = "BENCH_collectives.json"
SPMD_JSON = "BENCH_spmd.json"

#: micro-bench shape: CALLS calls per collective, 8-word payloads (the
#: small-message regime the engine targets)
CALLS = 4
PAYLOAD = 8
MICRO_SIZES = (4, 9)
TOLERANCE = 0.10


# ---------------------------------------------------------------------------
# micro benchmarks
# ---------------------------------------------------------------------------


def _merged_by_alg(result) -> dict:
    out: dict = {}
    for s in result.stats:
        for key, d in s.by_alg.items():
            acc = out.setdefault(key, dict.fromkeys(d, 0))
            for f, v in d.items():
                acc[f] += v
    return out


def _micro_prog(comm):
    a = np.arange(PAYLOAD, dtype=np.int64)
    for _ in range(CALLS):
        comm.bcast(a if comm.rank == 0 else None, root=0)
    for _ in range(CALLS):
        comm.reduce(a + comm.rank, op=SUM, root=0)
    for _ in range(CALLS):
        comm.allreduce(a + comm.rank, op=SUM)
    for _ in range(CALLS):
        comm.allgatherv(a + comm.rank)
    for _ in range(CALLS):
        comm.alltoallv([a + comm.rank] * comm.size)
    return None


def run_micro() -> dict:
    from repro.runtime import spmd

    micro: dict = {}
    for p in MICRO_SIZES:
        per_op: dict = {}
        for label, cfg in (("engine", DEFAULT_CONFIG), ("naive", NAIVE_CONFIG)):
            by_alg = _merged_by_alg(spmd(p, _micro_prog, comm_config=cfg))
            for key, d in by_alg.items():
                op, _, alg = key.partition(":")
                per_op.setdefault(op, {})[label] = {
                    "alg": alg,
                    "calls": d["calls"],
                    "messages": d["messages"],
                    "words": d["words"],
                    "steps": d["steps"],
                    # steps are identical on every rank; per-call = the
                    # latency term the α-β model charges one instance
                    "steps_per_call": d["steps"] // max(1, d["calls"]),
                }
        micro[f"p={p}"] = per_op
    return micro


# ---------------------------------------------------------------------------
# end-to-end SPMD runs
# ---------------------------------------------------------------------------

SPMD_CASES = {
    "er7": {"scale": 7, "pr": 2, "pc": 2},
    "er9": {"scale": 9, "pr": 3, "pc": 3},
}


#: median-of-N repetitions for the backend wall-clock timings — wall
#: clock on a shared host is noisy; the median rejects one-off scheduler
#: stalls in either direction (the old best-of-3 minimum still let a
#: single lucky sample mask a real regression)
BACKEND_REPS = 5


def run_spmd_case(scale: int, pr: int, pc: int) -> dict:
    coo = er(scale=scale, seed=1)
    out: dict = {"graph": f"er:{scale}", "grid": f"{pr}x{pc}"}
    mates = {}
    for label, cfg in (("engine", DEFAULT_CONFIG), ("naive", NAIVE_CONFIG)):
        t0 = time.perf_counter()
        mate_r, mate_c, stats = run_mcm_dist(
            coo, pr, pc, direction="auto", comm_config=cfg
        )
        dt = time.perf_counter() - t0
        mates[label] = (mate_r, mate_c)
        out[label] = {
            "cardinality": int((mate_r != -1).sum()),
            "phases": stats.phases,
            "iterations": stats.iterations,
            "expand_words": stats.expand_words,
            "fold_words": stats.fold_words,
            "total_words": stats.total_words,
            # physical ledger of the superstep coalescer: logical messages
            # vs coalesced frames actually deposited/ring-written
            "comm_messages": stats.comm_messages,
            "frames": stats.frames,
            "frame_words": stats.frame_words,
            "seconds_total": round(dt, 4),
            "seconds_per_phase": round(dt / max(1, stats.phases), 4),
            "comm_by_alg": stats.comm_by_alg,
        }
    # the engine is an optimization, not a semantic change
    assert np.array_equal(mates["engine"][0], mates["naive"][0]), "mate_r diverged"
    assert np.array_equal(mates["engine"][1], mates["naive"][1]), "mate_c diverged"
    out["backends"] = time_backends(coo, pr, pc, mates["engine"])
    return out


def time_backends(coo, pr: int, pc: int, expected_mates) -> dict:
    """Median-of-N wall clock for the thread vs process transports on the
    engine config, with a parity assertion on every run.  The min..max
    spread is recorded alongside so a noisy host is visible in the
    artifact instead of silently polluting the gated median."""
    block: dict = {"cpu_count": os.cpu_count(), "reps": BACKEND_REPS}
    for backend in ("thread", "process"):
        samples = []
        for _ in range(BACKEND_REPS):
            t0 = time.perf_counter()
            mate_r, mate_c, _ = run_mcm_dist(
                coo, pr, pc, direction="auto", comm_config=DEFAULT_CONFIG,
                backend=backend,
            )
            samples.append(time.perf_counter() - t0)
            assert np.array_equal(mate_r, expected_mates[0]), \
                f"{backend} backend mate_r diverged"
            assert np.array_equal(mate_c, expected_mates[1]), \
                f"{backend} backend mate_c diverged"
        block[backend] = {
            "seconds_total": round(float(np.median(samples)), 4),
            "seconds_spread": [round(min(samples), 4), round(max(samples), 4)],
        }
    return block


def run_traced_check() -> None:
    """Traced mode: re-run the er:7 case with span tracing on and prove the
    tracer's accounting against the stats counters — every ``op:alg`` word
    total summed from comm spans must equal ``CommStats.by_alg`` exactly,
    and tracing must not perturb the computed matching."""
    case = SPMD_CASES["er7"]
    coo = er(scale=case["scale"], seed=1)
    plain_r, plain_c, _ = run_mcm_dist(
        coo, case["pr"], case["pc"], direction="auto"
    )
    mate_r, mate_c, stats = run_mcm_dist(
        coo, case["pr"], case["pc"], direction="auto", trace="ticks"
    )
    assert np.array_equal(mate_r, plain_r), "tracing changed mate_r"
    assert np.array_equal(mate_c, plain_c), "tracing changed mate_c"
    traced = stats.trace.comm_words_by_key()
    by_alg = stats.comm_by_alg
    assert set(traced) == set(by_alg), \
        f"op:alg key sets differ: {set(traced) ^ set(by_alg)}"
    mismatches = [
        (key, traced[key], d["words"])
        for key, d in by_alg.items() if traced[key] != d["words"]
    ]
    assert not mismatches, f"span words != by_alg words: {mismatches}"
    print(f"  traced er7: {stats.trace.nspans:,} spans; span word counts == "
          f"CommStats.by_alg for all {len(by_alg)} op:alg keys")


# ---------------------------------------------------------------------------
# acceptance + regression checks
# ---------------------------------------------------------------------------


def assert_acceptance(micro: dict, spmd_runs: dict) -> None:
    """The PR's perf criteria, asserted on freshly measured numbers."""
    p9 = micro["p=9"]
    for op in ("allgather", "allreduce", "bcast"):
        eng = p9[op]["engine"]["steps"]
        nai = p9[op]["naive"]["steps"]
        assert 2 * eng <= nai, f"{op} steps at p=9: engine {eng} vs naive {nai}"
        print(f"  p=9 {op:<10} steps: engine {eng:>4} vs naive {nai:>4} "
              f"({nai / eng:.1f}x fewer)")
    if "er9" in spmd_runs:
        eng = spmd_runs["er9"]["engine"]["fold_words"]
        nai = spmd_runs["er9"]["naive"]["fold_words"]
        assert eng <= nai, f"er9 fold words regressed: engine {eng} vs naive {nai}"
        print(f"  er9 fold words: engine {eng:,} vs naive {nai:,}")
        # the aggregation tentpole's headline number: at p=9 the coalescer
        # must at least halve the physical message count
        run = spmd_runs["er9"]["engine"]
        msgs, frames = run["comm_messages"], run["frames"]
        assert 2 * frames <= msgs, (
            f"er9 p=9: {frames} physical frames vs {msgs} logical messages "
            f"— aggregation below the 2x bar"
        )
        print(f"  er9 frames: {frames:,} physical vs {msgs:,} logical "
              f"messages ({msgs / frames:.2f}x coalesced)")
    for name, run in spmd_runs.items():
        be = run.get("backends")
        if not be:
            continue
        thr = be["thread"]["seconds_total"]
        prc = be["process"]["seconds_total"]
        print(f"  {name} wall clock (median of {be['reps']}, "
              f"{be['cpu_count']} cpus): thread {thr:.3f}s, process {prc:.3f}s")
        if be["cpu_count"] > 1:
            # hard gate on any multi-cpu host: true parallelism must pay
            # for the serialization the process backend adds
            assert prc < thr, (
                f"{name}: process backend ({prc:.3f}s) did not beat the "
                f"thread backend ({thr:.3f}s) despite {be['cpu_count']} cpus"
            )
        elif be["cpu_count"] <= 1:
            print("    single-cpu host: the process backend cannot run ranks "
                  "in parallel, speedup inversion not asserted")


def _compare(path: str, current, committed, problems: list) -> None:
    if isinstance(committed, dict):
        if not isinstance(current, dict):
            return
        for key, base in committed.items():
            if key.startswith("seconds"):
                continue
            if key in current:
                _compare(f"{path}/{key}", current[key], base, problems)
        return
    if isinstance(committed, bool) or not isinstance(committed, (int, float)):
        if current != committed:
            problems.append(f"{path}: {committed!r} -> {current!r}")
        return
    if isinstance(current, (int, float)) and current > committed * (1 + TOLERANCE):
        problems.append(
            f"{path}: {committed} -> {current} "
            f"(+{100 * (current / committed - 1):.1f}% > {100 * TOLERANCE:.0f}%)"
        )


def check_against_committed(name: str, current: dict, root: Path) -> list:
    baseline_path = root / name
    if not baseline_path.exists():
        return [f"{name}: committed baseline missing at {baseline_path}"]
    problems: list = []
    _compare(name, current, json.loads(baseline_path.read_text()), problems)
    return problems


def check_wallclock(spmd_doc: dict, root: Path) -> list:
    """Gate the process backend's wall-clock ``seconds_total`` at >10%
    regression vs the committed baseline.

    ``_compare`` deliberately skips all ``seconds_*`` fields; this is the
    one wall-clock number we do gate.  Absolute wall clock on a loaded
    shared host swings far more than any code change, so the gate only
    fires when *both* signals regress: the absolute process time AND the
    process/thread ratio measured in the same invocation (the thread run
    soaks up the same machine noise, so the ratio isolates transport
    overhead)."""
    baseline_path = root / SPMD_JSON
    if not baseline_path.exists():
        return []
    committed = json.loads(baseline_path.read_text())
    problems: list = []
    for name, run in spmd_doc.get("runs", {}).items():
        cur = run.get("backends")
        base = committed.get("runs", {}).get(name, {}).get("backends")
        if not cur or not base:
            continue
        cur_p = cur["process"]["seconds_total"]
        base_p = base["process"]["seconds_total"]
        cur_ratio = cur_p / max(cur["thread"]["seconds_total"], 1e-9)
        base_ratio = base_p / max(base["thread"]["seconds_total"], 1e-9)
        abs_bad = cur_p > base_p * (1 + TOLERANCE)
        rel_bad = cur_ratio > base_ratio * (1 + TOLERANCE)
        if abs_bad and rel_bad:
            problems.append(
                f"{SPMD_JSON}/runs/{name}/backends/process/seconds_total: "
                f"{base_p} -> {cur_p} "
                f"(+{100 * (cur_p / base_p - 1):.1f}%), process/thread "
                f"ratio {base_ratio:.2f} -> {cur_ratio:.2f}"
            )
    return problems


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="skip the er:9 end-to-end case (CI smoke mode)")
    ap.add_argument("--check", action="store_true",
                    help="compare counters against the committed JSONs "
                         "instead of overwriting them; exit 1 on regression")
    ap.add_argument("--traced", action="store_true",
                    help="also run the er:7 case with span tracing and "
                         "cross-check traced word counts against "
                         "CommStats.by_alg exactly")
    ap.add_argument("--out-dir", default=str(REPO_ROOT), metavar="DIR",
                    help="where to write/read the BENCH_*.json files")
    args = ap.parse_args(argv)
    root = Path(args.out_dir)

    print("micro benchmarks (engine vs naive counters)...")
    micro = run_micro()
    collectives = {
        "meta": {
            "calls_per_collective": CALLS,
            "payload_words": PAYLOAD,
            "sizes": list(MICRO_SIZES),
            "note": "counters merged over all ranks; steps are the "
                    "sequential round counts of the α-β latency term",
        },
        "micro": micro,
    }

    spmd_runs: dict = {}
    for name, case in SPMD_CASES.items():
        if args.quick and name == "er9":
            continue
        print(f"end-to-end {case['scale']=} grid {case['pr']}x{case['pc']}...")
        spmd_runs[name] = run_spmd_case(**case)
    spmd_doc = {"direction": "auto", "runs": spmd_runs}

    print("acceptance criteria:")
    assert_acceptance(micro, spmd_runs)

    if args.traced:
        print("traced cross-check (span word counts vs CommStats.by_alg)...")
        run_traced_check()

    if args.check:
        problems = check_against_committed(COLLECTIVES_JSON, collectives, root)
        problems += check_against_committed(SPMD_JSON, spmd_doc, root)
        problems += check_wallclock(spmd_doc, root)
        if problems:
            print(f"\nPERF REGRESSION vs committed baseline (>{100 * TOLERANCE:.0f}%):")
            for p in problems:
                print(f"  {p}")
            return 1
        print("\nno perf regression vs committed baseline")
        return 0

    for name, doc in ((COLLECTIVES_JSON, collectives), (SPMD_JSON, spmd_doc)):
        path = root / name
        if args.quick and path.exists():
            # quick mode must not truncate the committed full baseline:
            # merge the freshly measured subset over it
            old = json.loads(path.read_text())
            if name == SPMD_JSON:
                old["runs"].update(doc["runs"])
                doc = old
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
