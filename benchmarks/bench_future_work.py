"""Ablation: the paper's stated future-work features, implemented.

Section VII: "Future work includes implementing the tree grafting technique
together with the bottom-up BFS in distributed memory."  Both are built on
this reproduction's matrix-algebra substrate; this bench quantifies what
they buy on the reproduction's inputs:

* **tree grafting** (MS-BFS-Graft): reuse the alternating forest across
  phases — measured as traversed-edge savings vs rebuild-every-phase
  Algorithm 2, largest on skewed (G500-like) inputs;
* **direction-optimized BFS**: per-iteration top-down/bottom-up choice —
  measured as traversed-edge savings when frontiers are wide (dense-ish
  graphs from an empty matching).
"""

import numpy as np
import pytest

from repro.graphs import rmat, suite
from repro.matching import greedy_maximal, ms_bfs_graft, ms_bfs_mcm
from repro.sparse import CSC

from .common import FAST, emit

SCALE = 11 if FAST else 13


def run_graft_study():
    rows = []
    for name, coo in [
        (f"g500-{SCALE}", rmat.g500(scale=SCALE, seed=4)),
        (f"ssca-{SCALE}", rmat.ssca(scale=SCALE, seed=4)),
        (f"er-{SCALE - 1}", rmat.er(scale=SCALE - 1, seed=4)),
    ]:
        a = CSC.from_coo(coo)
        ir, ic = greedy_maximal(a)
        _, _, plain = ms_bfs_mcm(a, ir, ic)
        _, _, graft = ms_bfs_graft(a, ir, ic)
        assert plain.final_cardinality == graft.final_cardinality
        rows.append({
            "graph": name,
            "plain_edges": plain.edges_traversed,
            "graft_edges": graft.edges_traversed,
            "plain_phases": plain.phases,
            "graft_phases": graft.phases,
        })
    return rows


def test_tree_grafting_ablation(benchmark):
    rows = benchmark.pedantic(run_graft_study, rounds=1, iterations=1)
    lines = [f"{'graph':<12} {'MS-BFS edges':>13} {'Graft edges':>12} {'saved':>7} {'phases':>10}"]
    for r in rows:
        saved = 1 - r["graft_edges"] / r["plain_edges"]
        lines.append(
            f"{r['graph']:<12} {r['plain_edges']:>13,} {r['graft_edges']:>12,} "
            f"{saved:>6.1%} {r['plain_phases']:>4}->{r['graft_phases']}"
        )
    emit("future_work_graft", "\n".join(lines))
    # grafting must pay on the skewed G500 input (the [7] result)
    g500 = rows[0]
    assert g500["graft_edges"] < g500["plain_edges"]


def run_direction_study():
    rows = []
    for name, coo in [
        (f"er-{SCALE}", rmat.er(scale=SCALE, seed=8)),
        (f"g500-{SCALE}", rmat.g500(scale=SCALE, seed=8)),
    ]:
        a = CSC.from_coo(coo)
        # from the EMPTY matching the first frontiers cover every column —
        # the regime direction optimization targets
        _, _, td = ms_bfs_mcm(a, direction="topdown")
        _, _, auto = ms_bfs_mcm(a, direction="auto")
        assert td.final_cardinality == auto.final_cardinality
        rows.append({
            "graph": name,
            "topdown_edges": td.edges_traversed,
            "auto_edges": auto.edges_traversed,
        })
    return rows


def test_direction_optimization_ablation(benchmark):
    rows = benchmark.pedantic(run_direction_study, rounds=1, iterations=1)
    lines = [f"{'graph':<12} {'top-down edges':>15} {'auto edges':>12} {'saved':>7}"]
    for r in rows:
        saved = 1 - r["auto_edges"] / r["topdown_edges"]
        lines.append(
            f"{r['graph']:<12} {r['topdown_edges']:>15,} {r['auto_edges']:>12,} {saved:>6.1%}"
        )
    emit("future_work_direction", "\n".join(lines))
    # auto must not lose by more than a small overhead anywhere, and must
    # win on at least one input
    for r in rows:
        assert r["auto_edges"] <= 1.15 * r["topdown_edges"]
    assert any(r["auto_edges"] < r["topdown_edges"] for r in rows)


DIST_SCALE = 8 if FAST else 9


def run_direction_study_dist():
    """The tentpole measurement: direction optimization inside the TRUE SPMD
    path, with the simulated runtime's per-communicator word counters."""
    from repro.matching.mcm_dist import run_mcm_dist

    graphs = [(f"er-{DIST_SCALE}", rmat.er(scale=DIST_SCALE, seed=8))]
    if not FAST:
        graphs.append((f"g500-{DIST_SCALE}", rmat.g500(scale=DIST_SCALE, seed=8)))
    rows = []
    for name, coo in graphs:
        # empty initial matching -> every column on the first frontier, the
        # regime where bottom-up pays; 2x2 grid keeps the smoke run cheap
        td_r, _, td = run_mcm_dist(coo, 2, 2, init="none", direction="topdown")
        au_r, _, au = run_mcm_dist(coo, 2, 2, init="none", direction="auto")
        assert np.array_equal(td_r, au_r)  # bit-identical matchings
        rows.append({
            "graph": name,
            "td_edges": td.edges_examined, "au_edges": au.edges_examined,
            "td_fold": td.fold_words, "au_fold": au.fold_words,
            "td_expand": td.expand_words, "au_expand": au.expand_words,
            "bu_steps": au.bottomup_steps, "steps": au.iterations,
        })
    return rows


def test_direction_optimization_dist(benchmark):
    rows = benchmark.pedantic(run_direction_study_dist, rounds=1, iterations=1)
    lines = [
        f"{'graph':<10} {'td edges':>10} {'auto edges':>10} {'saved':>7} "
        f"{'td fold':>9} {'auto fold':>9} {'td expand':>9} {'auto expand':>11} {'bu steps':>9}"
    ]
    for r in rows:
        saved = 1 - r["au_edges"] / r["td_edges"]
        lines.append(
            f"{r['graph']:<10} {r['td_edges']:>10,} {r['au_edges']:>10,} {saved:>6.1%} "
            f"{r['td_fold']:>9,} {r['au_fold']:>9,} {r['td_expand']:>9,} "
            f"{r['au_expand']:>11,} {r['bu_steps']:>4}/{r['steps']}"
        )
    emit("future_work_direction_dist", "\n".join(lines))
    for r in rows:
        # the switch never examines more edges than pure top-down
        assert r["au_edges"] <= r["td_edges"]
    # and on the ER input it strictly wins on both examined edges and the
    # fold (all-to-all) word volume — the acceptance criterion
    er = rows[0]
    assert er["bu_steps"] > 0
    assert er["au_edges"] < er["td_edges"]
    assert er["au_fold"] < er["td_fold"]
