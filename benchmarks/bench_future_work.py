"""Ablation: the paper's stated future-work features, implemented.

Section VII: "Future work includes implementing the tree grafting technique
together with the bottom-up BFS in distributed memory."  Both are built on
this reproduction's matrix-algebra substrate; this bench quantifies what
they buy on the reproduction's inputs:

* **tree grafting** (MS-BFS-Graft): reuse the alternating forest across
  phases — measured as traversed-edge savings vs rebuild-every-phase
  Algorithm 2, largest on skewed (G500-like) inputs;
* **direction-optimized BFS**: per-iteration top-down/bottom-up choice —
  measured as traversed-edge savings when frontiers are wide (dense-ish
  graphs from an empty matching).
"""

import numpy as np
import pytest

from repro.graphs import rmat, suite
from repro.matching import greedy_maximal, ms_bfs_graft, ms_bfs_mcm
from repro.sparse import CSC

from .common import FAST, emit

SCALE = 11 if FAST else 13


def run_graft_study():
    rows = []
    for name, coo in [
        (f"g500-{SCALE}", rmat.g500(scale=SCALE, seed=4)),
        (f"ssca-{SCALE}", rmat.ssca(scale=SCALE, seed=4)),
        (f"er-{SCALE - 1}", rmat.er(scale=SCALE - 1, seed=4)),
    ]:
        a = CSC.from_coo(coo)
        ir, ic = greedy_maximal(a)
        _, _, plain = ms_bfs_mcm(a, ir, ic)
        _, _, graft = ms_bfs_graft(a, ir, ic)
        assert plain.final_cardinality == graft.final_cardinality
        rows.append({
            "graph": name,
            "plain_edges": plain.edges_traversed,
            "graft_edges": graft.edges_traversed,
            "plain_phases": plain.phases,
            "graft_phases": graft.phases,
        })
    return rows


def test_tree_grafting_ablation(benchmark):
    rows = benchmark.pedantic(run_graft_study, rounds=1, iterations=1)
    lines = [f"{'graph':<12} {'MS-BFS edges':>13} {'Graft edges':>12} {'saved':>7} {'phases':>10}"]
    for r in rows:
        saved = 1 - r["graft_edges"] / r["plain_edges"]
        lines.append(
            f"{r['graph']:<12} {r['plain_edges']:>13,} {r['graft_edges']:>12,} "
            f"{saved:>6.1%} {r['plain_phases']:>4}->{r['graft_phases']}"
        )
    emit("future_work_graft", "\n".join(lines))
    # grafting must pay on the skewed G500 input (the [7] result)
    g500 = rows[0]
    assert g500["graft_edges"] < g500["plain_edges"]


def run_direction_study():
    rows = []
    for name, coo in [
        (f"er-{SCALE}", rmat.er(scale=SCALE, seed=8)),
        (f"g500-{SCALE}", rmat.g500(scale=SCALE, seed=8)),
    ]:
        a = CSC.from_coo(coo)
        # from the EMPTY matching the first frontiers cover every column —
        # the regime direction optimization targets
        _, _, td = ms_bfs_mcm(a, direction="topdown")
        _, _, auto = ms_bfs_mcm(a, direction="auto")
        assert td.final_cardinality == auto.final_cardinality
        rows.append({
            "graph": name,
            "topdown_edges": td.edges_traversed,
            "auto_edges": auto.edges_traversed,
        })
    return rows


def test_direction_optimization_ablation(benchmark):
    rows = benchmark.pedantic(run_direction_study, rounds=1, iterations=1)
    lines = [f"{'graph':<12} {'top-down edges':>15} {'auto edges':>12} {'saved':>7}"]
    for r in rows:
        saved = 1 - r["auto_edges"] / r["topdown_edges"]
        lines.append(
            f"{r['graph']:<12} {r['topdown_edges']:>15,} {r['auto_edges']:>12,} {saved:>6.1%}"
        )
    emit("future_work_direction", "\n".join(lines))
    # auto must not lose by more than a small overhead anywhere, and must
    # win on at least one input
    for r in rows:
        assert r["auto_edges"] <= 1.15 * r["topdown_edges"]
    assert any(r["auto_edges"] < r["topdown_edges"] for r in rows)
