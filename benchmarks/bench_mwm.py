"""Machine-readable perf baseline for MWM-DIST, the auction engine.

Writes ``BENCH_mwm.json`` at the repo root: end-to-end weighted runs
(er:7 on 2×2, er:9 on 3×3) across the three weight distributions, each
under the plain engine config and the superstep coalescer
(``aggregate=True``).  Recorded per cell:

* the objective — ``weight`` and ``cardinality`` are gated for EXACT
  equality against the committed baseline (the engine is deterministic:
  dyadic weights, Jacobi rounds, total tie-orders — any drift is a
  correctness bug, not noise);
* deterministic work/communication counters — ``rounds``, ``phases``,
  ``bids``, ``price_updates``, ``price_words``, ``expand_words``,
  ``fold_words``, ``total_words``, ``comm_messages``, ``frames``,
  ``frame_words`` — gated by the usual >10% regression rule;
* ``seconds_total`` for humans, excluded from all gates.

Every run is cross-checked in-process before being written: the
distributed mates must be bit-identical to the serial auction twin, and
on the er:7 case the weight must reach ``(1 - ε)`` of the exact
Hungarian optimum.

Usage::

    PYTHONPATH=src python benchmarks/bench_mwm.py           # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_mwm.py --quick   # er:7 only
    PYTHONPATH=src python benchmarks/bench_mwm.py --quick --check
        # compare against the committed JSON; exit 1 on any >10% counter
        # regression or ANY objective drift
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.graphs.generators import WEIGHT_DISTS, edge_weights
from repro.graphs.rmat import er
from repro.matching.mwm_dist import run_mwm_dist
from repro.matching.reference import auction_mwm_serial, hungarian_mwm
from repro.runtime import DEFAULT_CONFIG, CollectiveConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
MWM_JSON = "BENCH_mwm.json"

EPSILON = 0.05
TOLERANCE = 0.10

CASES = {
    "er7": {"scale": 7, "pr": 2, "pc": 2, "hungarian": True},
    "er9": {"scale": 9, "pr": 3, "pc": 3, "hungarian": False},
}

#: keys compared exactly (determinism gate), not by the >10% rule
EXACT_KEYS = ("weight", "cardinality", "phases")


def run_case(scale: int, pr: int, pc: int, hungarian: bool) -> dict:
    coo = er(scale=scale, seed=1)
    out: dict = {"graph": f"er:{scale}", "grid": f"{pr}x{pc}", "epsilon": EPSILON}
    for dist in WEIGHT_DISTS:
        weights = edge_weights(coo, dist=dist, seed=7)
        mr_s, mc_s, info = auction_mwm_serial(
            coo.nrows, coo.ncols, coo.rows, coo.cols, weights, epsilon=EPSILON
        )
        cell: dict = {}
        for label, cfg in (
            ("engine", DEFAULT_CONFIG),
            ("aggregated", CollectiveConfig(aggregate=True)),
        ):
            t0 = time.perf_counter()
            mate_r, mate_c, stats = run_mwm_dist(
                coo, weights, pr, pc, epsilon=EPSILON, comm_config=cfg
            )
            dt = time.perf_counter() - t0
            # the serial twin is the oracle: bit-identical or bust
            assert np.array_equal(mate_r, mr_s), f"{dist}/{label}: mate_r diverged"
            assert np.array_equal(mate_c, mc_s), f"{dist}/{label}: mate_c diverged"
            assert stats.matching_weight == info["weight"], \
                f"{dist}/{label}: weight diverged"
            cell[label] = {
                "weight": stats.matching_weight,
                "cardinality": stats.final_cardinality,
                "phases": stats.phases,
                "rounds": stats.auction_rounds,
                "bids": stats.bids_placed,
                "price_updates": stats.price_updates,
                "price_words": stats.price_words,
                "expand_words": stats.expand_words,
                "fold_words": stats.fold_words,
                "total_words": stats.total_words,
                "comm_messages": stats.comm_messages,
                "frames": stats.frames,
                "frame_words": stats.frame_words,
                "seconds_total": round(dt, 4),
            }
            print(f"  {out['graph']} {dist:<10} {label:<10} "
                  f"weight {stats.matching_weight:>10.4f}  "
                  f"rounds {stats.auction_rounds:>4}  "
                  f"words {stats.total_words:>9,}  ({dt:.2f}s)")
        if hungarian:
            _, _, opt = hungarian_mwm(
                coo.nrows, coo.ncols, coo.rows, coo.cols, weights
            )
            assert info["weight"] >= (1.0 - EPSILON) * opt - 1e-9, \
                f"{dist}: weight {info['weight']} < (1-eps) * {opt}"
            cell["hungarian_opt"] = opt
            cell["optimality_ratio"] = round(info["weight"] / opt, 6) if opt else 1.0
        out[dist] = cell
    return out


# ---------------------------------------------------------------------------
# regression checks
# ---------------------------------------------------------------------------


def _compare(path: str, current, committed, problems: list) -> None:
    if isinstance(committed, dict):
        if not isinstance(current, dict):
            return
        for key, base in committed.items():
            if key.startswith("seconds"):
                continue
            if key in current:
                _compare(f"{path}/{key}", current[key], base, problems)
        return
    leaf = path.rsplit("/", 1)[-1]
    if leaf in EXACT_KEYS or leaf in ("hungarian_opt", "optimality_ratio"):
        if current != committed:
            problems.append(f"{path}: {committed!r} -> {current!r} (must be exact)")
        return
    if isinstance(committed, bool) or not isinstance(committed, (int, float)):
        if current != committed:
            problems.append(f"{path}: {committed!r} -> {current!r}")
        return
    if isinstance(current, (int, float)) and current > committed * (1 + TOLERANCE):
        problems.append(
            f"{path}: {committed} -> {current} "
            f"(+{100 * (current / committed - 1):.1f}% > {100 * TOLERANCE:.0f}%)"
        )


def check_against_committed(current: dict, root: Path) -> list:
    baseline_path = root / MWM_JSON
    if not baseline_path.exists():
        return [f"{MWM_JSON}: committed baseline missing at {baseline_path}"]
    problems: list = []
    _compare(MWM_JSON, current, json.loads(baseline_path.read_text()), problems)
    return problems


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="skip the er:9 case (CI smoke mode)")
    ap.add_argument("--check", action="store_true",
                    help="compare against the committed JSON instead of "
                         "overwriting it; exit 1 on regression")
    ap.add_argument("--out-dir", default=str(REPO_ROOT), metavar="DIR",
                    help="where to write/read BENCH_mwm.json")
    args = ap.parse_args(argv)
    root = Path(args.out_dir)

    runs: dict = {}
    for name, case in CASES.items():
        if args.quick and name == "er9":
            continue
        print(f"MWM-DIST {case['scale']=} grid {case['pr']}x{case['pc']}...")
        runs[name] = run_case(**case)
    doc = {"epsilon": EPSILON, "runs": runs}

    if args.check:
        problems = check_against_committed(doc, root)
        if problems:
            print(f"\nPERF REGRESSION vs committed baseline (>{100 * TOLERANCE:.0f}%"
                  f" on counters, any drift on objectives):")
            for p in problems:
                print(f"  {p}")
            return 1
        print("\nno perf regression vs committed baseline")
        return 0

    path = root / MWM_JSON
    if args.quick and path.exists():
        # quick mode must not truncate the committed full baseline
        old = json.loads(path.read_text())
        old["runs"].update(doc["runs"])
        doc = old
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
