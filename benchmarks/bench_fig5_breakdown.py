"""Fig. 5: runtime breakdown of MCM-DIST by kernel.

Paper content: stacked SpMV / INVERT / PRUNE / other bars for four
representative matrices across core counts.  Shape to reproduce:
(a) SpMV dominates at low concurrency (it carries the arithmetic);
(b) synchronization-heavy INVERT grows relative to SpMV as cores increase
(paper: road_usa SpMV 80% → 60% from 48 to 2048 cores; amazon-2008's
INVERT takes over much earlier); (c) PRUNE stays cheap everywhere.
"""

from repro.graphs import suite
from repro.perfmodel import Category
from repro.simulate.report import breakdown_table

from .common import emit, price_sweep, suite_trace

GRAPHS = suite.REPRESENTATIVE


def run_experiment():
    return {name: price_sweep(*suite_trace(name)) for name in GRAPHS}


def test_fig5_runtime_breakdown(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = "\n\n".join(breakdown_table(res, name) for name, res in data.items())
    emit("fig5_breakdown", text)

    for name, results in data.items():
        lo, hi = results[0], results[-1]

        def ratio(r):
            spmv = r.breakdown.seconds(Category.SPMV)
            inv = r.breakdown.seconds(Category.INVERT)
            return inv / max(spmv, 1e-30)

        # INVERT grows relative to SpMV with concurrency
        assert ratio(hi) > ratio(lo), f"{name}: INVERT/SpMV must rise with cores"
        # PRUNE is never the dominant kernel
        assert hi.breakdown.fraction(Category.PRUNE) < 0.25, name
        # SpMV carries a real share at low concurrency
        assert lo.breakdown.fraction(Category.SPMV) > 0.05, name


def test_fig5_amazon_invert_dominates_earlier(benchmark):
    """The paper: 'On smaller matrices such as amazon-2008, INVERT becomes
    dominant more quickly' — compare the crossover against road_usa."""

    def crossover(name):
        results = price_sweep(*suite_trace(name))
        for r in results:
            if r.breakdown.seconds(Category.INVERT) > r.breakdown.seconds(Category.SPMV):
                return r.cores
        return float("inf")

    def both():
        return crossover("amazon-2008"), crossover("road_usa")

    amazon_x, road_x = benchmark.pedantic(both, rounds=1, iterations=1)
    emit("fig5_crossover",
         f"INVERT>SpMV crossover: amazon-2008 at {amazon_x} cores, road_usa at {road_x} cores")
    assert amazon_x <= road_x
