"""Supporting study (§VI-E context): shared-memory algorithms vs the
matrix-algebra formulation, wall clock.

The paper: "the state-of-the-art shared-memory implementation is usually
faster than our distributed-memory algorithm when the latter is run on a
single node" — the distributed formulation buys scalability, not
single-node speed.  This bench times our serial implementations on one
process: Hopcroft-Karp and Pothen-Fan (classical shared-memory style)
against the Algorithm 2 matrix-algebra engine, all producing identical
cardinalities.
"""

import pytest

from repro.graphs import rmat
from repro.matching import hopcroft_karp, maximal_matching, ms_bfs_mcm, pothen_fan
from repro.matching.validate import cardinality
from repro.sparse import CSC

from .common import emit


@pytest.fixture(scope="module")
def workload():
    a = CSC.from_coo(rmat.g500(scale=12, seed=9))
    init = maximal_matching(a, "mindegree")
    return a, init


def test_bench_hopcroft_karp(benchmark, workload):
    a, (ir, ic) = workload
    mr, mc = benchmark(hopcroft_karp, a, ir, ic)
    assert cardinality(mr) > 0


def test_bench_pothen_fan(benchmark, workload):
    a, (ir, ic) = workload
    mr, mc = benchmark(pothen_fan, a, ir, ic)
    assert cardinality(mr) > 0


def test_bench_msbfs_matrix_algebra(benchmark, workload):
    a, (ir, ic) = workload
    mr, mc, _ = benchmark(ms_bfs_mcm, a, ir, ic)
    assert cardinality(mr) > 0


def test_all_engines_agree(benchmark, workload):
    a, (ir, ic) = workload

    def run():
        hk = cardinality(hopcroft_karp(a, ir, ic)[0])
        pf = cardinality(pothen_fan(a, ir, ic)[0])
        ms = cardinality(ms_bfs_mcm(a, ir, ic)[0])
        return hk, pf, ms

    hk, pf, ms = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("serial_comparison", f"cardinality: HK={hk} PF={pf} MS-BFS={ms} (must all agree)")
    assert hk == pf == ms
