"""Fig. 8: impact of pruning vertices from augmenting-path-yielding trees.

Paper content: percentage runtime reduction from enabling Step 6's PRUNE on
1024 cores, per matrix — 10% to 65% for all but two matrices, because
pruning eliminates the useless continued expansion of trees that already
found their augmenting path.  Shape to reproduce: pruning reduces both the
traversed-edge count and the model runtime on the clear majority of the
suite, and never changes the computed cardinality.
"""

from repro.graphs import suite
from repro.simulate import price, record

from .common import FAST, emit, machine_for, suite_input

CORES, THREADS = 972, 12
GRAPHS = suite.REPRESENTATIVE if FAST else sorted(suite.SUITE)


def run_experiment():
    rows = []
    for name in GRAPHS:
        coo, _ = suite_input(name)
        R = suite.SUITE[name].paper_nnz / coo.nnz
        m = machine_for(R)
        t_on = record(coo, prune=True)
        t_off = record(coo, prune=False)
        r_on = price(t_on, CORES, THREADS, m)
        r_off = price(t_off, CORES, THREADS, m)
        rows.append({
            "name": name,
            "on_s": r_on.seconds,
            "off_s": r_off.seconds,
            "reduction_pct": 100.0 * (1 - r_on.seconds / r_off.seconds),
            "edges_on": t_on.stats.edges_traversed,
            "edges_off": t_off.stats.edges_traversed,
            "card_equal": t_on.cardinality == t_off.cardinality,
        })
    return rows


def format_table(rows) -> str:
    lines = [f"# pruning impact at {CORES} cores",
             f"{'matrix':<20} {'prune on (s)':>13} {'prune off (s)':>14} {'time saved':>11} {'edges saved':>12}"]
    for r in rows:
        edge_save = 100.0 * (1 - r["edges_on"] / max(1, r["edges_off"]))
        lines.append(
            f"{r['name']:<20} {r['on_s']:>13.3e} {r['off_s']:>14.3e} "
            f"{r['reduction_pct']:>10.1f}% {edge_save:>11.1f}%"
        )
    return "\n".join(lines)


def test_fig8_pruning_impact(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("fig8_pruning", format_table(rows))

    assert all(r["card_equal"] for r in rows), "pruning must not change the MCM"
    # pruning never increases the traversed edges
    assert all(r["edges_on"] <= r["edges_off"] for r in rows)
    # ... and reduces model runtime on the clear majority (paper: all but two)
    helped = sum(1 for r in rows if r["reduction_pct"] > 0.0)
    assert helped >= len(rows) - 2, f"pruning helped only {helped}/{len(rows)}"
