"""Fig. 3: impact of the maximal-matching initializer on total MCM time.

Paper content: stacked init+MCM model times for greedy, Karp-Sipser and
dynamic mindegree on four representative graphs at ~1k cores.  Findings to
reproduce in shape: (a) distributed Karp-Sipser's initialization is the
slowest of the three on every graph (its degree-1 cascades serialize into
many bulk-synchronous rounds); (b) its better approximation ratio can still
pay off on skewed graphs (wikipedia) by shortening the MCM stage; (c)
dynamic mindegree is the best overall compromise — the paper's default.
"""

import numpy as np

from repro.graphs import suite
from repro.perfmodel import Category
from repro.simulate import price, record

from .common import emit, machine_for, suite_input

INITS = ["greedy", "karp-sipser", "mindegree"]
GRAPHS = suite.REPRESENTATIVE  # amazon, wikipedia, road_usa, delaunay
CORES, THREADS = 972, 12


def run_experiment():
    out = {}
    for name in GRAPHS:
        coo, _ = suite_input(name)
        R = suite.SUITE[name].paper_nnz / coo.nnz
        m = machine_for(R)
        per_init = {}
        for init in INITS:
            trace = record(coo, init=init)
            r = price(trace, CORES, THREADS, m)
            per_init[init] = {
                "init_s": r.breakdown.seconds(Category.INIT),
                "mcm_s": r.seconds - r.breakdown.seconds(Category.INIT),
                "total_s": r.seconds,
                "init_card": trace.stats.initial_cardinality,
                "final_card": trace.stats.final_cardinality,
            }
        out[name] = per_init
    return out


def format_table(data) -> str:
    lines = [f"# init comparison at {CORES} cores (model seconds)",
             f"{'matrix':<20} {'init':<12} {'t_init':>10} {'t_mcm':>10} {'t_total':>10} {'init card':>10} {'ratio':>7}"]
    for name, per_init in data.items():
        final = next(iter(per_init.values()))["final_card"]
        for init, d in per_init.items():
            lines.append(
                f"{name:<20} {init:<12} {d['init_s']:>10.3e} {d['mcm_s']:>10.3e} "
                f"{d['total_s']:>10.3e} {d['init_card']:>10,} {d['init_card'] / max(1, final):>7.3f}"
            )
    return "\n".join(lines)


def test_fig3_initializer_comparison(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("fig3_init", format_table(data))

    ks_slower_init = 0
    for name, per_init in data.items():
        # Karp-Sipser's init stage is the slowest initializer
        if per_init["karp-sipser"]["init_s"] >= max(
            per_init["greedy"]["init_s"], per_init["mindegree"]["init_s"]
        ):
            ks_slower_init += 1
        # all initializers end at the same (maximum) cardinality
        finals = {d["final_card"] for d in per_init.values()}
        assert len(finals) == 1
        # Karp-Sipser's approximation ratio is at least greedy's on 3/4 —
        # checked in aggregate below
    assert ks_slower_init >= 3, "Karp-Sipser init should be slowest on most graphs"

    better_ratio = sum(
        1 for per_init in data.values()
        if per_init["karp-sipser"]["init_card"] >= per_init["greedy"]["init_card"]
    )
    assert better_ratio >= 2, "Karp-Sipser should match/beat greedy's ratio on half the graphs"
