"""Table II: the input matrix suite.

Paper content: 13 real matrices (name, rows, columns, nonzeros) selected
because they retain "at least several thousands of unmatched vertices after
computing a maximal matching".  This bench builds every stand-in, reports
its statistics alongside the paper's originals, and verifies the selection
criterion scales down: each stand-in keeps a nonzero structural deficiency
after the maximal-matching initializer.
"""

import numpy as np

from repro.graphs import suite
from repro.matching import maximal_matching, maximum_matching
from repro.sparse import CSC

from .common import TARGET_NNZ, emit, suite_input


def build_table():
    rows = []
    for name in sorted(suite.SUITE):
        entry = suite.SUITE[name]
        coo, red = suite_input(name)
        a = CSC.from_coo(coo)
        mr, _ = maximal_matching(a, "mindegree")
        maximal_card = int((mr != -1).sum())
        mcm_r, _, _ = maximum_matching(a)
        mcm = int((mcm_r != -1).sum())
        rows.append({
            "name": name,
            "kind": entry.kind,
            "paper_rows": entry.paper_rows,
            "paper_nnz": entry.paper_nnz,
            "rows": coo.nrows,
            "cols": coo.ncols,
            "nnz": coo.nnz,
            "reduction": red,
            "maximal": maximal_card,
            "mcm": mcm,
            "deficiency": min(coo.nrows, coo.ncols) - mcm,
        })
    return rows


def format_table(rows) -> str:
    head = (f"{'matrix':<20} {'class':<28} {'paper n':>12} {'paper nnz':>12} "
            f"{'n':>8} {'nnz':>9} {'maximal':>8} {'MCM':>8} {'defic.':>7}")
    lines = [head]
    for r in rows:
        lines.append(
            f"{r['name']:<20} {r['kind']:<28} {r['paper_rows']:>12,} {r['paper_nnz']:>12,} "
            f"{r['rows']:>8,} {r['nnz']:>9,} {r['maximal']:>8,} {r['mcm']:>8,} {r['deficiency']:>7,}"
        )
    return "\n".join(lines)


def test_table2_suite(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("table2_suite", format_table(rows))
    assert len(rows) == 13
    for r in rows:
        assert r["mcm"] >= r["maximal"]
        assert r["nnz"] > 0
    # the paper's selection criterion, scaled down: the maximal matching
    # leaves the MCM phase real augmentation work on most of the suite
    # (unmatched-after-maximal = gap + deficiency)
    has_gap = sum(1 for r in rows if r["mcm"] > r["maximal"] or r["deficiency"] > 0)
    assert has_gap >= 9, f"only {has_gap}/13 stand-ins leave work after maximal"
    deficient = sum(1 for r in rows if r["deficiency"] > 0)
    assert deficient >= 5, f"only {deficient}/13 stand-ins structurally deficient"
