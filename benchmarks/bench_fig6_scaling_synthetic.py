"""Fig. 6: strong scaling on synthetic RMAT matrices up to 12,288 cores.

Paper content: ER / G500 / SSCA matrices at scales 26-30, with the exact
§V-B seed parameters.  Shape to reproduce: (a) runtime falls roughly like
√t when cores grow by t; (b) smaller scales stop scaling earlier (paper:
scale 26 stops by 4096 cores, scale 30 still scales at 12,288); (c) all
three generator classes behave similarly, with ER (uniform) scaling at
least as smoothly as the skewed G500.

Our scales are reduced (pure-Python memory); the same scale *separation*
of 4 is kept (small vs large = scale 12 vs 16, the paper's 26 vs 30).  The
machine's latency is scaled by the nnz reduction vs the paper's scale-30
runs, as for the real-matrix benches.
"""

import numpy as np

from repro.graphs import rmat
from repro.simulate import record
from repro.simulate.report import CSV_FIELDS, results_to_rows, speedup_table, write_csv

from .common import FAST, RESULTS_DIR, SYNTH_SWEEP, emit, machine_for, price_sweep

SMALL_SCALE, LARGE_SCALE = (10, 13) if FAST else (12, 16)
PAPER_NNZ = {"g500": 32 * (1 << 30), "er": 32 * (1 << 30), "ssca": 16 * (1 << 30)}
GEN = {"g500": rmat.g500, "er": rmat.er, "ssca": rmat.ssca}


def run_class(kind: str, scale: int):
    coo = GEN[kind](scale=scale, seed=7)
    trace = record(coo)
    R = PAPER_NNZ[kind] / coo.nnz
    return price_sweep(trace, R, SYNTH_SWEEP)


def run_experiment():
    out = {}
    for kind in GEN:
        for scale in (SMALL_SCALE, LARGE_SCALE):
            out[f"{kind}-{scale}"] = run_class(kind, scale)
    return out


def test_fig6_synthetic_scaling(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = "\n\n".join(speedup_table(res, name) for name, res in data.items())
    emit("fig6_synthetic", text)
    rows = [r for n, res in data.items() for r in results_to_rows(n, res)]
    write_csv(RESULTS_DIR / "fig6_synthetic.csv", rows, CSV_FIELDS)

    for kind in GEN:
        small = data[f"{kind}-{SMALL_SCALE}"]
        large = data[f"{kind}-{LARGE_SCALE}"]
        s_small = small[0].seconds / small[-1].seconds
        s_large = large[0].seconds / large[-1].seconds
        # larger scales keep scaling further (paper: 26 stops, 30 continues)
        assert s_large > s_small, f"{kind}: scale {LARGE_SCALE} must outscale {SMALL_SCALE}"
        # the large instance achieves a real speedup over the sweep
        assert s_large > 2.0, f"{kind}-{LARGE_SCALE} speedup {s_large:.2f}"


def test_fig6_sqrt_t_trend(benchmark):
    """Paper: 'total runtime decreases by a factor of √t when we increase
    the core count by a factor of t' — verify the large instance sits in a
    band around that trend (between t^0.25 and t)."""

    def run():
        return run_class("er", LARGE_SCALE)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base_cores, base_t = SYNTH_SWEEP[0][0], results[0].seconds
    lines = []
    for r in results[1:]:
        t_factor = r.cores / base_cores
        speedup = base_t / r.seconds
        lines.append(f"cores x{t_factor:.0f}: speedup {speedup:.2f} (sqrt={np.sqrt(t_factor):.2f})")
        assert t_factor ** 0.25 * 0.5 < speedup < t_factor * 1.5
    emit("fig6_sqrt_trend", "\n".join(lines))


def test_fig6_memory_feasibility_claim(benchmark):
    """§VI-B: a scale-30 graph (~2G vertices, 32G edges) needs >600 GB at
    20 B/edge — beyond one node's 64 GB, so distributed memory is the only
    option.  Reproduce the arithmetic from the generator's parameters."""

    def compute():
        n = 1 << 30
        edges = 32 * n
        return edges * 20 / 1e9  # GB

    gb = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("fig6_memory", f"scale-30 G500: {gb:.0f} GB at 20 B/edge (node RAM: 64 GB)")
    assert gb > 600
