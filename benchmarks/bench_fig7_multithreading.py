"""Fig. 7: flat MPI vs hybrid MPI+OpenMP.

Paper content: runtime breakdown of the non-threaded (t=1) implementation
for road_usa and amazon-2008 — to compare against Fig. 5's t=12 hybrid.
Shape to reproduce: (a) at equal core counts the hybrid runs at least ~2×
faster; (b) flat MPI stops scaling earlier (amazon-like inputs stop by a
few hundred cores) because the 12× larger process grid inflates every
latency term and communicator size.
"""

from repro.graphs import suite
from repro.simulate import price

from .common import FAST, emit, machine_for, suite_trace

GRAPHS = ["road_usa", "amazon-2008"]
SWEEP = [(48, ), (108,), (192,), (432,), (972,), (2028,)] if not FAST else [(48,), (432,), (2028,)]


def run_experiment():
    out = {}
    for name in GRAPHS:
        trace, R = suite_trace(name)
        m = machine_for(R)
        rows = []
        for (cores,) in SWEEP:
            flat = price(trace, cores, 1, m)
            hybrid = price(trace, cores, 12, m)
            rows.append((cores, flat.seconds, hybrid.seconds))
        out[name] = rows
    return out


def format_table(data) -> str:
    lines = [f"{'matrix':<16} {'cores':>7} {'flat t=1 (s)':>14} {'hybrid t=12 (s)':>16} {'hybrid gain':>12}"]
    for name, rows in data.items():
        for cores, flat, hyb in rows:
            lines.append(f"{name:<16} {cores:>7} {flat:>14.3e} {hyb:>16.3e} {flat / hyb:>11.2f}x")
    return "\n".join(lines)


def test_fig7_hybrid_vs_flat(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("fig7_multithreading", format_table(data))

    for name, rows in data.items():
        # hybrid is faster at scale (paper: 'at least twice as fast'; our
        # reduced-α calibration compresses the contrast, so the bar here is
        # a consistent >=1.3x advantage at the top of the sweep)
        gains = [flat / hyb for _, flat, hyb in rows]
        assert gains[-1] > 1.3, f"{name}: hybrid gain at top cores only {gains[-1]:.2f}"
        # flat MPI degrades relative to hybrid as cores grow
        assert gains[-1] >= gains[1], name


def test_fig7_flat_mpi_stops_scaling_earlier(benchmark):
    def run(name="amazon-2008"):
        trace, R = suite_trace(name)
        m = machine_for(R)
        flat = [price(trace, c, 1, m).seconds for (c,) in SWEEP]
        hyb = [price(trace, c, 12, m).seconds for (c,) in SWEEP]
        return flat, hyb

    flat, hyb = benchmark.pedantic(run, rounds=1, iterations=1)

    def peak_cores(times):
        best = min(range(len(times)), key=lambda i: times[i])
        return SWEEP[best][0]

    emit("fig7_peaks",
         f"amazon-2008 best core count: flat={peak_cores(flat)}, hybrid={peak_cores(hyb)}")
    assert peak_cores(flat) <= peak_cores(hyb)
