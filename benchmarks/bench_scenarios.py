"""Machine-readable SLO baseline for the adversity scenario suite.

One artifact, committed at the repo root so CI can diff against it:

* ``BENCH_scenarios.json`` — one SLO block per named scenario in
  :data:`repro.runtime.scenarios.SCENARIOS` (baseline, straggler,
  degraded-links, correlated-crash, disrupted): p50/p99 model-time
  latency of the seeded request stream, recovery time after correlated
  kills, checkpoint overhead, restart counts, and the logical
  message/word totals.

Every gated number is *model time* or a logical counter — a pure
function of the scenario seed, bit-for-bit reproducible across runs and
across the thread/process backends.  The ``seconds_wall`` fields are the
only wall-clock values and are excluded from the regression check (the
``seconds`` prefix is what :func:`bench_collectives._compare` skips).

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py            # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_scenarios.py --quick    # 3-request streams
    PYTHONPATH=src python benchmarks/bench_scenarios.py --quick --check
        # compare against the committed JSON; exit 1 on any >10%
        # regression (higher latency/recovery/restarts/words than committed)

``--quick --check`` re-measures the scenarios with 3-request streams and
compares them against the committed quick block, so the CI smoke is both
fast and exact (model time does not get noisier when the stream shrinks —
it is deterministic at every length).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_collectives import TOLERANCE, check_against_committed  # noqa: E402

from repro.runtime.scenarios import SCENARIOS, run_scenario  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIOS_JSON = "BENCH_scenarios.json"

#: request-stream length of the quick (CI smoke) block
QUICK_REQUESTS = 3


def run_suite(requests: "int | None") -> dict:
    """Run every named scenario; return name -> SLO report."""
    out: dict = {}
    for name in SCENARIOS:
        print(f"scenario {name}...")
        rep = run_scenario(name, requests=requests)
        out[name] = rep
        print(
            f"  p50 {rep['p50_model_ms']:.3f} ms, p99 {rep['p99_model_ms']:.3f} ms, "
            f"recovery {rep['recovery_model_ms']:.3f} ms, "
            f"{rep['restarts']} restart(s), "
            f"checkpoint overhead {rep['checkpoint_overhead_pct']:.2f}% "
            f"({rep['seconds_wall']:.2f}s wall)"
        )
    return out


def assert_acceptance(suite: dict) -> None:
    """The scenario suite's structural invariants, asserted on fresh numbers."""
    required = {"baseline", "straggler", "degraded-links", "correlated-crash"}
    missing = required - set(suite)
    assert not missing, f"required scenarios missing: {sorted(missing)}"
    base = suite["baseline"]
    assert base["restarts"] == 0, "baseline scenario restarted"
    assert base["recovery_model_ms"] == 0.0, "baseline scenario recovered"
    for name in ("straggler", "degraded-links"):
        assert suite[name]["p50_model_ms"] > base["p50_model_ms"], (
            f"{name} p50 ({suite[name]['p50_model_ms']}) not above the "
            f"baseline ({base['p50_model_ms']}) — adversity priced at zero?"
        )
    crash = suite["correlated-crash"]
    assert crash["restarts"] > 0, "correlated-crash scenario never restarted"
    assert crash["recovery_model_ms"] > 0.0, (
        "correlated-crash recovery time is zero despite restarts"
    )
    print("  acceptance: baseline clean, adversity priced, crashes recovered")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help=f"run {QUICK_REQUESTS}-request streams (CI smoke mode)")
    ap.add_argument("--check", action="store_true",
                    help="compare against the committed JSON instead of "
                         "overwriting it; exit 1 on regression")
    ap.add_argument("--out-dir", default=str(REPO_ROOT), metavar="DIR",
                    help="where to write/read BENCH_scenarios.json")
    args = ap.parse_args(argv)
    root = Path(args.out_dir)
    block = "quick" if args.quick else "full"

    suite = run_suite(QUICK_REQUESTS if args.quick else None)
    print("acceptance criteria:")
    assert_acceptance(suite)
    doc = {
        "meta": {
            "note": "model-time SLOs of the seeded adversity scenarios; "
                    "deterministic across runs and backends, seconds_* "
                    "fields excluded from the regression gate",
            "quick_requests": QUICK_REQUESTS,
        },
        block: suite,
    }

    if args.check:
        committed_path = root / SCENARIOS_JSON
        if committed_path.exists():
            committed = json.loads(committed_path.read_text())
            if block not in committed:
                print(f"{SCENARIOS_JSON} has no {block!r} block; run without "
                      f"--check first to record it")
                return 1
        problems = check_against_committed(
            SCENARIOS_JSON, {"meta": doc["meta"], block: doc[block]}, root
        )
        if problems:
            print(f"\nSLO REGRESSION vs committed baseline (>{100 * TOLERANCE:.0f}%):")
            for p in problems:
                print(f"  {p}")
            return 1
        print("\nno SLO regression vs committed baseline")
        return 0

    path = root / SCENARIOS_JSON
    if path.exists():
        # never truncate the other block: merge this measurement over it
        doc_old = json.loads(path.read_text())
        doc_old["meta"] = doc["meta"]
        doc_old[block] = doc[block]
        doc = doc_old
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
