"""Parity of the compiled hot kernels against their NumPy references.

The contract of :mod:`repro.kernels.hot` is that the ``@njit`` twins are
bit-identical to the vectorized ``_*_np`` implementations — the fallback
is a correctness reference, not a degraded mode.  This suite drives the
*public* names (bound to whichever implementation the environment
selected: numba when importable and ``REPRO_JIT`` allows it, NumPy
otherwise) against the always-present ``_*_np`` references on randomized
inputs.  CI runs it twice in the backend-matrix job — once under
``REPRO_JIT=0`` and once with numba installed — so both dispatch paths
are exercised with the same assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    HAVE_NUMBA,
    kernel_backend,
    keyed_min_scatter,
    pull_candidates,
    ragged_gather_flat,
)
from repro.kernels.hot import (
    _keyed_min_scatter_np,
    _pull_candidates_np,
    _ragged_gather_np,
)

SEEDS = [0, 1, 2, 3]


def _random_csc(rng: np.random.Generator, n: int, m: int, density: float):
    """(indptr, indices) of an n-column ragged structure over m targets."""
    counts = rng.binomial(m, density, size=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = rng.integers(0, m, size=int(indptr[-1]), dtype=np.int64)
    return indptr, indices


def test_backend_reports_dispatch():
    assert kernel_backend() == ("numba" if HAVE_NUMBA else "numpy")


@pytest.mark.parametrize("seed", SEEDS)
def test_keyed_min_scatter_matches_reference(seed):
    rng = np.random.default_rng(seed)
    lo, width = 7, 40
    c = int(rng.integers(1, 200))
    rows = rng.integers(lo, lo + width, size=c, dtype=np.int64)
    k = rng.integers(0, 1000, size=c, dtype=np.int64)
    got = keyed_min_scatter(rows, k, lo, width)
    ref = _keyed_min_scatter_np(rows, k, lo, width)
    np.testing.assert_array_equal(got, ref)


def test_keyed_min_scatter_empty():
    rows = np.empty(0, dtype=np.int64)
    got = keyed_min_scatter(rows, rows, 0, 5)
    np.testing.assert_array_equal(got, _keyed_min_scatter_np(rows, rows, 0, 5))


@pytest.mark.parametrize("seed", SEEDS)
def test_ragged_gather_matches_reference(seed):
    rng = np.random.default_rng(seed + 100)
    indptr, indices = _random_csc(rng, 60, 80, 0.1)
    cols = rng.integers(0, 60, size=int(rng.integers(0, 50)), dtype=np.int64)
    got_g, got_c = ragged_gather_flat(indptr, indices, cols)
    ref_g, ref_c = _ragged_gather_np(indptr, indices, cols)
    np.testing.assert_array_equal(got_g, ref_g)
    np.testing.assert_array_equal(got_c, ref_c)


def test_ragged_gather_non_int64_dtype_falls_back():
    # the compiled loop is int64-only; other dtypes must still work
    indptr = np.array([0, 2, 3], dtype=np.int64)
    indices = np.array([5, 7, 9], dtype=np.int32)
    cols = np.array([0, 1], dtype=np.int64)
    got_g, got_c = ragged_gather_flat(indptr, indices, cols)
    np.testing.assert_array_equal(got_g, np.array([5, 7, 9], dtype=np.int32))
    np.testing.assert_array_equal(got_c, np.array([2, 1]))


@pytest.mark.parametrize("seed", SEEDS)
def test_pull_candidates_matches_reference(seed):
    rng = np.random.default_rng(seed + 200)
    nrows, ncols, null = 50, 70, -1
    row_ptr, col_idx = _random_csc(rng, nrows, ncols, 0.08)
    rows = np.unique(rng.integers(0, nrows, size=30, dtype=np.int64))
    root_of = np.full(ncols, null, dtype=np.int64)
    lit = rng.integers(0, ncols, size=ncols // 3)
    root_of[lit] = rng.integers(0, 1000, size=lit.size)
    got = pull_candidates(row_ptr, col_idx, rows, root_of, null)
    ref = _pull_candidates_np(row_ptr, col_idx, rows, root_of, null)
    for g, r in zip(got, ref):
        np.testing.assert_array_equal(g, r)


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
def test_njit_twins_are_live():
    """With numba present the public names must be the compiled twins, not
    the references (otherwise the CI numba leg silently tests nothing)."""
    assert keyed_min_scatter is not _keyed_min_scatter_np
    assert pull_candidates is not _pull_candidates_np
