"""Extension features: direction-optimized BFS (the paper's future work)
and the push-relabel baseline family."""

import numpy as np
import pytest

from repro.sparse import COO, CSC
from repro.matching import maximum_matching, ms_bfs_mcm
from repro.matching.msbfs import MsBfsHooks
from repro.matching.push_relabel import push_relabel_mcm
from repro.matching.validate import cardinality, is_valid_matching, verify_maximum

from .conftest import random_bipartite, scipy_optimum


# -- direction-optimizing BFS ---------------------------------------------------

@pytest.mark.parametrize("direction", ["topdown", "bottomup", "auto"])
@pytest.mark.parametrize("seed", range(5))
def test_all_directions_reach_optimum(direction, seed):
    rng = np.random.default_rng(seed)
    n1, n2 = int(rng.integers(1, 70)), int(rng.integers(1, 70))
    a = random_bipartite(n1, n2, int(rng.integers(0, 5 * max(n1, n2))), seed + 400)
    mr, mc, _ = ms_bfs_mcm(a, direction=direction)
    assert is_valid_matching(a, mr, mc)
    assert cardinality(mr) == scipy_optimum(a)
    assert verify_maximum(a, mr, mc)


def test_directions_produce_identical_matchings():
    """With the deterministic minParent semiring, bottom-up and top-down
    reduce the SAME candidate edge set — the mate vectors must be equal."""
    a = random_bipartite(60, 60, 300, 42)
    td = ms_bfs_mcm(a, direction="topdown")
    bu = ms_bfs_mcm(a, direction="bottomup")
    au = ms_bfs_mcm(a, direction="auto")
    assert np.array_equal(td[0], bu[0]) and np.array_equal(td[1], bu[1])
    assert np.array_equal(td[0], au[0]) and np.array_equal(td[1], au[1])


def test_auto_direction_switches_when_frontier_is_heavy():
    """On a dense-ish graph the initial frontier (all unmatched columns)
    touches more edges than the unvisited rows do once most rows are
    visited — auto must use both kernels at least once."""
    used = {"top": 0, "bottom": 0}

    class H(MsBfsHooks):
        def on_spmv(self, *a):
            used["top"] += 1

        def on_spmv_bottomup(self, *a):
            used["bottom"] += 1

    a = random_bipartite(80, 80, 1600, 7)
    ms_bfs_mcm(a, direction="auto", hooks=H(), mate_r=None, mate_c=None)
    assert used["top"] + used["bottom"] > 0
    assert used["bottom"] > 0, "dense graph from empty matching should trigger bottom-up"


def test_bottom_up_edge_counts_and_equal_result():
    """Bottom-up prefilters unvisited rows, so its traversed-edge counter is
    bounded by the unvisited-row adjacency; results stay identical."""
    a = random_bipartite(50, 50, 800, 3)
    _, _, st_td = ms_bfs_mcm(a, direction="topdown")
    _, _, st_bu = ms_bfs_mcm(a, direction="bottomup")
    assert st_bu.final_cardinality == st_td.final_cardinality
    assert st_bu.edges_traversed > 0 and st_td.edges_traversed > 0


def test_direction_validation():
    a = random_bipartite(5, 5, 10, 0)
    with pytest.raises(ValueError, match="direction"):
        ms_bfs_mcm(a, direction="sideways")


def test_api_exposes_direction():
    a = random_bipartite(30, 30, 120, 1)
    mr, mc, _ = maximum_matching(a, direction="auto")
    assert cardinality(mr) == scipy_optimum(a)


# -- push-relabel ------------------------------------------------------------------

@pytest.mark.parametrize("fifo", [True, False])
@pytest.mark.parametrize("seed", range(6))
def test_push_relabel_matches_oracle(fifo, seed):
    rng = np.random.default_rng(seed)
    n1, n2 = int(rng.integers(1, 60)), int(rng.integers(1, 60))
    a = random_bipartite(n1, n2, int(rng.integers(0, 4 * max(n1, n2))), seed + 800)
    mr, mc = push_relabel_mcm(a, fifo=fifo)
    assert is_valid_matching(a, mr, mc)
    assert cardinality(mr) == scipy_optimum(a)
    assert verify_maximum(a, mr, mc)


def test_push_relabel_with_initial_matching():
    a = random_bipartite(40, 40, 200, 9)
    from repro.matching import greedy_maximal

    ir, ic = greedy_maximal(a)
    mr, mc = push_relabel_mcm(a, ir, ic)
    assert cardinality(mr) == scipy_optimum(a)


def test_push_relabel_empty_and_star():
    a = CSC.from_coo(COO.empty(3, 3))
    mr, mc = push_relabel_mcm(a)
    assert cardinality(mr) == 0
    star = CSC.from_coo(COO.from_edges(1, 4, [(0, j) for j in range(4)]))
    mr, mc = push_relabel_mcm(star)
    assert cardinality(mr) == 1


def test_push_relabel_does_not_mutate_inputs():
    a = random_bipartite(20, 20, 80, 4)
    from repro.matching import greedy_maximal

    ir, ic = greedy_maximal(a)
    snap = ir.copy()
    push_relabel_mcm(a, ir, ic)
    assert np.array_equal(ir, snap)
