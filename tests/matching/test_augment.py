"""Augmentation variants: Algorithm 3 vs Algorithm 4 equivalence + switch."""

import numpy as np
import pytest

from repro.sparse.spvec import NULL
from repro.matching import (
    augment_level_parallel,
    augment_path_parallel,
    choose_augment_mode,
)
from repro.matching.augment import AugmentStats, augment_auto


def single_path_state():
    """One augmenting path of length 5: c1 - r0 - c0 - r1 - c2(free end? no)
    Layout: root column 1, rows 0,1, path ends at free row 1.

    pi_r[1] = 0 (parent col of row 1), mate_c[0] = 0 / mate_r[0] = 0 is the
    matched middle edge, pi_r[0] = 1 (parent col of row 0 is the root).
    Path (from free row 1): r1 -> c0 -> r0 -> c1(root).
    """
    pi_r = np.array([1, 0], dtype=np.int64)
    mate_r = np.array([0, NULL], dtype=np.int64)
    mate_c = np.array([0, NULL, NULL], dtype=np.int64)
    path_c = np.array([NULL, 1, NULL], dtype=np.int64)  # root col 1 -> end row 1
    return path_c, pi_r, mate_r, mate_c


@pytest.mark.parametrize("augment", [augment_level_parallel, augment_path_parallel])
def test_augment_flips_alternating_path(augment):
    path_c, pi_r, mate_r, mate_c = single_path_state()
    k = augment(path_c, pi_r, mate_r, mate_c)
    assert k == 1
    # After flipping: r1-c0 and r0-c1 are matched; cardinality grew 1 -> 2.
    assert mate_r.tolist() == [1, 0]
    assert mate_c.tolist() == [1, 0, NULL]


def test_level_and_path_produce_identical_matchings():
    rng = np.random.default_rng(0)
    for _ in range(20):
        n = 30
        # build several vertex-disjoint alternating paths synthetically
        pi_r = np.full(n, NULL, np.int64)
        mate_r = np.full(n, NULL, np.int64)
        mate_c = np.full(n, NULL, np.int64)
        path_c = np.full(n, NULL, np.int64)
        v = list(rng.permutation(n))
        # carve disjoint paths of odd edge-length 1, 3, 5 from the id space
        while len(v) >= 6:
            c_root, r1, c1, r2 = v.pop(), v.pop(), v.pop(), v.pop()
            # path: root c_root - r1 - c1 - r2(free)
            pi_r[r1] = c_root
            pi_r[r2] = c1
            mate_r[r1] = c1
            mate_c[c1] = r1
            path_c[c_root] = r2
        a_r, a_c = mate_r.copy(), mate_c.copy()
        b_r, b_c = mate_r.copy(), mate_c.copy()
        k1 = augment_level_parallel(path_c, pi_r, a_r, a_c)
        k2 = augment_path_parallel(path_c, pi_r, b_r, b_c)
        assert k1 == k2
        assert np.array_equal(a_r, b_r)
        assert np.array_equal(a_c, b_c)


def test_augment_stats_level():
    path_c, pi_r, mate_r, mate_c = single_path_state()
    stats = AugmentStats()
    augment_level_parallel(path_c, pi_r, mate_r, mate_c, stats)
    assert stats.level_calls == 1 and stats.path_calls == 0
    assert stats.k_per_call == [1]
    assert stats.level_iterations == [2]  # path of 2 (row, col) pairs
    assert stats.active_per_level == [[1, 1]]


def test_augment_stats_path():
    path_c, pi_r, mate_r, mate_c = single_path_state()
    stats = AugmentStats()
    augment_path_parallel(path_c, pi_r, mate_r, mate_c, stats)
    assert stats.path_calls == 1
    assert stats.path_steps[0].tolist() == [2]


def test_empty_path_set():
    n = 4
    path_c = np.full(n, NULL, np.int64)
    pi_r = np.full(n, NULL, np.int64)
    mate_r = np.full(n, NULL, np.int64)
    mate_c = np.full(n, NULL, np.int64)
    assert augment_level_parallel(path_c, pi_r, mate_r, mate_c) == 0
    assert augment_path_parallel(path_c, pi_r, mate_r, mate_c) == 0


def test_choose_augment_mode_threshold():
    """The paper's rule: path-parallel iff k < 2p²."""
    assert choose_augment_mode(k=1, nprocs=4) == "path"
    assert choose_augment_mode(k=31, nprocs=4) == "path"   # 31 < 32
    assert choose_augment_mode(k=32, nprocs=4) == "level"  # 32 == 2*16
    assert choose_augment_mode(k=10**6, nprocs=4) == "level"
    assert choose_augment_mode(k=0, nprocs=1) == "path"


def test_augment_auto_dispatch_and_validation():
    path_c, pi_r, mate_r, mate_c = single_path_state()
    stats = AugmentStats()
    augment_auto(path_c, pi_r, mate_r, mate_c, mode="auto", nprocs=8, stats=stats)
    assert stats.path_calls == 1  # k=1 < 2*64
    with pytest.raises(ValueError, match="unknown augment mode"):
        augment_auto(path_c, pi_r, mate_r, mate_c, mode="sideways")
