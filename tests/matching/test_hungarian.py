"""The exact Hungarian oracle vs brute force and scipy.

The O(n³) reference in ``repro.matching.reference.hungarian`` is the
judge every auction run is measured against, so it gets its own judge
here: exhaustive enumeration of all partial assignments on graphs up to
4×4 (ties, zero and negative weights included), known-answer fixtures,
and a scipy ``linear_sum_assignment`` cross-check at larger sizes.
"""

import itertools

import numpy as np
import pytest

from repro.matching.reference import hungarian_mwm
from repro.sparse.spvec import NULL


def brute_force_mwm(nrows, ncols, rows, cols, weights):
    """Max-weight matching by enumerating every subset of best-edges.

    Dedups parallel edges (keep the max weight), drops non-positive
    weights (never worth taking), then tries every injective row→col
    assignment over the surviving edge set.  Exponential — fine ≤ 4×4.
    """
    best_w = {}
    for i, j, w in zip(rows, cols, weights):
        key = (int(i), int(j))
        if w > 0 and (key not in best_w or w > best_w[key]):
            best_w[key] = float(w)
    edges = list(best_w.items())
    best = 0.0
    for r in range(1, len(edges) + 1):
        for combo in itertools.combinations(edges, r):
            ri = [e[0][0] for e in combo]
            ci = [e[0][1] for e in combo]
            if len(set(ri)) == r and len(set(ci)) == r:
                best = max(best, sum(e[1] for e in combo))
    return best


def check_valid(nrows, ncols, rows, cols, weights, mate_r, mate_c):
    """mate_r/mate_c are mutually consistent and use only real edges."""
    edge_w = {}
    for i, j, w in zip(rows, cols, weights):
        key = (int(i), int(j))
        edge_w[key] = max(edge_w.get(key, -np.inf), float(w))
    total = 0.0
    for i in range(nrows):
        j = int(mate_r[i])
        if j != NULL:
            assert 0 <= j < ncols
            assert int(mate_c[j]) == i
            assert (i, j) in edge_w and edge_w[(i, j)] > 0
            total += edge_w[(i, j)]
    for j in range(ncols):
        i = int(mate_c[j])
        if i != NULL:
            assert int(mate_r[i]) == j
    return total


@pytest.mark.parametrize("seed", range(60))
def test_hungarian_matches_brute_force(seed):
    rng = np.random.default_rng(seed)
    n1 = int(rng.integers(1, 5))
    n2 = int(rng.integers(1, 5))
    m = int(rng.integers(0, n1 * n2 + 1))
    rows = rng.integers(0, n1, m)
    cols = rng.integers(0, n2, m)
    # small integer weights force plenty of ties; shift allows ≤ 0 weights
    weights = rng.integers(-2, 6, m).astype(np.float64)
    mate_r, mate_c, w = hungarian_mwm(n1, n2, rows, cols, weights)
    achieved = check_valid(n1, n2, rows, cols, weights, mate_r, mate_c)
    assert w == pytest.approx(achieved)
    assert w == pytest.approx(brute_force_mwm(n1, n2, rows, cols, weights))


@pytest.mark.parametrize("seed", range(60, 90))
def test_hungarian_matches_brute_force_fractional(seed):
    rng = np.random.default_rng(seed)
    n1, n2 = int(rng.integers(2, 5)), int(rng.integers(2, 5))
    m = int(rng.integers(1, 2 * n1 * n2))
    rows = rng.integers(0, n1, m)
    cols = rng.integers(0, n2, m)
    weights = rng.uniform(-1.0, 4.0, m)
    _, _, w = hungarian_mwm(n1, n2, rows, cols, weights)
    assert w == pytest.approx(brute_force_mwm(n1, n2, rows, cols, weights))


def test_known_answer_diagonal_vs_heavy_cross():
    # taking the single heavy cross edge (10) beats the two diagonal 4s? No:
    # 4 + 4 = 8 < 10 only if the cross edge excludes both. Here (0,1)=10
    # blocks (0,0) and (1,1): optimum = max(10 + 0, 4 + 4) = 10 vs 8 -> 10.
    rows = np.array([0, 1, 0])
    cols = np.array([0, 1, 1])
    weights = np.array([4.0, 4.0, 10.0])
    mate_r, mate_c, w = hungarian_mwm(2, 2, rows, cols, weights)
    assert w == 10.0
    assert mate_r.tolist() == [1, NULL]

    # flip: now the diagonals are worth 6 each and beat the 10 cross edge
    weights = np.array([6.0, 6.0, 10.0])
    mate_r, mate_c, w = hungarian_mwm(2, 2, rows, cols, weights)
    assert w == 12.0
    assert mate_r.tolist() == [0, 1]


def test_known_answer_ties_still_optimal():
    """All weights equal: MWM degenerates to MCM; optimum = 3 * w."""
    rows = np.array([0, 0, 1, 1, 2, 2])
    cols = np.array([0, 1, 1, 2, 0, 2])
    weights = np.full(6, 2.5)
    _, _, w = hungarian_mwm(3, 3, rows, cols, weights)
    assert w == pytest.approx(7.5)


def test_zero_and_negative_weights_never_matched():
    rows = np.array([0, 1, 2])
    cols = np.array([0, 1, 2])
    weights = np.array([0.0, -3.0, 5.0])
    mate_r, mate_c, w = hungarian_mwm(3, 3, rows, cols, weights)
    assert w == 5.0
    assert mate_r.tolist() == [NULL, NULL, 2]
    assert mate_c.tolist() == [NULL, NULL, 2]


def test_duplicate_edges_keep_largest():
    rows = np.array([0, 0, 0])
    cols = np.array([0, 0, 0])
    weights = np.array([1.0, 7.0, 3.0])
    _, _, w = hungarian_mwm(1, 1, rows, cols, weights)
    assert w == 7.0


def test_empty_and_degenerate_shapes():
    e = np.empty(0, np.int64)
    mate_r, mate_c, w = hungarian_mwm(3, 4, e, e, np.empty(0))
    assert w == 0.0
    assert (mate_r == NULL).all() and (mate_c == NULL).all()
    mate_r, mate_c, w = hungarian_mwm(0, 0, e, e, np.empty(0))
    assert mate_r.size == 0 and mate_c.size == 0 and w == 0.0


def test_rectangular_wide_and_tall():
    # 1 row, 4 cols: can take only the single best edge
    rows = np.array([0, 0, 0, 0])
    cols = np.array([0, 1, 2, 3])
    weights = np.array([1.0, 9.0, 2.0, 3.0])
    mate_r, _, w = hungarian_mwm(1, 4, rows, cols, weights)
    assert w == 9.0 and mate_r.tolist() == [1]
    # transpose
    mate_r, _, w = hungarian_mwm(4, 1, cols, rows, weights)
    assert w == 9.0 and mate_r.tolist() == [NULL, 0, NULL, NULL]


@pytest.mark.parametrize("seed", range(8))
def test_hungarian_matches_scipy_lsa(seed):
    """Cross-check on denser 8×8 graphs against scipy's assignment solver
    over the same clamped dense benefit matrix."""
    from scipy.optimize import linear_sum_assignment

    rng = np.random.default_rng(100 + seed)
    n = 8
    m = 40
    rows = rng.integers(0, n, m)
    cols = rng.integers(0, n, m)
    weights = rng.uniform(-2.0, 10.0, m)
    _, _, w = hungarian_mwm(n, n, rows, cols, weights)
    benefit = np.zeros((n, n))
    np.maximum.at(benefit, (rows, cols), np.maximum(weights, 0.0))
    ri, ci = linear_sum_assignment(benefit, maximize=True)
    assert w == pytest.approx(float(benefit[ri, ci].sum()))
