"""Serial reference algorithms (Hopcroft-Karp, Pothen-Fan, single-source)
against the scipy and networkx oracles."""

import numpy as np
import pytest

from repro.sparse import COO, CSC
from repro.matching import hopcroft_karp, pothen_fan, single_source_mcm
from repro.matching.validate import cardinality, is_valid_matching, verify_maximum

from .conftest import random_bipartite, scipy_optimum

ALGOS = [hopcroft_karp, pothen_fan, single_source_mcm]


@pytest.mark.parametrize("algo", ALGOS)
def test_empty_graph(algo):
    a = CSC.from_coo(COO.empty(4, 3))
    mr, mc = algo(a)
    assert cardinality(mr) == 0
    assert is_valid_matching(a, mr, mc)


@pytest.mark.parametrize("algo", ALGOS)
def test_perfect_matching_on_identity(algo):
    a = CSC.from_coo(COO.identity(6))
    mr, mc = algo(a)
    assert cardinality(mr) == 6
    assert np.array_equal(mr, np.arange(6))


@pytest.mark.parametrize("algo", ALGOS)
def test_path_graph_needs_augmentation(algo):
    """A path r0-c0-r1-c1: maximum matching is 2 but a bad greedy start
    (r1,c0) yields 1 — the algorithm must find the augmenting path."""
    a = CSC.from_coo(COO.from_edges(2, 2, [(0, 0), (1, 0), (1, 1)]))
    init_r = np.array([-1, 0], dtype=np.int64)
    init_c = np.array([1, -1], dtype=np.int64)
    mr, mc = algo(a, init_r, init_c)
    assert cardinality(mr) == 2
    assert verify_maximum(a, mr, mc)


@pytest.mark.parametrize("algo", ALGOS)
def test_crown_graph(algo):
    """Complete bipartite minus perfect matching (crown): still has a
    perfect matching for n >= 2... exercised at n=5."""
    n = 5
    edges = [(i, j) for i in range(n) for j in range(n) if i != j]
    a = CSC.from_coo(COO.from_edges(n, n, edges))
    mr, mc = algo(a)
    assert cardinality(mr) == n
    assert verify_maximum(a, mr, mc)


@pytest.mark.parametrize("algo", ALGOS)
def test_structurally_deficient(algo):
    """3 columns sharing one row: cardinality 1."""
    a = CSC.from_coo(COO.from_edges(1, 3, [(0, 0), (0, 1), (0, 2)]))
    mr, mc = algo(a)
    assert cardinality(mr) == 1
    assert verify_maximum(a, mr, mc)


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("seed", range(8))
def test_random_graphs_match_scipy(algo, seed):
    rng = np.random.default_rng(seed)
    n1, n2 = int(rng.integers(1, 90)), int(rng.integers(1, 90))
    m = int(rng.integers(0, 4 * max(n1, n2)))
    a = random_bipartite(n1, n2, m, seed + 1000)
    mr, mc = algo(a)
    assert is_valid_matching(a, mr, mc)
    assert cardinality(mr) == scipy_optimum(a)
    assert verify_maximum(a, mr, mc)


@pytest.mark.parametrize("algo", ALGOS)
def test_respects_initial_matching(algo):
    """Starting from a partial matching must preserve validity and still
    reach the optimum."""
    a = random_bipartite(40, 40, 160, 7)
    from repro.matching import greedy_maximal

    init_r, init_c = greedy_maximal(a)
    mr, mc = algo(a, init_r, init_c)
    assert is_valid_matching(a, mr, mc)
    assert cardinality(mr) == scipy_optimum(a)


def test_agreement_with_networkx():
    import networkx as nx

    a = random_bipartite(50, 60, 300, 3)
    coo = a.to_coo()
    g = nx.Graph()
    g.add_nodes_from((f"r{i}" for i in range(50)), bipartite=0)
    g.add_nodes_from((f"c{j}" for j in range(60)), bipartite=1)
    g.add_edges_from((f"r{i}", f"c{j}") for i, j in zip(coo.rows, coo.cols))
    top = {f"r{i}" for i in range(50)}
    nx_m = nx.bipartite.hopcroft_karp_matching(g, top_nodes=top)
    nx_card = sum(1 for k in nx_m if k.startswith("r"))
    mr, _ = hopcroft_karp(a)
    assert cardinality(mr) == nx_card


def test_hopcroft_karp_phase_count_is_small():
    """HK needs O(√n) phases; on a random graph it should terminate fast
    even from an empty matching (sanity check that layering works)."""
    a = random_bipartite(200, 200, 1200, 11)
    mr, mc = hopcroft_karp(a)
    assert cardinality(mr) == scipy_optimum(a)


def test_rectangular_wide_and_tall():
    for (n1, n2) in [(5, 50), (50, 5)]:
        a = random_bipartite(n1, n2, 100, n1 * 7 + n2)
        for algo in ALGOS:
            mr, mc = algo(a)
            assert cardinality(mr) == scipy_optimum(a)
            assert verify_maximum(a, mr, mc)
