"""Algorithm 2 (matrix-algebraic MS-BFS MCM): semantics, knobs, hooks."""

import numpy as np
import pytest

from repro.sparse import (
    COO, CSC,
    SR_MAX_PARENT, SR_MIN_PARENT, SR_RAND_PARENT, SR_RAND_ROOT,
)
from repro.sparse.spvec import NULL
from repro.matching import MsBfsHooks, maximum_matching, ms_bfs_mcm, run_phase
from repro.matching.validate import cardinality, is_valid_matching, verify_maximum

from .conftest import random_bipartite, scipy_optimum


def test_fig2_example_reaches_maximum(fig2):
    mr, mc, stats = ms_bfs_mcm(fig2)
    assert cardinality(mr) == scipy_optimum(fig2)
    assert verify_maximum(fig2, mr, mc)
    assert stats.final_cardinality == cardinality(mr)
    assert stats.phases >= 1
    assert stats.paths_per_phase[-1] == 0  # termination phase found nothing


def test_single_phase_discovers_disjoint_paths(fig2):
    """Run one phase by hand from the empty matching and inspect path_c."""
    mate_r = np.full(5, NULL, np.int64)
    mate_c = np.full(5, NULL, np.int64)
    pi_r = np.full(5, NULL, np.int64)
    path_c = run_phase(fig2, mate_r, mate_c, pi_r)
    roots = np.flatnonzero(path_c != NULL)
    ends = path_c[roots]
    # from the empty matching, every path is a single edge (root col, end row)
    assert roots.size > 0
    assert np.unique(ends).size == ends.size  # vertex-disjoint ends
    edges = set(zip(fig2.to_coo().rows.tolist(), fig2.to_coo().cols.tolist()))
    for c, r in zip(roots.tolist(), ends.tolist()):
        assert (r, c) in edges
        assert pi_r[r] == c  # parent of the end row is the path's column


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("init", [None, "greedy", "karp-sipser", "mindegree"])
def test_matches_oracle_with_every_initializer(seed, init):
    rng = np.random.default_rng(seed)
    n1, n2 = int(rng.integers(1, 80)), int(rng.integers(1, 80))
    a = random_bipartite(n1, n2, int(rng.integers(0, 4 * max(n1, n2))), seed + 200)
    mr, mc, stats = maximum_matching(a, init=init, seed=seed)
    assert is_valid_matching(a, mr, mc)
    assert cardinality(mr) == scipy_optimum(a)
    if init is not None:
        assert stats.initial_cardinality >= 0
        assert stats.final_cardinality >= stats.initial_cardinality


@pytest.mark.parametrize("semiring", [SR_MIN_PARENT, SR_MAX_PARENT, SR_RAND_PARENT, SR_RAND_ROOT])
@pytest.mark.parametrize("prune", [True, False])
def test_semirings_and_pruning_reach_same_cardinality(semiring, prune):
    a = random_bipartite(60, 60, 260, 17)
    opt = scipy_optimum(a)
    mr, mc, _ = ms_bfs_mcm(
        a, semiring=semiring, prune=prune, rng=np.random.default_rng(5)
    )
    assert cardinality(mr) == opt
    assert verify_maximum(a, mr, mc)


def test_pruning_reduces_or_equals_edge_traversals():
    """Pruning avoids expanding trees that already found a path — traversed
    edge counts must not increase."""
    a = random_bipartite(150, 150, 700, 23)
    _, _, with_prune = ms_bfs_mcm(a, prune=True)
    _, _, without = ms_bfs_mcm(a, prune=False)
    assert with_prune.final_cardinality == without.final_cardinality
    assert with_prune.edges_traversed <= without.edges_traversed


def test_deterministic_with_min_parent():
    a = random_bipartite(50, 50, 220, 31)
    r1 = ms_bfs_mcm(a, semiring=SR_MIN_PARENT)
    r2 = ms_bfs_mcm(a, semiring=SR_MIN_PARENT)
    assert np.array_equal(r1[0], r2[0])
    assert np.array_equal(r1[1], r2[1])


def test_stats_accounting():
    a = random_bipartite(60, 60, 300, 3)
    mr, mc, stats = ms_bfs_mcm(a)
    assert stats.phases == len(stats.paths_per_phase)
    assert stats.total_paths == stats.final_cardinality  # empty init: every match from a path
    assert stats.iterations >= stats.phases - 1
    assert stats.edges_traversed > 0
    assert stats.augment.total_paths == stats.total_paths


def test_hooks_see_all_steps(fig2):
    seen = {"phase_start": 0, "spmv": 0, "select": 0, "invert": 0,
            "prune": 0, "next": 0, "iter": 0, "phase_end": 0}

    class H(MsBfsHooks):
        def on_phase_start(self, fc_nnz):
            seen["phase_start"] += 1
            assert fc_nnz >= 0

        def on_spmv(self, fc, cand_rows, cand_cols, fr):
            seen["spmv"] += 1
            assert cand_rows.size == cand_cols.size
            assert fr.nnz <= cand_rows.size or cand_rows.size == 0

        def on_select_set(self, fr, ufr):
            seen["select"] += 1

        def on_invert_paths(self, ufr):
            seen["invert"] += 1
            assert ufr.nnz > 0

        def on_prune(self, fr, new_roots, kept):
            seen["prune"] += 1
            assert kept <= fr.nnz

        def on_next_frontier(self, fr, cols):
            seen["next"] += 1

        def on_iteration_end(self, it):
            seen["iter"] += 1

        def on_phase_end(self, paths, iters):
            seen["phase_end"] += 1

    ms_bfs_mcm(fig2, hooks=H())
    assert seen["phase_start"] == seen["phase_end"] >= 2
    assert seen["spmv"] == seen["iter"] >= 1
    assert seen["invert"] >= 1  # at least one augmenting path found


def test_empty_and_edgeless_graphs():
    a = CSC.from_coo(COO.empty(4, 4))
    mr, mc, stats = ms_bfs_mcm(a)
    assert cardinality(mr) == 0
    assert stats.phases == 1


def test_rectangular_matrices():
    for n1, n2 in [(3, 90), (90, 3), (1, 1)]:
        a = random_bipartite(n1, n2, 60, n1 + n2)
        mr, mc, _ = ms_bfs_mcm(a)
        assert cardinality(mr) == scipy_optimum(a)


def test_initial_matching_is_not_mutated():
    a = random_bipartite(30, 30, 150, 9)
    from repro.matching import greedy_maximal

    init_r, init_c = greedy_maximal(a)
    snap_r, snap_c = init_r.copy(), init_c.copy()
    ms_bfs_mcm(a, init_r, init_c)
    assert np.array_equal(init_r, snap_r)
    assert np.array_equal(init_c, snap_c)


def test_api_rejects_unknown_init_and_type():
    a = random_bipartite(5, 5, 10, 0)
    with pytest.raises(ValueError, match="unknown maximal matching"):
        maximum_matching(a, init="bogus")
    with pytest.raises(TypeError):
        maximum_matching([[0, 1], [1, 0]])


def test_api_accepts_coo_directly():
    coo = COO.from_edges(3, 3, [(0, 0), (1, 1), (2, 2)])
    mr, mc, _ = maximum_matching(coo)
    assert cardinality(mr) == 3
