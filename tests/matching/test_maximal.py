"""Maximal-matching initializers: serial and round-synchronous variants."""

import numpy as np
import pytest

from repro.sparse import COO, CSC
from repro.matching import (
    MaximalHooks,
    dynamic_mindegree,
    greedy_maximal,
    greedy_rounds,
    karp_sipser,
    karp_sipser_rounds,
    mindegree_rounds,
)
from repro.matching.validate import cardinality, is_maximal_matching, is_valid_matching

from .conftest import random_bipartite, scipy_optimum

SERIAL = [greedy_maximal, karp_sipser, dynamic_mindegree]
ROUNDS = [greedy_rounds, karp_sipser_rounds, mindegree_rounds]


@pytest.mark.parametrize("algo", SERIAL)
@pytest.mark.parametrize("seed", range(6))
def test_serial_valid_maximal_and_half_approx(algo, seed):
    rng = np.random.default_rng(seed)
    n1, n2 = int(rng.integers(1, 70)), int(rng.integers(1, 70))
    a = random_bipartite(n1, n2, int(rng.integers(0, 5 * max(n1, n2))), seed)
    mr, mc = algo(a, np.random.default_rng(seed))
    assert is_valid_matching(a, mr, mc)
    assert is_maximal_matching(a, mr, mc)
    assert 2 * cardinality(mr) >= scipy_optimum(a)


@pytest.mark.parametrize("fn", ROUNDS)
@pytest.mark.parametrize("seed", range(6))
def test_rounds_valid_maximal_and_half_approx(fn, seed):
    rng = np.random.default_rng(seed)
    n1, n2 = int(rng.integers(1, 70)), int(rng.integers(1, 70))
    a = random_bipartite(n1, n2, int(rng.integers(0, 5 * max(n1, n2))), seed + 50)
    res = fn(a)
    assert is_valid_matching(a, res.mate_r, res.mate_c)
    assert is_maximal_matching(a, res.mate_r, res.mate_c)
    assert 2 * res.cardinality >= scipy_optimum(a)
    assert res.rounds >= (1 if res.cardinality else 0)


@pytest.mark.parametrize("algo", SERIAL)
def test_degree_one_chain_karp_sipser_optimal(algo):
    """On a path graph Karp-Sipser is optimal (degree-1 rule is exact);
    greedy may or may not be.  All must at least produce maximal."""
    # path: r0-c0-r1-c1-r2-c2 ... (P_11 with 6 rows / 5 cols)
    edges = []
    for i in range(5):
        edges += [(i, i), (i + 1, i)]
    a = CSC.from_coo(COO.from_edges(6, 5, edges))
    mr, mc = algo(a, np.random.default_rng(0))
    assert is_maximal_matching(a, mr, mc)
    if algo is karp_sipser:
        assert cardinality(mr) == scipy_optimum(a) == 5


def test_karp_sipser_quality_on_structured_graph():
    """Karp-Sipser's degree-1 rule shines on graphs with many pendant
    vertices; it must beat or match greedy there."""
    rng = np.random.default_rng(5)
    # core random graph + many pendant columns hanging off random rows
    n1, core_cols, pendants = 120, 60, 120
    rows = rng.integers(0, n1, 500)
    cols = rng.integers(0, core_cols, 500)
    prows = rng.integers(0, n1, pendants)
    pcols = np.arange(core_cols, core_cols + pendants)
    a = CSC.from_coo(COO(
        n1, core_cols + pendants,
        np.concatenate([rows, prows]),
        np.concatenate([cols, pcols]),
    ))
    g, _ = greedy_maximal(a, np.random.default_rng(0))
    k, _ = karp_sipser(a, np.random.default_rng(0))
    assert cardinality(k) >= cardinality(g)


def test_mindegree_not_worse_than_greedy_on_average():
    wins = ties = losses = 0
    for seed in range(12):
        a = random_bipartite(100, 100, 420, seed * 13 + 1)
        g, _ = greedy_maximal(a, np.random.default_rng(0))
        d, _ = dynamic_mindegree(a, np.random.default_rng(0))
        cg, cd = cardinality(g), cardinality(d)
        wins += cd > cg
        ties += cd == cg
        losses += cd < cg
    assert wins + ties >= losses  # mindegree at least holds its ground


def test_karp_sipser_rounds_pay_more_rounds_on_long_chains():
    """The Fig. 3 phenomenon: KS's degree-1 cascade serializes on a long
    path, needing far more bulk-synchronous rounds than greedy."""
    n = 60
    edges = []
    for i in range(n - 1):
        edges += [(i, i), (i + 1, i)]
    a = CSC.from_coo(COO.from_edges(n, n - 1, edges))
    ks = karp_sipser_rounds(a)
    gr = greedy_rounds(a)
    assert ks.rounds > gr.rounds
    # and KS is exact on the chain
    assert ks.cardinality == scipy_optimum(a)


def test_rounds_hooks_receive_traffic():
    events = {"explore": 0, "resolve": 0, "update": 0, "rounds": 0, "edges": 0}

    class H(MaximalHooks):
        def on_explore(self, algo, cr, cc):
            events["explore"] += 1
            events["edges"] += cr.size
            assert cr.size == cc.size

        def on_resolve(self, algo, p):
            events["resolve"] += 1

        def on_update(self, algo, rt, ct):
            events["update"] += 1

        def on_round_end(self, algo, matched, idx):
            events["rounds"] += 1
            assert algo == "mindegree"

    a = random_bipartite(50, 50, 200, 3)
    res = mindegree_rounds(a, hooks=H())
    assert events["explore"] >= res.rounds
    assert events["rounds"] == res.rounds
    assert events["edges"] > 0


def test_rounds_empty_graph():
    a = CSC.from_coo(COO.empty(5, 5))
    for fn in ROUNDS:
        res = fn(a)
        assert res.cardinality == 0
        assert res.rounds == 0


def test_rounds_on_complete_bipartite():
    a = CSC.from_coo(COO.from_edges(4, 4, [(i, j) for i in range(4) for j in range(4)]))
    for fn in ROUNDS:
        res = fn(a)
        # complete bipartite: any maximal matching is perfect
        assert res.cardinality == 4
