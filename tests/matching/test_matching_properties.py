"""Property-based cross-validation of every matching algorithm."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sparse import COO, CSC, SR_MIN_PARENT, SR_RAND_ROOT
from repro.matching import (
    dynamic_mindegree,
    greedy_maximal,
    greedy_rounds,
    hopcroft_karp,
    karp_sipser,
    karp_sipser_rounds,
    maximum_matching,
    mindegree_rounds,
    ms_bfs_mcm,
    pothen_fan,
    single_source_mcm,
)
from repro.matching.validate import (
    cardinality,
    is_maximal_matching,
    is_valid_matching,
    verify_maximum,
)

from .conftest import scipy_optimum


@st.composite
def bipartite(draw, max_dim=35, max_nnz=160):
    n1 = draw(st.integers(1, max_dim))
    n2 = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, n1 - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, n2 - 1), min_size=nnz, max_size=nnz))
    return CSC.from_coo(COO(n1, n2, np.array(rows, np.int64), np.array(cols, np.int64)))


@settings(max_examples=40, deadline=None)
@given(bipartite())
def test_all_mcm_algorithms_agree(a):
    opt = scipy_optimum(a)
    for algo in (hopcroft_karp, pothen_fan, single_source_mcm):
        mr, mc = algo(a)
        assert is_valid_matching(a, mr, mc)
        assert cardinality(mr) == opt
    mr, mc, _ = ms_bfs_mcm(a)
    assert cardinality(mr) == opt
    assert verify_maximum(a, mr, mc)


@settings(max_examples=40, deadline=None)
@given(bipartite(), st.sampled_from([None, "greedy", "karp-sipser", "mindegree"]))
def test_mcm_with_initializers_is_optimal(a, init):
    opt = scipy_optimum(a)
    mr, mc, stats = maximum_matching(a, init=init)
    assert cardinality(mr) == opt
    assert stats.final_cardinality == opt


@settings(max_examples=40, deadline=None)
@given(bipartite(), st.integers(0, 2**31 - 1))
def test_randomized_semiring_is_optimal(a, seed):
    opt = scipy_optimum(a)
    mr, mc, _ = ms_bfs_mcm(a, semiring=SR_RAND_ROOT, rng=np.random.default_rng(seed))
    assert cardinality(mr) == opt
    assert verify_maximum(a, mr, mc)


@settings(max_examples=40, deadline=None)
@given(bipartite())
def test_maximal_algorithms_are_valid_maximal_half_approx(a):
    opt = scipy_optimum(a)
    for algo in (greedy_maximal, karp_sipser, dynamic_mindegree):
        mr, mc = algo(a, np.random.default_rng(0))
        assert is_valid_matching(a, mr, mc)
        assert is_maximal_matching(a, mr, mc)
        assert 2 * cardinality(mr) >= opt
    for fn in (greedy_rounds, karp_sipser_rounds, mindegree_rounds):
        res = fn(a)
        assert is_valid_matching(a, res.mate_r, res.mate_c)
        assert is_maximal_matching(a, res.mate_r, res.mate_c)
        assert 2 * res.cardinality >= opt


@settings(max_examples=30, deadline=None)
@given(bipartite())
def test_prune_on_off_equal_cardinality(a):
    r_on = ms_bfs_mcm(a, prune=True)
    r_off = ms_bfs_mcm(a, prune=False)
    assert r_on[2].final_cardinality == r_off[2].final_cardinality
    assert r_on[2].edges_traversed <= r_off[2].edges_traversed


@settings(max_examples=30, deadline=None)
@given(bipartite(), st.sampled_from(["level", "path"]))
def test_augment_modes_equal_cardinality(a, mode):
    opt = scipy_optimum(a)
    mr, _, _ = ms_bfs_mcm(a, augment_mode=mode)
    assert cardinality(mr) == opt


@settings(max_examples=30, deadline=None)
@given(bipartite(), st.integers(0, 2**31 - 1))
def test_matching_invariant_under_permutation(a, seed):
    """Relabeling vertices must not change the optimal cardinality found."""
    from repro.sparse.permute import randomly_permuted, unpermute_matching

    rng = np.random.default_rng(seed)
    coo = a.to_coo()
    b, rp, cp = randomly_permuted(coo, rng)
    mr_b, mc_b, _ = ms_bfs_mcm(CSC.from_coo(b))
    mr, mc = unpermute_matching(mr_b, mc_b, rp, cp)
    assert is_valid_matching(a, mr, mc)
    assert cardinality(mr) == scipy_optimum(a)
