"""Direction-optimized distributed MS-BFS: all three ``direction`` modes of
MCM-DIST must produce bit-identical mate vectors to each other and to the
serial oracle for deterministic semirings, on every grid shape."""

import numpy as np
import pytest

from repro.matching import ms_bfs_mcm
from repro.matching.mcm_dist import run_mcm_dist
from repro.matching.validate import cardinality
from repro.sparse import COO, CSC, SR_MAX_PARENT, SR_MIN_PARENT, SR_MIN_ROOT

from .conftest import scipy_optimum

SEMIRINGS = [SR_MIN_PARENT, SR_MAX_PARENT, SR_MIN_ROOT]


def random_coo(n1, n2, m, seed):
    rng = np.random.default_rng(seed)
    return COO(n1, n2, rng.integers(0, n1, m), rng.integers(0, n2, m))


@pytest.mark.parametrize("pr,pc", [(2, 2), (3, 3)])
@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
def test_all_directions_match_serial_exactly(pr, pc, semiring):
    """The acceptance criterion: topdown, bottomup and auto runs on the grid
    all equal the serial oracle's mate vectors, entry for entry."""
    coo = random_coo(30, 32, 180, 7 * pr + pc)
    a = CSC.from_coo(coo)
    s_r, s_c, _ = ms_bfs_mcm(a, semiring=semiring, augment_mode="level")
    for direction in ("topdown", "bottomup", "auto"):
        d_r, d_c, _ = run_mcm_dist(
            coo, pr, pc, init="none", augment="level",
            semiring=semiring, direction=direction,
        )
        assert np.array_equal(s_r, d_r), direction
        assert np.array_equal(s_c, d_c), direction


@pytest.mark.parametrize("pr,pc", [(1, 1), (1, 2), (2, 3)])
def test_directions_agree_on_more_grids(pr, pc):
    coo = random_coo(36, 30, 200, 13 * pr + pc)
    baseline = run_mcm_dist(
        coo, pr, pc, init="none", augment="level", direction="topdown"
    )
    for direction in ("bottomup", "auto"):
        got = run_mcm_dist(
            coo, pr, pc, init="none", augment="level", direction=direction
        )
        assert np.array_equal(baseline[0], got[0])
        assert np.array_equal(baseline[1], got[1])


def test_direction_with_initializer_still_optimal():
    """Direction choice composes with a distributed initializer."""
    coo = random_coo(40, 45, 260, 99)
    a = CSC.from_coo(coo)
    for direction in ("bottomup", "auto"):
        mate_r, _, stats = run_mcm_dist(coo, 2, 2, init="greedy", direction=direction)
        assert cardinality(mate_r) == scipy_optimum(a)
        assert stats.final_cardinality == cardinality(mate_r)


def test_direction_step_tallies():
    coo = random_coo(40, 40, 600, 3)  # dense enough that auto flips at least once
    _, _, td = run_mcm_dist(coo, 2, 2, init="none", direction="topdown")
    assert td.bottomup_steps == 0
    assert td.topdown_steps == td.iterations
    _, _, bu = run_mcm_dist(coo, 2, 2, init="none", direction="bottomup")
    assert bu.topdown_steps == 0
    assert bu.bottomup_steps == bu.iterations
    _, _, au = run_mcm_dist(coo, 2, 2, init="none", direction="auto")
    assert au.topdown_steps + au.bottomup_steps == au.iterations
    assert au.bottomup_steps > 0  # the switch actually fired on this input
    # auto never examines more edges than either fixed direction
    assert au.edges_examined <= min(td.edges_examined, bu.edges_examined)
    for stats in (td, bu, au):
        assert stats.edges_examined > 0
        assert stats.total_words >= stats.expand_words + stats.fold_words > 0


def test_unknown_direction_rejected():
    coo = random_coo(10, 10, 30, 0)
    with pytest.raises(ValueError):
        run_mcm_dist(coo, 1, 1, direction="sideways")
