"""Cross-engine consistency: every MCM implementation in the package must
agree on every input — the strongest single guarantee the library offers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import COO, CSC
from repro.graphs import generators as G, rmat
from repro.matching import (
    hopcroft_karp,
    ms_bfs_graft,
    ms_bfs_mcm,
    pothen_fan,
    push_relabel_mcm,
    single_source_mcm,
)
from repro.matching.validate import cardinality, verify_maximum

from .conftest import scipy_optimum

ENGINES = {
    "hopcroft-karp": lambda a: hopcroft_karp(a)[0],
    "pothen-fan": lambda a: pothen_fan(a)[0],
    "single-source": lambda a: single_source_mcm(a)[0],
    "push-relabel": lambda a: push_relabel_mcm(a)[0],
    "ms-bfs": lambda a: ms_bfs_mcm(a)[0],
    "ms-bfs-bottomup": lambda a: ms_bfs_mcm(a, direction="auto")[0],
    "ms-bfs-graft": lambda a: ms_bfs_graft(a)[0],
}


def _assert_all_agree(a: CSC):
    opt = scipy_optimum(a)
    for name, fn in ENGINES.items():
        got = cardinality(fn(a))
        assert got == opt, f"{name}: {got} != {opt}"


@pytest.mark.parametrize("builder", [
    lambda: G.mesh2d(9, drop=0.2, seed=1),
    lambda: G.triangulation_like(120, seed=2),
    lambda: G.banded(100, bandwidth=6, per_row=3, seed=3),
    lambda: G.kkt_block(80, seed=4),
    lambda: G.clique_overlap(60, clique_size=8, seed=5),
    lambda: G.boundary_map(70, 90, per_col=4, seed=6),
    lambda: G.long_path(31),
    lambda: rmat.g500(scale=7, seed=7),
    lambda: rmat.ssca(scale=7, seed=8),
])
def test_every_engine_on_every_generator_class(builder):
    a = CSC.from_coo(builder())
    _assert_all_agree(a)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 25), st.integers(1, 25), st.integers(0, 100), st.integers(0, 10_000))
def test_every_engine_on_random_graphs(n1, n2, nnz, seed):
    rng = np.random.default_rng(seed)
    a = CSC.from_coo(COO(n1, n2, rng.integers(0, n1, nnz), rng.integers(0, n2, nnz)))
    _assert_all_agree(a)


def test_every_engine_certified_by_koenig():
    """Each engine's matching passes the self-contained certificate."""
    a = CSC.from_coo(rmat.g500(scale=8, seed=9))
    for name, fn in ENGINES.items():
        if name in ("ms-bfs", "ms-bfs-bottomup", "ms-bfs-graft"):
            continue  # tuple shapes differ; covered in their own tests
        mr, mc = {
            "hopcroft-karp": hopcroft_karp,
            "pothen-fan": pothen_fan,
            "single-source": single_source_mcm,
            "push-relabel": push_relabel_mcm,
        }[name](a)
        assert verify_maximum(a, mr, mc), name
