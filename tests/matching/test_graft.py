"""MS-BFS-Graft: tree grafting correctness and savings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import COO, CSC, SR_RAND_ROOT
from repro.graphs import rmat
from repro.matching import greedy_maximal, ms_bfs_graft, ms_bfs_mcm
from repro.matching.validate import cardinality, is_valid_matching, verify_maximum

from .conftest import random_bipartite, scipy_optimum


@pytest.mark.parametrize("seed", range(8))
def test_graft_reaches_optimum(seed):
    rng = np.random.default_rng(seed)
    n1, n2 = int(rng.integers(1, 80)), int(rng.integers(1, 80))
    a = random_bipartite(n1, n2, int(rng.integers(0, 5 * max(n1, n2))), seed + 600)
    mr, mc, stats = ms_bfs_graft(a)
    assert is_valid_matching(a, mr, mc)
    assert cardinality(mr) == scipy_optimum(a)
    assert verify_maximum(a, mr, mc)
    assert stats.final_cardinality == cardinality(mr)


def test_graft_with_initializer():
    a = random_bipartite(60, 60, 300, 5)
    ir, ic = greedy_maximal(a)
    mr, mc, stats = ms_bfs_graft(a, ir, ic)
    assert cardinality(mr) == scipy_optimum(a)
    assert stats.initial_cardinality == cardinality(ir)


def test_graft_terminates_with_fresh_confirmation():
    """The final phase must be a from-scratch phase that found nothing —
    guaranteed by stats: the last entry of paths_per_phase is 0."""
    a = random_bipartite(50, 50, 220, 11)
    _, _, stats = ms_bfs_graft(a)
    assert stats.paths_per_phase[-1] == 0


def test_graft_saves_traversals_on_skewed_graphs():
    """The headline of the MS-BFS-Graft technique: fewer edge traversals on
    skewed (RMAT/G500) inputs than rebuild-every-phase MS-BFS."""
    a = CSC.from_coo(rmat.g500(scale=12, seed=4))
    ir, ic = greedy_maximal(a)
    _, _, graft = ms_bfs_graft(a, ir, ic)
    _, _, plain = ms_bfs_mcm(a, ir, ic)
    assert graft.final_cardinality == plain.final_cardinality
    assert graft.edges_traversed < plain.edges_traversed


def test_graft_randomized_semiring():
    a = random_bipartite(60, 60, 280, 21)
    mr, mc, _ = ms_bfs_graft(a, semiring=SR_RAND_ROOT, rng=np.random.default_rng(3))
    assert cardinality(mr) == scipy_optimum(a)


def test_graft_empty_graph_and_perfect_start():
    a = CSC.from_coo(COO.empty(4, 4))
    mr, mc, stats = ms_bfs_graft(a)
    assert cardinality(mr) == 0 and stats.phases == 1
    ident = CSC.from_coo(COO.identity(5))
    ir = np.arange(5, dtype=np.int64)
    mr, mc, stats = ms_bfs_graft(ident, ir, ir.copy())
    assert cardinality(mr) == 5
    assert stats.paths_per_phase == [0]


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 30), st.integers(1, 30), st.integers(0, 120), st.integers(0, 10_000))
def test_graft_property_agrees_with_plain_msbfs(n1, n2, nnz, seed):
    rng = np.random.default_rng(seed)
    a = CSC.from_coo(COO(n1, n2, rng.integers(0, n1, nnz), rng.integers(0, n2, nnz)))
    g = ms_bfs_graft(a)[2].final_cardinality
    p = ms_bfs_mcm(a)[2].final_cardinality
    assert g == p == scipy_optimum(a)
