"""Validation machinery: König certificates must accept exactly the maxima."""

import numpy as np
import pytest

from repro.sparse import COO, CSC
from repro.sparse.spvec import NULL
from repro.matching import hopcroft_karp
from repro.matching.validate import (
    cardinality,
    is_maximal_matching,
    is_valid_matching,
    is_vertex_cover,
    koenig_vertex_cover,
    verify_maximum,
)

from .conftest import random_bipartite


def test_cardinality():
    assert cardinality(np.array([NULL, 3, NULL, 0])) == 2
    assert cardinality(np.array([], dtype=np.int64)) == 0


def test_valid_matching_accepts_correct():
    a = CSC.from_coo(COO.from_edges(2, 2, [(0, 0), (1, 1)]))
    assert is_valid_matching(a, np.array([0, 1]), np.array([0, 1]))


def test_valid_matching_rejects_non_mutual():
    a = CSC.from_coo(COO.from_edges(2, 2, [(0, 0), (1, 1)]))
    assert not is_valid_matching(a, np.array([0, NULL]), np.array([1, NULL]))


def test_valid_matching_rejects_non_edges():
    a = CSC.from_coo(COO.from_edges(2, 2, [(0, 0), (1, 1)]))
    assert not is_valid_matching(a, np.array([1, 0]), np.array([1, 0]))


def test_valid_matching_rejects_wrong_lengths_and_range():
    a = CSC.from_coo(COO.from_edges(2, 2, [(0, 0)]))
    assert not is_valid_matching(a, np.array([0]), np.array([0, NULL]))
    assert not is_valid_matching(a, np.array([5, NULL]), np.array([NULL, NULL]))


def test_maximal_detects_extendable():
    a = CSC.from_coo(COO.from_edges(2, 2, [(0, 0), (1, 1)]))
    empty_r = np.full(2, NULL, np.int64)
    empty_c = np.full(2, NULL, np.int64)
    assert not is_maximal_matching(a, empty_r, empty_c)
    assert is_maximal_matching(a, np.array([0, 1]), np.array([0, 1]))


def test_koenig_cover_on_star():
    """Star: one row, 3 columns.  Min cover = the row; matching = 1."""
    a = CSC.from_coo(COO.from_edges(1, 3, [(0, 0), (0, 1), (0, 2)]))
    mr, mc = hopcroft_karp(a)
    rows, cols = koenig_vertex_cover(a, mr, mc)
    assert is_vertex_cover(a, rows, cols)
    assert int(rows.sum() + cols.sum()) == 1
    assert verify_maximum(a, mr, mc)


def test_verify_maximum_rejects_non_maximum():
    """On the 2-path, the size-1 'lazy' matching must be rejected."""
    a = CSC.from_coo(COO.from_edges(2, 2, [(0, 0), (1, 0), (1, 1)]))
    lazy_r = np.array([NULL, 0], dtype=np.int64)
    lazy_c = np.array([1, NULL], dtype=np.int64)
    assert is_valid_matching(a, lazy_r, lazy_c)
    assert not verify_maximum(a, lazy_r, lazy_c)


def test_verify_maximum_rejects_invalid():
    a = CSC.from_coo(COO.from_edges(2, 2, [(0, 0), (1, 1)]))
    assert not verify_maximum(a, np.array([1, 0]), np.array([1, 0]))


@pytest.mark.parametrize("seed", range(8))
def test_certificate_equals_scipy_on_random(seed):
    from .conftest import scipy_optimum

    a = random_bipartite(40, 50, 250, seed)
    mr, mc = hopcroft_karp(a)
    assert verify_maximum(a, mr, mc)
    rows, cols = koenig_vertex_cover(a, mr, mc)
    assert int(rows.sum() + cols.sum()) == scipy_optimum(a)


def test_empty_graph_certificate():
    a = CSC.from_coo(COO.empty(3, 3))
    mr = np.full(3, NULL, np.int64)
    mc = np.full(3, NULL, np.int64)
    assert verify_maximum(a, mr, mc)
    rows, cols = koenig_vertex_cover(a, mr, mc)
    assert is_vertex_cover(a, rows, cols)
    assert int(rows.sum() + cols.sum()) == 0
