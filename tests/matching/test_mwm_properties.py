"""Property suite for the ε-scaled auction engine (serial twin + MWM-DIST).

Four layers of evidence, each against a stronger oracle:

* hypothesis-generated weighted bipartite graphs (varying density, dense
  weight ties, disconnected vertices): matching validity, ε-complementary
  slackness on the doubled assignment graph, and weight within
  ``(1 - ε)`` of the exact Hungarian optimum;
* the distributed engine is BIT-identical to the serial twin — mates,
  weight, round/bid counts — because both run the same NumPy kernels in
  the same Jacobi round structure with the same deterministic tie-breaks;
* the full parity matrix of the issue: er/rmat × three weight
  distributions × 1x1/2x2/3x3 grids, every cell bit-equal to the twin
  and ≥ (1-ε)·Hungarian;
* the ``cardinality_bias`` knob and the public
  :func:`repro.maximum_weight_matching` front door.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.generators import WEIGHT_DISTS, edge_weights
from repro.graphs.rmat import er, g500
from repro.matching import (
    auction_mwm_serial,
    hungarian_mwm,
    maximum_weight_matching,
    run_mwm_dist,
)
from repro.matching.auction import double_for_assignment
from repro.sparse import COO, CSC
from repro.sparse.spvec import NULL

EPS = 0.05
GRIDS = [(1, 1), (2, 2), (3, 3)]


# -- strategies --------------------------------------------------------------


@st.composite
def weighted_graphs(draw):
    """(n1, n2, rows, cols, weights) with varying density, tie-heavy
    weights, parallel edges and naturally disconnected vertices."""
    n1 = draw(st.integers(1, 9))
    n2 = draw(st.integers(1, 9))
    m = draw(st.integers(0, 2 * n1 * n2))
    seed = draw(st.integers(0, 2**31 - 1))
    kind = draw(st.sampled_from(["uniform", "tied", "mixed"]))
    rng = np.random.default_rng(seed)
    # sampling rows from a shrunken range leaves high rows disconnected
    rlim = draw(st.integers(1, n1))
    rows = rng.integers(0, rlim, m)
    cols = rng.integers(0, n2, m)
    if kind == "uniform":
        weights = rng.uniform(0.1, 4.0, m)
    elif kind == "tied":
        weights = rng.integers(1, 4, m).astype(np.float64)
    else:  # zero and negative weights must never be matched
        weights = rng.integers(-1, 3, m).astype(np.float64)
    return n1, n2, rows, cols, weights


def assert_valid(n1, n2, rows, cols, weights, mate_r, mate_c):
    """Mutual consistency; every matched pair is a real positive edge."""
    edge_w = {}
    for i, j, w in zip(rows, cols, weights):
        key = (int(i), int(j))
        edge_w[key] = max(edge_w.get(key, -np.inf), float(w))
    total = 0.0
    for i in range(n1):
        j = int(mate_r[i])
        if j != NULL:
            assert 0 <= j < n2 and int(mate_c[j]) == i
            assert (i, j) in edge_w and edge_w[(i, j)] > 0.0
            total += edge_w[(i, j)]
    for j in range(n2):
        i = int(mate_c[j])
        if i != NULL:
            assert int(mate_r[i]) == j
    return total


# -- serial twin: validity, (1-ε) bound, ε-CS --------------------------------


@settings(max_examples=120, deadline=None)
@given(weighted_graphs())
def test_twin_valid_and_near_optimal(g):
    n1, n2, rows, cols, weights = g
    mate_r, mate_c, info = auction_mwm_serial(n1, n2, rows, cols, weights, epsilon=EPS)
    achieved = assert_valid(n1, n2, rows, cols, weights, mate_r, mate_c)
    assert info["weight"] == pytest.approx(achieved)
    _, _, opt = hungarian_mwm(n1, n2, rows, cols, weights)
    assert info["weight"] >= (1.0 - EPS) * opt - 1e-9


@settings(max_examples=80, deadline=None)
@given(weighted_graphs())
def test_twin_eps_complementary_slackness(g):
    """Every assigned bidder of the doubled graph is within delta_final of
    its best profit at the final prices — the invariant the (1-ε) bound
    rests on."""
    n1, n2, rows, cols, weights = g
    _, _, info = auction_mwm_serial(n1, n2, rows, cols, weights, epsilon=EPS)
    if "prices" not in info:  # scale <= 0: empty optimum, nothing to check
        return
    price = info["prices"]
    mate_item = info["mate_item"]
    delta_final = info["schedule"][-1]
    N, dr, dc, w_eff, _ = double_for_assignment(n1, n2, rows, cols, weights)
    assert (mate_item != NULL).all()  # perfect assignment reached
    profit = w_eff - price[dr]
    for j in range(N):
        mask = dc == j
        i = int(np.flatnonzero(mate_item == j)[0])
        mine = profit[mask & (dr == i)].max()
        assert mine >= profit[mask].max() - delta_final - 1e-12


@settings(max_examples=60, deadline=None)
@given(weighted_graphs(), st.sampled_from([0.2, 0.01]))
def test_twin_bound_tracks_epsilon(g, eps):
    n1, n2, rows, cols, weights = g
    _, _, info = auction_mwm_serial(n1, n2, rows, cols, weights, epsilon=eps)
    _, _, opt = hungarian_mwm(n1, n2, rows, cols, weights)
    assert info["weight"] >= (1.0 - eps) * opt - 1e-9


# -- distributed engine == serial twin, bit for bit --------------------------


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(weighted_graphs(), st.sampled_from([(1, 1), (2, 2)]))
def test_dist_bit_identical_to_twin_small(g, grid):
    n1, n2, rows, cols, weights = g
    mr_s, mc_s, info = auction_mwm_serial(n1, n2, rows, cols, weights, epsilon=EPS)
    coo = COO(n1, n2, rows, cols, dedup=False)
    mr_d, mc_d, stats = run_mwm_dist(coo, weights, *grid, epsilon=EPS, timeout=60)
    np.testing.assert_array_equal(mr_s, mr_d)
    np.testing.assert_array_equal(mc_s, mc_d)
    assert stats.matching_weight == info["weight"]  # same float, not approx
    assert stats.auction_rounds == info["rounds"]
    assert stats.bids_placed == info["bids"]


def _parity_graph(name):
    gen, seed = {"er": (er, 1), "rmat": (g500, 2)}[name]
    return gen(6, seed=seed)


_hungarian_cache = {}


def _hungarian_opt(name, dist):
    if (name, dist) not in _hungarian_cache:
        coo = _parity_graph(name)
        w = edge_weights(coo, dist=dist, seed=7)
        _hungarian_cache[(name, dist)] = hungarian_mwm(
            coo.nrows, coo.ncols, coo.rows, coo.cols, w
        )[2]
    return _hungarian_cache[(name, dist)]


@pytest.mark.parametrize("pr,pc", GRIDS)
@pytest.mark.parametrize("dist", WEIGHT_DISTS)
@pytest.mark.parametrize("name", ["er", "rmat"])
def test_parity_matrix(name, dist, pr, pc):
    """The issue's acceptance matrix: er/rmat × weight dists × grids."""
    coo = _parity_graph(name)
    weights = edge_weights(coo, dist=dist, seed=7)
    mr_s, mc_s, info = auction_mwm_serial(
        coo.nrows, coo.ncols, coo.rows, coo.cols, weights, epsilon=EPS
    )
    mr_d, mc_d, stats = run_mwm_dist(coo, weights, pr, pc, epsilon=EPS, timeout=120)
    np.testing.assert_array_equal(mr_s, mr_d)
    np.testing.assert_array_equal(mc_s, mc_d)
    assert stats.matching_weight == info["weight"]
    assert stats.auction_rounds == info["rounds"]
    assert stats.bids_placed == info["bids"]
    np.testing.assert_array_equal(stats.auction_prices, info["prices"])
    assert stats.matching_weight >= (1.0 - EPS) * _hungarian_opt(name, dist) - 1e-9
    assert_valid(
        coo.nrows, coo.ncols, coo.rows, coo.cols, weights, mr_d, mc_d
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bit_identical_across_grids_per_seed(seed):
    """For each seed, every grid shape lands on the SAME mate vectors."""
    coo = er(5, seed=seed, edgefactor=4)
    weights = edge_weights(coo, dist="intbounded", seed=seed)
    results = [
        run_mwm_dist(coo, weights, pr, pc, timeout=60) for pr, pc in GRIDS
    ]
    for mr, mc, st_ in results[1:]:
        np.testing.assert_array_equal(results[0][0], mr)
        np.testing.assert_array_equal(results[0][1], mc)
        assert st_.matching_weight == results[0][2].matching_weight


# -- the cardinality/weight knob ---------------------------------------------


def test_cardinality_bias_trades_weight_for_cardinality():
    # one heavy cross edge (10) vs two light diagonals (1 + 1): pure weight
    # takes the single heavy edge, bias >= 1 prefers the larger matching.
    rows = np.array([0, 1, 0])
    cols = np.array([0, 1, 1])
    weights = np.array([1.0, 1.0, 10.0])
    mate_r, _, info = auction_mwm_serial(2, 2, rows, cols, weights)
    assert info["cardinality"] == 1 and info["weight"] == 10.0
    mate_r, _, info_b = auction_mwm_serial(
        2, 2, rows, cols, weights, cardinality_bias=1.0
    )
    assert info_b["cardinality"] == 2
    assert info_b["weight"] == 2.0  # reported weight stays unbiased
    # the distributed engine honors the same knob, bit-identically
    coo = COO(2, 2, rows, cols, dedup=False)
    mr_d, _, stats = run_mwm_dist(coo, weights, 2, 2, cardinality_bias=1.0, timeout=60)
    np.testing.assert_array_equal(mate_r, mr_d)
    assert stats.final_cardinality == 2 and stats.matching_weight == 2.0


# -- public API --------------------------------------------------------------


def test_maximum_weight_matching_methods_agree_near_optimum():
    rng = np.random.default_rng(3)
    coo = COO(12, 12, rng.integers(0, 12, 60), rng.integers(0, 12, 60), dedup=False)
    weights = rng.uniform(0.5, 3.0, coo.nnz)
    mr_a, mc_a, w_a = maximum_weight_matching(coo, weights, epsilon=EPS)
    mr_e, mc_e, w_e = maximum_weight_matching(coo, weights, method="exact")
    assert w_a >= (1.0 - EPS) * w_e - 1e-9
    assert w_a <= w_e + 1e-9
    assert_valid(12, 12, coo.rows, coo.cols, weights, mr_a, mc_a)
    assert_valid(12, 12, coo.rows, coo.cols, weights, mr_e, mc_e)


def test_maximum_weight_matching_rejects_bad_inputs():
    coo = COO(3, 3, np.array([0, 1]), np.array([1, 2]), dedup=False)
    with pytest.raises(TypeError):
        # CSC reorders edges; weights would silently misalign
        maximum_weight_matching(CSC.from_coo(coo), np.ones(2))
    with pytest.raises(ValueError):
        maximum_weight_matching(coo, np.ones(5))
    with pytest.raises(ValueError):
        maximum_weight_matching(coo, np.ones(2), method="magic")


def test_edge_weights_deterministic_and_order_free():
    """Weights are a pure hash of (i, j, seed): permuting edge storage or
    re-deriving on another 'rank' yields identical floats."""
    coo = er(5, seed=4, edgefactor=4)
    w1 = edge_weights(coo, dist="uniform", seed=9)
    perm = np.random.default_rng(0).permutation(coo.nnz)
    shuffled = COO(coo.nrows, coo.ncols, coo.rows[perm], coo.cols[perm], dedup=False)
    w2 = edge_weights(shuffled, dist="uniform", seed=9)
    np.testing.assert_array_equal(w1[perm], w2)
    assert (w1 > 0).all()
    with pytest.raises(ValueError):
        edge_weights(coo, dist="zipf")
