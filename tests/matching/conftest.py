"""Shared fixtures/helpers for matching tests."""

import numpy as np
import pytest

from repro.sparse import COO, CSC


def random_bipartite(n1, n2, m, seed):
    rng = np.random.default_rng(seed)
    return CSC.from_coo(COO(n1, n2, rng.integers(0, n1, m), rng.integers(0, n2, m)))


def scipy_optimum(a: CSC) -> int:
    """Ground-truth MCM cardinality via scipy's Hopcroft-Karp."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import maximum_bipartite_matching

    coo = a.to_coo()
    sp = csr_matrix(
        (np.ones(coo.nnz), (coo.rows, coo.cols)), shape=(coo.nrows, coo.ncols)
    )
    return int((maximum_bipartite_matching(sp.tocsr(), perm_type="column") >= 0).sum())


@pytest.fixture
def fig2():
    """The paper's Fig. 2 example graph (5x5)."""
    edges = [
        (0, 0), (1, 0), (1, 1), (2, 1), (2, 2),
        (3, 2), (1, 4), (3, 4), (4, 4), (4, 3),
    ]
    return CSC.from_coo(COO.from_edges(5, 5, edges))
